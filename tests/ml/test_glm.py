"""Unit tests for the GLM counter models."""

import numpy as np
import pytest

from repro.ml.glm import GaussianGLM, PoissonGLM, fit_best_polynomial


class TestGaussianGLM:
    def test_exact_quadratic(self):
        x = np.linspace(1, 10, 30)
        y = 2.0 * x**2 - 3.0 * x + 7.0
        glm = GaussianGLM(degree=2).fit(x, y)
        assert glm.residual_deviance_ == pytest.approx(0.0, abs=1e-12)
        assert np.allclose(glm.coef_, [7.0, -3.0, 2.0])

    def test_matches_lstsq(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 5, 50)
        y = 3 * x + rng.normal(size=50)
        glm = GaussianGLM(degree=1).fit(x, y)
        B = np.column_stack([np.ones(50), x])
        expected, _, _, _ = np.linalg.lstsq(B, y, rcond=None)
        assert np.allclose(glm.coef_, expected)

    def test_log_log_recovers_power_law(self):
        x = np.logspace(1, 4, 25)
        y = 0.5 * x**3
        glm = GaussianGLM(degree=1, log_x=True, log_y=True).fit(x, y)
        assert glm.coef_[1] == pytest.approx(3.0, rel=1e-9)  # exponent
        assert glm.r_squared_ == pytest.approx(1.0)

    def test_log_y_predicts_positive(self):
        x = np.linspace(1, 10, 20)
        y = np.exp(0.3 * x)
        glm = GaussianGLM(degree=1, log_y=True).fit(x, y)
        assert np.all(glm.predict(x) > 0)

    def test_residual_deviance_is_rss(self):
        x = np.arange(10.0)
        y = x + np.array([0.0, 1.0] * 5)
        glm = GaussianGLM(degree=1).fit(x, y)
        fitted = glm.predict(x)
        assert glm.residual_deviance_ == pytest.approx(np.sum((y - fitted) ** 2))

    def test_log_x_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            GaussianGLM(log_x=True).fit(np.array([0.0, 1.0, 2.0]), np.arange(3.0))

    def test_log_y_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            GaussianGLM(log_y=True).fit(np.arange(3.0) + 1, np.array([1.0, -1.0, 2.0]))

    def test_too_few_points_raises(self):
        with pytest.raises(ValueError):
            GaussianGLM(degree=3).fit(np.arange(3.0), np.arange(3.0))


class TestPoissonGLM:
    def test_recovers_log_linear_rate(self):
        rng = np.random.default_rng(1)
        x = np.linspace(0, 2, 300)
        mu = np.exp(1.0 + 1.5 * x)
        y = rng.poisson(mu).astype(float)
        glm = PoissonGLM(degree=1).fit(x, y)
        assert glm.coef_[0] == pytest.approx(1.0, abs=0.15)
        assert glm.coef_[1] == pytest.approx(1.5, abs=0.1)

    def test_prediction_positive(self):
        x = np.linspace(0, 2, 50)
        y = np.exp(x)
        glm = PoissonGLM().fit(x, y)
        assert np.all(glm.predict(np.linspace(-1, 3, 10)) > 0)

    def test_deviance_zero_for_exact_fit(self):
        x = np.linspace(0, 2, 30)
        y = np.exp(2.0 + 0.5 * x)
        glm = PoissonGLM(degree=1).fit(x, y)
        assert glm.residual_deviance_ == pytest.approx(0.0, abs=1e-6)

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            PoissonGLM().fit(np.arange(5.0), np.array([1.0, -2.0, 3.0, 4.0, 5.0]))

    def test_handles_zero_counts(self):
        x = np.linspace(0, 3, 40)
        y = np.round(np.exp(x) - 1.0)
        glm = PoissonGLM().fit(x, y)
        assert glm.r_squared_ > 0.9


class TestModelSelection:
    def test_picks_adequate_degree(self):
        x = np.linspace(1, 20, 40)
        y = 5 * x**2 + 1
        best = fit_best_polynomial(x, y, max_degree=3)
        assert best.r_squared_ > 0.9999

    def test_cubic_counter_growth(self):
        # an O(n^3) counter (e.g. FMA count of MM) vs matrix size
        n = np.array([32, 64, 128, 256, 512, 1024], dtype=float)
        y = n**3 / 32
        best = fit_best_polynomial(n, y)
        assert best.r_squared_ > 0.999
        pred = best.predict(np.array([768.0]))
        assert pred[0] == pytest.approx(768.0**3 / 32, rel=0.25)

    def test_prefers_parsimonious_on_linear(self):
        rng = np.random.default_rng(2)
        x = np.linspace(0, 10, 60)
        y = 2 * x + rng.normal(0, 0.5, size=60)
        best = fit_best_polynomial(x, y, try_log=False)
        assert best.degree == 1

    def test_raises_when_nothing_fits(self):
        with pytest.raises(ValueError):
            fit_best_polynomial(np.array([1.0]), np.array([2.0]))
