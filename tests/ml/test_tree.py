"""Unit tests for the CART regression tree."""

import numpy as np
import pytest

from repro.ml.tree import RegressionTree


def step_data(n=100, threshold=0.0, lo=1.0, hi=5.0, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, size=(n, 1))
    y = np.where(X[:, 0] <= threshold, lo, hi)
    return X, y


class TestSingleSplit:
    def test_recovers_step_function(self):
        X, y = step_data()
        tree = RegressionTree(min_samples_leaf=1).fit(X, y)
        pred = tree.predict(X)
        assert np.allclose(pred, y)

    def test_split_threshold_near_truth(self):
        X, y = step_data(n=500)
        tree = RegressionTree(min_samples_leaf=1).fit(X, y)
        root_thr = tree.threshold_[0]
        assert abs(root_thr) < 0.05

    def test_leaf_value_is_region_mean(self):
        # Paper Eq. 1: the best constant per region is the mean.
        X = np.array([[0.0], [0.0], [1.0], [1.0]])
        y = np.array([1.0, 3.0, 10.0, 20.0])
        tree = RegressionTree(min_samples_leaf=2).fit(X, y)
        preds = set(np.round(tree.predict(X), 6))
        assert preds == {2.0, 15.0}


class TestStoppingRules:
    def test_max_depth_zero_gives_stump(self):
        X, y = step_data()
        tree = RegressionTree(max_depth=0).fit(X, y)
        assert tree.n_nodes == 1
        assert np.allclose(tree.predict(X), y.mean())

    def test_min_samples_leaf_respected(self):
        X, y = step_data(n=60)
        tree = RegressionTree(min_samples_leaf=10).fit(X, y)
        leaves = tree.feature_ == -1
        assert np.all(tree.n_node_samples_[leaves] >= 10)

    def test_pure_node_not_split(self):
        X = np.arange(20.0)[:, None]
        y = np.zeros(20)
        tree = RegressionTree(min_samples_leaf=1).fit(X, y)
        assert tree.n_nodes == 1

    def test_constant_feature_not_split(self):
        X = np.ones((20, 1))
        y = np.arange(20.0)
        tree = RegressionTree(min_samples_leaf=1).fit(X, y)
        assert tree.n_nodes == 1

    def test_depth_property(self):
        X, y = step_data()
        deep = RegressionTree(min_samples_leaf=1).fit(X, y)
        assert deep.depth >= 1
        stump = RegressionTree(max_depth=0).fit(X, y)
        assert stump.depth == 0


class TestPrediction:
    def test_predictions_within_training_range(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(80, 3))
        y = rng.normal(size=80)
        tree = RegressionTree().fit(X, y)
        pred = tree.predict(rng.normal(size=(200, 3)) * 10)
        assert pred.min() >= y.min() - 1e-12
        assert pred.max() <= y.max() + 1e-12

    def test_apply_returns_leaves(self):
        X, y = step_data()
        tree = RegressionTree(min_samples_leaf=1).fit(X, y)
        leaves = tree.apply(X)
        assert np.all(tree.feature_[leaves] == -1)

    def test_wrong_width_raises(self):
        X, y = step_data()
        tree = RegressionTree().fit(X, y)
        with pytest.raises(ValueError):
            tree.predict(np.zeros((3, 2)))


class TestMultiFeature:
    def test_picks_informative_feature(self):
        rng = np.random.default_rng(3)
        X = rng.uniform(-1, 1, size=(300, 5))
        y = np.where(X[:, 3] <= 0.2, 0.0, 1.0)
        tree = RegressionTree(min_samples_leaf=1).fit(X, y)
        assert tree.feature_[0] == 3

    def test_impurity_decrease_concentrated(self):
        rng = np.random.default_rng(4)
        X = rng.uniform(-1, 1, size=(300, 4))
        y = 3.0 * (X[:, 1] > 0)
        tree = RegressionTree(min_samples_leaf=5).fit(X, y)
        assert np.argmax(tree.impurity_decrease_) == 1

    def test_max_features_subsampling_still_fits(self):
        rng = np.random.default_rng(5)
        X = rng.uniform(-1, 1, size=(200, 6))
        y = X[:, 0] + 0.01 * rng.normal(size=200)
        tree = RegressionTree(max_features=2, rng=1).fit(X, y)
        # a subsampled tree still reduces error well below variance
        assert np.mean((tree.predict(X) - y) ** 2) < np.var(y) / 2


class TestValidation:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            RegressionTree().fit(np.zeros((0, 2)), np.zeros(0))

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            RegressionTree().fit(np.zeros((3, 2)), np.zeros(4))

    def test_rejects_1d_X(self):
        with pytest.raises(ValueError):
            RegressionTree().fit(np.zeros(5), np.zeros(5))

    def test_rejects_bad_leaf_size(self):
        with pytest.raises(ValueError):
            RegressionTree(min_samples_leaf=0)


class TestDeterminism:
    def test_same_seed_same_tree(self):
        rng = np.random.default_rng(6)
        X = rng.normal(size=(100, 4))
        y = rng.normal(size=100)
        t1 = RegressionTree(max_features=2, rng=42).fit(X, y)
        t2 = RegressionTree(max_features=2, rng=42).fit(X, y)
        assert np.array_equal(t1.feature_, t2.feature_)
        assert np.allclose(t1.threshold_, t2.threshold_, equal_nan=True)
