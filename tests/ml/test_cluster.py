"""Unit tests for k-means clustering."""

import numpy as np
import pytest

from repro.ml.cluster import KMeans


def three_blobs(seed=0, n=60):
    rng = np.random.default_rng(seed)
    centers = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
    X = np.vstack([c + 0.5 * rng.normal(size=(n, 2)) for c in centers])
    labels = np.repeat(np.arange(3), n)
    return X, labels


class TestKMeans:
    def test_recovers_blobs(self):
        X, truth = three_blobs()
        km = KMeans(3, rng=0).fit(X)
        # each true blob maps to exactly one cluster
        for blob in range(3):
            found = km.labels_[truth == blob]
            assert len(set(found.tolist())) == 1
        assert len(set(km.labels_.tolist())) == 3

    def test_centers_near_truth(self):
        X, _ = three_blobs()
        km = KMeans(3, rng=0).fit(X)
        expected = {(0, 0), (10, 0), (0, 10)}
        for c in km.cluster_centers_:
            assert any(np.linalg.norm(c - e) < 1.0 for e in map(np.array, expected))

    def test_inertia_decreases_with_k(self):
        X, _ = three_blobs()
        inertias = [KMeans(k, rng=0).fit(X).inertia_ for k in (1, 2, 3)]
        assert inertias[0] > inertias[1] > inertias[2]

    def test_predict_consistent_with_fit(self):
        X, _ = three_blobs()
        km = KMeans(3, rng=0).fit(X)
        assert np.array_equal(km.predict(X), km.labels_)

    def test_single_cluster_center_is_mean(self):
        X, _ = three_blobs()
        km = KMeans(1, rng=0).fit(X)
        assert np.allclose(km.cluster_centers_[0], X.mean(axis=0))

    def test_duplicate_points_ok(self):
        X = np.zeros((10, 2))
        km = KMeans(2, rng=0).fit(X)
        assert km.inertia_ == pytest.approx(0.0)

    def test_rejects_more_clusters_than_points(self):
        with pytest.raises(ValueError):
            KMeans(5).fit(np.zeros((3, 2)))

    def test_rejects_zero_clusters(self):
        with pytest.raises(ValueError):
            KMeans(0)

    def test_reproducible(self):
        X, _ = three_blobs()
        a = KMeans(3, rng=11).fit(X).labels_
        b = KMeans(3, rng=11).fit(X).labels_
        assert np.array_equal(a, b)
