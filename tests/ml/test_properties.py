"""Property-based tests (hypothesis) for the ML substrate invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.ml.forest import RandomForestRegressor
from repro.ml.mars import Mars
from repro.ml.metrics import explained_variance, mse, r2_score
from repro.ml.pca import PCA, varimax
from repro.ml.preprocessing import StandardScaler, train_test_split
from repro.ml.tree import RegressionTree

finite = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)


def data_matrix(min_rows=8, max_rows=40, min_cols=1, max_cols=5):
    return st.integers(min_rows, max_rows).flatmap(
        lambda n: st.integers(min_cols, max_cols).flatmap(
            lambda p: arrays(np.float64, (n, p), elements=finite)
        )
    )


@st.composite
def regression_problem(draw):
    n = draw(st.integers(10, 40))
    p = draw(st.integers(1, 4))
    X = draw(arrays(np.float64, (n, p), elements=st.floats(-100, 100)))
    y = draw(arrays(np.float64, (n,), elements=st.floats(-100, 100)))
    return X, y


class TestMetricsProperties:
    @given(arrays(np.float64, 10, elements=finite))
    def test_mse_of_self_is_zero(self, y):
        assert mse(y, y) == 0.0

    @given(arrays(np.float64, 12, elements=st.floats(-1e3, 1e3)),
           arrays(np.float64, 12, elements=st.floats(-1e3, 1e3)))
    def test_mse_nonnegative_and_symmetric(self, a, b):
        assert mse(a, b) >= 0.0
        assert mse(a, b) == mse(b, a)

    @given(arrays(np.float64, 15, elements=st.floats(-1e3, 1e3)))
    def test_r2_of_self_is_one(self, y):
        assert r2_score(y, y) == 1.0

    @given(arrays(np.float64, 15, elements=st.floats(-1e3, 1e3)))
    def test_explained_variance_at_most_one(self, y):
        rng = np.random.default_rng(0)
        pred = y + rng.normal(size=y.size)
        assert explained_variance(y, pred) <= 1.0 + 1e-12


class TestTreeProperties:
    @settings(max_examples=25, deadline=None)
    @given(regression_problem())
    def test_predictions_within_response_range(self, prob):
        X, y = prob
        tree = RegressionTree(min_samples_leaf=2).fit(X, y)
        pred = tree.predict(X)
        assert pred.min() >= y.min() - 1e-9
        assert pred.max() <= y.max() + 1e-9

    @settings(max_examples=25, deadline=None)
    @given(regression_problem())
    def test_stump_predicts_mean(self, prob):
        X, y = prob
        tree = RegressionTree(max_depth=0).fit(X, y)
        assert np.allclose(tree.predict(X), y.mean())

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000), st.floats(1.0, 100.0))
    def test_response_scaling_equivariance(self, seed, scale):
        # Continuous (tie-free) data: with tied split candidates the
        # winning split may legitimately differ after scaling.
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(30, 3))
        y = rng.normal(size=30)
        t1 = RegressionTree(min_samples_leaf=2, rng=0).fit(X, y)
        t2 = RegressionTree(min_samples_leaf=2, rng=0).fit(X, y * scale)
        assert np.allclose(t2.predict(X), t1.predict(X) * scale, rtol=1e-6, atol=1e-6)


class TestForestProperties:
    @settings(max_examples=10, deadline=None)
    @given(regression_problem())
    def test_forest_prediction_in_range(self, prob):
        X, y = prob
        rf = RandomForestRegressor(n_trees=10, importance=False, rng=0).fit(X, y)
        pred = rf.predict(X)
        assert pred.min() >= y.min() - 1e-9
        assert pred.max() <= y.max() + 1e-9

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 10_000))
    def test_importance_invariant_to_feature_order(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(60, 3))
        y = 3 * X[:, 0] + 0.05 * rng.normal(size=60)
        rf_a = RandomForestRegressor(n_trees=40, rng=1).fit(X, y)
        # reverse the columns; the informative feature must still win
        rf_b = RandomForestRegressor(n_trees=40, rng=1).fit(X[:, ::-1], y)
        assert np.argmax(rf_a.importance_) == 0
        assert np.argmax(rf_b.importance_) == 2


class TestPCAProperties:
    @settings(max_examples=20, deadline=None)
    @given(data_matrix(min_rows=5, max_cols=4))
    def test_axes_orthonormal(self, X):
        if np.allclose(X.std(axis=0), 0.0):
            return  # fully constant matrix: nothing to decompose
        pca = PCA().fit(X)
        G = pca.components_ @ pca.components_.T
        assert np.allclose(G, np.eye(pca.n_components_), atol=1e-8)

    @settings(max_examples=20, deadline=None)
    @given(data_matrix(min_rows=5, max_cols=4))
    def test_variance_ratios_valid(self, X):
        pca = PCA().fit(X)
        r = pca.explained_variance_ratio_
        assert np.all(r >= -1e-12)
        assert r.sum() <= 1.0 + 1e-9

    @settings(max_examples=15, deadline=None)
    @given(arrays(np.float64, (6, 3), elements=st.floats(-5, 5)))
    def test_varimax_orthogonal_and_norm_preserving(self, L):
        rotated, R = varimax(L)
        assert np.allclose(R @ R.T, np.eye(3), atol=1e-6)
        assert np.allclose(
            np.linalg.norm(rotated, "fro"), np.linalg.norm(L, "fro"), atol=1e-6
        )


class TestPreprocessingProperties:
    @settings(max_examples=25, deadline=None)
    @given(data_matrix(min_rows=3))
    def test_scaler_roundtrip(self, X):
        scaler = StandardScaler().fit(X)
        assert np.allclose(scaler.inverse_transform(scaler.transform(X)), X,
                           rtol=1e-9, atol=1e-6)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(5, 200), st.floats(0.05, 0.5), st.integers(0, 1000))
    def test_split_partitions_exactly(self, n, frac, seed):
        y = np.arange(float(n))
        tr, te = train_test_split(y, test_fraction=frac, rng=seed)
        assert len(tr) + len(te) == n
        assert sorted(np.concatenate([tr, te]).tolist()) == y.tolist()


class TestMarsProperties:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 5000))
    def test_fit_never_worse_than_mean_model(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.uniform(-2, 2, size=40)
        y = rng.normal(size=40)
        m = Mars().fit(x[:, None], y)
        assert m.rss_ <= np.sum((y - y.mean()) ** 2) + 1e-9

    @settings(max_examples=10, deadline=None)
    @given(st.floats(-10, 10), st.floats(0.1, 5))
    def test_affine_truth_recovered(self, intercept, slope):
        x = np.linspace(-1, 1, 50)
        y = intercept + slope * x
        m = Mars().fit(x[:, None], y)
        assert m.r_squared_ > 0.999
