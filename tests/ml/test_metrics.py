"""Unit tests for repro.ml.metrics."""

import numpy as np
import pytest

from repro.ml.metrics import (
    explained_variance,
    mae,
    median_absolute_error,
    median_absolute_percentage_error,
    mse,
    r2_score,
    residual_deviance,
    rmse,
    spearman_rank_correlation,
)


class TestMSE:
    def test_perfect_prediction_is_zero(self):
        y = np.array([1.0, 2.0, 3.0])
        assert mse(y, y) == 0.0

    def test_known_value(self):
        assert mse([0.0, 0.0], [1.0, 3.0]) == pytest.approx(5.0)

    def test_rmse_is_sqrt_of_mse(self):
        y, p = np.array([0.0, 0.0]), np.array([1.0, 3.0])
        assert rmse(y, p) == pytest.approx(np.sqrt(mse(y, p)))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="shape mismatch"):
            mse([1.0, 2.0], [1.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            mse([], [])

    def test_accepts_2d_column_vector(self):
        assert mse(np.array([[1.0], [2.0]]), np.array([1.0, 2.0])) == 0.0


class TestMAE:
    def test_known_value(self):
        assert mae([0.0, 0.0], [1.0, -3.0]) == pytest.approx(2.0)

    def test_median_absolute_error(self):
        assert median_absolute_error([0, 0, 0], [1, 2, 9]) == pytest.approx(2.0)


class TestR2:
    def test_perfect_fit(self):
        y = np.array([1.0, 2.0, 3.0, 4.0])
        assert r2_score(y, y) == pytest.approx(1.0)

    def test_mean_prediction_gives_zero(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, np.full(3, y.mean())) == pytest.approx(0.0)

    def test_worse_than_mean_is_negative(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, np.array([10.0, -5.0, 20.0])) < 0.0

    def test_constant_target_exact(self):
        assert r2_score([2.0, 2.0], [2.0, 2.0]) == 1.0

    def test_constant_target_inexact(self):
        assert r2_score([2.0, 2.0], [2.0, 3.0]) == 0.0


class TestExplainedVariance:
    def test_matches_r_randomforest_convention(self):
        y = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        pred = y + 0.1
        expected = 1.0 - mse(y, pred) / np.var(y)
        assert explained_variance(y, pred) == pytest.approx(expected)

    def test_perfect(self):
        y = np.array([1.0, 5.0])
        assert explained_variance(y, y) == 1.0


class TestPercentageError:
    def test_median_of_relative_errors(self):
        y = np.array([10.0, 100.0, 1000.0])
        p = np.array([11.0, 90.0, 1000.0])
        # relative errors: 10%, 10%, 0% -> median 10%
        assert median_absolute_percentage_error(y, p) == pytest.approx(10.0)

    def test_zero_entries_excluded(self):
        y = np.array([0.0, 10.0])
        p = np.array([5.0, 11.0])
        assert median_absolute_percentage_error(y, p) == pytest.approx(10.0)

    def test_all_zero_raises(self):
        with pytest.raises(ValueError, match="zero"):
            median_absolute_percentage_error([0.0], [1.0])


class TestResidualDeviance:
    def test_is_rss(self):
        y = np.array([1.0, 2.0])
        p = np.array([0.0, 0.0])
        assert residual_deviance(y, p) == pytest.approx(5.0)


class TestSpearmanRankCorrelation:
    def test_perfect_monotone_agreement(self):
        a = np.array([0.1, 0.5, 0.9, 2.0])
        b = np.array([1.0, 2.0, 30.0, 31.0])  # same order, different scale
        assert spearman_rank_correlation(a, b) == pytest.approx(1.0)

    def test_perfect_reversal(self):
        a = np.array([1.0, 2.0, 3.0])
        assert spearman_rank_correlation(a, a[::-1]) == pytest.approx(-1.0)

    def test_known_partial_agreement(self):
        a = np.array([1.0, 2.0, 3.0, 4.0])
        b = np.array([1.0, 3.0, 2.0, 4.0])  # one adjacent swap
        # rho = 1 - 6*sum(d^2)/(n(n^2-1)) = 1 - 12/60
        assert spearman_rank_correlation(a, b) == pytest.approx(0.8)

    def test_ties_get_average_ranks(self):
        a = np.array([1.0, 1.0, 2.0])
        b = np.array([1.0, 2.0, 3.0])
        # ranks of a: [1.5, 1.5, 3]; symmetric in which tied entry leads
        rho = spearman_rank_correlation(a, b)
        assert rho == pytest.approx(
            spearman_rank_correlation(np.array([1.0, 1.0, 2.0]),
                                      np.array([2.0, 1.0, 3.0]))
        )
        assert 0.0 < rho < 1.0

    def test_constant_input_returns_zero(self):
        a = np.array([5.0, 5.0, 5.0])
        b = np.array([1.0, 2.0, 3.0])
        assert spearman_rank_correlation(a, b) == 0.0
        assert spearman_rank_correlation(b, a) == 0.0

    def test_invariant_under_monotone_transform(self):
        rng = np.random.default_rng(0)
        a = rng.random(20)
        b = rng.random(20)
        rho = spearman_rank_correlation(a, b)
        assert spearman_rank_correlation(np.exp(a), b) == pytest.approx(rho)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="shape mismatch"):
            spearman_rank_correlation([1.0, 2.0], [1.0])
