"""Unit tests for PCA, varimax rotation and factor loadings."""

import numpy as np
import pytest

from repro.ml.pca import PCA, FactorLoadings, varimax


def correlated_data(n=300, seed=0):
    """Two latent factors driving 6 observed variables."""
    rng = np.random.default_rng(seed)
    f1 = rng.normal(size=n)
    f2 = rng.normal(size=n)
    X = np.column_stack([
        f1 + 0.05 * rng.normal(size=n),
        f1 * 2 + 0.05 * rng.normal(size=n),
        -f1 + 0.05 * rng.normal(size=n),
        f2 + 0.05 * rng.normal(size=n),
        f2 * 3 + 0.05 * rng.normal(size=n),
        0.5 * f2 + 0.05 * rng.normal(size=n),
    ])
    return X


class TestPCABasics:
    def test_explained_variance_ratios_sum_to_one(self):
        X = correlated_data()
        pca = PCA().fit(X)
        assert pca.explained_variance_ratio_.sum() == pytest.approx(1.0)

    def test_ratios_decreasing(self):
        X = correlated_data()
        r = PCA().fit(X).explained_variance_ratio_
        assert np.all(np.diff(r) <= 1e-12)

    def test_two_latents_explain_almost_everything(self):
        X = correlated_data()
        pca = PCA(n_components=2).fit(X)
        assert pca.explained_variance_ratio_.sum() > 0.98

    def test_fractional_n_components(self):
        X = correlated_data()
        pca = PCA(n_components=0.95).fit(X)
        assert pca.n_components_ == 2

    def test_axes_orthonormal(self):
        X = correlated_data()
        pca = PCA().fit(X)
        G = pca.components_ @ pca.components_.T
        assert np.allclose(G, np.eye(pca.n_components_), atol=1e-10)

    def test_scores_uncorrelated(self):
        X = correlated_data()
        scores = PCA(n_components=3).fit_transform(X)
        C = np.corrcoef(scores.T)
        off = C - np.diag(np.diag(C))
        assert np.max(np.abs(off)) < 1e-8

    def test_inverse_transform_reconstructs(self):
        X = correlated_data()
        pca = PCA(n_components=2).fit(X)
        Xr = pca.inverse_transform(pca.transform(X))
        # 2 latents -> near-perfect rank-2 reconstruction
        rel = np.linalg.norm(X - Xr) / np.linalg.norm(X)
        assert rel < 0.1

    def test_recovered_eigvals_on_known_covariance(self):
        rng = np.random.default_rng(3)
        # diagonal covariance: variances 9, 4, 1 (unstandardized PCA)
        X = rng.normal(size=(5000, 3)) * np.array([3.0, 2.0, 1.0])
        pca = PCA(standardize=False).fit(X)
        assert np.allclose(pca.explained_variance_, [9.0, 4.0, 1.0], rtol=0.15)


class TestValidation:
    def test_rejects_single_row(self):
        with pytest.raises(ValueError):
            PCA().fit(np.zeros((1, 3)))

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            PCA(n_components=1.5).fit(correlated_data())

    def test_rejects_wrong_names_length(self):
        with pytest.raises(ValueError):
            PCA().fit(correlated_data(), names=["a"])


class TestVarimax:
    def test_rotation_is_orthogonal(self):
        X = correlated_data()
        pca = PCA(n_components=2, rotate=True).fit(X)
        R = pca.rotation_
        assert np.allclose(R @ R.T, np.eye(2), atol=1e-8)

    def test_rotation_preserves_communalities(self):
        X = correlated_data()
        raw = PCA(n_components=2, rotate=False).fit(X).loadings_values_
        rot = PCA(n_components=2, rotate=True).fit(X).loadings_values_
        assert np.allclose((raw**2).sum(axis=1), (rot**2).sum(axis=1), atol=1e-8)

    def test_rotation_increases_loading_variance(self):
        X = correlated_data(seed=5)
        raw, R = varimax(PCA(n_components=2).fit(X).loadings_values_)
        # varimax criterion: column variance of squared loadings
        def crit(L):
            sq = L**2
            return np.sum(np.var(sq, axis=0))
        original = PCA(n_components=2).fit(X).loadings_values_
        assert crit(raw) >= crit(original) - 1e-9

    def test_single_component_untouched(self):
        L = np.arange(5.0)[:, None]
        rotated, R = varimax(L)
        assert np.allclose(rotated, L)
        assert np.allclose(R, np.eye(1))

    def test_simple_structure_recovered(self):
        # After varimax each variable should load mainly on one factor.
        X = correlated_data()
        pca = PCA(n_components=2, rotate=True).fit(
            X, names=[f"v{i}" for i in range(6)]
        )
        L = np.abs(pca.loadings_values_)
        dominant = L.max(axis=1)
        secondary = L.min(axis=1)
        assert np.all(dominant > 3 * secondary)


class TestFactorLoadings:
    def test_loading_lookup(self):
        fl = FactorLoadings(
            names=["a", "b"], components=["PC1", "PC2"],
            values=np.array([[0.9, 0.1], [-0.2, 0.8]]),
        )
        assert fl.loading("a", "PC1") == pytest.approx(0.9)
        assert fl.sign("b", "PC1") == -1

    def test_strong_filter_sorted(self):
        fl = FactorLoadings(
            names=["a", "b", "c"], components=["PC1"],
            values=np.array([[0.4], [-0.9], [0.6]]),
        )
        strong = fl.strong("PC1", threshold=0.5)
        assert strong == [("b", pytest.approx(-0.9)), ("c", pytest.approx(0.6))]

    def test_grouping_matches_latents(self):
        X = correlated_data()
        names = [f"v{i}" for i in range(6)]
        pca = PCA(n_components=2, rotate=True).fit(X, names=names)
        fl = pca.loadings
        group1 = {n for n, _ in fl.strong("PC1", 0.5)}
        group2 = {n for n, _ in fl.strong("PC2", 0.5)}
        assert {frozenset(group1), frozenset(group2)} == {
            frozenset({"v0", "v1", "v2"}),
            frozenset({"v3", "v4", "v5"}),
        }
