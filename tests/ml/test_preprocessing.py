"""Unit tests for repro.ml.preprocessing."""

import numpy as np
import pytest

from repro.ml.preprocessing import (
    StandardScaler,
    drop_constant_columns,
    polynomial_features,
    train_test_split,
)


class TestStandardScaler:
    def test_zero_mean_unit_std(self):
        rng = np.random.default_rng(0)
        X = rng.normal(3.0, 5.0, size=(200, 4))
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-12)
        assert np.allclose(Z.std(axis=0), 1.0, atol=1e-12)

    def test_constant_column_maps_to_zero(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z[:, 0], 0.0)
        assert np.all(np.isfinite(Z))

    def test_inverse_roundtrip(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(50, 3)) * [1.0, 10.0, 100.0] + [5, -2, 0]
        scaler = StandardScaler().fit(X)
        assert np.allclose(scaler.inverse_transform(scaler.transform(X)), X)

    def test_without_std(self):
        X = np.array([[1.0, 2.0], [3.0, 6.0]])
        Z = StandardScaler(with_std=False).fit_transform(X)
        assert np.allclose(Z.mean(axis=0), 0.0)
        assert not np.allclose(Z.std(axis=0), 1.0)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            StandardScaler().fit(np.arange(5.0))


class TestTrainTestSplit:
    def test_default_80_20(self):
        X = np.arange(100.0)[:, None]
        y = np.arange(100.0)
        X_tr, X_te, y_tr, y_te = train_test_split(X, y, rng=0)
        assert len(X_te) == 20 and len(X_tr) == 80
        assert len(y_te) == 20 and len(y_tr) == 80

    def test_partition_is_exact(self):
        y = np.arange(50.0)
        y_tr, y_te = train_test_split(y, rng=0)
        assert sorted(np.concatenate([y_tr, y_te]).tolist()) == y.tolist()

    def test_shared_permutation_across_arrays(self):
        X = np.arange(40.0)[:, None]
        y = np.arange(40.0)
        X_tr, X_te, y_tr, y_te = train_test_split(X, y, rng=3)
        assert np.allclose(X_tr[:, 0], y_tr)
        assert np.allclose(X_te[:, 0], y_te)

    def test_seed_reproducibility(self):
        y = np.arange(30.0)
        a = train_test_split(y, rng=7)[1]
        b = train_test_split(y, rng=7)[1]
        assert np.array_equal(a, b)

    def test_at_least_one_test_sample(self):
        y = np.arange(4.0)
        _, y_te = train_test_split(y, test_fraction=0.01, rng=0)
        assert len(y_te) == 1

    def test_bad_fraction_raises(self):
        with pytest.raises(ValueError):
            train_test_split(np.arange(10.0), test_fraction=1.5)

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError, match="same length"):
            train_test_split(np.arange(10.0), np.arange(5.0))

    def test_no_training_data_raises(self):
        with pytest.raises(ValueError, match="no training data"):
            train_test_split(np.arange(2.0), test_fraction=0.9)


class TestPolynomialFeatures:
    def test_degree_two_columns(self):
        x = np.array([1.0, 2.0, 3.0])
        B = polynomial_features(x, 2)
        assert B.shape == (3, 3)
        assert np.allclose(B[:, 0], 1.0)
        assert np.allclose(B[:, 1], x)
        assert np.allclose(B[:, 2], x**2)

    def test_no_bias(self):
        B = polynomial_features(np.array([2.0]), 2, include_bias=False)
        assert np.allclose(B, [[2.0, 4.0]])

    def test_degree_zero_raises(self):
        with pytest.raises(ValueError):
            polynomial_features(np.arange(3.0), 0)


class TestDropConstantColumns:
    def test_drops_only_constants(self):
        X = np.column_stack([np.ones(5), np.arange(5.0), np.full(5, 7.0)])
        Xf, kept, names = drop_constant_columns(X, ["a", "b", "c"])
        assert kept == [1]
        assert names == ["b"]
        assert Xf.shape == (5, 1)

    def test_no_names(self):
        X = np.column_stack([np.ones(5), np.arange(5.0)])
        _, kept, names = drop_constant_columns(X)
        assert kept == [1] and names is None

    def test_all_varying_kept(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(10, 3))
        Xf, kept, _ = drop_constant_columns(X)
        assert kept == [0, 1, 2]
        assert np.array_equal(Xf, X)
