"""Determinism and equivalence pins for the fast forest.

Two properties keep the vectorized rewrite honest:

* a fitted :class:`RegressionTree` is **bit-for-bit identical** to the
  retained per-feature reference implementation under the same RNG
  state (the block split scan changes the arithmetic layout, not one
  number);
* a forest fitted with ``n_jobs > 1`` is **bit-for-bit identical** to
  the serial fit for a fixed seed (per-tree spawned streams, ordered
  aggregation).
"""

import numpy as np
import pytest

from repro.ml._reference import (
    ReferenceRandomForestRegressor,
    ReferenceRegressionTree,
)
from repro.ml.forest import RandomForestRegressor
from repro.ml.tree import RegressionTree
from repro.parallel import chunk_bounds, resolve_n_jobs, spawn_streams


def _dataset(rng, n, p):
    """Random regression data with ties, rounded columns and constants."""
    X = rng.normal(size=(n, p))
    for j in range(p):
        r = rng.random()
        if r < 0.15:
            X[:, j] = rng.normal()  # constant feature
        elif r < 0.5:
            X[:, j] = np.round(X[:, j], int(rng.integers(0, 2)))  # ties
    y = X[:, 0] + rng.normal(size=n)
    return X, y


class TestTreeMatchesReference:
    def test_bit_identical_over_random_trials(self):
        rng = np.random.default_rng(0)
        for _ in range(12):
            n = int(rng.integers(12, 200))
            p = int(rng.integers(2, 30))
            X, y = _dataset(rng, n, p)
            mtry = int(rng.integers(1, p + 1))
            msl = int(rng.integers(1, 8))
            seed = int(rng.integers(0, 2**31))
            fast = RegressionTree(
                min_samples_leaf=msl, max_features=mtry,
                rng=np.random.default_rng(seed),
            ).fit(X, y)
            ref = ReferenceRegressionTree(
                min_samples_leaf=msl, max_features=mtry,
                rng=np.random.default_rng(seed),
            ).fit(X, y)
            np.testing.assert_array_equal(fast.feature_, ref.feature_)
            np.testing.assert_array_equal(fast.left_, ref.left_)
            np.testing.assert_array_equal(fast.right_, ref.right_)
            np.testing.assert_array_equal(
                fast.threshold_, ref.threshold_
            )
            np.testing.assert_array_equal(fast.value_, ref.value_)
            np.testing.assert_array_equal(
                fast.impurity_decrease_, ref.impurity_decrease_
            )
            np.testing.assert_array_equal(fast.predict(X), ref.predict(X))

    def test_apply_matches_reference_routing(self):
        rng = np.random.default_rng(1)
        X, y = _dataset(rng, 150, 8)
        fast = RegressionTree(rng=np.random.default_rng(3)).fit(X, y)
        ref = ReferenceRegressionTree(rng=np.random.default_rng(3)).fit(X, y)
        X_new = rng.normal(size=(400, 8))
        np.testing.assert_array_equal(fast.apply(X_new), ref.apply(X_new))


class TestForestParallelDeterminism:
    @pytest.mark.parametrize("n_jobs", [2, 3, -1])
    def test_parallel_bit_identical_to_serial(self, n_jobs):
        rng = np.random.default_rng(2)
        X, y = _dataset(rng, 90, 10)
        serial = RandomForestRegressor(
            n_trees=10, importance=True, n_jobs=1,
            rng=np.random.default_rng(7),
        ).fit(X, y)
        parallel = RandomForestRegressor(
            n_trees=10, importance=True, n_jobs=n_jobs,
            rng=np.random.default_rng(7),
        ).fit(X, y)
        np.testing.assert_array_equal(
            serial.oob_prediction_, parallel.oob_prediction_
        )
        np.testing.assert_array_equal(serial.importance_, parallel.importance_)
        np.testing.assert_array_equal(
            serial.importance_raw_, parallel.importance_raw_
        )
        np.testing.assert_array_equal(
            serial.impurity_importance_, parallel.impurity_importance_
        )
        assert serial.oob_mse_ == parallel.oob_mse_
        X_new = rng.normal(size=(50, 10))
        np.testing.assert_array_equal(
            serial.predict(X_new), parallel.predict(X_new)
        )

    def test_more_jobs_than_trees(self):
        rng = np.random.default_rng(3)
        X, y = _dataset(rng, 40, 4)
        a = RandomForestRegressor(
            n_trees=2, n_jobs=8, rng=np.random.default_rng(1)
        ).fit(X, y)
        b = RandomForestRegressor(
            n_trees=2, n_jobs=1, rng=np.random.default_rng(1)
        ).fit(X, y)
        np.testing.assert_array_equal(a.predict(X), b.predict(X))

    def test_n_jobs_zero_rejected(self):
        with pytest.raises(ValueError):
            RandomForestRegressor(n_jobs=0)


class TestForestQualityVsReference:
    def test_comparable_oob_quality(self):
        # Stream structure differs (spawned vs shared), so the pin is
        # statistical: the fast forest models the data as well as the
        # reference on the same split.
        rng = np.random.default_rng(4)
        X = rng.normal(size=(120, 8))
        y = 2.0 * X[:, 0] + np.sin(X[:, 1]) + rng.normal(scale=0.2, size=120)
        fast = RandomForestRegressor(
            n_trees=60, rng=np.random.default_rng(5)
        ).fit(X, y)
        ref = ReferenceRandomForestRegressor(
            n_trees=60, rng=np.random.default_rng(5)
        ).fit(X, y)
        assert fast.oob_explained_variance_ == pytest.approx(
            ref.oob_explained_variance_, abs=0.05
        )
        # both rank the linear driver first
        assert int(np.argmax(fast.importance_)) == 0
        assert int(np.argmax(ref.importance_)) == 0


class TestParallelHelpers:
    def test_spawn_streams_deterministic(self):
        a = spawn_streams(np.random.default_rng(11), 5)
        b = spawn_streams(np.random.default_rng(11), 5)
        for x, y in zip(a, b):
            assert x.integers(0, 1 << 30) == y.integers(0, 1 << 30)

    def test_spawn_streams_independent_of_parent_consumption(self):
        # Children are defined by the seed sequence's spawn counter, not
        # by how many numbers the parent produced — the property that
        # makes worker processes replay the serial streams exactly.
        r1 = np.random.default_rng(12)
        r2 = np.random.default_rng(12)
        r2.normal(size=10)
        a = spawn_streams(r1, 2)[0].integers(0, 1 << 30)
        b = spawn_streams(r2, 2)[0].integers(0, 1 << 30)
        assert a == b

    def test_resolve_n_jobs(self):
        assert resolve_n_jobs(3) == 3
        assert resolve_n_jobs(-1) >= 1
        with pytest.raises(ValueError):
            resolve_n_jobs(0)

    def test_chunk_bounds_cover_everything(self):
        bounds = chunk_bounds(10, 3)
        assert bounds[0] == 0 and bounds[-1] == 10
        assert all(b2 >= b1 for b1, b2 in zip(bounds[:-1], bounds[1:]))
        assert len(chunk_bounds(2, 8)) == 3  # jobs clamped to items
