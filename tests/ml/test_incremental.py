"""Incremental fits: refit determinism, state round-trip, pinned fallback.

The acceptance contract: a fit-then-refit sequence is bit-for-bit
reproducible at any ``n_jobs``; restoring serialized forest state and
refitting equals the in-process sequence exactly; and any mismatch
(config, columns, edited data) falls back to a full deterministic fit —
never a silently different incremental one.
"""

import json

import numpy as np
import pytest

from repro.gpusim import GTX580
from repro.kernels import VectorAddKernel
from repro.ml import (
    RandomForestRegressor,
    fit_from_repo,
    forest_state,
    restore_forest,
)
from repro.profiling.campaign import Campaign
from repro.profiling.repository import CampaignKey, ProfileRepository

KEY = CampaignKey("vectorAdd", "GTX580")


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(7)
    X = rng.normal(size=(80, 5))
    y = X[:, 0] * 2.0 + np.sin(X[:, 1]) + rng.normal(scale=0.2, size=80)
    return X, y


def _forests_equal(a, b, probe):
    assert len(a.trees_) == len(b.trees_)
    assert np.array_equal(a.predict(probe), b.predict(probe))
    assert np.array_equal(a.oob_prediction_, b.oob_prediction_,
                          equal_nan=True)
    assert a.oob_mse_ == b.oob_mse_
    assert np.array_equal(a.importance_, b.importance_)
    assert np.array_equal(a.impurity_importance_, b.impurity_importance_)


class TestRefit:
    def test_refit_grows_scaled_tree_count(self, data):
        X, y = data
        f = RandomForestRegressor(n_trees=10, rng=3).fit(X[:60], y[:60])
        f.refit(X, y)
        # 20 new rows on 80 total -> round(10 * 20/80) = 2 or 3 trees
        assert f._generations == [
            {"n_trees": 10, "n_rows": 60},
            {"n_trees": f.n_trees - 10, "n_rows": 80},
        ]
        assert f.n_trees == len(f.trees_) > 10

    def test_bit_identical_at_any_n_jobs(self, data):
        X, y = data
        probe = X[:16]
        fitted = []
        for jobs in (1, 2):
            f = RandomForestRegressor(n_trees=9, rng=11, n_jobs=jobs)
            f.fit(X[:60], y[:60])
            f.refit(X, y, n_new_trees=4)
            fitted.append(f)
        _forests_equal(fitted[0], fitted[1], probe)

    def test_no_new_rows_is_noop_by_default(self, data):
        X, y = data
        f = RandomForestRegressor(n_trees=5, rng=0).fit(X, y)
        assert f.refit(X, y) is f
        assert len(f.trees_) == 5

    def test_explicit_trees_on_same_rows(self, data):
        X, y = data
        f = RandomForestRegressor(n_trees=5, rng=0).fit(X, y)
        f.refit(X, y, n_new_trees=3)
        assert len(f.trees_) == 8

    def test_append_only_enforced(self, data):
        X, y = data
        f = RandomForestRegressor(n_trees=4, rng=0).fit(X, y)
        with pytest.raises(ValueError, match="append-only"):
            f.refit(X[:40], y[:40])
        with pytest.raises(ValueError, match="width"):
            f.refit(X[:, :3], y)

    def test_refit_requires_fit(self, data):
        X, y = data
        with pytest.raises(RuntimeError, match="fit"):
            RandomForestRegressor(n_trees=4, rng=0).refit(X, y)


class TestStateRoundtrip:
    def test_json_roundtrip_bit_identical(self, data):
        X, y = data
        probe = X[:16]
        f = RandomForestRegressor(n_trees=7, rng=5).fit(X, y)
        state = json.loads(json.dumps(forest_state(f), sort_keys=True))
        g = restore_forest(state, X, y)
        _forests_equal(f, g, probe)

    def test_restored_refit_equals_inprocess_refit(self, data):
        X, y = data
        probe = X[:16]
        f = RandomForestRegressor(n_trees=7, rng=5).fit(X[:60], y[:60])
        state = json.loads(json.dumps(forest_state(f), sort_keys=True))
        f.refit(X, y, n_new_trees=3)
        g = restore_forest(state, X[:60], y[:60])
        g.refit(X, y, n_new_trees=3)
        _forests_equal(f, g, probe)

    def test_requires_integer_seed(self, data):
        X, y = data
        f = RandomForestRegressor(
            n_trees=3, rng=np.random.default_rng(0)
        ).fit(X, y)
        with pytest.raises(ValueError, match="integer"):
            forest_state(f)

    def test_restore_refuses_mismatched_data(self, data):
        X, y = data
        f = RandomForestRegressor(n_trees=3, rng=5).fit(X, y)
        state = forest_state(f)
        with pytest.raises(ValueError, match="fingerprint"):
            restore_forest(state, X, y + 1.0)

    def test_restore_refuses_unknown_schema(self, data):
        X, y = data
        f = RandomForestRegressor(n_trees=3, rng=5).fit(X, y)
        state = forest_state(f)
        state["schema"] = "repro-forest-state/999"
        with pytest.raises(ValueError, match="schema"):
            restore_forest(state, X, y)


class TestFitFromRepo:
    @pytest.fixture(scope="class")
    def seeded_repo(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("repo")
        repo = ProfileRepository(root)
        first = Campaign(VectorAddKernel(), GTX580, rng=0).run(
            problems=[1 << 14, 1 << 15], replicates=2
        )
        repo.save(first, seed=0)
        return root

    def test_full_then_unchanged_then_resumed(self, seeded_repo, tmp_path):
        repo = ProfileRepository(seeded_repo)
        state = tmp_path / "state.json"
        cfg = dict(n_trees=6, seed=9, importance=True)

        _, info = fit_from_repo(repo, KEY, state_path=state, **cfg)
        assert info["path"] == "full"
        assert state.is_file()

        _, info = fit_from_repo(repo, KEY, state_path=state, **cfg)
        assert info["path"] == "unchanged"
        assert info["n_new_trees"] == 0

        more = Campaign(VectorAddKernel(), GTX580, rng=4).run(
            problems=[1 << 16], replicates=2
        )
        repo.append(more)
        resumed, info = fit_from_repo(repo, KEY, state_path=state, **cfg)
        assert info["path"] == "resumed"
        assert info["n_new_rows"] == len(more)
        assert info["n_new_trees"] >= 1

        # Acceptance: the resumed fit equals the in-process replay.
        X, y, names = repo.matrix(KEY)
        n0 = info["n_rows"] - info["n_new_rows"]
        replay = RandomForestRegressor(n_trees=6, rng=9).fit(
            X[:n0], y[:n0], feature_names=list(names)
        )
        replay.refit(X, y)
        _forests_equal(resumed, replay, X[:8])

    def test_config_mismatch_falls_back_to_full(self, seeded_repo, tmp_path):
        repo = ProfileRepository(seeded_repo)
        state = tmp_path / "state.json"
        fit_from_repo(repo, KEY, state_path=state, n_trees=4, seed=1)
        _, info = fit_from_repo(
            repo, KEY, state_path=state, n_trees=4, seed=1, max_depth=3
        )
        assert info["path"] == "full"

    def test_corrupt_state_falls_back_to_full(self, seeded_repo, tmp_path):
        repo = ProfileRepository(seeded_repo)
        state = tmp_path / "state.json"
        fit_from_repo(repo, KEY, state_path=state, n_trees=4, seed=1)
        state.write_text("{not json")
        forest, info = fit_from_repo(
            repo, KEY, state_path=state, n_trees=4, seed=1
        )
        assert info["path"] == "full"
        assert len(forest.trees_) == 4

    def test_resumed_bit_identical_at_any_n_jobs(self, seeded_repo, tmp_path):
        repo = ProfileRepository(seeded_repo)
        cfg = dict(n_trees=5, seed=2)
        states, forests = [], []
        for jobs in (1, 2):
            state = tmp_path / f"state{jobs}.json"
            fit_from_repo(repo, KEY, state_path=state, n_jobs=jobs, **cfg)
            states.append(state)
        more = Campaign(VectorAddKernel(), GTX580, rng=6).run(
            problems=[1 << 17], replicates=1
        )
        ProfileRepository(seeded_repo).append(more, tag=None)
        for jobs, state in zip((1, 2), states):
            f, info = fit_from_repo(
                ProfileRepository(seeded_repo), KEY,
                state_path=state, n_jobs=jobs, **cfg,
            )
            assert info["path"] == "resumed"
            forests.append(f)
        X, _, _ = ProfileRepository(seeded_repo).matrix(KEY)
        _forests_equal(forests[0], forests[1], X[:8])
