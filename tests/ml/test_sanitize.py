"""Tests for sanitize_matrix (graceful degradation of fit inputs)."""

import numpy as np
import pytest

from repro.ml import MatrixSanitation, sanitize_matrix


def _clean():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(10, 3))
    y = rng.normal(size=10)
    return X, y, ["a", "b", "c"]


class TestCleanFastPath:
    def test_finite_input_returned_unchanged(self):
        X, y, names = _clean()
        X2, y2, names2, report = sanitize_matrix(X, y, names)
        assert X2 is X and y2 is y  # same objects: bit-identity preserved
        assert names2 == names
        assert not report.degraded
        assert report.summary() == "clean"


class TestDegradedInputs:
    def test_nonfinite_response_rows_dropped(self):
        X, y, names = _clean()
        y = y.copy()
        y[3] = np.nan
        y[7] = np.inf
        X2, y2, _, report = sanitize_matrix(X, y, names)
        assert len(y2) == 8 and X2.shape[0] == 8
        assert report.dropped_rows == 2
        assert report.degraded

    def test_all_nan_column_dropped(self):
        X, y, names = _clean()
        X = X.copy()
        X[:, 1] = np.nan
        X2, _, names2, report = sanitize_matrix(X, y, names)
        assert names2 == ["a", "c"]
        assert X2.shape[1] == 2
        assert report.dropped_columns == ["b"]

    def test_sparse_nans_median_imputed(self):
        X, y, names = _clean()
        X = X.copy()
        X[2, 0] = np.nan
        X[5, 0] = np.nan
        X2, _, _, report = sanitize_matrix(X, y, names)
        finite = X[np.isfinite(X[:, 0]), 0]
        assert X2[2, 0] == pytest.approx(np.median(finite))
        assert report.imputed_cells == {"a": 2}
        assert np.isfinite(X2).all()

    def test_combined_damage(self):
        X, y, names = _clean()
        X, y = X.copy(), y.copy()
        y[0] = np.nan  # row drop
        X[:, 2] = np.nan  # column drop
        X[4, 0] = np.nan  # imputation
        X2, y2, names2, report = sanitize_matrix(X, y, names)
        assert X2.shape == (9, 2)
        assert names2 == ["a", "b"]
        assert np.isfinite(X2).all() and np.isfinite(y2).all()
        parts = report.summary()
        assert "dropped 1 row" in parts
        assert "'c'" in parts
        assert "imputed" in parts


class TestTooDegraded:
    def test_no_usable_rows(self):
        X, y, names = _clean()
        with pytest.raises(ValueError, match="no usable rows"):
            sanitize_matrix(X, np.full_like(y, np.nan), names)

    def test_no_usable_columns(self):
        X, y, names = _clean()
        with pytest.raises(ValueError, match="no usable predictor columns"):
            sanitize_matrix(np.full_like(X, np.nan), y, names)


class TestReport:
    def test_to_dict_shape(self):
        report = MatrixSanitation(
            dropped_rows=1, dropped_columns=["b"], imputed_cells={"a": 2}
        )
        d = report.to_dict()
        assert d["dropped_rows"] == 1
        assert d["dropped_columns"] == ["b"]
        assert d["imputed_cells"] == {"a": 2}

    def test_degraded_flag(self):
        assert not MatrixSanitation().degraded
        assert MatrixSanitation(dropped_rows=1).degraded
        assert MatrixSanitation(dropped_columns=["x"]).degraded
        assert MatrixSanitation(imputed_cells={"x": 1}).degraded
