"""Unit tests for MARS."""

import numpy as np
import pytest

from repro.ml.mars import BasisFunction, HingeTerm, Mars


class TestHingeTerm:
    def test_positive_hinge(self):
        t = HingeTerm(var=0, knot=2.0, sign=+1)
        X = np.array([[1.0], [2.0], [5.0]])
        assert np.allclose(t.evaluate(X), [0.0, 0.0, 3.0])

    def test_negative_hinge(self):
        t = HingeTerm(var=0, knot=2.0, sign=-1)
        X = np.array([[1.0], [2.0], [5.0]])
        assert np.allclose(t.evaluate(X), [1.0, 0.0, 0.0])

    def test_describe(self):
        assert HingeTerm(0, 3.0, +1).describe(["x"]) == "h(x - 3)"
        assert HingeTerm(0, 3.0, -1).describe(["x"]) == "h(3 - x)"


class TestBasisFunction:
    def test_intercept_is_ones(self):
        b = BasisFunction()
        assert np.allclose(b.evaluate(np.zeros((4, 2))), 1.0)
        assert b.describe(["x", "y"]) == "(intercept)"

    def test_product_of_hinges(self):
        b = BasisFunction((HingeTerm(0, 0.0, +1), HingeTerm(1, 0.0, +1)))
        X = np.array([[2.0, 3.0], [2.0, -1.0]])
        assert np.allclose(b.evaluate(X), [6.0, 0.0])

    def test_involves(self):
        b = BasisFunction((HingeTerm(1, 0.0, +1),))
        assert b.involves(1) and not b.involves(0)


class TestMarsFitting:
    def test_exact_on_single_hinge_truth(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(-2, 2, size=120)
        y = 3.0 * np.maximum(x - 0.5, 0.0) + 1.0
        m = Mars().fit(x[:, None], y)
        assert m.r_squared_ > 0.999
        pred = m.predict(np.array([[-1.0], [0.5], [1.5]]))
        assert np.allclose(pred, [1.0, 1.0, 4.0], atol=0.05)

    def test_piecewise_linear_v_shape(self):
        x = np.linspace(-3, 3, 100)
        y = np.abs(x)
        m = Mars().fit(x[:, None], y)
        assert m.r_squared_ > 0.99

    def test_additive_two_variables(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(-1, 1, size=(150, 2))
        y = 2 * np.maximum(X[:, 0], 0) + np.maximum(-X[:, 1], 0)
        m = Mars().fit(X, y)
        assert m.r_squared_ > 0.99
        used = {t.var for b in m.basis_ for t in b.terms}
        assert used == {0, 1}

    def test_interactions_need_degree_two(self):
        rng = np.random.default_rng(2)
        X = rng.uniform(0, 1, size=(200, 2))
        y = X[:, 0] * X[:, 1]
        additive = Mars(max_degree=1).fit(X, y)
        interact = Mars(max_degree=2).fit(X, y)
        assert interact.r_squared_ >= additive.r_squared_ - 1e-9
        assert max(b.degree for b in interact.basis_) == 2

    def test_smooth_nonlinear_counter_model(self):
        # the Fig. 6c scenario: counter value vs problem size
        size = np.arange(64, 4096, 64, dtype=float)
        counter = 1e-3 * size**1.5 + 40.0
        m = Mars().fit(size[:, None], counter, names=["size"])
        assert m.r_squared_ > 0.99
        assert "size" in m.summary()

    def test_backward_pass_prunes_noise_terms(self):
        rng = np.random.default_rng(3)
        x = rng.uniform(-1, 1, size=80)
        y = 2.0 * x + rng.normal(0, 0.01, size=80)
        m = Mars(max_terms=21).fit(x[:, None], y)
        # a linear truth needs very few hinge pairs
        assert m.n_terms <= 7

    def test_constant_response(self):
        x = np.linspace(0, 1, 30)
        m = Mars().fit(x[:, None], np.full(30, 5.0))
        assert m.n_terms == 1
        assert np.allclose(m.predict(x[:, None]), 5.0)

    def test_1d_input_accepted(self):
        x = np.linspace(0, 1, 50)
        m = Mars().fit(x, x**2)
        assert m.r_squared_ > 0.98


class TestMarsValidation:
    def test_rejects_tiny_data(self):
        with pytest.raises(ValueError):
            Mars().fit(np.zeros((2, 1)), np.zeros(2))

    def test_rejects_mismatched(self):
        with pytest.raises(ValueError):
            Mars().fit(np.zeros((5, 1)), np.zeros(4))

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            Mars(max_terms=0)
        with pytest.raises(ValueError):
            Mars(max_degree=0)

    def test_predict_checks_width(self):
        m = Mars().fit(np.linspace(0, 1, 30)[:, None], np.arange(30.0))
        with pytest.raises(ValueError):
            m.predict(np.zeros((3, 2)))


class TestGCV:
    def test_gcv_positive(self):
        x = np.linspace(0, 1, 40)
        m = Mars().fit(x[:, None], np.sin(3 * x))
        assert m.gcv_ >= 0.0

    def test_grsq_at_most_one(self):
        x = np.linspace(0, 1, 40)
        m = Mars().fit(x[:, None], np.sin(3 * x))
        assert m.grsq_ <= 1.0 + 1e-12
