"""Additional forest behaviours: depth caps, permutation smoothing,
interaction with the importance-averaging workflow."""

import numpy as np
import pytest

from repro.ml.forest import RandomForestRegressor
from repro.ml.tree import RegressionTree


def friedman_data(n=200, seed=0):
    """The classic Friedman #1 benchmark surface (5 informative of 8)."""
    rng = np.random.default_rng(seed)
    X = rng.uniform(size=(n, 8))
    y = (
        10 * np.sin(np.pi * X[:, 0] * X[:, 1])
        + 20 * (X[:, 2] - 0.5) ** 2
        + 10 * X[:, 3]
        + 5 * X[:, 4]
        + 0.5 * rng.normal(size=n)
    )
    return X, y


class TestDepthControl:
    def test_max_depth_limits_tree_size(self):
        X, y = friedman_data()
        shallow = RandomForestRegressor(n_trees=10, max_depth=2,
                                        importance=False, rng=0).fit(X, y)
        deep = RandomForestRegressor(n_trees=10, importance=False,
                                     rng=0).fit(X, y)
        assert max(t.depth for t in shallow.trees_) <= 2
        assert max(t.depth for t in deep.trees_) > 2

    def test_deeper_fits_training_better(self):
        X, y = friedman_data()
        shallow = RandomForestRegressor(n_trees=30, max_depth=2,
                                        importance=False, rng=0).fit(X, y)
        deep = RandomForestRegressor(n_trees=30, importance=False,
                                     rng=0).fit(X, y)
        mse_shallow = np.mean((shallow.predict(X) - y) ** 2)
        mse_deep = np.mean((deep.predict(X) - y) ** 2)
        assert mse_deep < mse_shallow


class TestFriedmanBenchmark:
    def test_informative_features_found(self):
        X, y = friedman_data(n=300)
        rf = RandomForestRegressor(n_trees=120, rng=0).fit(
            X, y, feature_names=[f"x{i}" for i in range(8)]
        )
        top5 = set(rf.top_features(5))
        # x3 and x0/x1 (the strongest effects) must surface
        assert "x3" in top5
        assert {"x0", "x1"} & top5

    def test_noise_features_rank_last(self):
        X, y = friedman_data(n=300)
        rf = RandomForestRegressor(n_trees=120, rng=0).fit(X, y)
        ranking = np.argsort(rf.importance_)[::-1]
        assert set(ranking[-2:]) <= {5, 6, 7}

    def test_forest_beats_single_tree_oob(self):
        X, y = friedman_data(n=250)
        rf = RandomForestRegressor(n_trees=100, importance=False, rng=0).fit(X, y)
        tree = RegressionTree(rng=0).fit(X[:200], y[:200])
        tree_mse = np.mean((tree.predict(X[200:]) - y[200:]) ** 2)
        assert rf.oob_mse_ < tree_mse


class TestPermutationSmoothing:
    def test_repeated_permutations_keep_signal(self):
        # extra permutation rounds must not change the qualitative
        # outcome: the informative features still lead
        X, y = friedman_data(n=150)
        rf = RandomForestRegressor(n_trees=40, n_permutations=4, rng=0).fit(
            X, y, feature_names=[f"x{i}" for i in range(8)]
        )
        assert "x3" in rf.top_features(4)

    def test_raw_importance_scale_comparable(self):
        # averaged deltas estimate the same quantity regardless of the
        # number of permutation rounds (same order of magnitude)
        X, y = friedman_data(n=150)
        a = RandomForestRegressor(n_trees=40, n_permutations=1, rng=0).fit(X, y)
        b = RandomForestRegressor(n_trees=40, n_permutations=4, rng=0).fit(X, y)
        assert b.importance_raw_.max() == pytest.approx(
            a.importance_raw_.max(), rel=0.5
        )


class TestMtry:
    def test_mtry_one_still_learns(self):
        X, y = friedman_data()
        rf = RandomForestRegressor(n_trees=80, max_features=1,
                                   importance=False, rng=0).fit(X, y)
        assert rf.oob_explained_variance_ > 0.3

    def test_full_mtry_reduces_tree_diversity(self):
        X, y = friedman_data(n=150)
        bagged = RandomForestRegressor(n_trees=30, max_features=8,
                                       importance=False, rng=0).fit(X, y)
        rf = RandomForestRegressor(n_trees=30, max_features=2,
                                   importance=False, rng=0).fit(X, y)
        # prediction spread across trees is larger with feature subsampling
        def tree_spread(model):
            preds = np.array([t.predict(X) for t in model.trees_])
            return float(np.mean(preds.std(axis=0)))
        assert tree_spread(rf) > tree_spread(bagged)
