"""Unit tests for the random forest regressor."""

import numpy as np
import pytest

from repro.ml.forest import RandomForestRegressor


def linear_data(n=150, p=6, seed=0, noise=0.1):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, p))
    y = 4.0 * X[:, 0] - 2.0 * X[:, 2] + noise * rng.normal(size=n)
    return X, y


class TestFit:
    def test_predicts_signal(self):
        X, y = linear_data()
        rf = RandomForestRegressor(n_trees=80, rng=0).fit(X, y)
        assert rf.score(X, y) > 0.85

    def test_oob_explained_variance_positive(self):
        X, y = linear_data()
        rf = RandomForestRegressor(n_trees=80, rng=0).fit(X, y)
        assert 0.3 < rf.oob_explained_variance_ <= 1.0

    def test_oob_mse_worse_than_train_mse(self):
        X, y = linear_data()
        rf = RandomForestRegressor(n_trees=80, rng=0).fit(X, y)
        train_mse = np.mean((rf.predict(X) - y) ** 2)
        assert rf.oob_mse_ > train_mse

    def test_prediction_is_tree_average(self):
        X, y = linear_data(n=50)
        rf = RandomForestRegressor(n_trees=10, rng=1).fit(X, y)
        manual = np.mean([t.predict(X) for t in rf.trees_], axis=0)
        assert np.allclose(rf.predict(X), manual)

    def test_default_mtry_is_p_over_3(self):
        X, y = linear_data(p=9)
        rf = RandomForestRegressor(n_trees=5, rng=0).fit(X, y)
        assert rf.n_features_ == 9  # mtry applied internally; fit succeeds

    def test_feature_names_default(self):
        X, y = linear_data(p=3)
        rf = RandomForestRegressor(n_trees=5, rng=0).fit(X, y)
        assert rf.feature_names_ == ["x0", "x1", "x2"]

    def test_reproducible_with_seed(self):
        X, y = linear_data()
        a = RandomForestRegressor(n_trees=20, rng=9).fit(X, y).predict(X[:10])
        b = RandomForestRegressor(n_trees=20, rng=9).fit(X, y).predict(X[:10])
        assert np.allclose(a, b)


class TestImportance:
    def test_informative_features_rank_top(self):
        X, y = linear_data()
        rf = RandomForestRegressor(n_trees=100, rng=0).fit(
            X, y, feature_names=[f"f{i}" for i in range(6)]
        )
        top2 = set(rf.top_features(2))
        assert top2 == {"f0", "f2"}

    def test_noise_features_near_zero(self):
        X, y = linear_data()
        rf = RandomForestRegressor(n_trees=100, rng=0).fit(X, y)
        noise_scores = [rf.importance_[j] for j in (1, 3, 4, 5)]
        signal_scores = [rf.importance_[0], rf.importance_[2]]
        assert max(noise_scores) < min(signal_scores)

    def test_importance_disabled(self):
        X, y = linear_data(n=40)
        rf = RandomForestRegressor(n_trees=5, importance=False, rng=0).fit(X, y)
        assert rf.importance_ is None
        with pytest.raises(RuntimeError):
            rf.ranked_importance()

    def test_ranked_importance_sorted(self):
        X, y = linear_data()
        rf = RandomForestRegressor(n_trees=40, rng=0).fit(X, y)
        scores = [s for _, s in rf.ranked_importance()]
        assert scores == sorted(scores, reverse=True)

    def test_impurity_importance_agrees_on_leader(self):
        X, y = linear_data(noise=0.01)
        rf = RandomForestRegressor(n_trees=60, rng=0).fit(X, y)
        assert np.argmax(rf.impurity_importance_) in (0, 2)

    def test_multiple_permutations_smooths(self):
        X, y = linear_data(n=60)
        rf = RandomForestRegressor(n_trees=30, n_permutations=3, rng=0).fit(X, y)
        assert rf.importance_ is not None


class TestValidation:
    def test_rejects_single_observation(self):
        with pytest.raises(ValueError):
            RandomForestRegressor(n_trees=2).fit(np.zeros((1, 2)), np.zeros(1))

    def test_rejects_zero_trees(self):
        with pytest.raises(ValueError):
            RandomForestRegressor(n_trees=0)

    def test_rejects_bad_feature_names(self):
        X, y = linear_data(n=20)
        with pytest.raises(ValueError):
            RandomForestRegressor(n_trees=2).fit(X, y, feature_names=["only_one"])

    def test_predict_wrong_width(self):
        X, y = linear_data(n=30)
        rf = RandomForestRegressor(n_trees=3, rng=0).fit(X, y)
        with pytest.raises(ValueError):
            rf.predict(np.zeros((4, 2)))

    def test_predict_empty_input_returns_empty(self):
        X, y = linear_data(n=30)
        rf = RandomForestRegressor(n_trees=3, rng=0).fit(X, y)
        out = rf.predict(np.empty((0, X.shape[1])))
        assert out.shape == (0,)

    def test_predict_1d_input_raises_with_reshape_hint(self):
        X, y = linear_data(n=30)
        rf = RandomForestRegressor(n_trees=3, rng=0).fit(X, y)
        with pytest.raises(ValueError, match=r"2-D.*reshape\(1, -1\)"):
            rf.predict(X[0])


class TestPredictMany:
    def test_bit_identical_to_loop(self):
        X, y = linear_data()
        rf = RandomForestRegressor(n_trees=20, rng=0).fit(X, y)
        rng = np.random.default_rng(7)
        queries = [rng.normal(size=(k, X.shape[1])) for k in (1, 5, 1, 12)]
        batched = rf.predict_many(queries)
        looped = [rf.predict(q) for q in queries]
        assert len(batched) == len(looped)
        for a, b in zip(batched, looped):
            assert np.array_equal(a, b)  # bit-identical, not just close

    def test_empty_query_list(self):
        X, y = linear_data(n=30)
        rf = RandomForestRegressor(n_trees=3, rng=0).fit(X, y)
        assert rf.predict_many([]) == []

    def test_empty_query_yields_empty_prediction(self):
        X, y = linear_data(n=30)
        rf = RandomForestRegressor(n_trees=3, rng=0).fit(X, y)
        out = rf.predict_many(
            [np.empty((0, X.shape[1])), X[:4]]
        )
        assert out[0].shape == (0,)
        assert np.array_equal(out[1], rf.predict(X[:4]))

    def test_rejects_bad_query_in_batch(self):
        X, y = linear_data(n=30)
        rf = RandomForestRegressor(n_trees=3, rng=0).fit(X, y)
        with pytest.raises(ValueError):
            rf.predict_many([X[:2], np.zeros((2, 2))])
        with pytest.raises(ValueError, match="2-D"):
            rf.predict_many([X[0]])


class TestEdgeCases:
    def test_constant_response(self):
        X = np.random.default_rng(0).normal(size=(40, 3))
        y = np.full(40, 3.0)
        rf = RandomForestRegressor(n_trees=10, rng=0).fit(X, y)
        assert np.allclose(rf.predict(X), 3.0)

    def test_constant_feature_gets_zero_importance(self):
        rng = np.random.default_rng(1)
        X = np.column_stack([rng.normal(size=60), np.ones(60)])
        y = X[:, 0]
        rf = RandomForestRegressor(n_trees=30, rng=0).fit(X, y)
        assert rf.importance_[1] == 0.0

    def test_predictions_bounded_by_training_response(self):
        X, y = linear_data()
        rf = RandomForestRegressor(n_trees=20, rng=0).fit(X, y)
        far = np.random.default_rng(5).normal(size=(50, 6)) * 100
        pred = rf.predict(far)
        assert pred.min() >= y.min() and pred.max() <= y.max()
