"""Unit tests for partial dependence."""

import numpy as np
import pytest

from repro.ml.forest import RandomForestRegressor
from repro.ml.partial_dependence import dependence_direction, partial_dependence


class LinearModel:
    """Deterministic stand-in with predict()."""

    def __init__(self, coef):
        self.coef = np.asarray(coef, dtype=float)

    def predict(self, X):
        return X @ self.coef


class TestPartialDependence:
    def test_linear_positive_effect(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(100, 3))
        pd = partial_dependence(LinearModel([2.0, 0.0, 0.0]), X, 0)
        assert pd.monotonicity == pytest.approx(1.0)
        assert pd.direction() == "positive"
        # slope recovered on the grid
        slope = np.diff(pd.values) / np.diff(pd.grid)
        assert np.allclose(slope, 2.0)

    def test_linear_negative_effect(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(100, 2))
        pd = partial_dependence(LinearModel([0.0, -1.5]), X, 1)
        assert pd.direction() == "negative"

    def test_irrelevant_feature_flat(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(100, 2))
        pd = partial_dependence(LinearModel([3.0, 0.0]), X, 1)
        assert np.ptp(pd.values) == pytest.approx(0.0, abs=1e-12)

    def test_nonmonotone_is_mixed(self):
        rng = np.random.default_rng(3)
        X = rng.uniform(-2, 2, size=(200, 1))

        class Quad:
            def predict(self, X):
                return X[:, 0] ** 2

        pd = partial_dependence(Quad(), X, 0)
        assert pd.direction() == "mixed"

    def test_grid_respects_percentile_clip(self):
        rng = np.random.default_rng(4)
        X = rng.normal(size=(500, 1))
        pd = partial_dependence(LinearModel([1.0]), X, 0, percentile_clip=(10, 90))
        assert pd.grid.min() >= np.percentile(X[:, 0], 10) - 1e-12
        assert pd.grid.max() <= np.percentile(X[:, 0], 90) + 1e-12

    def test_feature_name_propagates(self):
        X = np.random.default_rng(5).normal(size=(50, 2))
        pd = partial_dependence(LinearModel([1.0, 0.0]), X, 0, feature_name="occ")
        assert pd.feature == "occ"

    def test_constant_feature_handled(self):
        X = np.column_stack([np.ones(30), np.arange(30.0)])
        pd = partial_dependence(LinearModel([1.0, 0.0]), X, 0)
        assert pd.grid.size >= 1

    def test_with_forest(self):
        rng = np.random.default_rng(6)
        X = rng.normal(size=(150, 3))
        y = 5 * X[:, 1]
        rf = RandomForestRegressor(n_trees=40, rng=0).fit(X, y)
        assert dependence_direction(rf, X, 1) == "positive"

    def test_bad_feature_index(self):
        X = np.zeros((10, 2))
        with pytest.raises(ValueError):
            partial_dependence(LinearModel([1.0, 1.0]), X, 5)

    def test_bad_resolution(self):
        X = np.random.default_rng(7).normal(size=(10, 1))
        with pytest.raises(ValueError):
            partial_dependence(LinearModel([1.0]), X, 0, grid_resolution=1)


class TestConfidenceBand:
    """Section 7 extension: confidence intervals on partial dependence."""

    def fitted(self, n=150, seed=0):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(n, 3))
        y = 4 * X[:, 0] + 0.3 * rng.normal(size=n)
        rf = RandomForestRegressor(n_trees=60, importance=False, rng=1).fit(X, y)
        return rf, X

    def test_band_present_when_requested(self):
        rf, X = self.fitted()
        pd = partial_dependence(rf, X, 0, confidence=0.9)
        assert pd.has_band
        assert pd.lower.shape == pd.values.shape

    def test_band_brackets_mean(self):
        rf, X = self.fitted()
        pd = partial_dependence(rf, X, 0, confidence=0.9)
        assert np.all(pd.lower <= pd.values + 1e-12)
        assert np.all(pd.upper >= pd.values - 1e-12)

    def test_wider_confidence_wider_band(self):
        rf, X = self.fitted()
        narrow = partial_dependence(rf, X, 0, confidence=0.5)
        wide = partial_dependence(rf, X, 0, confidence=0.95)
        assert wide.band_width().mean() >= narrow.band_width().mean()

    def test_no_band_by_default(self):
        rf, X = self.fitted()
        pd = partial_dependence(rf, X, 0)
        assert not pd.has_band
        with pytest.raises(ValueError):
            pd.band_width()

    def test_non_ensemble_model_gets_no_band(self):
        X = np.random.default_rng(2).normal(size=(50, 2))
        pd = partial_dependence(LinearModel([1.0, 0.0]), X, 0, confidence=0.9)
        assert not pd.has_band

    def test_invalid_confidence(self):
        rf, X = self.fitted()
        with pytest.raises(ValueError):
            partial_dependence(rf, X, 0, confidence=1.5)
