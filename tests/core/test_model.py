"""Tests for the BlackForest five-stage pipeline."""

import numpy as np
import pytest

from repro.core.model import BlackForest


@pytest.fixture(scope="module")
def reduce1_fit(reduce1_campaign):
    # Paper-scale forest (Section 4.1.1: 500 trees). At 150 trees the
    # permutation-importance ranking swings with the seed; at 500 the
    # replay-family story and the bank-conflict bottleneck are stable.
    return BlackForest(n_trees=500, rng=1).fit(
        reduce1_campaign, include_characteristics=False
    )


class TestStage2Validation:
    def test_oob_and_test_scores_high(self, reduce1_fit):
        assert reduce1_fit.oob_explained_variance > 0.75
        assert reduce1_fit.test_explained_variance > 0.8

    def test_split_is_80_20(self, reduce1_fit):
        n = len(reduce1_fit.y_train) + len(reduce1_fit.y_test)
        assert len(reduce1_fit.y_test) == round(0.2 * n)

    def test_constant_predictors_dropped(self, reduce1_fit):
        # reduce1 on one arch: machine metrics not included, and any
        # all-constant counters must be gone
        X = np.vstack([reduce1_fit.X_train, reduce1_fit.X_test])
        assert (X.std(axis=0) > 0).all()

    def test_predict_from_dict(self, reduce1_fit):
        rows = [
            dict(zip(reduce1_fit.feature_names, reduce1_fit.X_test[0])),
            dict(zip(reduce1_fit.feature_names, reduce1_fit.X_test[1])),
        ]
        pred = reduce1_fit.predict_from_dict(rows)
        direct = reduce1_fit.predict(reduce1_fit.X_test[:2])
        assert np.allclose(pred, direct)


class TestStage3Importance:
    def test_ranking_covers_all_predictors(self, reduce1_fit):
        assert set(reduce1_fit.importance.names) == set(reduce1_fit.feature_names)

    def test_replay_family_ranks_top(self, reduce1_fit):
        # the reduce1 story: bank-conflict replays dominate
        replay_family = {
            "l1_shared_bank_conflict",
            "shared_replay_overhead",
            "inst_replay_overhead",
            "inst_issued",
        }
        top5 = set(reduce1_fit.importance.top(5))
        assert top5 & replay_family

    def test_partial_dependence_for_leaders(self, reduce1_fit):
        leader = reduce1_fit.importance.names[0]
        pd = reduce1_fit.importance.dependence[leader]
        assert pd.grid.size >= 2
        assert pd.direction() in ("positive", "negative", "mixed")


class TestStage4PCA:
    def test_pca_present_and_variance_explained(self, reduce1_fit):
        assert reduce1_fit.pca is not None
        assert reduce1_fit.pca.explained_variance_ratio_.sum() >= 0.9

    def test_loadings_cover_predictors(self, reduce1_fit):
        assert reduce1_fit.pca.loadings.names == reduce1_fit.feature_names

    def test_pca_optional(self, reduce1_campaign):
        fit = BlackForest(n_trees=40, use_pca=False, rng=0).fit(reduce1_campaign)
        assert fit.pca is None


class TestStage5Interpretation:
    def test_bottlenecks_detected(self, reduce1_fit):
        assert reduce1_fit.bottlenecks
        keys = [b.pattern.key for b in reduce1_fit.bottlenecks]
        assert "shared_bank_conflicts" in keys

    def test_reduced_model_retains_power(self, reduce1_fit):
        assert reduce1_fit.reduced_retains_power
        assert len(reduce1_fit.reduced_feature_names) == 6
        assert reduce1_fit.reduced_test_explained_variance > 0.7


class TestConfiguration:
    def test_custom_counter_subset(self, reduce1_campaign):
        fit = BlackForest(n_trees=30, use_pca=False, rng=0).fit(
            reduce1_campaign, counters=["ipc", "gld_request", "inst_issued"]
        )
        assert set(fit.feature_names) <= {"ipc", "gld_request", "inst_issued", "size"}

    def test_include_characteristics(self, reduce1_campaign):
        fit = BlackForest(n_trees=30, use_pca=False, rng=0).fit(
            reduce1_campaign, include_characteristics=True
        )
        assert "size" in fit.feature_names

    def test_seed_reproducibility(self, reduce1_campaign):
        a = BlackForest(n_trees=30, use_pca=False, rng=7).fit(reduce1_campaign)
        b = BlackForest(n_trees=30, use_pca=False, rng=7).fit(reduce1_campaign)
        assert a.importance.names == b.importance.names
        assert a.test_mse == b.test_mse
