"""Tests for the batched prediction helpers in :mod:`repro.core.api`."""

import numpy as np
import pytest

from repro import BlackForest
from repro.core import predict_many, stacked_predict
from repro.ml.forest import RandomForestRegressor


@pytest.fixture(scope="module")
def fit(reduce1_campaign):
    return BlackForest(n_trees=40, use_pca=False, rng=0).fit(reduce1_campaign)


def _queries(fit, sizes=(1, 4, 2, 7), seed=3):
    rng = np.random.default_rng(seed)
    p = fit.X_train.shape[1]
    lo = fit.X_train.min(axis=0)
    hi = fit.X_train.max(axis=0)
    return [lo + rng.uniform(size=(k, p)) * (hi - lo) for k in sizes]


class TestPredictMany:
    def test_bit_identical_to_per_query_loop(self, fit):
        queries = _queries(fit)
        batched = predict_many(fit, queries)
        looped = [fit.predict(q) for q in queries]
        for a, b in zip(batched, looped):
            assert np.array_equal(a, b)

    def test_uses_native_fit_method(self, fit):
        # BlackForestFit exposes its own predict_many; the helper must
        # delegate rather than fall back to the loop.
        assert callable(fit.predict_many)
        queries = _queries(fit, sizes=(3,))
        assert np.array_equal(
            predict_many(fit, queries)[0], fit.predict_many(queries)[0]
        )

    def test_loop_fallback_for_minimal_fit(self):
        class LoopOnly:
            def predict(self, X):
                return np.asarray(X).sum(axis=1)

        queries = [np.ones((2, 3)), np.full((1, 3), 2.0)]
        out = predict_many(LoopOnly(), queries)
        assert np.array_equal(out[0], [3.0, 3.0])
        assert np.array_equal(out[1], [6.0])

    def test_empty_query_list(self, fit):
        assert predict_many(fit, []) == []


class TestStackedPredict:
    def test_matches_loop_bitwise(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(80, 4))
        y = X[:, 0] - X[:, 3] + rng.normal(scale=0.1, size=80)
        rf = RandomForestRegressor(n_trees=15, rng=1).fit(X, y)
        queries = [rng.normal(size=(k, 4)) for k in (2, 1, 6)]
        stacked = stacked_predict(rf.predict, queries)
        for got, q in zip(stacked, queries):
            assert np.array_equal(got, rf.predict(q))

    def test_rejects_mismatched_widths(self):
        with pytest.raises(ValueError):
            stacked_predict(
                lambda X: X.sum(axis=1),
                [np.ones((2, 3)), np.ones((2, 4))],
            )

    def test_rejects_1d_query(self):
        with pytest.raises(ValueError):
            stacked_predict(lambda X: X.sum(axis=1), [np.ones(3)])

    def test_all_empty_queries(self):
        out = stacked_predict(
            lambda X: X.sum(axis=1),
            [np.empty((0, 3)), np.empty((0, 3))],
        )
        assert [o.shape for o in out] == [(0,), (0,)]
