"""Tests for the power-response extension (paper Section 7)."""

import numpy as np
import pytest

from repro import BlackForest, Campaign, GTX580, K20M, ReductionKernel, VectorAddKernel
from repro.gpusim import GPUSimulator
from repro.gpusim.simulator import average_power_w, sum_raw


@pytest.fixture(scope="module")
def k20m_campaign():
    sizes = [int(s) for s in np.round(np.logspace(16, 23, 30, base=2.0))]
    return Campaign(ReductionKernel(6), K20M, rng=0).run(problems=sizes)


class TestPowerModel:
    def test_power_between_static_and_tdp(self, k20m_campaign):
        powers = k20m_campaign.powers()
        assert np.all(powers >= K20M.static_power_w)
        assert np.all(powers <= K20M.tdp_w)

    def test_busy_kernel_draws_more_than_idle(self):
        sim = GPUSimulator(K20M)
        wl = VectorAddKernel().workloads(1 << 24, K20M)
        _, t, profs = sim.run(wl)
        power = average_power_w(K20M, sum_raw(profs), t)
        assert power > K20M.static_power_w + 10.0

    def test_bandwidth_bound_power_grows_with_utilization(self):
        # larger streaming runs amortize launch overhead -> higher
        # average utilization -> higher average draw
        sim = GPUSimulator(K20M)
        k = VectorAddKernel()
        powers = []
        for n in (1 << 16, 1 << 20, 1 << 24):
            _, t, profs = sim.run(k.workloads(n, K20M))
            powers.append(average_power_w(K20M, sum_raw(profs), t))
        assert powers[0] < powers[1] < powers[2]

    def test_zero_time_returns_static(self):
        assert average_power_w(K20M, {}, 0.0) == K20M.static_power_w

    def test_clipped_at_tdp(self):
        absurd = {"dynamic_energy_j": 1e9}
        assert average_power_w(K20M, absurd, 1.0) == K20M.tdp_w


class TestPowerRecords:
    def test_kepler_records_power(self, k20m_campaign):
        assert all(r.power_w is not None for r in k20m_campaign.records)

    def test_fermi_records_none(self):
        c = Campaign(ReductionKernel(6), GTX580, rng=0).run(problems=[1 << 18])
        assert c.records[0].power_w is None
        with pytest.raises(ValueError, match="power"):
            c.powers()
        with pytest.raises(ValueError, match="power"):
            c.matrix(response="power")

    def test_power_response_matrix(self, k20m_campaign):
        X, y, names = k20m_campaign.matrix(response="power")
        assert np.array_equal(y, k20m_campaign.powers())
        Xt, yt, _ = k20m_campaign.matrix(response="time")
        assert np.array_equal(X, Xt)
        assert not np.array_equal(y, yt)

    def test_invalid_response_rejected(self, k20m_campaign):
        with pytest.raises(ValueError, match="response"):
            k20m_campaign.matrix(response="temperature")


class TestPowerPipeline:
    def test_blackforest_power_fit(self, k20m_campaign):
        fit = BlackForest(n_trees=120, rng=1).fit(
            k20m_campaign, response="power"
        )
        assert fit.oob_explained_variance > 0.7

    def test_power_importance_activity_driven(self, k20m_campaign):
        fit = BlackForest(n_trees=150, importance_repeats=2, rng=1).fit(
            k20m_campaign, response="power"
        )
        rate_family = {
            "gst_requested_throughput", "gld_requested_throughput",
            "gst_throughput", "gld_throughput", "dram_read_throughput",
            "dram_write_throughput", "l2_read_throughput",
            "l2_write_throughput", "ipc", "issue_slot_utilization",
        }
        top4 = set(fit.importance.top(4))
        assert top4 & rate_family, f"power not rate-driven: {top4}"

    def test_power_vs_time_models_differ(self, k20m_campaign):
        time_fit = BlackForest(n_trees=80, rng=1).fit(k20m_campaign)
        power_fit = BlackForest(n_trees=80, rng=1).fit(
            k20m_campaign, response="power"
        )
        assert not np.allclose(
            time_fit.forest.predict(time_fit.X_test),
            power_fit.forest.predict(power_fit.X_test),
        )
