"""Tests for bottleneck pattern detection."""

import numpy as np
import pytest

from repro.core.bottleneck import PATTERNS, detect_bottlenecks
from repro.core.importance import ImportanceRanking


def ranking_of(names):
    return ImportanceRanking(
        names=list(names), scores=np.arange(len(names), 0, -1, dtype=float)
    )


class TestPatternLibrary:
    def test_patterns_have_witnesses_and_remedies(self):
        for p in PATTERNS:
            assert p.witnesses
            assert p.remedy
            assert p.description

    def test_pattern_keys_unique(self):
        keys = [p.key for p in PATTERNS]
        assert len(keys) == len(set(keys))

    def test_all_witnesses_are_known_counters_or_size(self):
        from repro.gpusim.counters import CATALOGUE

        for p in PATTERNS:
            for w in p.witnesses:
                assert w in CATALOGUE, w


class TestDetection:
    def test_bank_conflict_detection(self):
        ranking = ranking_of(
            ["shared_replay_overhead", "inst_replay_overhead", "ipc",
             "gld_request", "branch", "shared_load", "gst_request",
             "divergent_branch"]
        )
        findings = detect_bottlenecks(ranking, top_k=3)
        assert findings[0].pattern.key == "shared_bank_conflicts"
        assert "shared_replay_overhead" in findings[0].evidence

    def test_occupancy_detection(self):
        ranking = ranking_of(
            ["achieved_occupancy", "ipc", "gld_request", "branch",
             "shared_load", "gst_request"]
        )
        findings = detect_bottlenecks(ranking, top_k=2)
        assert findings[0].pattern.key == "low_occupancy"

    def test_bandwidth_detection(self):
        ranking = ranking_of(
            ["dram_read_throughput", "gst_throughput", "ipc",
             "branch", "shared_load", "divergent_branch"]
        )
        findings = detect_bottlenecks(ranking, top_k=2)
        assert findings[0].pattern.key == "bandwidth"

    def test_findings_ordered_by_effective_rank(self):
        ranking = ranking_of(
            ["divergent_branch", "l1_global_load_miss", "gld_request",
             "achieved_occupancy", "ipc", "branch"]
        )
        findings = detect_bottlenecks(ranking, top_k=4)
        keys = [f.best_rank + (2 if f.pattern.generic else 0) for f in findings]
        assert keys == sorted(keys)
        assert findings[0].pattern.key == "divergence"

    def test_specific_pathology_beats_generic_symptom(self):
        # generic volume pattern at rank 0, pathology at rank 1: the
        # pathology is the actionable primary finding
        ranking = ranking_of(
            ["shared_store", "shared_replay_overhead", "ipc", "branch",
             "gld_request", "inst_executed"]
        )
        findings = detect_bottlenecks(ranking, top_k=2)
        assert findings[0].pattern.key == "shared_bank_conflicts"

    def test_widens_search_when_nothing_matches(self):
        # top-1 is not a witness of anything -> recursion widens top_k
        ranking = ranking_of(
            ["inst_executed", "branch", "divergent_branch", "gld_request"]
        )
        findings = detect_bottlenecks(ranking, top_k=1)
        assert findings  # found something deeper in the ranking

    def test_describe_is_readable(self):
        ranking = ranking_of(["shared_replay_overhead", "ipc", "branch",
                              "gld_request", "shared_load", "gst_request"])
        text = detect_bottlenecks(ranking)[0].describe()
        assert "shared_bank_conflicts" in text
        assert "remedy" in text

    def test_top_k_validation(self):
        with pytest.raises(ValueError):
            detect_bottlenecks(ranking_of(["ipc"]), top_k=0)

    def test_kepler_replay_witnesses(self):
        ranking = ranking_of(
            ["shared_load_replay", "shared_store_replay", "ipc",
             "gld_request", "branch", "inst_executed"]
        )
        findings = detect_bottlenecks(ranking, top_k=2)
        assert findings[0].pattern.key == "shared_bank_conflicts"
