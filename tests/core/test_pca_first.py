"""Tests for the PCA-first pipeline variant (paper Section 7 proposal)."""

import numpy as np
import pytest

from repro.core.model import BlackForest, induced_counter_ranking
from repro.core.importance import ImportanceRanking
from repro.ml.pca import PCA


@pytest.fixture(scope="module")
def pca_first_fit(reduce1_campaign):
    return BlackForest(n_trees=120, pca_first=True, rng=1).fit(
        reduce1_campaign, include_characteristics=False
    )


class TestMechanics:
    def test_features_are_components(self, pca_first_fit):
        assert all(n.startswith("PC") for n in pca_first_fit.feature_names)

    def test_dimensionality_reduced(self, pca_first_fit, reduce1_campaign):
        n_counters = len(reduce1_campaign.predictor_names)
        assert len(pca_first_fit.feature_names) < n_counters

    def test_importance_over_components(self, pca_first_fit):
        assert set(pca_first_fit.importance.names) == set(
            pca_first_fit.feature_names
        )

    def test_characteristics_stay_raw(self, reduce1_campaign):
        fit = BlackForest(n_trees=40, pca_first=True, rng=1).fit(
            reduce1_campaign, include_characteristics=True
        )
        assert "size" in fit.feature_names

    def test_bottlenecks_still_name_counters(self, pca_first_fit):
        # the induced ranking maps component importance back to counters
        assert pca_first_fit.bottlenecks
        for finding in pca_first_fit.bottlenecks:
            for witness in finding.evidence:
                assert not witness.startswith("PC")

    def test_needs_counters(self, reduce1_campaign):
        with pytest.raises(ValueError, match="at least two counters"):
            BlackForest(n_trees=10, pca_first=True, rng=0).fit(
                reduce1_campaign, counters=["ipc"],
                include_characteristics=True,
            )


class TestInducedRanking:
    def test_weighting_by_loading_and_importance(self):
        rng = np.random.default_rng(0)
        latent = rng.normal(size=200)
        X = np.column_stack([
            latent + 0.01 * rng.normal(size=200),
            -latent + 0.01 * rng.normal(size=200),
            rng.normal(size=200),
        ])
        pca = PCA(n_components=2, rotate=True).fit(X, names=["a", "b", "c"])
        comp_ranking = ImportanceRanking(
            names=["PC1", "PC2"], scores=np.array([10.0, 0.1])
        )
        induced = induced_counter_ranking(comp_ranking, pca)
        # the latent-driven counters dominate whichever PC is first
        lead_pair = set(induced.names[:2])
        assert lead_pair == {"a", "b"}

    def test_negative_component_importance_ignored(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(100, 3))
        pca = PCA(n_components=2, rotate=True).fit(X, names=list("abc"))
        ranking = ImportanceRanking(
            names=["PC1", "PC2"], scores=np.array([-5.0, -1.0])
        )
        induced = induced_counter_ranking(ranking, pca)
        assert np.allclose(induced.scores, 0.0)


class TestTradeoff:
    def test_interpretation_simpler_but_accuracy_lower(
        self, reduce1_campaign, pca_first_fit
    ):
        """The documented finding: Section 7's PCA-first idea reduces
        the variable count but costs predictive power on heavy-tailed
        counter data (component scores scramble the monotone
        counter-time ordering the trees exploit)."""
        raw = BlackForest(n_trees=120, rng=1).fit(
            reduce1_campaign, include_characteristics=False
        )
        assert len(pca_first_fit.feature_names) < len(raw.feature_names)
        assert pca_first_fit.oob_explained_variance < raw.oob_explained_variance
