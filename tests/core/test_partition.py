"""Tests for heterogeneous CPU+GPU workload partitioning."""

import numpy as np
import pytest

from repro.core.partition import HeterogeneousPartitioner, PartitionPlan


class LinearDevice:
    """Stand-in predictor: time = overhead + work / rate."""

    def __init__(self, rate, overhead=0.0):
        self.rate = rate
        self.overhead = overhead

    def predict(self, sizes):
        sizes = np.asarray(sizes, dtype=float)
        return self.overhead + sizes / self.rate


class TestPlanning:
    def test_equal_devices_split_in_half(self):
        part = HeterogeneousPartitioner(LinearDevice(100.0), LinearDevice(100.0))
        plan = part.plan(1000.0)
        assert plan.cpu_share == pytest.approx(0.5, abs=0.02)

    def test_split_proportional_to_rates(self):
        # GPU 4x faster -> CPU gets ~1/5 of the work
        part = HeterogeneousPartitioner(LinearDevice(100.0), LinearDevice(400.0))
        plan = part.plan(1000.0)
        assert plan.cpu_share == pytest.approx(0.2, abs=0.03)

    def test_makespan_beats_best_single_device(self):
        part = HeterogeneousPartitioner(LinearDevice(100.0), LinearDevice(300.0))
        plan = part.plan(10_000.0)
        assert plan.makespan_s < plan.best_single_device_s
        assert plan.speedup_vs_best_device > 1.2

    def test_overhead_pushes_small_work_to_one_device(self):
        # the GPU has a large fixed launch overhead: tiny workloads
        # should run entirely on the CPU
        part = HeterogeneousPartitioner(
            LinearDevice(100.0, overhead=0.0),
            LinearDevice(10_000.0, overhead=10.0),
            min_chunk=1.0,
        )
        plan = part.plan(50.0)
        assert plan.cpu_share == pytest.approx(1.0)
        assert plan.gpu_time_s == 0.0

    def test_min_chunk_collapses_slivers(self):
        part = HeterogeneousPartitioner(
            LinearDevice(1.0), LinearDevice(1000.0), min_chunk=100.0
        )
        plan = part.plan(150.0)
        # a <100-unit CPU sliver is not worth scheduling
        assert plan.cpu_share in (0.0, 1.0) or plan.cpu_share * 150.0 >= 100.0

    def test_sweep(self):
        part = HeterogeneousPartitioner(LinearDevice(100.0), LinearDevice(200.0))
        plans = part.sweep([100.0, 1000.0, 10_000.0])
        assert len(plans) == 3
        assert all(isinstance(p, PartitionPlan) for p in plans)

    def test_validation(self):
        part = HeterogeneousPartitioner(LinearDevice(1.0), LinearDevice(1.0))
        with pytest.raises(ValueError):
            part.plan(0.0)
        with pytest.raises(ValueError):
            HeterogeneousPartitioner(None, None, resolution=2)
        with pytest.raises(ValueError):
            HeterogeneousPartitioner(None, None, min_chunk=-1.0)


class TestEndToEnd:
    def test_cpu_gpu_stencil_partition(self):
        """Real models: CPU and GPU stencil campaigns drive the split."""
        from repro import BlackForest, Campaign, GTX580, XEON_E5
        from repro.core.prediction import ProblemScalingPredictor
        from repro.kernels import StencilKernel
        from repro.kernels.cpu import CpuStencilKernel

        sizes = [128, 192, 256, 384, 512, 768, 1024, 1536, 2048]
        gpu_campaign = Campaign(StencilKernel(), GTX580, rng=0).run(
            problems=sizes, replicates=2
        )
        cpu_campaign = Campaign(CpuStencilKernel(), XEON_E5, rng=1).run(
            problems=sizes, replicates=2
        )
        gpu_pred = ProblemScalingPredictor(
            BlackForest(n_trees=80, use_pca=False, min_samples_leaf=3, rng=2),
            rng=3,
        ).fit(gpu_campaign)
        cpu_pred = ProblemScalingPredictor(
            BlackForest(n_trees=80, use_pca=False, min_samples_leaf=3, rng=4),
            rng=5,
        ).fit(cpu_campaign)

        part = HeterogeneousPartitioner(cpu_pred, gpu_pred, min_chunk=128.0)
        plan = part.plan(1536.0)
        # the GPU is the faster device for stencils: it gets the bulk,
        # but the CPU contribution is nonzero at this size
        assert plan.cpu_share < 0.5
        assert plan.makespan_s <= plan.best_single_device_s * 1.05
