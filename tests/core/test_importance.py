"""Tests for importance ranking, reduced-model checks and similarity."""

import numpy as np
import pytest

from repro.core.importance import (
    ImportanceRanking,
    rank_importance,
    rank_similarity,
    reduced_model_check,
)
from repro.ml.forest import RandomForestRegressor


def fitted_forest(seed=0, n=120):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 5))
    y = 5 * X[:, 0] + 2 * X[:, 3] + 0.1 * rng.normal(size=n)
    rf = RandomForestRegressor(n_trees=60, rng=1).fit(
        X, y, feature_names=["a", "b", "c", "d", "e"]
    )
    return rf, X, y


class TestRanking:
    def test_signal_features_lead(self):
        rf, X, _ = fitted_forest()
        ranking = rank_importance(rf, X)
        assert set(ranking.top(2)) == {"a", "d"}

    def test_scores_sorted(self):
        rf, X, _ = fitted_forest()
        ranking = rank_importance(rf, X)
        assert list(ranking.scores) == sorted(ranking.scores, reverse=True)

    def test_dependence_directions(self):
        rf, X, _ = fitted_forest()
        ranking = rank_importance(rf, X)
        assert ranking.direction_of("a") == "positive"
        assert ranking.direction_of("d") == "positive"

    def test_dependence_only_for_leaders(self):
        rf, X, _ = fitted_forest()
        ranking = rank_importance(rf, X, top_k_dependence=2)
        assert len(ranking.dependence) == 2
        assert ranking.direction_of(ranking.names[-1]) == "unknown"

    def test_rank_and_score_lookup(self):
        rf, X, _ = fitted_forest()
        ranking = rank_importance(rf, X)
        leader = ranking.names[0]
        assert ranking.rank_of(leader) == 0
        assert ranking.score_of(leader) == ranking.scores[0]
        with pytest.raises(ValueError):
            ranking.rank_of("missing")

    def test_as_rows(self):
        rf, X, _ = fitted_forest()
        rows = rank_importance(rf, X).as_rows()
        assert len(rows) == 5
        assert all(len(r) == 3 for r in rows)


class TestReducedModel:
    def test_top2_retains_power(self):
        rf, X, y = fitted_forest(n=200)
        ranking = rank_importance(rf, X)
        reduced, retains, full, small = reduced_model_check(
            rf, ranking, X[:160], y[:160], X[160:], y[160:], k=2, rng=0
        )
        assert retains
        assert small > 0.8

    def test_single_noise_feature_loses_power(self):
        rf, X, y = fitted_forest(n=200)
        ranking = rank_importance(rf, X)
        # force the worst feature only
        worst = ImportanceRanking(
            names=list(reversed(ranking.names)),
            scores=ranking.scores[::-1],
        )
        _, retains, _, small = reduced_model_check(
            rf, worst, X[:160], y[:160], X[160:], y[160:], k=1, rng=0
        )
        assert not retains

    def test_k_validation(self):
        rf, X, y = fitted_forest()
        ranking = rank_importance(rf, X)
        with pytest.raises(ValueError):
            reduced_model_check(rf, ranking, X, y, X, y, k=0)


class TestRankSimilarity:
    def make(self, names):
        return ImportanceRanking(
            names=list(names), scores=np.arange(len(names), 0, -1, dtype=float)
        )

    def test_identical_rankings(self):
        a = self.make("abcde")
        assert rank_similarity(a, a, k=5) == pytest.approx(1.0)

    def test_disjoint_rankings(self):
        a = self.make("abcde")
        b = self.make("vwxyz")
        assert rank_similarity(a, b, k=5) == 0.0

    def test_partial_overlap_in_between(self):
        a = self.make("abcde")
        b = self.make("abxyz")
        s = rank_similarity(a, b, k=5)
        assert 0.0 < s < 1.0

    def test_order_sensitivity(self):
        a = self.make("abcde")
        same_set_same_order = self.make("abcde")
        same_set_reversed = self.make("edcba")
        assert rank_similarity(a, same_set_same_order, k=5) > rank_similarity(
            a, same_set_reversed, k=5
        )

    def test_k_validation(self):
        a = self.make("ab")
        with pytest.raises(ValueError):
            rank_similarity(a, a, k=0)
