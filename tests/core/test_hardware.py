"""Tests for hardware scaling (the Fig. 7 / Fig. 8 flow)."""

import numpy as np
import pytest

from repro.core.hardware import (
    HardwareScalingPredictor,
    common_predictors,
    importance_similarity,
    mixed_variable_set,
    per_arch_importance,
)
from repro.core.importance import ImportanceRanking


class TestCommonPredictors:
    def test_drops_arch_specific_counters(self, nw_campaign, nw_campaign_k20m):
        common = common_predictors(nw_campaign, nw_campaign_k20m)
        assert "l1_global_load_miss" not in common
        assert "l1_shared_bank_conflict" not in common
        assert "shared_load_replay" not in common
        assert "gld_request" in common
        assert "achieved_occupancy" in common


class TestPerArchImportance:
    def test_fermi_nw_features_caching_counters(self, nw_campaign):
        ranking = per_arch_importance(nw_campaign, n_trees=120, rng=5)
        # "caching related variables ... are among the most influential
        # predictors for the GTX580" (Fig. 8a)
        caching = {"l1_global_load_miss", "l1_shared_bank_conflict",
                   "l2_read_transactions", "l2_write_transactions"}
        assert set(ranking.top(8)) & caching

    def test_kepler_nw_lacks_fermi_caching_counters(self, nw_campaign_k20m):
        ranking = per_arch_importance(nw_campaign_k20m, n_trees=120, rng=5)
        # "these same variables are ... totally unimportant for K20m"
        # (Fig. 8b) — here structurally absent from the counter set.
        assert "l1_global_load_miss" not in ranking.names
        assert "l1_shared_bank_conflict" not in ranking.names


class TestSimilarity:
    def make(self, names):
        return ImportanceRanking(
            names=list(names), scores=np.arange(len(names), 0, -1, dtype=float)
        )

    def test_restricted_mode_ignores_arch_specific(self):
        a = self.make(["fermi_only", "x", "y", "z"])
        b = self.make(["x", "y", "z", "kepler_only"])
        s = importance_similarity(a, b, k=3, restrict_to_shared=True)
        assert s == pytest.approx(1.0)  # identical once restricted

    def test_raw_mode_counts_arch_specific_as_disagreement(self):
        a = self.make(["fermi_only", "x", "y", "z"])
        b = self.make(["x", "y", "z", "kepler_only"])
        raw = importance_similarity(a, b, k=3)
        restricted = importance_similarity(a, b, k=3, restrict_to_shared=True)
        assert raw < restricted

    def test_disagreement_detected(self):
        a = self.make(["x", "y", "z", "w"])
        b = self.make(["w", "z", "y", "x"])
        assert importance_similarity(a, b, k=4) < 0.7


class TestMixedVariables:
    def make(self, names):
        return ImportanceRanking(
            names=list(names), scores=np.arange(len(names), 0, -1, dtype=float)
        )

    def test_union_of_tops_with_size(self):
        a = self.make(["p", "q", "r", "s"])
        b = self.make(["r", "t", "u", "v"])
        mixed = mixed_variable_set(a, b, k=2, common=["p", "q", "r", "t", "u"])
        assert mixed[0] == "size"
        assert "p" in mixed and "r" in mixed and "t" in mixed

    def test_respects_common_restriction(self):
        a = self.make(["fermi_specific", "x", "y"])
        b = self.make(["x", "y", "z"])
        mixed = mixed_variable_set(a, b, k=2, common=["x", "y", "z"])
        assert "fermi_specific" not in mixed

    def test_cap(self):
        a = self.make([f"a{i}" for i in range(10)])
        b = self.make([f"b{i}" for i in range(10)])
        mixed = mixed_variable_set(
            a, b, k=3,
            common=[f"a{i}" for i in range(10)] + [f"b{i}" for i in range(10)],
        )
        assert len(mixed) <= 1 + 2 * 3


class TestEndToEnd:
    def test_mm_transfer_fermi_to_k20m(
        self, matmul_campaign, matmul_campaign_gtx480, matmul_campaign_k20m
    ):
        # Fig. 7 protocol: inject "values of machine characteristics ...
        # for different GPU architectures" — training data spans both
        # Fermi cards so the machine metrics vary and the forest learns
        # which counters transfer.
        train = matmul_campaign.merged_with(matmul_campaign_gtx480)
        common = common_predictors(train, matmul_campaign_k20m)
        hw = HardwareScalingPredictor(n_trees=150, rng=3).fit(
            train, common=common
        )
        # "the predictions mostly match the measured execution times".
        # Every K20m run is unseen by the forest, so assess the whole
        # campaign: a 20% subsample holds ~7 problems and its explained
        # variance swings ~0.4-0.8 with the draw; the full campaign sits
        # at ~0.65-0.73 across forest seeds.
        result = hw.assess(matmul_campaign_k20m, eval_fraction=1.0)
        assert len(result.report.problems) == len(matmul_campaign_k20m.records)
        assert result.report.explained_variance > 0.6
        assert result.test_arch == "K20m"

    def test_nw_mixed_variables_work(self, nw_campaign, nw_campaign_k20m):
        common = common_predictors(nw_campaign, nw_campaign_k20m)
        # One-forest importance rankings are unstable among NW's many
        # correlated counters, so average over repeats before picking
        # the mixed set (the knob exists for exactly this).
        ia = per_arch_importance(nw_campaign, n_trees=100, repeats=3, rng=5)
        ib = per_arch_importance(nw_campaign_k20m, n_trees=100, repeats=3, rng=5)
        mixed = mixed_variable_set(ia, ib, k=3, common=common)
        hw = HardwareScalingPredictor(n_trees=120, rng=3).fit(
            nw_campaign, variables=mixed, common=common
        )
        # "less accurate" than the MM transfer (~0.65-0.73): the mixed
        # protocol lands at ~0.2-0.5 over the full unseen campaign. The
        # bound pins "transfers at all, though worse", not a draw.
        result = hw.assess(nw_campaign_k20m, eval_fraction=1.0)
        assert result.report.explained_variance > 0.1
        assert result.variables == mixed

    def test_unknown_variable_rejected(self, matmul_campaign):
        with pytest.raises(ValueError, match="unknown variables"):
            HardwareScalingPredictor(n_trees=10, rng=0).fit(
                matmul_campaign, variables=["not_a_counter"]
            )

    def test_arch_specific_training_variables_rejected_at_assess(
        self, nw_campaign, nw_campaign_k20m
    ):
        # training on a Fermi-only counter must fail when assessing K20m
        hw = HardwareScalingPredictor(n_trees=10, rng=0).fit(
            nw_campaign, variables=["size", "l1_global_load_miss"]
        )
        with pytest.raises(ValueError, match="lacks predictor"):
            hw.assess(nw_campaign_k20m)
