"""Tests for problem-scaling prediction (the Fig. 5b / 6b flow)."""

import numpy as np
import pytest

from repro.core.model import BlackForest
from repro.core.prediction import PredictionReport, ProblemScalingPredictor
from repro.gpusim import GTX580
from repro.kernels import MatMulKernel
from repro.profiling import Campaign


@pytest.fixture(scope="module")
def mm_predictor(matmul_campaign):
    return ProblemScalingPredictor(
        BlackForest(n_trees=150, rng=1), rng=2
    ).fit(matmul_campaign)


class TestPredictionReport:
    def test_metrics(self):
        rep = PredictionReport(
            problems=np.array([1.0, 2.0]),
            predicted_s=np.array([1.0, 2.2]),
            measured_s=np.array([1.0, 2.0]),
        )
        assert rep.mse == pytest.approx(0.02)
        assert 0 < rep.explained_variance <= 1.0
        assert rep.mean_relative_error == pytest.approx(0.05)
        assert len(rep.rows()) == 2


class TestProblemScaling:
    def test_retained_includes_characteristic(self, mm_predictor):
        assert "size" in mm_predictor.retained

    def test_counter_models_cover_retained(self, mm_predictor):
        modeled = set(mm_predictor.counter_models.models)
        needed = set(mm_predictor.retained) - {"size"}
        assert needed <= modeled

    def test_unseen_sizes_predicted_well(self, mm_predictor):
        # sizes inside the training range but never collected
        eval_camp = Campaign(MatMulKernel(), GTX580, rng=99).run(
            problems=[96, 256, 448, 640, 896], replicates=1
        )
        report = mm_predictor.assess(eval_camp)
        assert report.explained_variance > 0.8

    def test_predict_monotone_in_size(self, mm_predictor):
        times = mm_predictor.predict(np.array([64.0, 256.0, 768.0]))
        assert times[0] < times[1] < times[2]

    def test_report_on_training_campaign_is_excellent(
        self, mm_predictor, matmul_campaign
    ):
        report = mm_predictor.assess(matmul_campaign)
        assert report.explained_variance > 0.9

    def test_missing_characteristic_rejected(self, matmul_campaign):
        with pytest.raises(ValueError, match="characteristic"):
            ProblemScalingPredictor(
                BlackForest(n_trees=20, use_pca=False, rng=0),
                characteristic="wavelength",
            ).fit(matmul_campaign)

    def test_mars_mode(self, matmul_campaign):
        pred = ProblemScalingPredictor(
            BlackForest(n_trees=60, use_pca=False, rng=1),
            prefer_mars=True, rng=2,
        ).fit(matmul_campaign)
        report = pred.assess(matmul_campaign)
        assert report.explained_variance > 0.85
