"""Graceful predictor degradation on damaged campaigns.

A campaign that lost counters (injected NaNs, dropped nvprof passes)
must still fit — with a RuntimeWarning and an explicit degradation
record on the artifact — while clean campaigns fit exactly as before.
"""

import warnings

import numpy as np
import pytest

from repro.core import BlackForest, HardwareScalingPredictor
from repro.faults import FaultPlan, FaultSpec, fault_injection
from repro.gpusim import GTX580
from repro.kernels import VectorAddKernel
from repro.profiling import Campaign

KERNEL = VectorAddKernel()
PROBLEMS = KERNEL.default_sweep()[:12]


def _campaign(plan=None, rng=5):
    with fault_injection(plan):
        return Campaign(KERNEL, GTX580, rng=rng).run(
            problems=PROBLEMS, replicates=2
        )


def _nan_plan():
    return FaultPlan([
        FaultSpec(
            "profiler.launch", "nan_counters",
            match={"problem": PROBLEMS[2]},
        )
    ])


class TestBlackForestDegradation:
    def test_clean_fit_has_no_degradation(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            fit = BlackForest(n_trees=10, rng=1).fit(_campaign())
        assert fit.degradation is None

    def test_nan_counters_fit_warns_and_records(self):
        campaign = _campaign(_nan_plan())
        assert any(
            not np.isfinite(v)
            for r in campaign.records
            for v in r.counters.values()
        )
        with pytest.warns(RuntimeWarning, match="degraded campaign"):
            fit = BlackForest(n_trees=10, rng=1).fit(campaign)
        assert fit.degradation is not None
        assert sum(fit.degradation["imputed_cells"].values()) > 0
        # Degraded or not, the artifact still predicts.
        assert np.isfinite(fit.predict(fit.X_test)).all()

    def test_dropped_counters_fit_still_works(self):
        plan = FaultPlan([
            FaultSpec(
                "profiler.launch", "drop_counters",
                match={"problem": PROBLEMS[4]},
            )
        ])
        campaign = _campaign(plan)
        with pytest.warns(RuntimeWarning, match="degraded campaign"):
            fit = BlackForest(n_trees=10, rng=1).fit(campaign)
        assert fit.degradation is not None

    def test_degradation_survives_in_fit_summary_inputs(self):
        campaign = _campaign(_nan_plan())
        with pytest.warns(RuntimeWarning):
            fit = BlackForest(n_trees=10, rng=1).fit(campaign)
        assert isinstance(fit.degradation, dict)
        assert set(fit.degradation) == {
            "dropped_rows", "dropped_columns", "imputed_cells"
        }


class TestHardwareScalingDegradation:
    def test_clean_fit_has_no_degradation(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            hw = HardwareScalingPredictor(n_trees=10, rng=0).fit(_campaign())
        assert hw.degradation is None

    def test_degraded_fit_warns_and_records(self):
        campaign = _campaign(_nan_plan())
        with pytest.warns(RuntimeWarning, match="degraded campaign"):
            hw = HardwareScalingPredictor(n_trees=10, rng=0).fit(campaign)
        assert hw.degradation is not None
