"""Tests for report rendering and the viz layer."""

import numpy as np
import pytest

from repro.core.model import BlackForest
from repro.core.prediction import PredictionReport
from repro.core.report import bottleneck_report, fit_summary, prediction_report_text
from repro.viz.text import bar_chart, line_plot, loadings_table, table
from repro.ml.pca import FactorLoadings


@pytest.fixture(scope="module")
def small_fit(reduce1_campaign):
    return BlackForest(n_trees=60, rng=1).fit(
        reduce1_campaign, include_characteristics=False
    )


class TestFitSummary:
    def test_contains_validation_numbers(self, small_fit):
        text = fit_summary(small_fit)
        assert "OOB explained variance" in text
        assert "reduce1" in text
        assert "%" in text

    def test_reports_reduced_model(self, small_fit):
        assert "reduced model" in fit_summary(small_fit)


class TestBottleneckReport:
    def test_complete_report(self, small_fit):
        text = bottleneck_report(small_fit)
        assert "BlackForest bottleneck analysis" in text
        assert "Variable importance" in text
        assert "Partial dependence" in text
        assert "PCA refinement" in text
        assert "remedy:" in text

    def test_top_k_respected(self, small_fit):
        short = bottleneck_report(small_fit, top_k=3)
        long = bottleneck_report(small_fit, top_k=12)
        assert len(long) > len(short)


class TestPredictionText:
    def test_table_rows_and_accuracy(self):
        rep = PredictionReport(
            problems=np.array([64.0, 128.0]),
            predicted_s=np.array([1e-3, 2e-3]),
            measured_s=np.array([1.1e-3, 1.9e-3]),
        )
        text = prediction_report_text(rep, title="MM predictions")
        assert "MM predictions" in text
        assert "explained variance" in text
        assert text.count("ms") >= 4


class TestVizPrimitives:
    def test_bar_chart_scales(self):
        out = bar_chart(["a", "bb"], np.array([1.0, 2.0]))
        lines = out.splitlines()
        assert lines[1].count("#") == 2 * lines[0].count("#")

    def test_bar_chart_empty(self):
        assert "(empty)" in bar_chart([], np.array([]))

    def test_bar_chart_validates(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], np.array([1.0, 2.0]))

    def test_line_plot_contains_points(self):
        out = line_plot(np.arange(10.0), np.arange(10.0) ** 2)
        assert out.count("*") >= 5

    def test_line_plot_validates(self):
        with pytest.raises(ValueError):
            line_plot(np.array([]), np.array([]))

    def test_table_alignment(self):
        out = table(["col", "value"], [("x", 1.5), ("longer", 2.0)])
        lines = out.splitlines()
        assert len({len(l) for l in lines if l.strip()}) <= 2

    def test_loadings_table_blanks_small(self):
        fl = FactorLoadings(
            names=["v1", "v2"], components=["PC1"],
            values=np.array([[0.9], [0.05]]),
        )
        out = loadings_table(fl, threshold=0.3)
        assert "+0.90" in out
        assert "0.05" not in out


class TestBandPlot:
    def test_dependence_plot_with_band(self):
        from repro.ml import RandomForestRegressor
        from repro.ml.partial_dependence import partial_dependence
        from repro.viz.text import dependence_plot

        rng = np.random.default_rng(0)
        X = rng.normal(size=(120, 2))
        y = 3 * X[:, 0]
        rf = RandomForestRegressor(n_trees=40, importance=False, rng=1).fit(X, y)
        pd = partial_dependence(rf, X, 0, confidence=0.9, feature_name="f0")
        out = dependence_plot(pd)
        assert "confidence band" in out
        assert out.count(".") > 5

    def test_dependence_plot_without_band_unchanged(self):
        from repro.ml import RandomForestRegressor
        from repro.ml.partial_dependence import partial_dependence
        from repro.viz.text import dependence_plot

        rng = np.random.default_rng(1)
        X = rng.normal(size=(80, 2))
        rf = RandomForestRegressor(n_trees=20, importance=False, rng=1).fit(
            X, X[:, 0]
        )
        pd = partial_dependence(rf, X, 0)
        assert "confidence band" not in dependence_plot(pd)
