"""Tests for the GLM/MARS counter models."""

import numpy as np
import pytest

from repro.core.counter_models import CounterModelSet


def synthetic_series(n=40, seed=0):
    rng = np.random.default_rng(seed)
    x = np.linspace(64, 4096, n)
    return x, {
        "linear_counter": 3.0 * x + 100.0,
        "cubic_counter": x**3 / 1e6,
        "saturating_counter": 50.0 * x / (x + 500.0),  # needs MARS/hinges
        "constant_counter": np.full(n, 7.0),
        "noisy_counter": 2 * x + 10 * rng.normal(size=n),
    }


class TestFitting:
    def test_all_counters_modeled(self):
        x, series = synthetic_series()
        cms = CounterModelSet().fit_arrays(x, series)
        assert set(cms.models) == set(series)

    def test_polynomials_get_glm(self):
        x, series = synthetic_series()
        cms = CounterModelSet().fit_arrays(x, series)
        assert cms.models["linear_counter"].kind == "glm"
        assert cms.models["cubic_counter"].kind == "glm"
        assert cms.models["linear_counter"].r_squared > 0.999

    def test_constant_counter_exact(self):
        x, series = synthetic_series()
        cms = CounterModelSet().fit_arrays(x, series)
        m = cms.models["constant_counter"]
        assert m.r_squared == 1.0
        assert np.allclose(m.predict(np.array([100.0, 9999.0])), 7.0)

    def test_prefer_mars_mode(self):
        x, series = synthetic_series()
        cms = CounterModelSet(prefer_mars=True).fit_arrays(x, series)
        kinds = {m.kind for m in cms.models.values() if m.counter != "constant_counter"}
        assert "mars" in kinds

    def test_characteristic_not_modeled(self):
        x, series = synthetic_series()
        series["size"] = x.copy()
        cms = CounterModelSet(characteristic="size").fit_arrays(x, series)
        assert "size" not in cms.models

    def test_quality_table(self):
        x, series = synthetic_series()
        rows = CounterModelSet().fit_arrays(x, series).quality_table()
        assert len(rows) == len(series)
        names = [r[0] for r in rows]
        assert names == sorted(names)

    def test_average_r_squared(self):
        x, series = synthetic_series()
        cms = CounterModelSet().fit_arrays(x, series)
        assert 0.9 < cms.average_r_squared <= 1.0

    def test_average_requires_models(self):
        with pytest.raises(ValueError):
            CounterModelSet().average_r_squared


class TestPrediction:
    def test_interpolation_accurate(self):
        x, series = synthetic_series()
        cms = CounterModelSet().fit_arrays(x, series)
        probe = np.array([1000.0, 2000.0])
        pred = cms.predict_counters(probe)
        assert np.allclose(pred["linear_counter"], 3 * probe + 100, rtol=0.01)
        assert np.allclose(pred["cubic_counter"], probe**3 / 1e6, rtol=0.05)

    def test_predictor_rows_order(self):
        x, series = synthetic_series()
        cms = CounterModelSet(characteristic="size").fit_arrays(x, series)
        rows = cms.predictor_rows(
            np.array([512.0]), ["linear_counter", "size", "cubic_counter"]
        )
        assert rows.shape == (1, 3)
        assert rows[0, 1] == 512.0

    def test_predictor_rows_missing_model(self):
        x, series = synthetic_series()
        cms = CounterModelSet().fit_arrays(x, series)
        with pytest.raises(KeyError):
            cms.predictor_rows(np.array([1.0]), ["unmodeled"])

    def test_scalar_input(self):
        x, series = synthetic_series()
        cms = CounterModelSet().fit_arrays(x, series)
        pred = cms.predict_counters(777.0)
        assert pred["linear_counter"].shape == (1,)
