"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_analyze_defaults(self):
        args = build_parser().parse_args(["analyze", "reduce1"])
        assert args.arch == "GTX580"
        assert args.response == "time"
        assert args.repeats == 3

    def test_predict_requires_sizes(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["predict", "matrixMul"])


class TestCommands:
    def test_list_kernels(self, capsys):
        assert main(["list-kernels"]) == 0
        out = capsys.readouterr().out
        assert "reduce1" in out
        assert "matrixMul" in out
        assert "needleman-wunsch" in out

    def test_list_archs(self, capsys):
        assert main(["list-archs"]) == 0
        out = capsys.readouterr().out
        assert "GTX580" in out and "K20m" in out
        assert "mbw" in out

    def test_profile(self, capsys):
        assert main(["profile", "vectorAdd", "65536"]) == 0
        out = capsys.readouterr().out
        assert "gld_request" in out
        assert "execution time" in out

    def test_profile_kepler_reports_power(self, capsys):
        assert main(["profile", "vectorAdd", "65536", "--arch", "K20m"]) == 0
        out = capsys.readouterr().out
        assert "average power" in out

    def test_analyze_small(self, capsys):
        rc = main([
            "analyze", "reduce2", "--sizes",
            ",".join(str(1 << p) for p in range(14, 23)),
            "--replicates", "2", "--trees", "40", "--repeats", "1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Variable importance" in out
        assert "bottleneck" in out

    def test_predict_small(self, capsys):
        rc = main([
            "predict", "vectorAdd", "--sizes", "100000,400000",
            "--trees", "40", "--replicates", "2",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "predicted time" in out
        assert "ms" in out

    def test_unknown_kernel_exits(self):
        with pytest.raises(SystemExit, match="unknown kernel"):
            main(["profile", "nonexistent", "100"])

    def test_unknown_arch_exits(self):
        with pytest.raises(SystemExit, match="unknown architecture"):
            main(["profile", "vectorAdd", "100", "--arch", "RTX9090"])

    def test_bad_sizes_exit(self):
        with pytest.raises(SystemExit, match="could not parse"):
            main(["predict", "vectorAdd", "--sizes", "abc"])


SMALL_ANALYZE = [
    "analyze", "reduce2", "--sizes",
    ",".join(str(1 << p) for p in range(14, 22)),
    "--trees", "30", "--repeats", "1",
]


class TestJsonFormat:
    def test_list_kernels_json(self, capsys):
        assert main(["list-kernels", "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        names = {k["kernel"] for k in data["kernels"]}
        assert {"reduce1", "matrixMul"} <= names

    def test_list_archs_json(self, capsys):
        assert main(["list-archs", "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        by_name = {a["arch"]: a for a in data["archs"]}
        assert "GTX580" in by_name
        assert "mbw" in by_name["GTX580"]["machine_metrics"]

    def test_profile_json(self, capsys):
        assert main(["profile", "vectorAdd", "65536",
                     "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["kernel"] == "vectorAdd"
        assert data["time_s"] > 0
        assert "gld_request" in data["counters"]

    def test_analyze_json(self, capsys):
        assert main(SMALL_ANALYZE + ["--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["kernel"] == "reduce2"
        assert data["bottlenecks"]
        assert "trace" not in data

    def test_predict_json(self, capsys):
        assert main([
            "predict", "vectorAdd", "--sizes", "100000,400000",
            "--trees", "30", "--replicates", "2", "--format", "json",
        ]) == 0
        data = json.loads(capsys.readouterr().out)
        assert [p["size"] for p in data["predictions"]] == [100000, 400000]
        assert all(p["predicted_time_s"] > 0 for p in data["predictions"])


class TestTracing:
    def test_analyze_trace_json_has_span_tree(self, capsys):
        assert main(SMALL_ANALYZE + [
            "--jobs", "2", "--trace", "--format", "json",
        ]) == 0
        data = json.loads(capsys.readouterr().out)
        names = [s["name"] for s in data["trace"]["spans"]]
        # the acceptance tree: campaign fan-out (merged children),
        # per-problem profiling, and the forest fit
        assert "campaign.run" in names
        assert names.count("profile") == 8
        assert "forest.fit" in names
        assert "blackforest.fit" in names
        # worker spans were merged in from child processes
        pids = {s["pid"] for s in data["trace"]["spans"]}
        assert len(pids) > 1
        assert data["trace"]["chrome_trace"]
        assert data["metrics"]["counter"]

    def test_analyze_trace_text_appends_tree(self, capsys):
        assert main(SMALL_ANALYZE + ["--trace"]) == 0
        out = capsys.readouterr().out
        assert "campaign.run" in out
        assert "profile" in out

    def test_trace_wrapper_text(self, capsys):
        assert main(["trace", "profile", "vectorAdd", "65536"]) == 0
        out = capsys.readouterr().out
        assert "gpusim.launch" in out

    def test_trace_wrapper_json_out_file(self, tmp_path, capsys):
        out_file = tmp_path / "trace.json"
        assert main([
            "trace", "--format", "json", "--out", str(out_file),
            "profile", "vectorAdd", "65536",
        ]) == 0
        data = json.loads(out_file.read_text())
        assert {"command", "spans", "chrome_trace", "metrics"} <= set(data)
        assert any(s["name"] == "profile" for s in data["spans"])

    def test_trace_wrapper_rejects_nesting(self):
        with pytest.raises(SystemExit, match="nest"):
            main(["trace", "trace", "profile", "vectorAdd", "65536"])

    def test_trace_wrapper_requires_command(self):
        with pytest.raises(SystemExit):
            main(["trace"])


class TestNormalizedFlags:
    """--seed / --jobs / --format are uniform across subcommands."""

    @pytest.mark.parametrize("argv", [
        ["profile", "k", "1"],
        ["analyze", "k"],
        ["predict", "k", "--sizes", "1"],
        ["transfer", "k"],
    ])
    def test_seed_everywhere(self, argv):
        args = build_parser().parse_args(argv + ["--seed", "9"])
        assert args.seed == 9

    @pytest.mark.parametrize("argv", [
        ["analyze", "k"],
        ["predict", "k", "--sizes", "1"],
        ["transfer", "k"],
    ])
    def test_jobs_on_sweep_commands(self, argv):
        args = build_parser().parse_args(argv + ["--jobs", "4"])
        assert args.jobs == 4

    @pytest.mark.parametrize("argv", [
        ["list-kernels"],
        ["list-archs"],
        ["profile", "k", "1"],
        ["analyze", "k"],
        ["predict", "k", "--sizes", "1"],
        ["transfer", "k"],
        ["lint"],
        ["bench"],
    ])
    def test_format_everywhere(self, argv):
        args = build_parser().parse_args(argv + ["--format", "json"])
        assert args.format == "json"


class TestReportCommand:
    ARGS = [
        "report", "vectorAdd", "--sizes", "16384,65536,262144,1048576",
        "--replicates", "2", "--trees", "20", "--repeats", "2",
    ]

    def test_text_report_to_stdout(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "=== Bottleneck report: vectorAdd on GTX580 ===" in out
        assert "--- Fit quality ---" in out
        assert "--- Importance stability ---" in out
        assert "--- Event timeline ---" in out  # live run captures events

    def test_html_report_to_file(self, tmp_path, capsys):
        out = tmp_path / "report.html"
        assert main(self.ARGS + ["--format", "html", "--out", str(out)]) == 0
        html = out.read_text()
        assert html.startswith("<!DOCTYPE html>")
        assert "<svg" in html
        assert str(out) in capsys.readouterr().err

    def test_trace_flag_adds_hot_path_section(self, capsys):
        assert main(self.ARGS + ["--trace"]) == 0
        assert "Hot paths (span self-time)" in capsys.readouterr().out

    def test_report_from_saved_repository(self, tmp_path, capsys):
        from repro import GTX580, Campaign
        from repro.kernels import VectorAddKernel
        from repro.profiling import ProfileRepository

        campaign = Campaign(VectorAddKernel(), GTX580, rng=0).run(
            problems=[1 << 14, 1 << 16, 1 << 18, 1 << 20], replicates=2
        )
        ProfileRepository(tmp_path).save(campaign, tag="t1")
        code = main([
            "report", "vectorAdd", "--repo", str(tmp_path), "--tag", "t1",
            "--trees", "20", "--repeats", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Bottleneck report: vectorAdd on GTX580" in out

    def test_missing_repo_campaign_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot load"):
            main([
                "report", "vectorAdd", "--repo", str(tmp_path),
            ])

    def test_markdown_format(self, capsys):
        assert main(self.ARGS + ["--format", "md"]) == 0
        out = capsys.readouterr().out
        assert "# Bottleneck report: vectorAdd on GTX580" in out
        assert "| rank | predictor |" in out
