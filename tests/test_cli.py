"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_analyze_defaults(self):
        args = build_parser().parse_args(["analyze", "reduce1"])
        assert args.arch == "GTX580"
        assert args.response == "time"
        assert args.repeats == 3

    def test_predict_requires_sizes(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["predict", "matrixMul"])


class TestCommands:
    def test_list_kernels(self, capsys):
        assert main(["list-kernels"]) == 0
        out = capsys.readouterr().out
        assert "reduce1" in out
        assert "matrixMul" in out
        assert "needleman-wunsch" in out

    def test_list_archs(self, capsys):
        assert main(["list-archs"]) == 0
        out = capsys.readouterr().out
        assert "GTX580" in out and "K20m" in out
        assert "mbw" in out

    def test_profile(self, capsys):
        assert main(["profile", "vectorAdd", "65536"]) == 0
        out = capsys.readouterr().out
        assert "gld_request" in out
        assert "execution time" in out

    def test_profile_kepler_reports_power(self, capsys):
        assert main(["profile", "vectorAdd", "65536", "--arch", "K20m"]) == 0
        out = capsys.readouterr().out
        assert "average power" in out

    def test_analyze_small(self, capsys):
        rc = main([
            "analyze", "reduce2", "--sizes",
            ",".join(str(1 << p) for p in range(14, 23)),
            "--replicates", "2", "--trees", "40", "--repeats", "1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Variable importance" in out
        assert "bottleneck" in out

    def test_predict_small(self, capsys):
        rc = main([
            "predict", "vectorAdd", "--sizes", "100000,400000",
            "--trees", "40", "--replicates", "2",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "predicted time" in out
        assert "ms" in out

    def test_unknown_kernel_exits(self):
        with pytest.raises(SystemExit, match="unknown kernel"):
            main(["profile", "nonexistent", "100"])

    def test_unknown_arch_exits(self):
        with pytest.raises(SystemExit, match="unknown architecture"):
            main(["profile", "vectorAdd", "100", "--arch", "RTX9090"])

    def test_bad_sizes_exit(self):
        with pytest.raises(SystemExit, match="could not parse"):
            main(["predict", "vectorAdd", "--sizes", "abc"])
