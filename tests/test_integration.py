"""End-to-end integration tests across the whole toolchain."""

import numpy as np
import pytest

from repro import (
    BlackForest,
    Campaign,
    GTX580,
    K20M,
    CampaignKey,
    ProblemScalingPredictor,
    ProfileRepository,
    VectorAddKernel,
    bottleneck_report,
    kernel_registry,
)
from repro.core.hardware import HardwareScalingPredictor, common_predictors
from repro.kernels import ReductionKernel


class TestFullWorkflow:
    """Collect -> persist -> reload -> analyze -> report -> predict."""

    def test_time_response_workflow(self, tmp_path, reduce2_campaign):
        repo = ProfileRepository(tmp_path)
        repo.save(reduce2_campaign)
        reloaded = repo.load(
            CampaignKey(reduce2_campaign.kernel, reduce2_campaign.arch)
        )

        fit = BlackForest(n_trees=80, rng=1).fit(
            reloaded, include_characteristics=False
        )
        report = bottleneck_report(fit)
        assert fit.kernel in report
        assert fit.oob_explained_variance > 0.7

        # the fitted forest predicts the reloaded campaign's own rows
        pred = fit.forest.predict(fit.X_test)
        assert np.corrcoef(pred, fit.y_test)[0, 1] > 0.9

    def test_power_response_workflow(self, tmp_path):
        sizes = [int(s) for s in np.round(np.logspace(16, 22, 25, base=2.0))]
        campaign = Campaign(ReductionKernel(6), K20M, rng=0).run(problems=sizes)
        repo = ProfileRepository(tmp_path)
        repo.save(campaign, tag="power")
        reloaded = repo.load(CampaignKey("reduce6", "K20m", tag="power"))

        # power survives the repository roundtrip
        assert np.allclose(reloaded.powers(), campaign.powers())

        fit = BlackForest(n_trees=80, rng=1).fit(reloaded, response="power")
        assert fit.oob_explained_variance > 0.6

    def test_problem_scaling_workflow(self):
        # a dense sweep: piecewise-constant forests need nearby training
        # sizes to interpolate a steep monotone response well
        sizes = [int(s) for s in np.round(np.logspace(15, 23.5, 30, base=2.0))]
        campaign = Campaign(VectorAddKernel(), GTX580, rng=0).run(
            problems=sizes, replicates=2
        )
        predictor = ProblemScalingPredictor(
            BlackForest(n_trees=80, use_pca=False, min_samples_leaf=3, rng=1),
            rng=2,
        ).fit(campaign)
        # unseen sizes inside the trained range (forests do not
        # extrapolate beyond their training response)
        unseen = Campaign(VectorAddKernel(), GTX580, rng=50).run(
            problems=[100_000, 1_000_000, 5_000_000]
        )
        report = predictor.assess(unseen)
        assert report.explained_variance > 0.8

    def test_cross_arch_workflow(self):
        kernel = VectorAddKernel()
        sizes = [int(s) for s in np.round(np.logspace(15, 24, 30, base=2.0))]
        fermi = Campaign(kernel, GTX580, rng=0).run(problems=sizes, replicates=2)
        kepler = Campaign(kernel, K20M, rng=1).run(problems=sizes, replicates=2)
        common = common_predictors(fermi, kepler)
        hw = HardwareScalingPredictor(
            n_trees=100, min_samples_leaf=3, rng=3
        ).fit(fermi, common=common)
        result = hw.assess(kepler)
        # a trivially bandwidth-bound kernel transfers across GPUs:
        # predictions track the measured times tightly in rank/shape
        corr = np.corrcoef(
            result.report.predicted_s, result.report.measured_s
        )[0, 1]
        assert corr > 0.9
        assert result.report.explained_variance > 0.5


class TestRegistryWideAnalysis:
    """Every registered kernel must survive a mini end-to-end analysis."""

    @pytest.mark.parametrize("name", sorted(kernel_registry()))
    def test_kernel_analyzes(self, name):
        from repro import XEON_E5

        kernel = kernel_registry()[name]
        arch = XEON_E5 if name.startswith("cpu-") else GTX580
        sweep = kernel.default_sweep()
        probe = sweep[:: max(1, len(sweep) // 10)][:10]
        campaign = Campaign(kernel, arch, rng=0).run(
            problems=probe, replicates=2
        )
        fit = BlackForest(
            n_trees=40, use_pca=False, top_k=4, rng=1
        ).fit(campaign)
        assert fit.importance.names
        assert np.isfinite(fit.oob_mse)
        assert fit.bottlenecks  # something is always detected


class TestDeterminism:
    def test_identical_seeds_identical_campaigns(self):
        a = Campaign(VectorAddKernel(), GTX580, rng=42).run(problems=[1 << 16])
        b = Campaign(VectorAddKernel(), GTX580, rng=42).run(problems=[1 << 16])
        assert a.records[0].time_s == b.records[0].time_s
        assert a.records[0].counters == b.records[0].counters

    def test_different_archs_different_counters(self):
        a = Campaign(VectorAddKernel(), GTX580, rng=0).run(problems=[1 << 18])
        b = Campaign(VectorAddKernel(), K20M, rng=0).run(problems=[1 << 18])
        # same requests, different transaction geometry
        assert (a.records[0].counters["gld_request"]
                == pytest.approx(b.records[0].counters["gld_request"], rel=0.1))
        # but per-cycle metrics differ (different clocks/widths)
        assert a.records[0].counters["ipc"] != pytest.approx(
            b.records[0].counters["ipc"], rel=0.05
        )
