"""Sharded v2 layout: shard routing, v1 compat, migration, stats.

The migration contract under test: a flat v1 repository opens with a
deprecation warning but reads fine, ``migrate()`` moves every campaign
into its hash bucket **bit-identically** (``os.replace`` only — file
contents untouched), and the result verifies clean. The deprecation-
strict CI job runs this file with ``-W error::DeprecationWarning``, so
every v1-layout open is wrapped in ``pytest.warns``.
"""

import json
import os

import numpy as np
import pytest

from repro._compat import reset_deprecation_warnings
from repro.core.store import SHARD_DIR, shard_of
from repro.gpusim import GTX580
from repro.kernels import VectorAddKernel
from repro.profiling.campaign import Campaign
from repro.profiling.repository import CampaignKey, ProfileRepository

KEY = CampaignKey("vectorAdd", "GTX580")


@pytest.fixture(scope="module")
def campaign():
    return Campaign(VectorAddKernel(), GTX580, rng=0).run(
        problems=[1 << 14, 1 << 15], replicates=2
    )


def flatten_to_v1(root):
    """Demote a v2 tree to the flat v1 layout (campaign dirs at root)."""
    for cdir in root.glob(f"{SHARD_DIR}/*/*"):
        if cdir.is_dir():
            os.replace(cdir, root / cdir.name)
    for bucket in (root / SHARD_DIR).glob("*"):
        for leftover in bucket.glob("*"):
            leftover.unlink()
        bucket.rmdir()
    (root / SHARD_DIR).rmdir()
    (root / "repo.json").unlink()


class TestShardedLayout:
    def test_new_repository_is_v2(self, tmp_path):
        repo = ProfileRepository(tmp_path)
        assert repo.layout == 2
        marker = json.loads((tmp_path / "repo.json").read_text())
        assert marker == {"schema": "repro-repo/1", "layout": 2}

    def test_save_lands_in_hash_bucket(self, campaign, tmp_path):
        repo = ProfileRepository(tmp_path)
        cdir = repo.save(campaign)
        bucket = shard_of(KEY.dirname)
        assert cdir == tmp_path / SHARD_DIR / bucket / KEY.dirname
        assert (cdir / "runs.csv").is_file()
        assert (tmp_path / SHARD_DIR / bucket / "shard.json").is_file()

    def test_shard_manifest_tracks_campaign(self, campaign, tmp_path):
        repo = ProfileRepository(tmp_path)
        repo.save(campaign)
        manifest = json.loads(
            (tmp_path / SHARD_DIR / shard_of(KEY.dirname) / "shard.json")
            .read_text()
        )
        assert manifest["schema"] == "repro-shard/1"
        entry = manifest["campaigns"][KEY.dirname]
        assert entry["meta"]["kernel"] == "vectorAdd"
        assert "runs.csv" in entry["stat"]
        assert entry["verified"] is None  # fresh save: not yet verified

    def test_roundtrip_through_shards(self, campaign, tmp_path):
        repo = ProfileRepository(tmp_path)
        repo.save(campaign)
        assert repo.has(KEY)
        assert [k for k in repo.iter_keys()] == [KEY]
        loaded = repo.load(KEY)
        assert len(loaded) == len(campaign)

    def test_stats(self, campaign, tmp_path):
        repo = ProfileRepository(tmp_path)
        repo.save(campaign)
        s = repo.stats()
        assert s["layout"] == 2
        assert s["campaigns"] == 1
        assert s["runs"] == len(campaign)
        assert s["shards"]["used"] == 1
        assert s["shards"]["total"] == 256
        assert s["shards"]["max_fill"] == 1
        assert s["index"] == {"fresh": 1, "stale": 0, "missing": 0}


class TestVerifySnapshots:
    def test_clean_verify_records_snapshot(self, campaign, tmp_path):
        repo = ProfileRepository(tmp_path)
        repo.save(campaign)
        assert repo.verify_all() == {KEY.dirname: []}
        manifest = json.loads(
            (tmp_path / SHARD_DIR / shard_of(KEY.dirname) / "shard.json")
            .read_text()
        )
        snap = manifest["campaigns"][KEY.dirname]["verified"]
        assert snap is not None and "runs.csv" in snap

    def test_mutation_invalidates_fast_path(self, campaign, tmp_path):
        repo = ProfileRepository(tmp_path)
        cdir = repo.save(campaign)
        assert repo.verify_all() == {KEY.dirname: []}
        data = (cdir / "runs.csv").read_bytes()
        (cdir / "runs.csv").write_bytes(data[:-10] + b"corrupted\n")
        findings = ProfileRepository(tmp_path).verify_all()
        assert KEY.dirname in findings
        assert any("corrupt" in f for f in findings[KEY.dirname])

    def test_full_ignores_snapshots(self, campaign, tmp_path):
        repo = ProfileRepository(tmp_path)
        cdir = repo.save(campaign)
        assert repo.verify_all() == {KEY.dirname: []}
        # Tamper while faking the recorded stat so the fast path would
        # be fooled; --full must still re-hash and catch it.
        st = (cdir / "runs.csv").stat()
        data = (cdir / "runs.csv").read_bytes()
        swapped = data.replace(b"0", b"1", 1)
        assert swapped != data and len(swapped) == len(data)
        (cdir / "runs.csv").write_bytes(swapped)
        os.utime(cdir / "runs.csv", ns=(st.st_atime_ns, st.st_mtime_ns))
        assert repo.verify_all() == {KEY.dirname: []}  # fast path fooled
        findings = repo.verify_all(full=True)
        assert any("corrupt" in f for f in findings[KEY.dirname])


class TestV1Compat:
    @pytest.fixture(autouse=True)
    def _fresh_shims(self):
        reset_deprecation_warnings()
        yield
        reset_deprecation_warnings()

    def _make_v1(self, campaign, root):
        ProfileRepository(root).save(campaign)
        flatten_to_v1(root)

    def test_flat_layout_opens_with_warning(self, campaign, tmp_path):
        self._make_v1(campaign, tmp_path)
        with pytest.warns(DeprecationWarning, match="repro repo migrate"):
            repo = ProfileRepository(tmp_path)
        assert repo.layout == 1
        loaded = repo.load(KEY)
        assert len(loaded) == len(campaign)

    def test_v1_matrix_works(self, campaign, tmp_path):
        self._make_v1(campaign, tmp_path)
        with pytest.warns(DeprecationWarning):
            repo = ProfileRepository(tmp_path)
        X, y, names = repo.matrix(KEY)
        X2, y2, n2 = campaign.matrix()
        assert names == n2
        assert np.array_equal(X, X2) and np.array_equal(y, y2)

    def test_migrate_roundtrips_bit_identically(self, campaign, tmp_path):
        self._make_v1(campaign, tmp_path)
        before = {
            p.name: p.read_bytes()
            for p in (tmp_path / KEY.dirname).iterdir()
        }
        with pytest.warns(DeprecationWarning):
            repo = ProfileRepository(tmp_path)
        summary = repo.migrate()
        assert summary["migrated"] == 1
        assert summary["findings"] == {}
        cdir = tmp_path / SHARD_DIR / shard_of(KEY.dirname) / KEY.dirname
        for name, payload in before.items():
            assert (cdir / name).read_bytes() == payload
        # Reopens as v2, no warning, same data.
        repo2 = ProfileRepository(tmp_path)
        assert repo2.layout == 2
        X, y, names = repo2.matrix(KEY)
        X2, y2, _ = campaign.matrix()
        assert np.array_equal(X, X2) and np.array_equal(y, y2)

    def test_migrate_builds_missing_index(self, campaign, tmp_path):
        self._make_v1(campaign, tmp_path)
        (tmp_path / KEY.dirname / "matrix.json").unlink()
        (tmp_path / KEY.dirname / "matrix.npy").unlink()
        with pytest.warns(DeprecationWarning):
            repo = ProfileRepository(tmp_path)
        summary = repo.migrate()
        assert summary["indexed"] == 1
        assert repo.stats()["index"]["fresh"] == 1

    def test_migrate_is_idempotent(self, campaign, tmp_path):
        self._make_v1(campaign, tmp_path)
        with pytest.warns(DeprecationWarning):
            repo = ProfileRepository(tmp_path)
        repo.migrate()
        again = repo.migrate()
        assert again["migrated"] == 0
        assert again["findings"] == {}

    def test_v1_fits_match_v2_fits(self, campaign, tmp_path):
        """Acceptance: fits from v1-flat and v2-sharded are bit-identical."""
        from repro.ml.forest import RandomForestRegressor

        self._make_v1(campaign, tmp_path)
        with pytest.warns(DeprecationWarning):
            v1 = ProfileRepository(tmp_path)
        X1, y1, n1 = v1.matrix(KEY)
        f1 = RandomForestRegressor(n_trees=6, rng=5).fit(X1, y1, n1)
        v1.migrate()
        v2 = ProfileRepository(tmp_path)
        X2, y2, n2 = v2.matrix(KEY)
        assert np.array_equal(X1, X2) and np.array_equal(y1, y2)
        f2 = RandomForestRegressor(n_trees=6, rng=5).fit(X2, y2, n2)
        probe = X1[:4]
        assert np.array_equal(f1.predict(probe), f2.predict(probe))
        assert np.array_equal(f1.importance_, f2.importance_)


class TestQuarantineV2:
    def test_quarantine_moves_and_forgets(self, campaign, tmp_path):
        repo = ProfileRepository(tmp_path)
        cdir = repo.save(campaign)
        (cdir / "runs.csv").write_bytes(b"garbage\n")
        target = repo.quarantine(KEY)
        assert target == tmp_path / "_quarantine" / KEY.dirname
        assert target.is_dir()
        assert not repo.has(KEY)
        assert repo.verify_all() == {}
        manifest = json.loads(
            (tmp_path / SHARD_DIR / shard_of(KEY.dirname) / "shard.json")
            .read_text()
        )
        assert KEY.dirname not in manifest["campaigns"]
