"""Repository integrity: checksums, verify/quarantine, legacy loads."""

import json

import pytest

from repro._compat import reset_deprecation_warnings
from repro.faults import FaultPlan, FaultSpec, fault_injection
from repro.gpusim import GTX580
from repro.kernels import VectorAddKernel
from repro.profiling import (
    Campaign,
    CampaignKey,
    ProfileRepository,
    RepositoryIntegrityError,
)


@pytest.fixture(scope="module")
def result():
    kernel = VectorAddKernel()
    return Campaign(kernel, GTX580, rng=2).run(
        problems=kernel.default_sweep()[:3]
    )


def _flip_middle_byte(path) -> None:
    data = bytearray(path.read_bytes())
    data[len(data) // 2] ^= 0xFF
    path.write_bytes(bytes(data))


class TestChecksums:
    def test_clean_roundtrip_verifies(self, tmp_path, result):
        repo = ProfileRepository(tmp_path)
        repo.save(result, seed=2)
        key = CampaignKey(result.kernel, result.arch)
        assert repo.verify(key) == []
        loaded = repo.load(key)
        assert len(loaded.records) == len(result.records)
        assert loaded.records[0].counters == result.records[0].counters

    def test_flipped_byte_in_data_fails_load(self, tmp_path, result):
        repo = ProfileRepository(tmp_path)
        cdir = repo.save(result)
        _flip_middle_byte(cdir / "runs.csv")
        key = CampaignKey(result.kernel, result.arch)
        with pytest.raises(RepositoryIntegrityError, match="corrupt"):
            repo.load(key)
        # Depending on where the byte lands the file is either invalid
        # UTF-8 or valid text with a wrong checksum; both are "corrupt".
        assert any("corrupt" in f for f in repo.verify(key))

    def test_corrupt_meta_fails_load(self, tmp_path, result):
        repo = ProfileRepository(tmp_path)
        cdir = repo.save(result)
        (cdir / "meta.json").write_text('{"kernel": "vecto')
        with pytest.raises(RepositoryIntegrityError, match="corrupt"):
            repo.load(CampaignKey(result.kernel, result.arch))

    def test_missing_data_file_fails_load(self, tmp_path, result):
        repo = ProfileRepository(tmp_path)
        cdir = repo.save(result)
        (cdir / "runs.csv").unlink()
        with pytest.raises(RepositoryIntegrityError, match="corrupt"):
            repo.load(CampaignKey(result.kernel, result.arch))

    def test_manifest_records_data_checksums(self, tmp_path, result):
        repo = ProfileRepository(tmp_path)
        repo.save(result)
        manifest = repo.load_manifest(CampaignKey(result.kernel, result.arch))
        assert sorted(manifest.checksums) == ["meta.json", "runs.csv"]


class TestInjectedWriteFaults:
    def test_torn_write_is_caught_by_verify(self, tmp_path, result):
        repo = ProfileRepository(tmp_path)
        plan = FaultPlan([
            FaultSpec("repository.write", "torn_file",
                      match={"file": "runs.csv"})
        ])
        with fault_injection(plan):
            repo.save(result)
        key = CampaignKey(result.kernel, result.arch)
        assert any("checksum mismatch" in f for f in repo.verify(key))
        with pytest.raises(RepositoryIntegrityError, match="corrupt"):
            repo.load(key)

    def test_corrupt_write_keeps_length_but_fails_checksum(
        self, tmp_path, result
    ):
        repo = ProfileRepository(tmp_path)
        plan = FaultPlan([
            FaultSpec("repository.write", "corrupt_file",
                      match={"file": "runs.csv"})
        ])
        with fault_injection(plan):
            cdir = repo.save(result)
        clean_len = len(
            ProfileRepository(tmp_path / "clean").save(result)
            .joinpath("runs.csv").read_bytes()
        )
        assert len((cdir / "runs.csv").read_bytes()) == clean_len
        assert any(
            "checksum mismatch" in f
            for f in repo.verify(CampaignKey(result.kernel, result.arch))
        )


class TestQuarantine:
    def test_quarantine_moves_damage_aside(self, tmp_path, result):
        repo = ProfileRepository(tmp_path)
        cdir = repo.save(result)
        _flip_middle_byte(cdir / "runs.csv")
        key = CampaignKey(result.kernel, result.arch)
        moved = repo.quarantine(key)
        assert moved.parent.name == "_quarantine"
        assert (moved / "runs.csv").exists()  # evidence preserved
        assert not repo.has(key)
        assert repo.list_campaigns() == []
        assert repo.verify_all() == {}  # quarantine area is skipped
        with pytest.raises(FileNotFoundError):
            repo.load(key)

    def test_quarantine_dedupes_repeat_offenders(self, tmp_path, result):
        repo = ProfileRepository(tmp_path)
        key = CampaignKey(result.kernel, result.arch)
        repo.save(result)
        first = repo.quarantine(key)
        repo.save(result)
        second = repo.quarantine(key)
        assert first != second and second.name.endswith(".1")

    def test_quarantine_missing_campaign_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ProfileRepository(tmp_path).quarantine(CampaignKey("k", "a"))


class TestLegacyEntries:
    def test_manifestless_campaign_loads_with_warning(self, tmp_path, result):
        repo = ProfileRepository(tmp_path)
        cdir = repo.save(result, tag="legacy-nomanifest")
        (cdir / "manifest.json").unlink()
        reset_deprecation_warnings()
        key = CampaignKey(result.kernel, result.arch, tag="legacy-nomanifest")
        with pytest.warns(DeprecationWarning, match="no provenance manifest"):
            loaded = repo.load(key)
        assert len(loaded.records) == len(result.records)
        findings = repo.verify(key)
        assert any("legacy" in f for f in findings)

    def test_meta_missing_new_keys_loads_with_warning(self, tmp_path, result):
        # A campaign saved before family/tag/n_runs/column lists existed
        # must load (reconstructed from the CSV header), not KeyError.
        repo = ProfileRepository(tmp_path)
        cdir = repo.save(result, tag="legacy-meta")
        meta = json.loads((cdir / "meta.json").read_text())
        stripped = {"kernel": meta["kernel"], "arch": meta["arch"]}
        (cdir / "meta.json").write_text(json.dumps(stripped))
        (cdir / "manifest.json").unlink()  # pre-manifest era too
        reset_deprecation_warnings()
        key = CampaignKey(result.kernel, result.arch, tag="legacy-meta")
        with pytest.warns(DeprecationWarning, match="older version"):
            loaded = repo.load(key)
        assert len(loaded.records) == len(result.records)
        assert loaded.family == "unknown"
        assert loaded.records[0].counters == result.records[0].counters

    def test_list_campaigns_skips_unparsable_meta(self, tmp_path, result):
        repo = ProfileRepository(tmp_path)
        repo.save(result, tag="good")
        bad = repo.save(result, tag="bad")
        (bad / "meta.json").write_text("{broken")
        reset_deprecation_warnings()
        with pytest.warns(DeprecationWarning, match="skipping campaign"):
            metas = repo.list_campaigns()
        assert [m["tag"] for m in metas] == ["good"]
