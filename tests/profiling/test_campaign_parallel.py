"""Bit-for-bit determinism of parallel campaign sweeps.

``Campaign.run(n_jobs=K)`` must collect exactly the records of the
serial sweep for a fixed seed: every problem draws its noise from its
own spawned child stream, and workers return records in problem order.
"""

import numpy as np
import pytest

from repro.gpusim import GTX580, K20M
from repro.kernels import MatMulKernel, VectorAddKernel
from repro.profiling import Campaign, Profiler


def _records_equal(a, b) -> bool:
    if len(a) != len(b):
        return False
    for ra, rb in zip(a, b):
        if (
            ra.problem != rb.problem
            or ra.replicate != rb.replicate
            or ra.time_s != rb.time_s
            or ra.counters != rb.counters
            or ra.power_w != rb.power_w
            or ra.characteristics != rb.characteristics
        ):
            return False
    return True


class TestCampaignParallelDeterminism:
    @pytest.mark.parametrize("n_jobs", [2, -1])
    def test_parallel_bit_identical_to_serial(self, n_jobs):
        kernel = VectorAddKernel()
        problems = kernel.default_sweep()[:5]
        serial = Campaign(kernel, GTX580, rng=3).run(
            problems=problems, replicates=2, n_jobs=1
        )
        parallel = Campaign(kernel, GTX580, rng=3).run(
            problems=problems, replicates=2, n_jobs=n_jobs
        )
        assert _records_equal(serial.records, parallel.records)

    def test_parallel_on_kepler_keeps_power_readings(self):
        kernel = MatMulKernel()
        problems = kernel.default_sweep()[:4]
        serial = Campaign(kernel, K20M, rng=1).run(problems=problems, n_jobs=1)
        parallel = Campaign(kernel, K20M, rng=1).run(problems=problems, n_jobs=2)
        assert all(r.power_w is not None for r in parallel.records)
        assert _records_equal(serial.records, parallel.records)

    def test_more_jobs_than_problems(self):
        kernel = VectorAddKernel()
        problems = kernel.default_sweep()[:2]
        a = Campaign(kernel, GTX580, rng=9).run(problems=problems, n_jobs=16)
        b = Campaign(kernel, GTX580, rng=9).run(problems=problems, n_jobs=1)
        assert _records_equal(a.records, b.records)

    def test_n_jobs_zero_rejected(self):
        kernel = VectorAddKernel()
        with pytest.raises(ValueError):
            Campaign(kernel, GTX580, rng=0).run(
                problems=kernel.default_sweep()[:1], n_jobs=0
            )

    def test_run_reproducible_for_fixed_seed(self):
        kernel = VectorAddKernel()
        problems = kernel.default_sweep()[:3]
        a = Campaign(kernel, GTX580, rng=21).run(problems=problems)
        b = Campaign(kernel, GTX580, rng=21).run(problems=problems)
        assert _records_equal(a.records, b.records)


class TestProfilerRngOverride:
    def test_explicit_stream_overrides_internal(self):
        kernel = VectorAddKernel()
        problem = kernel.default_sweep()[0]
        # Same override stream => same record, regardless of the
        # profiler's own (differently seeded) internal stream.
        rec_a = Profiler(GTX580, rng=0).profile(
            kernel, problem, rng=np.random.default_rng(42)
        )[0]
        rec_b = Profiler(GTX580, rng=1).profile(
            kernel, problem, rng=np.random.default_rng(42)
        )[0]
        assert rec_a.time_s == rec_b.time_s
        assert rec_a.counters == rec_b.counters

    def test_default_uses_internal_stream(self):
        kernel = VectorAddKernel()
        problem = kernel.default_sweep()[0]
        a = Profiler(GTX580, rng=5).profile(kernel, problem)[0]
        b = Profiler(GTX580, rng=5).profile(kernel, problem)[0]
        assert a.time_s == b.time_s
