"""Checkpoint/resume: interrupted campaigns restart bit-identically."""

import json

import pytest

from repro.faults import FaultPlan, FaultSpec, RetryPolicy, fault_injection
from repro.gpusim import GTX580
from repro.kernels import VectorAddKernel
from repro.profiling import Campaign, CampaignCheckpoint, CheckpointMismatch

KERNEL = VectorAddKernel()
PROBLEMS = KERNEL.default_sweep()[:5]


def _campaign(rng=11):
    return Campaign(KERNEL, GTX580, rng=rng)


def _records_equal(a, b) -> bool:
    if len(a) != len(b):
        return False
    for ra, rb in zip(a, b):
        if (
            ra.problem != rb.problem
            or ra.replicate != rb.replicate
            or ra.time_s != rb.time_s
            or ra.power_w != rb.power_w
            or ra.counters != rb.counters
            or ra.characteristics != rb.characteristics
            or ra.machine != rb.machine
        ):
            return False
    return True


def _truncate_to_entries(path, n_entries: int) -> None:
    """Keep the header plus the first ``n_entries`` completion lines —
    i.e. reproduce the file as it looked mid-run."""
    lines = path.read_text().splitlines()
    path.write_text("\n".join(lines[: 1 + n_entries]) + "\n")


class TestResumeBitIdentity:
    @pytest.mark.parametrize("resume_jobs", [1, 2])
    def test_interrupted_run_resumes_bit_identically(self, tmp_path, resume_jobs):
        ckpt = tmp_path / "sweep.ckpt"
        full = _campaign().run(
            problems=PROBLEMS, replicates=2, checkpoint=ckpt
        )
        # Simulate the interruption: only 2 of 5 problems had completed.
        _truncate_to_entries(ckpt, 2)
        resumed = _campaign().run(
            problems=PROBLEMS, replicates=2, n_jobs=resume_jobs,
            checkpoint=ckpt,
        )
        assert _records_equal(resumed.records, full.records)

    def test_completed_checkpoint_skips_all_work(self, tmp_path):
        ckpt = tmp_path / "sweep.ckpt"
        full = _campaign().run(problems=PROBLEMS, checkpoint=ckpt)
        # Everything would fail now — but nothing should be re-profiled.
        poison = FaultPlan([FaultSpec("profiler.launch", "raise")])
        with fault_injection(poison):
            resumed = _campaign().run(problems=PROBLEMS, checkpoint=ckpt)
        assert _records_equal(resumed.records, full.records)
        assert not resumed.quarantined

    def test_torn_trailing_line_is_discarded(self, tmp_path):
        ckpt = tmp_path / "sweep.ckpt"
        full = _campaign().run(problems=PROBLEMS, checkpoint=ckpt)
        _truncate_to_entries(ckpt, 3)
        with open(ckpt, "a") as fh:
            fh.write('{"index": 3, "records": [{"probl')  # torn append
        resumed = _campaign().run(problems=PROBLEMS, checkpoint=ckpt)
        assert _records_equal(resumed.records, full.records)

    def test_quarantines_are_checkpointed_too(self, tmp_path):
        ckpt = tmp_path / "sweep.ckpt"
        plan = FaultPlan([
            FaultSpec("profiler.launch", "raise", match={"problem": PROBLEMS[1]})
        ])
        with fault_injection(plan):
            first = _campaign().run(
                problems=PROBLEMS, checkpoint=ckpt,
                retry=RetryPolicy(max_attempts=1),
            )
        assert len(first.quarantined) == 1
        # Resume with no plan installed: the quarantine is replayed from
        # the journal, not healed by silently re-running the launch.
        resumed = _campaign().run(problems=PROBLEMS, checkpoint=ckpt)
        assert [q.to_dict() for q in resumed.quarantined] == [
            q.to_dict() for q in first.quarantined
        ]
        assert _records_equal(resumed.records, first.records)


class TestFingerprintRefusals:
    def test_different_seed_is_refused(self, tmp_path):
        ckpt = tmp_path / "sweep.ckpt"
        _campaign(rng=11).run(problems=PROBLEMS, checkpoint=ckpt)
        with pytest.raises(CheckpointMismatch, match="different campaign"):
            _campaign(rng=12).run(problems=PROBLEMS, checkpoint=ckpt)

    def test_different_sweep_is_refused(self, tmp_path):
        ckpt = tmp_path / "sweep.ckpt"
        _campaign().run(problems=PROBLEMS, checkpoint=ckpt)
        with pytest.raises(CheckpointMismatch):
            _campaign().run(problems=PROBLEMS[:3], checkpoint=ckpt)

    def test_different_replicates_is_refused(self, tmp_path):
        ckpt = tmp_path / "sweep.ckpt"
        _campaign().run(problems=PROBLEMS, replicates=1, checkpoint=ckpt)
        with pytest.raises(CheckpointMismatch):
            _campaign().run(problems=PROBLEMS, replicates=2, checkpoint=ckpt)

    def test_reusing_the_campaign_object_is_refused(self, tmp_path):
        # run() advances the RNG spawn counter, so a second run() on the
        # same object would draw different streams — refuse rather than
        # silently breaking bit-identity.
        ckpt = tmp_path / "sweep.ckpt"
        campaign = _campaign()
        campaign.run(problems=PROBLEMS, checkpoint=ckpt)
        with pytest.raises(CheckpointMismatch):
            campaign.run(problems=PROBLEMS, checkpoint=ckpt)

    def test_non_checkpoint_file_is_refused(self, tmp_path):
        bogus = tmp_path / "notes.txt"
        bogus.write_text("shopping list\n")
        with pytest.raises(CheckpointMismatch, match="bad header"):
            _campaign().run(problems=PROBLEMS, checkpoint=bogus)


class TestCheckpointFile:
    def test_file_is_jsonl_with_schema_header(self, tmp_path):
        ckpt = tmp_path / "sweep.ckpt"
        _campaign().run(problems=PROBLEMS, checkpoint=ckpt)
        lines = [json.loads(l) for l in ckpt.read_text().splitlines()]
        assert lines[0]["schema"] == "repro-checkpoint/1"
        assert lines[0]["fingerprint"]["n_problems"] == len(PROBLEMS)
        assert sorted(e["index"] for e in lines[1:]) == list(
            range(len(PROBLEMS))
        )

    def test_done_indices_union(self, tmp_path):
        ckpt = CampaignCheckpoint.open(tmp_path / "c.ckpt", {"k": 1})
        ckpt.record_result(0, [])
        ckpt.record_quarantine(2, {"problem": 1, "index": 2,
                                   "stage": "launch", "error": "x"})
        assert ckpt.done_indices == {0, 2}
