"""Resilient campaign execution under injected faults.

The contract (docs/robustness.md): a campaign run under a fault plan
*completes* — failing launches are retried and quarantined, crashed
workers cost only a chunk re-run — and its outcome (surviving records
AND quarantine set) is bit-identical for any ``n_jobs``, because fault
decisions hash the launch context rather than counting calls.
"""

import pytest

from repro.faults import FaultPlan, FaultSpec, RetryPolicy, fault_injection
from repro.gpusim import GTX580
from repro.kernels import VectorAddKernel
from repro.obs import collect
from repro.profiling import Campaign, QuarantinedRun


def _records_equal(a, b) -> bool:
    if len(a) != len(b):
        return False
    for ra, rb in zip(a, b):
        if (
            ra.problem != rb.problem
            or ra.replicate != rb.replicate
            or ra.time_s != rb.time_s
            or ra.counters != rb.counters
            or ra.characteristics != rb.characteristics
        ):
            return False
    return True


KERNEL = VectorAddKernel()
PROBLEMS = KERNEL.default_sweep()[:5]


def _chaos_plan() -> FaultPlan:
    """One permanently failing launch plus one worker crash."""
    return FaultPlan([
        FaultSpec("profiler.launch", "raise", match={"problem": PROBLEMS[1]}),
        FaultSpec("parallel.worker", "crash", match={"problem": PROBLEMS[3]}),
    ])


def _run(n_jobs: int, plan: FaultPlan | None, retry=None, rng=3):
    with fault_injection(plan):
        return Campaign(KERNEL, GTX580, rng=rng).run(
            problems=PROBLEMS, replicates=1, n_jobs=n_jobs, retry=retry
        )


class TestQuarantineNotAbort:
    def test_failing_launch_is_quarantined_not_fatal(self):
        result = _run(1, _chaos_plan())
        assert len(result.quarantined) == 1
        q = result.quarantined[0]
        assert q.problem == PROBLEMS[1]
        assert q.stage == "launch"
        assert q.attempts == 3  # default RetryPolicy exhausted
        assert "InjectedFault" in q.error
        assert [r.problem for r in result.records] == [
            p for p in PROBLEMS if p != PROBLEMS[1]
        ]

    def test_surviving_records_match_clean_run(self):
        clean = _run(1, None)
        chaotic = _run(1, _chaos_plan())
        survivors = [r for r in clean.records if r.problem != PROBLEMS[1]]
        assert _records_equal(chaotic.records, survivors)

    def test_retry_metrics_recorded(self):
        with collect() as registry:
            _run(1, _chaos_plan())
        counters = registry.snapshot()["counter"]
        retries = sum(v for k, v in counters.items()
                      if k.startswith("campaign.retries"))
        quarantines = sum(v for k, v in counters.items()
                          if k.startswith("campaign.quarantined"))
        assert retries == 2  # 3 attempts = 2 retries
        assert quarantines == 1


class TestDeterminismAcrossNJobs:
    """THE chaos pin: serial and parallel agree on everything."""

    @pytest.mark.parametrize("n_jobs", [2, 3])
    def test_same_records_and_same_quarantines(self, n_jobs):
        serial = _run(1, _chaos_plan())
        parallel = _run(n_jobs, _chaos_plan())
        assert _records_equal(serial.records, parallel.records)
        assert [q.to_dict() for q in serial.quarantined] == [
            q.to_dict() for q in parallel.quarantined
        ]

    def test_probabilistic_plan_is_njobs_invariant(self):
        plan = [FaultSpec("profiler.launch", "raise", probability=0.4)]
        serial = _run(1, FaultPlan(plan, seed=9), retry=RetryPolicy(max_attempts=1))
        parallel = _run(2, FaultPlan(plan, seed=9), retry=RetryPolicy(max_attempts=1))
        assert [q.problem for q in serial.quarantined] == [
            q.problem for q in parallel.quarantined
        ]
        assert _records_equal(serial.records, parallel.records)


class TestWorkerCrashRecovery:
    def test_crashed_worker_chunk_rerun_in_parent(self):
        # Worker-crash rules only exist inside workers; the parent
        # fallback re-profiles the chunk, so nothing is lost.
        clean = _run(1, None)
        plan = FaultPlan([
            FaultSpec("parallel.worker", "crash", match={"problem": PROBLEMS[3]})
        ])
        with collect() as registry:
            crashed = _run(2, plan)
        assert not crashed.quarantined
        assert _records_equal(crashed.records, clean.records)
        counters = registry.snapshot()["counter"]
        assert sum(v for k, v in counters.items()
                   if k.startswith("campaign.worker_crashes")) >= 1


class TestTransientFaults:
    def test_retry_recovers_a_transient_launch_fault(self):
        plan = FaultPlan([
            FaultSpec("profiler.launch", "raise",
                      match={"problem": PROBLEMS[2]}, payload={"times": 1})
        ])
        result = _run(1, plan)
        assert not result.quarantined
        assert [r.problem for r in result.records] == list(PROBLEMS)

    def test_single_attempt_policy_quarantines_transients(self):
        plan = FaultPlan([
            FaultSpec("profiler.launch", "raise",
                      match={"problem": PROBLEMS[2]}, payload={"times": 1})
        ])
        result = _run(1, plan, retry=RetryPolicy(max_attempts=1))
        assert [q.problem for q in result.quarantined] == [PROBLEMS[2]]


class TestValidationStaysFatal:
    def test_empty_launch_list_raises(self):
        with pytest.raises(ValueError, match="launch list is empty"):
            Campaign(KERNEL, GTX580, rng=0).run(problems=[])

    def test_all_quarantined_campaign_explains_itself(self):
        plan = FaultPlan([FaultSpec("profiler.launch", "raise")])
        result = _run(1, plan, retry=RetryPolicy(max_attempts=1))
        assert not result.records
        with pytest.raises(ValueError, match="quarantined"):
            result.matrix()

    def test_plain_empty_campaign_message_unchanged(self):
        from repro.profiling import CampaignResult

        with pytest.raises(ValueError, match="empty campaign"):
            CampaignResult(kernel="k", arch="a", family="f").matrix()


class TestQuarantineBookkeeping:
    def test_merged_with_carries_quarantines(self):
        a = _run(1, _chaos_plan())
        b = _run(1, None, rng=4)
        merged = a.merged_with(b)
        assert len(merged.quarantined) == len(a.quarantined)
        assert len(merged.records) == len(a.records) + len(b.records)

    def test_quarantined_run_roundtrips_through_dict(self):
        q = QuarantinedRun(problem=4096, index=2, stage="launch",
                           error="InjectedFault: boom", attempts=3)
        assert QuarantinedRun.from_dict(q.to_dict()) == q
