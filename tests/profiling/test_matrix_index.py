"""Columnar matrix index: bit-identity, staleness, corruption refusal.

The contract under test: ``ProfileRepository.matrix()`` answers from
the ``repro-matrix/1`` sidecar with values **bit-identical** to the
CSV-parse path for every kwarg combination; a stale or damaged index is
rebuilt through the integrity-checked ``load()`` (never silently
served); and a campaign whose data itself is corrupt refuses to produce
a matrix at all.
"""

import json

import numpy as np
import pytest

from repro.gpusim import GTX580, K20M
from repro.kernels import VectorAddKernel
from repro.profiling.campaign import Campaign
from repro.profiling.index import MATRIX_DATA, MATRIX_META
from repro.profiling.repository import (
    CampaignKey,
    ProfileRepository,
    RepositoryIntegrityError,
)

KEY = CampaignKey("vectorAdd", "GTX580")
KEY_K20 = CampaignKey("vectorAdd", "K20m")


@pytest.fixture(scope="module")
def campaign():
    return Campaign(VectorAddKernel(), GTX580, rng=0).run(
        problems=[1 << 14, 1 << 15], replicates=2
    )


@pytest.fixture(scope="module")
def kepler_campaign():
    # Kepler records power, so response="power" is exercisable.
    return Campaign(VectorAddKernel(), K20M, rng=1).run(
        problems=[1 << 14, 1 << 15], replicates=2
    )


@pytest.fixture()
def repo(campaign, tmp_path):
    r = ProfileRepository(tmp_path)
    r.save(campaign, seed=0)
    return r


MATRIX_KWARGS = [
    {},
    {"include_machine": True},
    {"include_characteristics": False},
    {"counters": ["gld_request", "gst_request"]},
    {"counters": ["gld_request", "not_a_counter"], "missing": "nan"},
]


class TestBitIdentity:
    @pytest.mark.parametrize("kwargs", MATRIX_KWARGS,
                             ids=[str(k) for k in MATRIX_KWARGS])
    def test_matches_parse_path(self, repo, kwargs):
        X1, y1, n1 = repo.matrix(KEY, **kwargs)
        X2, y2, n2 = repo.load(KEY).matrix(**kwargs)
        assert n1 == n2
        assert np.array_equal(X1, X2, equal_nan=True)
        assert np.array_equal(y1, y2)

    def test_power_response(self, kepler_campaign, tmp_path):
        repo = ProfileRepository(tmp_path)
        repo.save(kepler_campaign)
        X1, y1, n1 = repo.matrix(KEY_K20, response="power")
        X2, y2, n2 = repo.load(KEY_K20).matrix(response="power")
        assert n1 == n2 and np.array_equal(y1, y2)

    def test_power_refused_when_missing(self, repo):
        with pytest.raises(ValueError, match="power"):
            repo.matrix(KEY, response="power")

    def test_unknown_counter_raises(self, repo):
        with pytest.raises(KeyError):
            repo.matrix(KEY, counters=["not_a_counter"])

    def test_str_key_rejected(self, repo):
        with pytest.raises(TypeError, match="CampaignKey"):
            repo.matrix("vectorAdd")


class TestStaleness:
    def _cdir(self, repo):
        return repo._campaign_dir(KEY.dirname)

    def test_missing_index_rebuilds_lazily(self, repo):
        cdir = self._cdir(repo)
        (cdir / MATRIX_META).unlink()
        (cdir / MATRIX_DATA).unlink()
        X1, y1, n1 = repo.matrix(KEY)
        X2, y2, _ = repo.load(KEY).matrix()
        assert np.array_equal(X1, X2) and np.array_equal(y1, y2)
        assert (cdir / MATRIX_META).is_file()  # rebuilt and persisted

    def test_tampered_payload_is_rebuilt_not_served(self, repo):
        cdir = self._cdir(repo)
        payload = bytearray((cdir / MATRIX_DATA).read_bytes())
        payload[-8] ^= 0xFF  # flip one float byte; header hash now wrong
        (cdir / MATRIX_DATA).write_bytes(bytes(payload))
        X1, y1, _ = repo.matrix(KEY)
        X2, y2, _ = repo.load(KEY).matrix()
        assert np.array_equal(X1, X2) and np.array_equal(y1, y2)

    def test_stale_index_reported_as_drift_not_damage(self, repo):
        cdir = self._cdir(repo)
        (cdir / MATRIX_DATA).write_bytes(b"\x00" * 32)
        findings = repo.verify(KEY)
        assert any("stale matrix index" in f for f in findings)
        assert all("legacy" in f or "drift" in f for f in findings)

    def test_corrupt_data_never_served(self, repo):
        cdir = self._cdir(repo)
        data = (cdir / "runs.csv").read_bytes()
        (cdir / "runs.csv").write_bytes(data[:-20] + b"torn")
        # Index source hash no longer matches -> rebuild path -> the
        # integrity-checked load refuses the corrupt CSV.
        with pytest.raises(RepositoryIntegrityError, match="corrupt"):
            repo.matrix(KEY)


class TestAppend:
    def test_append_extends_index_incrementally(self, campaign, tmp_path):
        repo = ProfileRepository(tmp_path)
        half = Campaign(VectorAddKernel(), GTX580, rng=0).run(
            problems=[1 << 14], replicates=2
        )
        repo.save(half, seed=0)
        more = Campaign(VectorAddKernel(), GTX580, rng=2).run(
            problems=[1 << 15], replicates=2
        )
        repo.append(more)
        loaded = repo.load(KEY)
        assert len(loaded) == len(half) + len(more)
        X1, y1, n1 = repo.matrix(KEY)
        X2, y2, n2 = loaded.matrix()
        assert n1 == n2
        assert np.array_equal(X1, X2) and np.array_equal(y1, y2)
        header = json.loads(
            (repo._campaign_dir(KEY.dirname) / MATRIX_META).read_text()
        )
        assert header["n_runs"] == len(loaded)

    def test_append_to_absent_campaign_saves(self, campaign, tmp_path):
        repo = ProfileRepository(tmp_path)
        repo.append(campaign)
        assert repo.has(KEY)
        assert len(repo.load(KEY)) == len(campaign)

    def test_append_preserves_manifest_seed(self, campaign, tmp_path):
        repo = ProfileRepository(tmp_path)
        repo.save(campaign, seed=7)
        more = Campaign(VectorAddKernel(), GTX580, rng=3).run(
            problems=[1 << 16], replicates=1
        )
        repo.append(more)
        manifest = repo.load_manifest(KEY)
        assert manifest.seed == 7
        assert manifest.n_runs == len(campaign) + len(more)
