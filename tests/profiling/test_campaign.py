"""Tests for campaigns and their dataset assembly."""

import numpy as np
import pytest

from repro.gpusim import GTX580, K20M
from repro.kernels import VectorAddKernel
from repro.profiling.campaign import Campaign, CampaignResult


@pytest.fixture(scope="module")
def small_campaign():
    return Campaign(VectorAddKernel(), GTX580, rng=0).run(
        problems=[1 << 14, 1 << 15, 1 << 16, 1 << 17], replicates=2
    )


class TestCampaign:
    def test_row_count(self, small_campaign):
        assert len(small_campaign) == 8

    def test_uses_default_sweep_when_unspecified(self):
        c = Campaign(VectorAddKernel(), GTX580, rng=0).run()
        assert len(c) == len(VectorAddKernel().default_sweep())

    def test_rejects_empty_problem_list(self):
        with pytest.raises(ValueError):
            Campaign(VectorAddKernel(), GTX580).run(problems=[])

    def test_matrix_shape_and_names(self, small_campaign):
        X, y, names = small_campaign.matrix()
        assert X.shape == (8, len(names))
        assert y.shape == (8,)
        assert "size" in names
        assert "gld_request" in names

    def test_matrix_excludes_response_proxies(self, small_campaign):
        _, _, names = small_campaign.matrix()
        assert "active_cycles" not in names
        assert "active_warps" not in names

    def test_matrix_counter_subset(self, small_campaign):
        X, _, names = small_campaign.matrix(counters=["ipc", "gld_request"])
        assert names == ["ipc", "gld_request", "size"]

    def test_machine_metrics_columns(self, small_campaign):
        _, _, names = small_campaign.matrix(include_machine=True)
        for m in ("wsched", "freq", "smp", "rco", "mbw", "l1c", "l2c"):
            assert m in names

    def test_times_and_problems(self, small_campaign):
        assert len(small_campaign.times()) == 8
        assert small_campaign.problems()[0] == 1 << 14


class TestMerging:
    def test_cross_arch_merge_intersects_counters(self):
        a = Campaign(VectorAddKernel(), GTX580, rng=0).run(problems=[1 << 14])
        b = Campaign(VectorAddKernel(), K20M, rng=1).run(problems=[1 << 14])
        merged = a.merged_with(b)
        assert merged.arch == "mixed"
        assert merged.family == "mixed"
        names = merged.predictor_names
        assert "l1_global_load_miss" not in names   # fermi-only
        assert "shared_load_replay" not in names    # kepler-only
        assert "gld_request" in names

    def test_same_arch_merge_keeps_arch(self):
        a = Campaign(VectorAddKernel(), GTX580, rng=0).run(problems=[1 << 14])
        b = Campaign(VectorAddKernel(), GTX580, rng=1).run(problems=[1 << 15])
        merged = a.merged_with(b)
        assert merged.arch == "GTX580"
        assert len(merged) == 2

    def test_rejects_kernel_mismatch(self):
        from repro.kernels import ReductionKernel

        a = CampaignResult(kernel="a", arch="x", family="fermi")
        b = CampaignResult(kernel="b", arch="x", family="fermi")
        with pytest.raises(ValueError):
            a.merged_with(b)

    def test_empty_matrix_rejected(self):
        empty = CampaignResult(kernel="k", arch="x", family="fermi")
        with pytest.raises(ValueError):
            empty.matrix()
