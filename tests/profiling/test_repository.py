"""Tests for the structured on-disk repository."""

import pytest

from repro.gpusim import GTX580
from repro.kernels import VectorAddKernel
from repro.profiling.campaign import Campaign, CampaignResult
from repro.profiling.repository import CampaignKey, ProfileRepository

KEY = CampaignKey("vectorAdd", "GTX580")


@pytest.fixture()
def campaign():
    return Campaign(VectorAddKernel(), GTX580, rng=0).run(
        problems=[1 << 14, 1 << 15], replicates=2
    )


class TestCampaignKey:
    def test_dirname_sanitizes(self):
        key = CampaignKey("mat mul/2", "GTX 580", tag="a:b")
        assert key.dirname == "mat_mul_2__GTX_580__a_b"

    def test_requires_kernel_and_arch(self):
        with pytest.raises(ValueError):
            CampaignKey("", "GTX580")
        with pytest.raises(ValueError):
            CampaignKey("vectorAdd", "")

    def test_hashable_and_frozen(self):
        assert CampaignKey("k", "a") == CampaignKey("k", "a")
        assert len({CampaignKey("k", "a"), CampaignKey("k", "a")}) == 1
        with pytest.raises(Exception):
            CampaignKey("k", "a").kernel = "other"


class TestRoundtrip:
    def test_save_and_load(self, campaign, tmp_path):
        repo = ProfileRepository(tmp_path)
        repo.save(campaign)
        loaded = repo.load(KEY)
        assert len(loaded) == len(campaign)
        assert loaded.kernel == campaign.kernel
        assert loaded.family == "fermi"

    def test_values_bit_exact(self, campaign, tmp_path):
        repo = ProfileRepository(tmp_path)
        repo.save(campaign)
        loaded = repo.load(KEY)
        for orig, back in zip(campaign.records, loaded.records):
            assert back.time_s == orig.time_s
            assert back.problem == orig.problem
            assert back.counters == orig.counters
            assert back.machine == orig.machine

    def test_matrix_identical_after_roundtrip(self, campaign, tmp_path):
        repo = ProfileRepository(tmp_path)
        repo.save(campaign)
        loaded = repo.load(KEY)
        X1, y1, n1 = campaign.matrix()
        X2, y2, n2 = loaded.matrix()
        assert n1 == n2
        assert (X1 == X2).all()
        assert (y1 == y2).all()

    def test_tagging(self, campaign, tmp_path):
        repo = ProfileRepository(tmp_path)
        tagged = CampaignKey("vectorAdd", "GTX580", tag="trial1")
        repo.save(campaign, key=tagged)
        assert repo.has(tagged)
        assert not repo.has(KEY)
        loaded = repo.load(tagged)
        assert len(loaded) == len(campaign)

    def test_save_with_explicit_key_and_extra_tag_rejected(
        self, campaign, tmp_path
    ):
        repo = ProfileRepository(tmp_path)
        with pytest.raises(TypeError):
            repo.save(campaign, tag="t", key=KEY)


class TestManifest:
    def test_save_writes_manifest(self, campaign, tmp_path):
        repo = ProfileRepository(tmp_path)
        cdir = repo.save(campaign, seed=7, config={"replicates": 2})
        assert (cdir / "manifest.json").exists()
        manifest = repo.load_manifest(KEY)
        assert manifest is not None
        assert manifest.kernel == "vectorAdd"
        assert manifest.arch == "GTX580"
        assert manifest.seed == 7
        assert manifest.config == {"replicates": 2}
        assert manifest.n_runs == len(campaign)

    def test_manifest_missing_for_legacy_campaign(self, campaign, tmp_path):
        repo = ProfileRepository(tmp_path)
        cdir = repo.save(campaign)
        (cdir / "manifest.json").unlink()
        assert repo.load_manifest(KEY) is None

    def test_keys_lists_stored_campaigns(self, campaign, tmp_path):
        repo = ProfileRepository(tmp_path)
        repo.save(campaign)
        repo.save(campaign, key=CampaignKey("vectorAdd", "GTX580", tag="t2"))
        keys = repo.keys()
        assert KEY in keys
        assert CampaignKey("vectorAdd", "GTX580", tag="t2") in keys


class TestManagement:
    def test_list_campaigns(self, campaign, tmp_path):
        repo = ProfileRepository(tmp_path)
        repo.save(campaign)
        metas = repo.list_campaigns()
        assert len(metas) == 1
        assert metas[0]["kernel"] == "vectorAdd"
        assert metas[0]["n_runs"] == 4

    def test_missing_campaign_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ProfileRepository(tmp_path).load(CampaignKey("nothing", "here"))

    def test_refuses_empty_campaign(self, tmp_path):
        empty = CampaignResult(kernel="k", arch="x", family="fermi")
        with pytest.raises(ValueError):
            ProfileRepository(tmp_path).save(empty)

    def test_overwrite_replaces(self, campaign, tmp_path):
        repo = ProfileRepository(tmp_path)
        repo.save(campaign)
        shorter = CampaignResult(
            kernel=campaign.kernel, arch=campaign.arch,
            family=campaign.family, records=campaign.records[:2],
        )
        repo.save(shorter)
        assert len(repo.load(KEY)) == 2

    def test_creates_root_directory(self, tmp_path):
        root = tmp_path / "deep" / "repo"
        ProfileRepository(root)
        assert root.is_dir()

    def test_corruption_detected(self, campaign, tmp_path):
        repo = ProfileRepository(tmp_path)
        cdir = repo.save(campaign)
        # truncate the CSV: drop the last data row
        data = (cdir / "runs.csv").read_text().rstrip("\n").splitlines()
        (cdir / "runs.csv").write_text("\n".join(data[:-1]) + "\n")
        with pytest.raises(ValueError, match="corrupt"):
            repo.load(KEY)
