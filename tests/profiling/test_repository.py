"""Tests for the structured on-disk repository."""

import pytest

from repro.gpusim import GTX580
from repro.kernels import VectorAddKernel
from repro.profiling.campaign import Campaign, CampaignResult
from repro.profiling.repository import Repository


@pytest.fixture()
def campaign():
    return Campaign(VectorAddKernel(), GTX580, rng=0).run(
        problems=[1 << 14, 1 << 15], replicates=2
    )


class TestRoundtrip:
    def test_save_and_load(self, campaign, tmp_path):
        repo = Repository(tmp_path)
        repo.save(campaign)
        loaded = repo.load("vectorAdd", "GTX580")
        assert len(loaded) == len(campaign)
        assert loaded.kernel == campaign.kernel
        assert loaded.family == "fermi"

    def test_values_bit_exact(self, campaign, tmp_path):
        repo = Repository(tmp_path)
        repo.save(campaign)
        loaded = repo.load("vectorAdd", "GTX580")
        for orig, back in zip(campaign.records, loaded.records):
            assert back.time_s == orig.time_s
            assert back.problem == orig.problem
            assert back.counters == orig.counters
            assert back.machine == orig.machine

    def test_matrix_identical_after_roundtrip(self, campaign, tmp_path):
        repo = Repository(tmp_path)
        repo.save(campaign)
        loaded = repo.load("vectorAdd", "GTX580")
        X1, y1, n1 = campaign.matrix()
        X2, y2, n2 = loaded.matrix()
        assert n1 == n2
        assert (X1 == X2).all()
        assert (y1 == y2).all()

    def test_tagging(self, campaign, tmp_path):
        repo = Repository(tmp_path)
        repo.save(campaign, tag="trial1")
        assert repo.has("vectorAdd", "GTX580", tag="trial1")
        assert not repo.has("vectorAdd", "GTX580")
        loaded = repo.load("vectorAdd", "GTX580", tag="trial1")
        assert len(loaded) == len(campaign)


class TestManagement:
    def test_list_campaigns(self, campaign, tmp_path):
        repo = Repository(tmp_path)
        repo.save(campaign)
        metas = repo.list_campaigns()
        assert len(metas) == 1
        assert metas[0]["kernel"] == "vectorAdd"
        assert metas[0]["n_runs"] == 4

    def test_missing_campaign_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            Repository(tmp_path).load("nothing", "here")

    def test_refuses_empty_campaign(self, tmp_path):
        empty = CampaignResult(kernel="k", arch="x", family="fermi")
        with pytest.raises(ValueError):
            Repository(tmp_path).save(empty)

    def test_overwrite_replaces(self, campaign, tmp_path):
        repo = Repository(tmp_path)
        repo.save(campaign)
        shorter = CampaignResult(
            kernel=campaign.kernel, arch=campaign.arch,
            family=campaign.family, records=campaign.records[:2],
        )
        repo.save(shorter)
        assert len(repo.load("vectorAdd", "GTX580")) == 2

    def test_creates_root_directory(self, tmp_path):
        root = tmp_path / "deep" / "repo"
        Repository(root)
        assert root.is_dir()

    def test_corruption_detected(self, campaign, tmp_path):
        repo = Repository(tmp_path)
        cdir = repo.save(campaign)
        # truncate the CSV: drop the last data row
        data = (cdir / "runs.csv").read_text().rstrip("\n").splitlines()
        (cdir / "runs.csv").write_text("\n".join(data[:-1]) + "\n")
        with pytest.raises(ValueError, match="corrupt"):
            repo.load("vectorAdd", "GTX580")
