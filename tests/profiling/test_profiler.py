"""Tests for the nvprof-style profiler."""

import numpy as np
import pytest

from repro.gpusim import GTX580, K20M
from repro.kernels import ReductionKernel, VectorAddKernel
from repro.profiling.profiler import Profiler, RunRecord


class TestProfile:
    def test_single_run_record(self):
        prof = Profiler(GTX580, rng=0)
        records = prof.profile(VectorAddKernel(), 1 << 16)
        assert len(records) == 1
        r = records[0]
        assert r.kernel == "vectorAdd"
        assert r.arch == "GTX580"
        assert r.family == "fermi"
        assert r.time_s > 0
        assert r.characteristics == {"size": float(1 << 16)}
        assert r.machine["smp"] == 16

    def test_replicates_differ(self):
        prof = Profiler(GTX580, rng=0)
        records = prof.profile(VectorAddKernel(), 1 << 16, replicates=4)
        times = {r.time_s for r in records}
        assert len(times) == 4
        assert [r.replicate for r in records] == [0, 1, 2, 3]

    def test_replicate_variance_is_percent_scale(self):
        prof = Profiler(GTX580, rng=0)
        records = prof.profile(ReductionKernel(2), 1 << 20, replicates=20)
        times = np.array([r.time_s for r in records])
        cv = times.std() / times.mean()
        assert 0.005 < cv < 0.15

    def test_zero_noise_deterministic(self):
        prof = Profiler(GTX580, noise_scale=0.0, rng=0)
        a = prof.profile(VectorAddKernel(), 1 << 16, replicates=2)
        assert a[0].time_s == a[1].time_s
        assert a[0].counters == a[1].counters

    def test_counter_measurement_noise_small(self):
        prof = Profiler(GTX580, rng=0)
        records = prof.profile(VectorAddKernel(), 1 << 18, replicates=10)
        gld = np.array([r.counters["gld_request"] for r in records])
        assert gld.std() / gld.mean() < 0.1
        assert len(set(gld.tolist())) > 1  # but not exactly repeated

    def test_kepler_records_kepler_counters(self):
        prof = Profiler(K20M, rng=0)
        r = prof.profile(ReductionKernel(1), 1 << 18)[0]
        assert "shared_load_replay" in r.counters
        assert "l1_shared_bank_conflict" not in r.counters

    def test_workload_cache_reused(self):
        prof = Profiler(GTX580, rng=0)
        prof.profile(VectorAddKernel(), 1 << 16)
        assert len(prof._workload_cache) == 1
        prof.profile(VectorAddKernel(), 1 << 16, replicates=3)
        assert len(prof._workload_cache) == 1
        prof.clear_cache()
        assert len(prof._workload_cache) == 0

    def test_rejects_zero_replicates(self):
        with pytest.raises(ValueError):
            Profiler(GTX580).profile(VectorAddKernel(), 100, replicates=0)

    def test_rejects_negative_measurement_sigma(self):
        with pytest.raises(ValueError):
            Profiler(GTX580, measurement_sigma=-0.1)


class TestRunRecord:
    def make(self):
        return RunRecord(
            kernel="k", arch="GTX580", family="fermi", problem=64,
            characteristics={"size": 64.0},
            counters={"ipc": 1.5, "gld_request": 10.0},
            time_s=1e-3, machine={"smp": 16.0, "freq": 1.544},
        )

    def test_predictor_vector_order(self):
        names, values = self.make().predictors(["gld_request", "ipc"])
        assert names == ["gld_request", "ipc", "size"]
        assert values.tolist() == [10.0, 1.5, 64.0]

    def test_machine_metrics_appended(self):
        names, values = self.make().predictors(
            ["ipc"], include_machine=True
        )
        assert names == ["ipc", "size", "freq", "smp"]
        assert values.tolist() == [1.5, 64.0, 1.544, 16.0]

    def test_characteristics_optional(self):
        names, values = self.make().predictors(
            ["ipc"], include_characteristics=False
        )
        assert names == ["ipc"]

    def test_missing_counter_raises(self):
        with pytest.raises(KeyError):
            self.make().predictors(["nonexistent"])
