"""Unit tests for retry policies and the bounded-retry driver."""

import time

import pytest

from repro.faults import FaultPlan  # noqa: F401  (package import sanity)
from repro.faults import InjectedFault, RetryPolicy, call_with_retry


class TestRetryPolicyValidation:
    def test_defaults(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 3
        assert policy.backoff_s == 0.0
        assert policy.timeout_s is None

    def test_max_attempts_floor(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)

    def test_backoff_nonnegative(self):
        with pytest.raises(ValueError, match="backoff_s"):
            RetryPolicy(backoff_s=-1)

    def test_timeout_positive_or_none(self):
        with pytest.raises(ValueError, match="timeout_s"):
            RetryPolicy(timeout_s=0)
        assert RetryPolicy(timeout_s=None).deadline() is None


class TestBackoffSchedule:
    def test_first_attempt_never_waits(self):
        assert RetryPolicy(backoff_s=1.0).backoff_for(1) == 0.0

    def test_exponential_doubling(self):
        policy = RetryPolicy(max_attempts=5, backoff_s=0.1)
        assert [policy.backoff_for(k) for k in (2, 3, 4)] == pytest.approx(
            [0.1, 0.2, 0.4]
        )

    def test_zero_base_disables_backoff(self):
        assert RetryPolicy(backoff_s=0.0).backoff_for(4) == 0.0

    def test_deadline_is_monotonic_offset(self):
        policy = RetryPolicy(timeout_s=5.0)
        before = time.monotonic()
        deadline = policy.deadline()
        assert deadline == pytest.approx(before + 5.0, abs=0.5)


class TestCallWithRetry:
    def test_success_first_try(self):
        result, exc, attempts = call_with_retry(
            lambda attempt: attempt * 10, RetryPolicy()
        )
        assert (result, exc, attempts) == (10, None, 1)

    def test_recoverable_failure_then_success(self):
        def flaky(attempt):
            if attempt < 3:
                raise InjectedFault("transient")
            return "ok"

        result, exc, attempts = call_with_retry(flaky, RetryPolicy())
        assert (result, exc, attempts) == ("ok", None, 3)

    def test_exhaustion_returns_last_exception(self):
        def always_fails(attempt):
            raise InjectedFault(f"attempt {attempt}")

        result, exc, attempts = call_with_retry(
            always_fails, RetryPolicy(max_attempts=2)
        )
        assert result is None
        assert isinstance(exc, InjectedFault) and "attempt 2" in str(exc)
        assert attempts == 2

    def test_non_recoverable_propagates_immediately(self):
        calls = []

        def misconfigured(attempt):
            calls.append(attempt)
            raise ValueError("bad argument")

        with pytest.raises(ValueError, match="bad argument"):
            call_with_retry(misconfigured, RetryPolicy(max_attempts=5))
        assert calls == [1]  # fail fast, no retry churn

    def test_custom_recoverable_set(self):
        def flaky(attempt):
            if attempt == 1:
                raise KeyError("missing counter")
            return attempt

        result, exc, attempts = call_with_retry(
            flaky, RetryPolicy(), recoverable=(KeyError,)
        )
        assert (result, exc, attempts) == (2, None, 2)

    def test_on_retry_called_before_each_reattempt(self):
        seen = []

        def flaky(attempt):
            if attempt < 3:
                raise InjectedFault("again")
            return attempt

        call_with_retry(
            flaky,
            RetryPolicy(max_attempts=4),
            on_retry=lambda attempt, exc: seen.append(
                (attempt, type(exc).__name__)
            ),
        )
        assert seen == [(1, "InjectedFault"), (2, "InjectedFault")]

    def test_backoff_uses_injected_sleep(self, monkeypatch):
        clock = {"now": 100.0}
        waits = []

        def fake_monotonic():
            return clock["now"]

        def fake_sleep(seconds):
            waits.append(seconds)
            clock["now"] += seconds

        monkeypatch.setattr(time, "monotonic", fake_monotonic)

        def always_fails(attempt):
            raise InjectedFault("again")

        call_with_retry(
            always_fails,
            RetryPolicy(max_attempts=3, backoff_s=0.5),
            sleep=fake_sleep,
        )
        # Attempt 1 runs immediately; attempts 2 and 3 back off 0.5/1.0s.
        assert waits == pytest.approx([0.5, 1.0])

    def test_backoff_tops_up_after_early_wakeup(self, monkeypatch):
        clock = {"now": 0.0}
        waits = []

        def fake_sleep(seconds):
            waits.append(seconds)
            clock["now"] += seconds / 2  # wake early, as a signal would

        monkeypatch.setattr(time, "monotonic", lambda: clock["now"])

        def fails_once(attempt):
            if attempt == 1:
                raise InjectedFault("again")
            return "ok"

        result, _, _ = call_with_retry(
            fails_once,
            RetryPolicy(max_attempts=2, backoff_s=1.0),
            sleep=fake_sleep,
        )
        assert result == "ok"
        # Slept again until the full monotonic backoff had elapsed.
        assert len(waits) > 1
        assert sum(w / 2 for w in waits) >= 1.0


class TestSeededJitter:
    def test_jitter_is_deterministic_per_key(self):
        policy = RetryPolicy(backoff_s=1.0, jitter=0.5, seed=3)
        first = policy.backoff_for(2, key="req-1")
        assert policy.backoff_for(2, key="req-1") == first  # replayable

    def test_jitter_desynchronizes_keys(self):
        policy = RetryPolicy(backoff_s=1.0, jitter=0.5, seed=3)
        waits = {policy.backoff_for(2, key=f"req-{i}") for i in range(16)}
        assert len(waits) > 1  # distinct keys spread out

    def test_jitter_is_subtractive_and_bounded(self):
        policy = RetryPolicy(backoff_s=1.0, jitter=0.5, seed=0)
        for i in range(32):
            wait = policy.backoff_for(2, key=f"k{i}")
            assert 0.5 <= wait <= 1.0  # never above base, never below 1-jitter

    def test_seed_changes_the_schedule(self):
        a = RetryPolicy(backoff_s=1.0, jitter=0.5, seed=0)
        b = RetryPolicy(backoff_s=1.0, jitter=0.5, seed=1)
        waits_a = [a.backoff_for(2, key=f"k{i}") for i in range(8)]
        waits_b = [b.backoff_for(2, key=f"k{i}") for i in range(8)]
        assert waits_a != waits_b

    def test_zero_jitter_is_exact(self):
        policy = RetryPolicy(backoff_s=0.1, jitter=0.0, seed=9)
        assert policy.backoff_for(3, key="anything") == pytest.approx(0.2)

    def test_jitter_without_key_warns_once(self):
        from repro._compat import reset_deprecation_warnings

        reset_deprecation_warnings()
        policy = RetryPolicy(backoff_s=1.0, jitter=0.5)
        with pytest.warns(DeprecationWarning, match="key="):
            policy.backoff_for(2)
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            policy.backoff_for(2)  # second call stays silent

    def test_jitter_validation(self):
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=-0.1)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.5)


class TestBackoffCap:
    def test_max_backoff_caps_the_doubling(self):
        policy = RetryPolicy(
            max_attempts=8, backoff_s=0.1, max_backoff_s=0.25
        )
        assert policy.backoff_for(2) == pytest.approx(0.1)
        assert policy.backoff_for(3) == pytest.approx(0.2)
        assert policy.backoff_for(4) == pytest.approx(0.25)  # capped
        assert policy.backoff_for(7) == pytest.approx(0.25)

    def test_jitter_applies_after_the_cap(self):
        policy = RetryPolicy(
            backoff_s=1.0, max_backoff_s=0.5, jitter=0.5, seed=0
        )
        for i in range(16):
            wait = policy.backoff_for(5, key=f"k{i}")
            assert 0.25 <= wait <= 0.5

    def test_max_backoff_validation(self):
        with pytest.raises(ValueError, match="max_backoff_s"):
            RetryPolicy(max_backoff_s=0)


class TestMaxElapsedBudget:
    def test_gives_up_when_the_next_wait_would_bust_the_budget(self):
        calls = []
        sleeps = []

        def always_fails(attempt):
            calls.append(attempt)
            raise InjectedFault("down")

        result, exc, attempts = call_with_retry(
            always_fails,
            RetryPolicy(
                max_attempts=10, backoff_s=100.0, max_elapsed_s=1.0
            ),
            sleep=sleeps.append,
        )
        # Attempt 1 fails; a 100 s backoff cannot fit the 1 s budget,
        # so the driver stops without sleeping at all.
        assert result is None
        assert isinstance(exc, InjectedFault)
        assert attempts == 1
        assert calls == [1]
        assert sleeps == []

    def test_budget_roomy_enough_lets_retries_run(self):
        def fails_once(attempt):
            if attempt == 1:
                raise InjectedFault("again")
            return "ok"

        result, exc, attempts = call_with_retry(
            fails_once,
            RetryPolicy(max_attempts=3, backoff_s=0.0, max_elapsed_s=60.0),
            sleep=lambda s: None,
        )
        assert result == "ok"
        assert exc is None
        assert attempts == 2

    def test_max_elapsed_validation(self):
        with pytest.raises(ValueError, match="max_elapsed_s"):
            RetryPolicy(max_elapsed_s=-1)


class TestCompat:
    def test_positional_construction_still_works(self):
        policy = RetryPolicy(5, 0.5, 30.0)
        assert policy.max_attempts == 5
        assert policy.backoff_s == 0.5
        assert policy.timeout_s == 30.0
        # New fields default inert: old call sites see old behavior.
        assert policy.max_backoff_s is None
        assert policy.jitter == 0.0
        assert policy.max_elapsed_s is None
