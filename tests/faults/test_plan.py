"""Unit tests for deterministic fault plans (repro.faults.plan)."""

import pytest

from repro.faults import (
    SITES,
    FaultPlan,
    FaultSpec,
    active_plan,
    fault_injection,
    should_inject,
)
from repro.obs import collect


class TestFaultSpecValidation:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultSpec("profiler.lunch", "raise")

    def test_mode_validated_per_site(self):
        with pytest.raises(ValueError, match="invalid for site"):
            FaultSpec("repository.write", "raise")

    def test_probability_bounds(self):
        with pytest.raises(ValueError, match="probability"):
            FaultSpec("profiler.launch", "raise", probability=1.5)
        with pytest.raises(ValueError, match="probability"):
            FaultSpec("profiler.launch", "raise", probability=-0.1)

    def test_every_site_mode_pair_constructs(self):
        for site, modes in SITES.items():
            for mode in modes:
                assert FaultSpec(site, mode).mode == mode

    def test_spec_is_hashable_and_picklable(self):
        import pickle

        spec = FaultSpec(
            "profiler.launch", "nan_counters",
            match={"problem": 4096}, payload={"times": 1},
        )
        roundtripped = pickle.loads(pickle.dumps(spec))
        assert roundtripped == spec
        assert hash(roundtripped) == hash(spec)
        assert roundtripped.payload_dict == {"times": 1}

    def test_plan_rejects_non_specs(self):
        with pytest.raises(TypeError, match="FaultSpec"):
            FaultPlan(["profiler.launch"])


class TestMatching:
    def test_match_requires_equal_value(self):
        spec = FaultSpec("profiler.launch", "raise", match={"problem": 4096})
        assert spec.matches({"problem": 4096, "kernel": "reduce1"})
        assert not spec.matches({"problem": 8192})

    def test_absent_key_never_matches(self):
        spec = FaultSpec("profiler.launch", "raise", match={"problem": 4096})
        assert not spec.matches({"kernel": "reduce1"})

    def test_empty_match_matches_everything(self):
        assert FaultSpec("profiler.launch", "raise").matches({"anything": 1})


class TestDeterminism:
    def test_decision_is_pure_function_of_context(self):
        spec = FaultSpec("profiler.launch", "raise", probability=0.5)
        contexts = [{"problem": p, "kernel": "reduce1"} for p in range(50)]
        first = [spec.fires(7, c) for c in contexts]
        second = [spec.fires(7, c) for c in reversed(contexts)]
        assert first == list(reversed(second))
        # Not degenerate: a 0.5 rule fires on some contexts, not all.
        assert 0 < sum(first) < len(first)

    def test_decision_depends_on_seed(self):
        spec = FaultSpec("profiler.launch", "raise", probability=0.5)
        contexts = [{"problem": p} for p in range(50)]
        assert [spec.fires(0, c) for c in contexts] != [
            spec.fires(1, c) for c in contexts
        ]

    def test_two_rules_decide_independently(self):
        a = FaultSpec("profiler.launch", "raise", probability=0.5)
        b = FaultSpec("profiler.launch", "hang", probability=0.5)
        contexts = [{"problem": p} for p in range(100)]
        decisions_a = [a.fires(3, c) for c in contexts]
        decisions_b = [b.fires(3, c) for c in contexts]
        assert decisions_a != decisions_b

    def test_probability_extremes(self):
        ctx = {"problem": 1}
        assert FaultSpec("profiler.launch", "raise", probability=1.0).fires(0, ctx)
        assert not FaultSpec(
            "profiler.launch", "raise", probability=0.0
        ).fires(0, ctx)


class TestPlanDecide:
    def test_first_firing_rule_wins(self):
        plan = FaultPlan([
            FaultSpec("profiler.launch", "raise", match={"problem": 1}),
            FaultSpec("profiler.launch", "hang"),
        ])
        assert plan.decide("profiler.launch", {"problem": 1}).mode == "raise"
        assert plan.decide("profiler.launch", {"problem": 2}).mode == "hang"

    def test_site_filter(self):
        plan = FaultPlan([FaultSpec("repository.write", "torn_file")])
        assert plan.decide("profiler.launch", {}) is None

    def test_events_and_summary(self):
        plan = FaultPlan([FaultSpec("profiler.launch", "raise")])
        plan.decide("profiler.launch", {"problem": 1})
        plan.decide("profiler.launch", {"problem": 2})
        assert plan.summary() == {"profiler.launch:raise": 2}
        assert [e[2]["problem"] for e in plan.events] == [1, 2]

    def test_times_bound_models_transient_fault(self):
        plan = FaultPlan([
            FaultSpec("profiler.launch", "raise", payload={"times": 1})
        ])
        ctx = {"problem": 1}
        assert plan.decide("profiler.launch", ctx) is not None
        assert plan.decide("profiler.launch", ctx) is None  # retry recovers
        # A different context has its own budget.
        assert plan.decide("profiler.launch", {"problem": 2}) is not None

    def test_times_bound_is_per_plan_instance(self):
        spec = FaultSpec("profiler.launch", "raise", payload={"times": 1})
        ctx = {"problem": 1}
        assert FaultPlan([spec]).decide("profiler.launch", ctx) is not None
        assert FaultPlan([spec]).decide("profiler.launch", ctx) is not None


class TestInjectionState:
    def test_disabled_by_default(self):
        assert active_plan() is None
        assert should_inject("profiler.launch", problem=1) is None

    def test_install_and_restore(self):
        plan = FaultPlan([FaultSpec("profiler.launch", "raise")])
        with fault_injection(plan):
            assert active_plan() is plan
            assert should_inject("profiler.launch", problem=1) is plan.specs[0]
        assert active_plan() is None

    def test_restored_even_on_error(self):
        with pytest.raises(RuntimeError):
            with fault_injection(FaultPlan()):
                raise RuntimeError("boom")
        assert active_plan() is None

    def test_none_shields_inner_block(self):
        outer = FaultPlan([FaultSpec("profiler.launch", "raise")])
        with fault_injection(outer):
            with fault_injection(None):
                assert should_inject("profiler.launch", problem=1) is None
            assert should_inject("profiler.launch", problem=1) is not None

    def test_rejects_non_plan(self):
        with pytest.raises(TypeError, match="FaultPlan"):
            with fault_injection("chaos"):
                pass

    def test_fired_faults_counted_in_metrics(self):
        plan = FaultPlan([FaultSpec("profiler.launch", "nan_counters")])
        with collect() as registry:
            with fault_injection(plan):
                should_inject("profiler.launch", problem=1)
        counters = registry.snapshot()["counter"]
        fired = {k: v for k, v in counters.items()
                 if k.startswith("faults.injected")}
        assert sum(fired.values()) == 1
        (key,) = fired
        assert "nan_counters" in key and "profiler.launch" in key
