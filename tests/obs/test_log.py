"""Tests for the structured event log (repro.obs.log)."""

import json

import pytest

from repro.obs import (
    Event,
    EventLog,
    child_event_log,
    current_event_log,
    emit,
    event_log,
    event_log_enabled,
    read_events,
    span,
    trace,
)
from repro.obs.log import SCHEMA


class TestDisabledDefault:
    def test_disabled_by_default(self):
        assert not event_log_enabled()
        assert current_event_log() is None

    def test_emit_is_noop_when_disabled(self):
        emit("campaign.retry", attempt=1)
        assert current_event_log() is None


class TestEventLog:
    def test_emit_records_kind_and_fields(self):
        log = EventLog()
        event = log.emit("fit.start", kernel="mm", arch="GTX580")
        assert event.kind == "fit.start"
        assert event.fields == {"kernel": "mm", "arch": "GTX580"}
        assert len(log) == 1

    def test_seq_is_monotonic(self):
        log = EventLog()
        events = [log.emit("tick") for _ in range(3)]
        assert [e.seq for e in events] == [1, 2, 3]

    def test_kinds_and_find(self):
        log = EventLog()
        log.emit("a")
        log.emit("b", x=1)
        log.emit("a")
        assert log.kinds() == {"a", "b"}
        assert len(log.find("a")) == 2
        assert log.find("b")[0].fields == {"x": 1}

    def test_span_id_correlates_with_active_span(self):
        log = EventLog()
        with trace() as tracer:
            with span("outer"):
                log.emit("inside")
            log.emit("outside")
        inside, outside = log.events
        outer = next(r for r in tracer.records if r.name == "outer")
        assert inside.span_id == outer.span_id
        assert outside.span_id is None

    def test_no_span_id_without_tracer(self):
        log = EventLog()
        assert log.emit("lonely").span_id is None


class TestModuleState:
    def test_event_log_installs_and_restores(self):
        with event_log() as log:
            assert current_event_log() is log
            assert event_log_enabled()
            emit("seen", n=1)
        assert current_event_log() is None
        assert log.kinds() == {"seen"}

    def test_nested_event_log_shadows(self):
        with event_log() as outer:
            emit("tick")
            with event_log() as inner:
                emit("tick")
            emit("tick")
        assert len(outer) == 2
        assert len(inner) == 1

    def test_child_event_log_is_fresh(self):
        # A forked worker inherits the parent's log object; the child
        # context must hide it so worker events land in a new log.
        with event_log() as parent:
            emit("parent.before")
            with child_event_log() as child:
                assert current_event_log() is child
                assert current_event_log() is not parent
                emit("worker.tick")
            emit("parent.after")
        assert child.kinds() == {"worker.tick"}
        assert parent.kinds() == {"parent.before", "parent.after"}

    def test_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with event_log():
                raise RuntimeError("boom")
        assert current_event_log() is None


class TestMerge:
    def test_merge_sorts_by_timestamp(self):
        log = EventLog()
        log.events = [Event("late", t_s=5.0, seq=1, pid=1)]
        log.merge([
            Event("early", t_s=1.0, seq=1, pid=2),
            Event("mid", t_s=3.0, seq=2, pid=2),
        ])
        assert [e.kind for e in log.events] == ["early", "mid", "late"]

    def test_merge_order_independent(self):
        # Whatever order worker chunks resolve in, the merged stream is
        # identical — the report timeline depends on it.
        chunks = [
            [Event("a", t_s=2.0, seq=1, pid=10)],
            [Event("b", t_s=1.0, seq=1, pid=20)],
            [Event("c", t_s=1.0, seq=1, pid=5)],
        ]
        fwd, rev = EventLog(), EventLog()
        for chunk in chunks:
            fwd.merge(chunk)
        for chunk in reversed(chunks):
            rev.merge(chunk)
        assert [e.kind for e in fwd.events] == [e.kind for e in rev.events]
        assert [e.kind for e in fwd.events] == ["c", "b", "a"]

    def test_tie_break_by_pid_then_seq(self):
        log = EventLog()
        log.merge([
            Event("y", t_s=1.0, seq=2, pid=7),
            Event("x", t_s=1.0, seq=1, pid=7),
            Event("w", t_s=1.0, seq=9, pid=3),
        ])
        assert [e.kind for e in log.events] == ["w", "x", "y"]


class TestJsonlSink:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with event_log(path) as log:
            emit("fit.start", kernel="mm")
            emit("fit.end", oob=0.5)
        loaded = read_events(path)
        assert [e.kind for e in loaded] == ["fit.start", "fit.end"]
        assert loaded[0].fields == {"kernel": "mm"}
        assert loaded[1].fields == {"oob": 0.5}
        assert [e.seq for e in loaded] == [e.seq for e in log.events]

    def test_merge_appends_to_sink(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path)
        log.emit("local")
        log.merge([Event("remote", t_s=0.0, seq=1, pid=99)])
        kinds = {e.kind for e in read_events(path)}
        assert kinds == {"local", "remote"}

    def test_sink_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "events.jsonl"
        EventLog(path).emit("tick")
        assert len(read_events(path)) == 1

    def test_torn_trailing_line_discarded(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with event_log(path):
            emit("one")
            emit("two")
        with open(path, "a") as fh:
            fh.write('{"schema": "repro-events/1", "kind": "torn"')
        loaded = read_events(path)
        assert [e.kind for e in loaded] == ["one", "two"]

    def test_unknown_schema_raises(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(json.dumps({"schema": "repro-events/99"}) + "\n")
        with pytest.raises(ValueError, match="unknown event schema"):
            read_events(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with event_log(path):
            emit("one")
        with open(path, "a") as fh:
            fh.write("\n\n")
        assert [e.kind for e in read_events(path)] == ["one"]

    def test_line_schema_tag(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with event_log(path):
            emit("tick")
        data = json.loads(path.read_text().splitlines()[0])
        assert data["schema"] == SCHEMA


class TestPipelineEmitsEvents:
    def test_campaign_and_fit_lifecycle(self):
        from repro.core import BlackForest
        from repro.gpusim import GTX580
        from repro.kernels import ReductionKernel

        from repro.profiling import Campaign

        with event_log() as log:
            campaign = Campaign(
                ReductionKernel(1), GTX580, rng=0
            ).run(problems=[1 << 12, 1 << 14, 1 << 16, 1 << 18],
                  replicates=2)
            BlackForest(n_trees=10, importance_repeats=1, rng=1).fit(
                campaign
            )
        kinds = log.kinds()
        assert "campaign.start" in kinds
        assert "campaign.end" in kinds
        assert "profiler.launch" in kinds
        assert "fit.start" in kinds
        assert "fit.end" in kinds
        fit_end = log.find("fit.end")[0]
        assert fit_end.fields["stage"] == "blackforest"
        assert "oob_explained_variance" in fit_end.fields

    def test_no_events_collected_when_disabled(self):
        from repro.gpusim import GTX580
        from repro.kernels import ReductionKernel
        from repro.profiling import Campaign

        Campaign(ReductionKernel(1), GTX580, rng=0).run(
            problems=[4096], replicates=1
        )
        assert current_event_log() is None
