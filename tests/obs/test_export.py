"""Tests for the trace exporters (repro.obs.export)."""

import pytest

from repro.obs import (
    render_text_tree,
    span,
    span_totals,
    to_chrome_trace,
    trace,
)
from repro.obs.spans import SpanRecord


def _rec(span_id, parent_id, name, start, end, pid=100, **labels):
    return SpanRecord(
        span_id=span_id, parent_id=parent_id, name=name,
        start_s=start, end_s=end, labels=labels, pid=pid,
    )


class TestSpanTotals:
    def test_aggregates_by_name(self):
        records = [
            _rec(1, None, "run", 0.0, 10.0),
            _rec(2, 1, "step", 0.0, 2.0),
            _rec(3, 1, "step", 2.0, 5.0),
        ]
        totals = span_totals(records)
        assert totals["run"] == {"count": 1, "total_s": pytest.approx(10.0)}
        assert totals["step"]["count"] == 2
        assert totals["step"]["total_s"] == pytest.approx(5.0)

    def test_empty(self):
        assert span_totals([]) == {}


class TestChromeTrace:
    def test_complete_events_relative_to_origin(self):
        records = [
            _rec(1, None, "run", 5.0, 6.0),
            _rec(2, 1, "step", 5.25, 5.75, pid=200),
        ]
        events = to_chrome_trace(records)
        assert [e["ph"] for e in events] == ["X", "X"]
        assert events[0]["ts"] == pytest.approx(0.0)
        assert events[1]["ts"] == pytest.approx(0.25e6)
        assert events[1]["dur"] == pytest.approx(0.5e6)
        assert events[1]["pid"] == 200
        assert events[1]["args"]["parent_id"] == 1

    def test_labels_exported_as_args(self):
        events = to_chrome_trace([_rec(1, None, "op", 0.0, 1.0, kernel="mm")])
        assert events[0]["args"]["kernel"] == "mm"

    def test_empty(self):
        assert to_chrome_trace([]) == []

    def test_json_serializable_from_live_trace(self):
        import json

        with trace() as tracer:
            with span("a", n=1):
                with span("b"):
                    pass
        json.dumps(to_chrome_trace(tracer.records))


class TestTextTree:
    def test_collapses_same_name_siblings(self):
        records = [_rec(1, None, "run", 0.0, 10.0)]
        records += [
            _rec(2 + i, 1, "profile", float(i), float(i + 1))
            for i in range(5)
        ]
        out = render_text_tree(records)
        assert "profile ×5" in out
        assert out.count("profile") == 1

    def test_collapsed_group_sums_durations(self):
        records = [
            _rec(1, None, "run", 0.0, 10.0),
            _rec(2, 1, "step", 0.0, 2.0),
            _rec(3, 1, "step", 2.0, 4.0),
        ]
        out = render_text_tree(records)
        assert "4.00 s" in out

    def test_collapsed_subtrees_aggregate_across_members(self):
        # two profile spans, each with one launch child: the collapsed
        # tree must show launch ×2, not just the first sibling's child
        records = [
            _rec(1, None, "run", 0.0, 10.0),
            _rec(2, 1, "profile", 0.0, 2.0),
            _rec(3, 1, "profile", 2.0, 4.0),
            _rec(4, 2, "launch", 0.0, 1.0),
            _rec(5, 3, "launch", 2.0, 3.0),
        ]
        out = render_text_tree(records)
        assert "launch ×2" in out

    def test_no_collapse_mode(self):
        records = [
            _rec(1, None, "run", 0.0, 10.0),
            _rec(2, 1, "step", 0.0, 2.0),
            _rec(3, 1, "step", 2.0, 4.0),
        ]
        out = render_text_tree(records, collapse=False)
        assert out.count("step") == 2

    def test_worker_pids_tagged(self):
        records = [
            _rec(1, None, "run", 0.0, 10.0, pid=100),
            _rec(2, 1, "work", 0.0, 1.0, pid=201),
        ]
        out = render_text_tree(records)
        assert "[pids [201]]" in out

    def test_empty(self):
        assert render_text_tree([]) == "(empty trace)"

    def test_singleton_labels_shown(self):
        records = [_rec(1, None, "op", 0.0, 1.0, kernel="mm")]
        assert "kernel=mm" in render_text_tree(records)
