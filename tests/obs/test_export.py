"""Tests for the trace exporters (repro.obs.export)."""

import pytest

from repro.obs import (
    render_text_tree,
    span,
    span_totals,
    to_chrome_trace,
    trace,
)
from repro.obs.spans import SpanRecord


def _rec(span_id, parent_id, name, start, end, pid=100, **labels):
    return SpanRecord(
        span_id=span_id, parent_id=parent_id, name=name,
        start_s=start, end_s=end, labels=labels, pid=pid,
    )


class TestSpanTotals:
    def test_aggregates_by_name(self):
        records = [
            _rec(1, None, "run", 0.0, 10.0),
            _rec(2, 1, "step", 0.0, 2.0),
            _rec(3, 1, "step", 2.0, 5.0),
        ]
        totals = span_totals(records)
        assert totals["run"]["count"] == 1
        assert totals["run"]["total_s"] == pytest.approx(10.0)
        assert totals["step"]["count"] == 2
        assert totals["step"]["total_s"] == pytest.approx(5.0)

    def test_self_time_excludes_children(self):
        records = [
            _rec(1, None, "run", 0.0, 10.0),
            _rec(2, 1, "step", 0.0, 2.0),
            _rec(3, 1, "step", 2.0, 5.0),
        ]
        totals = span_totals(records)
        assert totals["run"]["self_s"] == pytest.approx(5.0)  # 10 - 2 - 3
        assert totals["step"]["self_s"] == pytest.approx(5.0)  # leaves

    def test_self_time_clamped_at_zero(self):
        # A worker-clock child can slightly overhang its adopted parent;
        # self time must not go negative.
        records = [
            _rec(1, None, "run", 0.0, 1.0),
            _rec(2, 1, "step", 0.0, 1.5),
        ]
        assert span_totals(records)["run"]["self_s"] == 0.0

    def test_min_max_durations(self):
        records = [
            _rec(1, None, "step", 0.0, 2.0),
            _rec(2, None, "step", 2.0, 5.0),
        ]
        totals = span_totals(records)
        assert totals["step"]["min_s"] == pytest.approx(2.0)
        assert totals["step"]["max_s"] == pytest.approx(3.0)

    def test_empty(self):
        assert span_totals([]) == {}


class TestChromeTrace:
    def test_complete_events_relative_to_origin(self):
        records = [
            _rec(1, None, "run", 5.0, 6.0),
            _rec(2, 1, "step", 5.25, 5.75, pid=200),
        ]
        events = to_chrome_trace(records)
        xs = [e for e in events if e["ph"] == "X"]
        assert len(xs) == 2
        assert xs[0]["ts"] == pytest.approx(0.0)
        assert xs[1]["ts"] == pytest.approx(0.25e6)
        assert xs[1]["dur"] == pytest.approx(0.5e6)
        assert xs[1]["pid"] == 200
        assert xs[1]["args"]["parent_id"] == 1

    def test_metadata_events_name_processes(self):
        records = [
            _rec(1, None, "run", 5.0, 6.0, pid=100),
            _rec(2, 1, "step", 5.25, 5.75, pid=200),
        ]
        events = to_chrome_trace(records)
        meta = [e for e in events if e["ph"] == "M"]
        names = {
            (e["pid"], e["args"]["name"])
            for e in meta if e["name"] == "process_name"
        }
        assert names == {(100, "main (pid 100)"), (200, "worker (pid 200)")}
        assert {e["name"] for e in meta} == {"process_name", "thread_name"}

    def test_counter_events_from_metrics(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        registry.inc("memo.hit", 7, kernel="mm")
        events = to_chrome_trace(
            [_rec(1, None, "run", 0.0, 2.0)], metrics=registry
        )
        counters = [e for e in events if e["ph"] == "C"]
        assert len(counters) == 2  # samples bracket the trace
        assert counters[0]["name"] == "memo.hit{kernel=mm}"
        assert counters[0]["args"]["value"] == 7
        assert counters[0]["ts"] == pytest.approx(0.0)
        assert counters[1]["ts"] == pytest.approx(2e6)

    def test_labels_exported_as_args(self):
        events = to_chrome_trace([_rec(1, None, "op", 0.0, 1.0, kernel="mm")])
        xs = [e for e in events if e["ph"] == "X"]
        assert xs[0]["args"]["kernel"] == "mm"

    def test_empty(self):
        assert to_chrome_trace([]) == []

    def test_json_serializable_from_live_trace(self):
        import json

        from repro.obs import collect

        with trace() as tracer, collect() as metrics:
            with span("a", n=1):
                with span("b"):
                    pass
        json.dumps(to_chrome_trace(tracer.records, metrics=metrics))


class TestTextTree:
    def test_collapses_same_name_siblings(self):
        records = [_rec(1, None, "run", 0.0, 10.0)]
        records += [
            _rec(2 + i, 1, "profile", float(i), float(i + 1))
            for i in range(5)
        ]
        out = render_text_tree(records)
        assert "profile ×5" in out
        assert out.count("profile") == 1

    def test_collapsed_group_sums_durations(self):
        records = [
            _rec(1, None, "run", 0.0, 10.0),
            _rec(2, 1, "step", 0.0, 2.0),
            _rec(3, 1, "step", 2.0, 4.0),
        ]
        out = render_text_tree(records)
        assert "4.00 s" in out

    def test_collapsed_subtrees_aggregate_across_members(self):
        # two profile spans, each with one launch child: the collapsed
        # tree must show launch ×2, not just the first sibling's child
        records = [
            _rec(1, None, "run", 0.0, 10.0),
            _rec(2, 1, "profile", 0.0, 2.0),
            _rec(3, 1, "profile", 2.0, 4.0),
            _rec(4, 2, "launch", 0.0, 1.0),
            _rec(5, 3, "launch", 2.0, 3.0),
        ]
        out = render_text_tree(records)
        assert "launch ×2" in out

    def test_no_collapse_mode(self):
        records = [
            _rec(1, None, "run", 0.0, 10.0),
            _rec(2, 1, "step", 0.0, 2.0),
            _rec(3, 1, "step", 2.0, 4.0),
        ]
        out = render_text_tree(records, collapse=False)
        assert out.count("step") == 2

    def test_worker_pids_tagged(self):
        records = [
            _rec(1, None, "run", 0.0, 10.0, pid=100),
            _rec(2, 1, "work", 0.0, 1.0, pid=201),
        ]
        out = render_text_tree(records)
        assert "[pids [201]]" in out

    def test_empty(self):
        assert render_text_tree([]) == "(empty trace)"

    def test_singleton_labels_shown(self):
        records = [_rec(1, None, "op", 0.0, 1.0, kernel="mm")]
        assert "kernel=mm" in render_text_tree(records)

    def test_orphaned_worker_spans_render_as_roots(self):
        # A worker span whose parent was never adopted (parent_id points
        # outside the record set) must still render, as a root.
        records = [
            _rec(1, None, "run", 0.0, 10.0, pid=100),
            _rec(7, 99, "orphan", 0.0, 1.0, pid=201),
        ]
        out = render_text_tree(records)
        lines = out.splitlines()
        assert any(l.startswith("orphan") for l in lines)
        assert "[pids [201]]" in out

    def test_all_orphans_trace_still_renders(self):
        records = [
            _rec(5, 99, "a", 0.0, 1.0),
            _rec(6, 99, "b", 1.0, 2.0),
        ]
        out = render_text_tree(records)
        assert "a" in out and "b" in out

    def test_collapsed_group_omits_labels(self):
        # Labels are per-span; showing only the first sibling's on a
        # collapsed ×N line would mislead.
        records = [
            _rec(1, None, "run", 0.0, 10.0),
            _rec(2, 1, "profile", 0.0, 1.0, problem=32),
            _rec(3, 1, "profile", 1.0, 2.0, problem=64),
        ]
        out = render_text_tree(records)
        assert "profile ×2" in out
        assert "problem=" not in out

    def test_no_collapse_mode_keeps_labels(self):
        records = [
            _rec(1, None, "run", 0.0, 10.0),
            _rec(2, 1, "profile", 0.0, 1.0, problem=32),
            _rec(3, 1, "profile", 1.0, 2.0, problem=64),
        ]
        out = render_text_tree(records, collapse=False)
        assert "problem=32" in out and "problem=64" in out

    def test_deep_nesting_indentation(self):
        depth = 6
        records = [_rec(1, None, "lvl0", 0.0, 10.0)]
        for d in range(1, depth):
            records.append(
                _rec(d + 1, d, f"lvl{d}", 0.0, 10.0 - d)
            )
        out = render_text_tree(records)
        for d in range(depth):
            line = next(
                l for l in out.splitlines() if l.lstrip().startswith(f"lvl{d}")
            )
            assert line.startswith("  " * d + f"lvl{d}")
