"""Tests for the structured bottleneck report (repro.obs.report).

The load-bearing pins here are the determinism contract — the rendered
report is byte-identical with tracing on or off and for any worker
count — and the ranked-importance section reproducing
``fit.importance`` ordering bit-for-bit.
"""

import pytest

from repro import BlackForest, Campaign, GTX580
from repro.kernels import VectorAddKernel
from repro.obs import (
    Event,
    EventLog,
    Report,
    ReportSection,
    build_report,
    collect,
    trace,
)
from repro.obs.report import Chart, Para, Table

SIZES = [1 << 14, 1 << 16, 1 << 18, 1 << 20]


def _campaign(n_jobs=1):
    return Campaign(VectorAddKernel(), GTX580, rng=0).run(
        problems=SIZES, replicates=2, n_jobs=n_jobs
    )


def _fit(campaign, repeats=2, n_jobs=1):
    return BlackForest(
        n_trees=20, importance_repeats=repeats, n_jobs=n_jobs, rng=1
    ).fit(campaign)


@pytest.fixture(scope="module")
def campaign():
    return _campaign()


@pytest.fixture(scope="module")
def fit(campaign):
    return _fit(campaign)


def _section(report, title):
    return next(s for s in report.sections if s.title == title)


def _tables(section):
    return [b for b in section.blocks if isinstance(b, Table)]


class TestReportStructure:
    def test_section_builders(self):
        report = Report("T")
        sec = report.section("S")
        sec.para("hello")
        sec.table(["a"], [(1,)], caption="c")
        sec.chart(["x"], [2.0], title="t")
        assert isinstance(sec, ReportSection)
        assert [type(b) for b in sec.blocks] == [Para, Table, Chart]

    def test_render_dispatch(self):
        report = Report("T")
        assert report.render("text").startswith("=== T ===")
        assert report.render("md").startswith("# T")
        assert report.render("markdown") == report.render("md")
        assert report.render("html").startswith("<!DOCTYPE html>")

    def test_unknown_format_raises(self):
        with pytest.raises(ValueError, match="unknown report format"):
            Report("T").render("pdf")

    def test_save_infers_format_from_suffix(self, tmp_path):
        report = Report("T")
        report.section("S").para("body")
        html = (tmp_path / "r.html")
        md = (tmp_path / "r.md")
        txt = (tmp_path / "r.out")
        report.save(html)
        report.save(md)
        report.save(txt)
        assert html.read_text().startswith("<!DOCTYPE html>")
        assert md.read_text().startswith("# T")
        assert txt.read_text().startswith("=== T ===")


class TestBottleneckReport:
    def test_core_sections_present(self, fit, campaign):
        report = build_report(fit, campaign)
        titles = [s.title for s in report.sections]
        assert titles[0] == "Fit quality"
        assert "Variable importance (GTX580)" in titles
        assert "Importance stability" in titles
        assert "Detected bottlenecks" in titles
        assert any(t.startswith("Counters:") for t in titles)

    def test_title_names_kernel_and_arch(self, fit, campaign):
        report = build_report(fit, campaign)
        assert report.title == f"Bottleneck report: {fit.kernel} on GTX580"

    def test_fit_only_report_skips_campaign_sections(self, fit):
        report = build_report(fit)
        titles = [s.title for s in report.sections]
        assert not any(t.startswith("Counters:") for t in titles)
        assert "Occupancy and memory path" not in titles

    def test_importance_order_matches_fit_bit_for_bit(self, fit, campaign):
        report = build_report(fit, campaign, top_k=10)
        sec = _section(report, "Variable importance (GTX580)")
        (table,) = _tables(sec)
        k = min(10, len(fit.importance.names))
        assert [row[1] for row in table.rows] == list(
            fit.importance.names[:k]
        )
        assert [row[2] for row in table.rows] == [
            f"{float(s):.4g}" for s in fit.importance.scores[:k]
        ]
        chart = next(b for b in sec.blocks if isinstance(b, Chart))
        assert chart.labels == list(fit.importance.names[:k])
        assert chart.values == [float(s) for s in fit.importance.scores[:k]]

    def test_top_k_limits_rows(self, fit, campaign):
        report = build_report(fit, campaign, top_k=3)
        sec = _section(report, "Variable importance (GTX580)")
        (table,) = _tables(sec)
        assert len(table.rows) == 3

    def test_importance_rows_carry_catalogue_metadata(self, fit):
        report = build_report(fit)
        sec = _section(report, "Variable importance (GTX580)")
        (table,) = _tables(sec)
        by_name = {row[1]: row for row in table.rows}
        counters = {
            n: r for n, r in by_name.items() if r[4] != "characteristic"
        }
        if counters:  # catalogue-backed rows name their family and unit
            row = next(iter(counters.values()))
            assert row[6] != "-"

    def test_stability_assessed_with_repeats(self, fit, campaign):
        report = build_report(fit, campaign)
        sec = _section(report, "Importance stability")
        text = next(b for b in sec.blocks if isinstance(b, Para)).text
        assert "Spearman rank correlation across 2 repeated" in text
        assert ("STABLE" in text) or ("UNSTABLE" in text)

    def test_stability_not_assessed_single_repeat(self, campaign):
        single = _fit(campaign, repeats=1)
        report = build_report(single)
        sec = _section(report, "Importance stability")
        text = next(b for b in sec.blocks if isinstance(b, Para)).text
        assert "Not assessed" in text

    def test_quarantine_paragraph_when_clean(self, fit, campaign):
        report = build_report(fit, campaign)
        sec = _section(report, "Fit quality")
        paras = [b.text for b in sec.blocks if isinstance(b, Para)]
        assert any("No quarantined runs" in t for t in paras)


class TestOptionalSections:
    def test_trace_enables_hot_path_section(self, fit, campaign):
        with trace() as tracer:
            _campaign()
        report = build_report(fit, campaign, trace=tracer.records)
        sec = _section(report, "Hot paths (span self-time)")
        (table,) = _tables(sec)
        spans = [row[0] for row in table.rows]
        assert "campaign.run" in spans

    def test_events_enable_timeline_section(self, fit):
        log = EventLog()
        log.merge([
            Event("fit.start", t_s=1.0, seq=1, pid=9, fields={"stage": "x"}),
            Event("fit.end", t_s=2.0, seq=2, pid=9),
        ])
        report = build_report(fit, events=log)
        sec = _section(report, "Event timeline")
        (table,) = _tables(sec)
        assert [row[2] for row in table.rows] == ["fit.start", "fit.end"]
        assert table.rows[0][0] == "0.0 ms"
        assert table.rows[1][0] == "1000.0 ms"

    def test_empty_trace_and_events_add_no_sections(self, fit):
        report = build_report(fit, trace=[], events=[])
        titles = [s.title for s in report.sections]
        assert "Hot paths (span self-time)" not in titles
        assert "Event timeline" not in titles


class TestDeterminism:
    def test_report_identical_with_tracing_and_metrics_on(
        self, fit, campaign
    ):
        plain = build_report(fit, campaign).render("html")
        with trace(), collect():
            traced = build_report(fit, campaign).render("html")
        assert traced == plain

    def test_report_identical_across_n_jobs(self):
        serial = build_report(
            _fit(_campaign(n_jobs=1)), _campaign(n_jobs=1)
        )
        parallel = build_report(
            _fit(_campaign(n_jobs=2), n_jobs=2), _campaign(n_jobs=2)
        )
        for format in ("text", "md", "html"):
            assert serial.render(format) == parallel.render(format)

    def test_rebuild_is_byte_identical(self, fit, campaign):
        a = build_report(fit, campaign).render("text")
        b = build_report(fit, campaign).render("text")
        assert a == b


class TestHtmlRendering:
    def test_self_contained_no_external_assets(self, fit, campaign):
        html = build_report(fit, campaign).render("html")
        assert html.startswith("<!DOCTYPE html>")
        assert "<style>" in html
        assert "<svg" in html  # charts are inline SVG
        assert "<script" not in html
        # no fetched assets: the xmlns namespace URI is the only URL
        assert "<link" not in html
        assert "src=" not in html and "href=" not in html
        assert "@import" not in html

    def test_html_escapes_markup(self):
        report = Report("a <b> & c")
        report.section("s<1>").para("x < y & z")
        html = report.render("html")
        assert "a &lt;b&gt; &amp; c" in html
        assert "s&lt;1&gt;" in html
        assert "x &lt; y &amp; z" in html

    def test_markdown_tables_and_fenced_charts(self, fit, campaign):
        md = build_report(fit, campaign).render("md")
        assert "| rank | predictor |" in md
        assert "```" in md


class TestFitArtifactReportMethods:
    def test_blackforest_fit_report(self, fit, campaign):
        report = fit.report(campaign)
        assert isinstance(report, Report)
        assert report.title.startswith("Bottleneck report:")

    def test_problem_scaling_fit_report_keyword(self, campaign):
        from repro.core import ProblemScalingPredictor

        ps = ProblemScalingPredictor(
            BlackForest(n_trees=20, importance_repeats=1, rng=1), rng=1
        ).fit(campaign)
        report = ps.report(campaign=campaign)
        assert isinstance(report, Report)
        titles = [s.title for s in report.sections]
        assert "Problem-scaling model" in titles

    def test_hardware_fit_report(self, campaign):
        from repro.core import HardwareScalingPredictor

        hw = HardwareScalingPredictor(n_trees=20, rng=1).fit(campaign)
        report = hw.report(campaign=campaign)
        assert report.title == "Hardware-scaling report: GTX580"
        titles = [s.title for s in report.sections]
        assert "Hardware-scaling model" in titles
