"""Instrumentation contract: tracing must never change numbers.

Two pins protect the tentpole's core promise:

* **bit-identity** — every pipeline stage produces bit-identical
  numeric output with tracing/metrics on and off, serial and parallel;
* **cheap disabled path** — the no-op ``span()`` is a constant-time
  global check, bounded here with a generous robust micro-benchmark
  (the precise <5% end-to-end bound is tracked by ``repro bench``,
  whose workloads run the instrumented hot paths).
"""

import time

import numpy as np

from repro import BlackForest, Campaign, GTX580
from repro.kernels import VectorAddKernel
from repro.obs import collect, span, trace

SIZES = [1 << 14, 1 << 16, 1 << 18, 1 << 20]


def _campaign(rng=0, n_jobs=1):
    return Campaign(VectorAddKernel(), GTX580, rng=rng).run(
        problems=SIZES, replicates=2, n_jobs=n_jobs
    )


class TestBitIdentity:
    def test_campaign_identical_with_tracing(self):
        plain = _campaign()
        with trace(), collect():
            traced = _campaign()
        for a, b in zip(plain.records, traced.records):
            assert a.time_s == b.time_s
            assert a.counters == b.counters

    def test_parallel_campaign_identical_with_tracing(self):
        plain = _campaign()
        with trace(), collect():
            traced = _campaign(n_jobs=2)
        for a, b in zip(plain.records, traced.records):
            assert a.time_s == b.time_s
            assert a.counters == b.counters

    def test_forest_fit_identical_with_tracing(self):
        campaign = _campaign()
        plain = BlackForest(n_trees=30, rng=1).fit(campaign)
        with trace(), collect():
            traced = BlackForest(n_trees=30, rng=1).fit(campaign)
        assert plain.oob_mse == traced.oob_mse
        assert plain.test_mse == traced.test_mse
        assert np.array_equal(
            plain.forest.predict(plain.X_test),
            traced.forest.predict(traced.X_test),
        )
        assert plain.importance.names == traced.importance.names

    def test_parallel_forest_fit_identical_with_tracing(self):
        campaign = _campaign()
        plain = BlackForest(n_trees=30, n_jobs=1, rng=1).fit(campaign)
        with trace(), collect():
            traced = BlackForest(n_trees=30, n_jobs=2, rng=1).fit(campaign)
        assert plain.oob_mse == traced.oob_mse
        assert np.array_equal(
            plain.forest.predict(plain.X_test),
            traced.forest.predict(traced.X_test),
        )


class TestTraceCoverage:
    def test_campaign_spans(self):
        with trace() as tracer:
            _campaign()
        assert "campaign.run" in tracer.names()
        assert len(tracer.find("profile")) == len(SIZES)
        assert tracer.find("gpusim.launch")

    def test_parallel_campaign_merges_worker_spans(self):
        with trace() as tracer:
            _campaign(n_jobs=2)
        profiles = tracer.find("profile")
        assert len(profiles) == len(SIZES)
        run = tracer.find("campaign.run")[0]
        # every worker span hangs off campaign.run after the merge
        for p in profiles:
            assert p.parent_id == run.span_id
        assert {p.pid for p in profiles} != {run.pid}

    def test_blackforest_fit_spans(self):
        campaign = _campaign()
        with trace() as tracer:
            BlackForest(n_trees=20, rng=1).fit(campaign)
        for name in ("blackforest.fit", "forest.fit", "forest.tree",
                     "blackforest.importance", "blackforest.reduced_check"):
            assert name in tracer.names(), name

    def test_metrics_cover_simulator_and_trees(self):
        with collect() as registry:
            campaign = _campaign()
            BlackForest(n_trees=20, rng=1).fit(campaign)
        counters = registry.snapshot()["counter"]
        assert counters.get("tree.fits", 0) > 0
        hits = sum(v for k, v in counters.items()
                   if k.startswith("resolve_access."))
        assert hits > 0

    def test_parallel_campaign_merges_worker_metrics(self):
        with collect() as serial_reg:
            _campaign()
        with collect() as parallel_reg:
            _campaign(n_jobs=2)
        assert serial_reg.snapshot()["counter"] == (
            parallel_reg.snapshot()["counter"]
        )


class TestDisabledOverhead:
    def test_noop_span_is_fast(self):
        """The disabled span() call must stay a trivial check.

        Bounded against an empty function call with a generous 25x
        factor and best-of-7 timing so scheduler noise cannot flake the
        test; the real product bound (<5% on end-to-end hot paths) is
        enforced via the `repro bench` workloads which run the
        instrumented code.
        """

        def noop():
            pass

        n = 20_000

        def best(f):
            samples = []
            for _ in range(7):
                t0 = time.perf_counter()
                for _ in range(n):
                    f()
                samples.append(time.perf_counter() - t0)
            return min(samples)

        def call_span():
            span("x")

        base = best(noop)
        cost = best(call_span)
        assert cost < base * 25 + 5e-3

    def test_noop_span_no_allocation_per_call(self):
        assert span("a") is span("b")
