"""Tests for the bench-history journal and watchdog (repro.obs.history)."""

import json

import pytest

from repro.obs import append_history, compare_results, read_history
from repro.obs.history import (
    DEFAULT_THRESHOLD_PCT,
    SCHEMA,
    Regression,
)


def _payload(**speedups) -> dict:
    return {
        "schema": "repro-bench/1",
        "results": [
            {"op": op, "speedup": s} for op, s in sorted(speedups.items())
        ],
    }


class TestJournal:
    def test_append_read_round_trip(self, tmp_path):
        path = tmp_path / "history.jsonl"
        append_history(path, _payload(resolve=10.0))
        append_history(path, _payload(resolve=11.0))
        entries = read_history(path)
        assert len(entries) == 2
        assert entries[0]["bench"]["results"][0]["speedup"] == 10.0
        assert entries[1]["bench"]["results"][0]["speedup"] == 11.0

    def test_entries_carry_schema_and_provenance(self, tmp_path):
        path = tmp_path / "history.jsonl"
        append_history(path, _payload(resolve=10.0))
        (entry,) = read_history(path)
        assert entry["schema"] == SCHEMA
        prov = entry["provenance"]
        assert prov["schema"] == "repro-manifest/1"
        assert "python" in prov and "host" in prov

    def test_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "benchmarks" / "history.jsonl"
        append_history(path, _payload(x=1.0))
        assert len(read_history(path)) == 1

    def test_missing_file_reads_empty(self, tmp_path):
        assert read_history(tmp_path / "absent.jsonl") == []

    def test_torn_trailing_line_discarded(self, tmp_path):
        path = tmp_path / "history.jsonl"
        append_history(path, _payload(a=1.0))
        append_history(path, _payload(a=2.0))
        with open(path, "a") as fh:
            fh.write('{"schema": "repro-bench-history/1", "bench"')
        entries = read_history(path)
        assert len(entries) == 2

    def test_unknown_schema_raises(self, tmp_path):
        path = tmp_path / "history.jsonl"
        path.write_text(json.dumps({"schema": "repro-bench-history/9"}) + "\n")
        with pytest.raises(ValueError, match="unknown history schema"):
            read_history(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "history.jsonl"
        append_history(path, _payload(a=1.0))
        with open(path, "a") as fh:
            fh.write("\n")
        append_history(path, _payload(a=2.0))
        assert len(read_history(path)) == 2


class TestCompareResults:
    def test_no_regression_when_equal(self):
        current = baseline = _payload(resolve=10.0, simulate=5.0)
        assert compare_results(current, baseline) == []

    def test_improvement_is_not_a_regression(self):
        assert compare_results(
            _payload(resolve=20.0), _payload(resolve=10.0)
        ) == []

    def test_drop_past_threshold_flagged(self):
        regs = compare_results(
            _payload(resolve=5.0), _payload(resolve=10.0), threshold_pct=30.0
        )
        assert [r.op for r in regs] == ["resolve"]
        assert regs[0].drop_pct == pytest.approx(50.0)

    def test_drop_within_threshold_passes(self):
        assert compare_results(
            _payload(resolve=8.0), _payload(resolve=10.0), threshold_pct=30.0
        ) == []

    def test_threshold_is_strict_boundary(self):
        # exactly at the threshold is not a regression; just past it is
        at = compare_results(
            _payload(op=7.5), _payload(op=10.0), threshold_pct=25.0
        )
        past = compare_results(
            _payload(op=7.0), _payload(op=10.0), threshold_pct=25.0
        )
        assert at == []
        assert len(past) == 1

    def test_new_and_retired_ops_skipped(self):
        current = _payload(brand_new=0.1, shared=10.0)
        baseline = _payload(retired=50.0, shared=10.0)
        assert compare_results(current, baseline) == []

    def test_sorted_by_op(self):
        regs = compare_results(
            _payload(zeta=1.0, alpha=1.0),
            _payload(zeta=10.0, alpha=10.0),
        )
        assert [r.op for r in regs] == ["alpha", "zeta"]

    def test_nonpositive_baseline_speedup_skipped(self):
        assert compare_results(
            _payload(op=1.0), _payload(op=0.0)
        ) == []

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            compare_results(_payload(), _payload(), threshold_pct=-1.0)

    def test_default_threshold(self):
        assert DEFAULT_THRESHOLD_PCT == pytest.approx(30.0)


class TestRegression:
    def test_drop_pct(self):
        reg = Regression("op", baseline_speedup=10.0, current_speedup=4.0)
        assert reg.drop_pct == pytest.approx(60.0)

    def test_zero_baseline_guard(self):
        assert Regression("op", 0.0, 1.0).drop_pct == 0.0

    def test_describe(self):
        text = Regression("resolve", 14.9, 5.0).describe()
        assert "resolve" in text
        assert "14.90x" in text and "5.00x" in text
        assert "66% drop" in text
