"""Tests for the telemetry exporter and exposition (repro.obs.telemetry)."""

import json

import pytest

from repro.obs import (
    MetricsRegistry,
    TelemetryExporter,
    read_telemetry,
    render_prometheus,
    snapshot_doc,
)
from repro.obs.telemetry import SCHEMA


def make_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.inc("requests", 3)
    reg.inc("hits", kind="load")
    reg.set_gauge("depth", 7)
    for v in (0.01, 0.02, 0.4):
        reg.observe("step", v)
    return reg


class TestSnapshotDoc:
    def test_shape(self):
        doc = snapshot_doc(make_registry())
        assert doc["counters"]["requests"] == pytest.approx(3.0)
        assert doc["counters"]["hits{kind=load}"] == pytest.approx(1.0)
        assert doc["gauges"]["depth"] == pytest.approx(7.0)
        timer = doc["timers"]["step"]
        assert timer["count"] == 3
        assert timer["exact"] is True
        assert timer["buckets"][-1][1] == 3

    def test_json_serializable(self):
        json.dumps(snapshot_doc(make_registry()))


class TestExporter:
    def test_export_once_round_trips(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        reg = make_registry()
        exp = TelemetryExporter(path, lambda: snapshot_doc(reg))
        exp.export_once()
        exp.export_once()
        records = read_telemetry(path)
        assert [r["seq"] for r in records] == [0, 1]
        assert records[0]["schema"] == SCHEMA
        assert records[0]["source"] == "serve"
        assert records[0]["counters"]["requests"] == pytest.approx(3.0)

    def test_provenance_stamped_on_first_record_only(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        exp = TelemetryExporter(path, dict)
        exp.export_once()
        exp.export_once()
        records = read_telemetry(path)
        assert "provenance" in records[0]
        assert "git_rev" in records[0]["provenance"]
        assert "provenance" not in records[1]

    def test_extra_section_lands_in_the_record(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        exp = TelemetryExporter(path, dict, source="campaign")
        exp.export_once(extra={"progress": {"completed": 2, "total": 4}})
        [record] = read_telemetry(path)
        assert record["source"] == "campaign"
        assert record["progress"] == {"completed": 2, "total": 4}

    def test_rotation_keeps_jsonl_suffix(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        exp = TelemetryExporter(path, dict, max_bytes=1, max_files=2)
        for _ in range(4):
            exp.export_once()
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == [
            "telemetry.1.jsonl", "telemetry.2.jsonl", "telemetry.jsonl",
        ]
        # Every generation is independently readable (each rotation
        # restamps provenance on the new live file).
        for name in names:
            records = read_telemetry(tmp_path / name)
            assert records
            assert "provenance" in records[0]

    def test_rotation_drops_the_oldest_generation(self, tmp_path):
        path = tmp_path / "t.jsonl"
        exp = TelemetryExporter(path, dict, max_bytes=1, max_files=1)
        for _ in range(5):
            exp.export_once()
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["t.1.jsonl", "t.jsonl"]
        # Sequence numbers never reset across rotations.
        assert read_telemetry(tmp_path / "t.jsonl")[0]["seq"] == 4

    def test_torn_tail_is_dropped(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        exp = TelemetryExporter(path, dict)
        exp.export_once()
        exp.export_once()
        with open(path, "a") as fh:
            fh.write('{"schema": "repro-telemetry/1", "seq": 99, "trun')
        records = read_telemetry(path)
        assert [r["seq"] for r in records] == [0, 1]

    def test_schema_drift_is_refused(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        path.write_text('{"schema": "other/1"}\n')
        with pytest.raises(ValueError, match="unknown telemetry schema"):
            read_telemetry(path)

    def test_missing_file_reads_empty(self, tmp_path):
        assert read_telemetry(tmp_path / "nope.jsonl") == []

    def test_sample_swallows_and_counts_failures(self, tmp_path):
        def broken():
            raise RuntimeError("mid-reload race")

        exp = TelemetryExporter(tmp_path / "t.jsonl", broken)
        exp.sample()
        exp.sample()
        assert exp.export_errors == 2
        assert read_telemetry(tmp_path / "t.jsonl") == []

    def test_background_thread_samples_and_stops(self, tmp_path):
        path = tmp_path / "t.jsonl"
        exp = TelemetryExporter(path, dict, interval_s=0.01)
        exp.start()
        try:
            import time

            deadline = time.monotonic() + 5.0
            while not path.exists() and time.monotonic() < deadline:
                time.sleep(0.01)
        finally:
            exp.stop()
        # stop() flushes a final record even if the thread never fired.
        assert len(read_telemetry(path)) >= 1

    def test_rejects_bad_knobs(self, tmp_path):
        with pytest.raises(ValueError):
            TelemetryExporter(tmp_path / "t.jsonl", dict, interval_s=0)
        with pytest.raises(ValueError):
            TelemetryExporter(tmp_path / "t.jsonl", dict, max_bytes=0)
        with pytest.raises(ValueError):
            TelemetryExporter(tmp_path / "t.jsonl", dict, max_files=0)


class TestPrometheusRendering:
    def test_families(self):
        text = render_prometheus(snapshot_doc(make_registry()))
        assert "# TYPE repro_requests_total counter" in text
        assert 'repro_hits_total{kind="load"} 1' in text
        assert "# TYPE repro_depth gauge" in text
        assert "# TYPE repro_step_seconds histogram" in text
        assert 'repro_step_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_step_seconds_count 3" in text
        assert "repro_step_seconds_sum 0.43" in text

    def test_breakers_and_server_sections(self):
        doc = {
            "counters": {},
            "gauges": {},
            "timers": {},
            "breakers": {"gemm@volta": "open"},
            "server": {"requests_served": 12, "draining": 0},
        }
        text = render_prometheus(doc)
        assert (
            'repro_breaker_state{key="gemm@volta",state="open"} 1' in text
        )
        assert "repro_server_requests_served 12" in text

    def test_rendering_is_deterministic(self):
        doc = snapshot_doc(make_registry())
        assert render_prometheus(doc) == render_prometheus(
            json.loads(json.dumps(doc))
        )


class TestCampaignHeartbeat:
    def test_campaign_run_emits_progress(self, tmp_path):
        from repro.gpusim import GTX580
        from repro.profiling.campaign import Campaign
        from repro import kernel_registry

        kernel = kernel_registry()["reduce1"]
        path = tmp_path / "heartbeat.jsonl"
        result = Campaign(kernel, GTX580, rng=0).run(
            problems=[1024, 2048], telemetry=str(path)
        )
        assert len(result.records) == 2
        records = read_telemetry(path)
        assert records, "campaign heartbeat journal is empty"
        assert all(r["source"] == "campaign" for r in records)
        last = records[-1]["progress"]
        assert last["total"] == 2
        assert last["completed"] == 2
        assert last["quarantined"] == 0

    def test_campaign_results_identical_with_telemetry(self, tmp_path):
        from repro.gpusim import GTX580
        from repro.profiling.campaign import Campaign
        from repro import kernel_registry

        kernel = kernel_registry()["reduce1"]
        plain = Campaign(kernel, GTX580, rng=0).run(problems=[1024])
        observed = Campaign(kernel, GTX580, rng=0).run(
            problems=[1024], telemetry=str(tmp_path / "t.jsonl")
        )
        assert [r.counters for r in plain.records] == [
            r.counters for r in observed.records
        ]
        assert [r.time_s for r in plain.records] == [
            r.time_s for r in observed.records
        ]
