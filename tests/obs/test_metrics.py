"""Tests for the counter/gauge/timer metrics (repro.obs.metrics)."""

import pytest

from repro.obs import (
    LogHistogram,
    MetricsRegistry,
    collect,
    current_metrics,
    inc,
    metrics_enabled,
    observe,
    set_gauge,
    timer,
)
from repro.obs.metrics import RAW_SAMPLE_CAP


class TestDisabledDefault:
    def test_disabled_by_default(self):
        assert not metrics_enabled()
        assert current_metrics() is None

    def test_module_instruments_are_noops_when_disabled(self):
        inc("x")
        set_gauge("y", 1.0)
        observe("z", 0.5)
        with timer("t"):
            pass
        assert current_metrics() is None


class TestRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.inc("hits")
        reg.inc("hits", 2.0)
        assert reg.snapshot()["counter"]["hits"] == pytest.approx(3.0)

    def test_labels_distinguish_series(self):
        reg = MetricsRegistry()
        reg.inc("hits", kind="load")
        reg.inc("hits", kind="store")
        reg.inc("hits", kind="load")
        snap = reg.snapshot()["counter"]
        assert snap["hits{kind=load}"] == pytest.approx(2.0)
        assert snap["hits{kind=store}"] == pytest.approx(1.0)

    def test_label_order_is_canonical(self):
        reg = MetricsRegistry()
        reg.inc("m", a=1, b=2)
        reg.inc("m", b=2, a=1)
        assert reg.snapshot()["counter"]["m{a=1,b=2}"] == pytest.approx(2.0)

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.set_gauge("depth", 3)
        reg.set_gauge("depth", 7)
        assert reg.snapshot()["gauge"]["depth"] == pytest.approx(7.0)

    def test_timer_totals_and_counts(self):
        reg = MetricsRegistry()
        reg.observe("step", 0.25)
        reg.observe("step", 0.5)
        snap = reg.snapshot()["timer"]["step"]
        assert snap["total_s"] == pytest.approx(0.75)
        assert snap["count"] == 2

    def test_timer_context_manager(self):
        reg = MetricsRegistry()
        with reg.timer("block"):
            pass
        snap = reg.snapshot()["timer"]["block"]
        assert snap["count"] == 1
        assert snap["total_s"] >= 0.0


class TestTimerDistribution:
    def test_min_max(self):
        reg = MetricsRegistry()
        for s in (0.5, 0.1, 0.3):
            reg.observe("step", s)
        snap = reg.snapshot()["timer"]["step"]
        assert snap["min_s"] == pytest.approx(0.1)
        assert snap["max_s"] == pytest.approx(0.5)

    def test_single_observation_collapses(self):
        reg = MetricsRegistry()
        reg.observe("step", 0.25)
        snap = reg.snapshot()["timer"]["step"]
        assert snap["min_s"] == snap["max_s"] == snap["p50_s"] \
            == snap["p95_s"] == pytest.approx(0.25)

    def test_p50_interpolates(self):
        reg = MetricsRegistry()
        for s in (0.1, 0.2, 0.3, 0.4):
            reg.observe("step", s)
        snap = reg.snapshot()["timer"]["step"]
        assert snap["p50_s"] == pytest.approx(0.25)

    def test_p95_near_max(self):
        reg = MetricsRegistry()
        for s in [0.01] * 19 + [1.0]:
            reg.observe("step", s)
        snap = reg.snapshot()["timer"]["step"]
        # pos = 0.95 * 19 = 18.05 -> between the last 0.01 and the 1.0
        assert snap["p95_s"] == pytest.approx(0.01 + 0.05 * 0.99)

    def test_p99_tail(self):
        # 100 evenly spaced observations: p99 interpolates between the
        # 99th and 100th order statistics.
        reg = MetricsRegistry()
        for i in range(100):
            reg.observe("step", (i + 1) / 100.0)
        snap = reg.snapshot()["timer"]["step"]
        assert snap["p99_s"] == pytest.approx(0.99 + 0.01 * 0.01)
        assert snap["p95_s"] <= snap["p99_s"] <= snap["max_s"]

    def test_p99_single_observation_collapses(self):
        reg = MetricsRegistry()
        reg.observe("step", 0.25)
        snap = reg.snapshot()["timer"]["step"]
        assert snap["p99_s"] == pytest.approx(0.25)

    def test_p99_merge_order_independent(self):
        # The tail percentile of a merged registry must not depend on
        # which worker's observations landed first.
        chunks = [[0.9, 0.1, 0.05], [0.5, 2.0], [0.3, 0.7, 0.2, 1.5]]

        def merged(order):
            root = MetricsRegistry()
            for chunk in order:
                worker = MetricsRegistry()
                for v in chunk:
                    worker.observe("step", v)
                root.merge(worker)
            return root.snapshot()["timer"]["step"]

        a = merged(chunks)
        b = merged(list(reversed(chunks)))
        assert a["p99_s"] == b["p99_s"]
        assert a == b

    def test_summary_is_observation_order_independent(self):
        values = [0.5, 0.1, 0.9, 0.3, 0.7]
        fwd, rev = MetricsRegistry(), MetricsRegistry()
        for v in values:
            fwd.observe("step", v)
        for v in reversed(values):
            rev.observe("step", v)
        assert fwd.snapshot()["timer"] == rev.snapshot()["timer"]

    def test_merge_order_independent(self):
        # However worker chunks land, the merged distribution summary is
        # identical — the raw observations are re-sorted at snapshot.
        chunks = [[0.9, 0.1], [0.5], [0.3, 0.7, 0.2]]

        def merged(order):
            root = MetricsRegistry()
            for chunk in order:
                worker = MetricsRegistry()
                for v in chunk:
                    worker.observe("step", v)
                root.merge(worker)
            return root.snapshot()["timer"]["step"]

        a = merged(chunks)
        b = merged(list(reversed(chunks)))
        assert a == b
        assert a["count"] == 6
        assert a["p50_s"] == pytest.approx(0.4)


class TestMerge:
    def test_merge_adds_counters_and_timers(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("n", 1.0)
        b.inc("n", 2.0)
        a.observe("t", 0.1)
        b.observe("t", 0.2)
        a.merge(b)
        snap = a.snapshot()
        assert snap["counter"]["n"] == pytest.approx(3.0)
        assert snap["timer"]["t"]["total_s"] == pytest.approx(0.3)
        assert snap["timer"]["t"]["count"] == 2

    def test_merge_gauges_take_other(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.set_gauge("g", 1.0)
        b.set_gauge("g", 9.0)
        a.merge(b)
        assert a.snapshot()["gauge"]["g"] == pytest.approx(9.0)


def _hist(values) -> LogHistogram:
    h = LogHistogram()
    for v in values:
        h.observe(v)
    return h


def _merged(parts) -> LogHistogram:
    root = LogHistogram()
    for part in parts:
        root.merge(_hist(part))
    return root


class TestLogHistogram:
    def test_memory_is_bounded_past_the_cap(self):
        # The whole point of the histogram: Timer memory must not grow
        # with the observation count.
        h = _hist([0.001 * (i + 1) for i in range(RAW_SAMPLE_CAP + 50)])
        assert h.samples is None
        assert h.count == RAW_SAMPLE_CAP + 50
        assert len(h.buckets) < 200  # sparse log-spaced, not per-value

    def test_exact_quantiles_below_the_cap(self):
        h = _hist([0.1, 0.2, 0.3, 0.4])
        assert h.quantile(0.5) == pytest.approx(0.25)

    def test_bucketed_quantiles_clamped_to_min_max(self):
        values = [0.001 * (i + 1) for i in range(RAW_SAMPLE_CAP + 100)]
        h = _hist(values)
        assert h.samples is None
        assert min(values) <= h.quantile(0.0) <= h.quantile(0.5) \
            <= h.quantile(1.0) <= max(values)
        assert h.quantile(1.0) == pytest.approx(max(values))
        assert h.quantile(0.0) == pytest.approx(min(values))

    def test_bucketed_quantile_close_to_exact(self):
        # Log-spaced buckets (growth 2^0.25) bound the relative error
        # of interior quantiles to one bucket's width.
        values = [0.0005 * (i + 1) for i in range(RAW_SAMPLE_CAP * 2)]
        h = _hist(values)
        exact = sorted(values)[len(values) // 2]
        assert h.quantile(0.5) == pytest.approx(exact, rel=0.2)

    def test_empty_histogram(self):
        h = LogHistogram()
        assert h.count == 0
        assert h.quantile(0.5) is None
        assert h.summary()["count"] == 0

    def test_single_observation(self):
        h = _hist([0.25])
        for q in (0.0, 0.5, 0.99, 1.0):
            assert h.quantile(q) == pytest.approx(0.25)

    def test_nonpositive_observations_survive(self):
        h = _hist([0.0, -0.1, 0.5])
        assert h.count == 3
        assert h.min_value == pytest.approx(-0.1)
        assert h.quantile(1.0) == pytest.approx(0.5)

    def test_cumulative_buckets_monotone_and_complete(self):
        h = _hist([0.001, 0.01, 0.1, 1.0, 10.0] * 3)
        cum = h.cumulative_buckets()
        counts = [c for _, c in cum]
        assert counts == sorted(counts)
        assert cum[-1][0] == float("inf")
        assert cum[-1][1] == h.count


class TestHistogramMergeSemantics:
    """Satellite: merge(a, b) == merge(b, a), bit for bit."""

    CASES = [
        ([0.1, 0.2], [0.3]),
        ([], []),
        ([], [0.5]),
        ([0.25], [0.25]),
        ([0.0, -1.0], [2.0]),
        # Past the cap on one side: the merge must drop samples on
        # both orders identically.
        ([0.001 * (i + 1) for i in range(RAW_SAMPLE_CAP + 1)], [0.5]),
        # Past the cap only when combined.
        (
            [0.001 * (i + 1) for i in range(RAW_SAMPLE_CAP // 2 + 10)],
            [0.002 * (i + 1) for i in range(RAW_SAMPLE_CAP // 2 + 10)],
        ),
    ]

    @pytest.mark.parametrize("a_vals,b_vals", CASES)
    def test_merge_commutes_bit_for_bit(self, a_vals, b_vals):
        ab = _merged([a_vals, b_vals])
        ba = _merged([b_vals, a_vals])
        assert ab.to_dict() == ba.to_dict()
        for q in (0.0, 0.5, 0.95, 0.99, 1.0):
            assert ab.quantile(q) == ba.quantile(q)

    def test_merge_empty_is_identity(self):
        a = _hist([0.1, 0.9, 0.4])
        before = a.to_dict()
        a.merge(LogHistogram())
        assert a.to_dict() == before

    def test_exact_mode_drops_permanently_through_merges(self):
        # Once either side has shed its raw samples, the merged
        # histogram must never resurrect exact mode.
        big = _hist([0.001 * (i + 1) for i in range(RAW_SAMPLE_CAP + 1)])
        assert big.samples is None
        small = _hist([0.5])
        small.merge(big)
        assert small.samples is None

    def test_fan_in_partitions_agree(self):
        # The same observations fanned through 1 or 4 worker
        # registries (the n_jobs shapes the campaign uses) must
        # produce one identical snapshot.
        values = [0.001 * ((i * 7919) % 1000 + 1) for i in range(64)]

        def fan_in(n_jobs):
            root = MetricsRegistry()
            for w in range(n_jobs):
                worker = MetricsRegistry()
                for v in values[w::n_jobs]:
                    worker.observe("step", v)
                root.merge(worker)
            return root.snapshot()["timer"]["step"]

        assert fan_in(1) == fan_in(4)

    def test_fan_in_partitions_agree_past_cap(self):
        values = [
            0.001 * ((i * 104729) % 5000 + 1)
            for i in range(RAW_SAMPLE_CAP + 200)
        ]

        def fan_in(n_jobs):
            root = MetricsRegistry()
            for w in range(n_jobs):
                worker = MetricsRegistry()
                for v in values[w::n_jobs]:
                    worker.observe("step", v)
                root.merge(worker)
            return root.snapshot()["timer"]["step"]

        assert fan_in(1) == fan_in(4)


class TestCollect:
    def test_collect_installs_and_restores(self):
        assert current_metrics() is None
        with collect() as reg:
            assert current_metrics() is reg
            inc("inside")
        assert current_metrics() is None
        assert reg.snapshot()["counter"]["inside"] == pytest.approx(1.0)

    def test_nested_collect_shadows(self):
        with collect() as outer:
            inc("seen")
            with collect() as inner:
                inc("seen")
            inc("seen")
        assert outer.snapshot()["counter"]["seen"] == pytest.approx(2.0)
        assert inner.snapshot()["counter"]["seen"] == pytest.approx(1.0)
