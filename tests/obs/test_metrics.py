"""Tests for the counter/gauge/timer metrics (repro.obs.metrics)."""

import pytest

from repro.obs import (
    MetricsRegistry,
    collect,
    current_metrics,
    inc,
    metrics_enabled,
    observe,
    set_gauge,
    timer,
)


class TestDisabledDefault:
    def test_disabled_by_default(self):
        assert not metrics_enabled()
        assert current_metrics() is None

    def test_module_instruments_are_noops_when_disabled(self):
        inc("x")
        set_gauge("y", 1.0)
        observe("z", 0.5)
        with timer("t"):
            pass
        assert current_metrics() is None


class TestRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.inc("hits")
        reg.inc("hits", 2.0)
        assert reg.snapshot()["counter"]["hits"] == pytest.approx(3.0)

    def test_labels_distinguish_series(self):
        reg = MetricsRegistry()
        reg.inc("hits", kind="load")
        reg.inc("hits", kind="store")
        reg.inc("hits", kind="load")
        snap = reg.snapshot()["counter"]
        assert snap["hits{kind=load}"] == pytest.approx(2.0)
        assert snap["hits{kind=store}"] == pytest.approx(1.0)

    def test_label_order_is_canonical(self):
        reg = MetricsRegistry()
        reg.inc("m", a=1, b=2)
        reg.inc("m", b=2, a=1)
        assert reg.snapshot()["counter"]["m{a=1,b=2}"] == pytest.approx(2.0)

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.set_gauge("depth", 3)
        reg.set_gauge("depth", 7)
        assert reg.snapshot()["gauge"]["depth"] == pytest.approx(7.0)

    def test_timer_totals_and_counts(self):
        reg = MetricsRegistry()
        reg.observe("step", 0.25)
        reg.observe("step", 0.5)
        snap = reg.snapshot()["timer"]["step"]
        assert snap["total_s"] == pytest.approx(0.75)
        assert snap["count"] == 2

    def test_timer_context_manager(self):
        reg = MetricsRegistry()
        with reg.timer("block"):
            pass
        snap = reg.snapshot()["timer"]["block"]
        assert snap["count"] == 1
        assert snap["total_s"] >= 0.0


class TestTimerDistribution:
    def test_min_max(self):
        reg = MetricsRegistry()
        for s in (0.5, 0.1, 0.3):
            reg.observe("step", s)
        snap = reg.snapshot()["timer"]["step"]
        assert snap["min_s"] == pytest.approx(0.1)
        assert snap["max_s"] == pytest.approx(0.5)

    def test_single_observation_collapses(self):
        reg = MetricsRegistry()
        reg.observe("step", 0.25)
        snap = reg.snapshot()["timer"]["step"]
        assert snap["min_s"] == snap["max_s"] == snap["p50_s"] \
            == snap["p95_s"] == pytest.approx(0.25)

    def test_p50_interpolates(self):
        reg = MetricsRegistry()
        for s in (0.1, 0.2, 0.3, 0.4):
            reg.observe("step", s)
        snap = reg.snapshot()["timer"]["step"]
        assert snap["p50_s"] == pytest.approx(0.25)

    def test_p95_near_max(self):
        reg = MetricsRegistry()
        for s in [0.01] * 19 + [1.0]:
            reg.observe("step", s)
        snap = reg.snapshot()["timer"]["step"]
        # pos = 0.95 * 19 = 18.05 -> between the last 0.01 and the 1.0
        assert snap["p95_s"] == pytest.approx(0.01 + 0.05 * 0.99)

    def test_p99_tail(self):
        # 100 evenly spaced observations: p99 interpolates between the
        # 99th and 100th order statistics.
        reg = MetricsRegistry()
        for i in range(100):
            reg.observe("step", (i + 1) / 100.0)
        snap = reg.snapshot()["timer"]["step"]
        assert snap["p99_s"] == pytest.approx(0.99 + 0.01 * 0.01)
        assert snap["p95_s"] <= snap["p99_s"] <= snap["max_s"]

    def test_p99_single_observation_collapses(self):
        reg = MetricsRegistry()
        reg.observe("step", 0.25)
        snap = reg.snapshot()["timer"]["step"]
        assert snap["p99_s"] == pytest.approx(0.25)

    def test_p99_merge_order_independent(self):
        # The tail percentile of a merged registry must not depend on
        # which worker's observations landed first.
        chunks = [[0.9, 0.1, 0.05], [0.5, 2.0], [0.3, 0.7, 0.2, 1.5]]

        def merged(order):
            root = MetricsRegistry()
            for chunk in order:
                worker = MetricsRegistry()
                for v in chunk:
                    worker.observe("step", v)
                root.merge(worker)
            return root.snapshot()["timer"]["step"]

        a = merged(chunks)
        b = merged(list(reversed(chunks)))
        assert a["p99_s"] == b["p99_s"]
        assert a == b

    def test_summary_is_observation_order_independent(self):
        values = [0.5, 0.1, 0.9, 0.3, 0.7]
        fwd, rev = MetricsRegistry(), MetricsRegistry()
        for v in values:
            fwd.observe("step", v)
        for v in reversed(values):
            rev.observe("step", v)
        assert fwd.snapshot()["timer"] == rev.snapshot()["timer"]

    def test_merge_order_independent(self):
        # However worker chunks land, the merged distribution summary is
        # identical — the raw observations are re-sorted at snapshot.
        chunks = [[0.9, 0.1], [0.5], [0.3, 0.7, 0.2]]

        def merged(order):
            root = MetricsRegistry()
            for chunk in order:
                worker = MetricsRegistry()
                for v in chunk:
                    worker.observe("step", v)
                root.merge(worker)
            return root.snapshot()["timer"]["step"]

        a = merged(chunks)
        b = merged(list(reversed(chunks)))
        assert a == b
        assert a["count"] == 6
        assert a["p50_s"] == pytest.approx(0.4)


class TestMerge:
    def test_merge_adds_counters_and_timers(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("n", 1.0)
        b.inc("n", 2.0)
        a.observe("t", 0.1)
        b.observe("t", 0.2)
        a.merge(b)
        snap = a.snapshot()
        assert snap["counter"]["n"] == pytest.approx(3.0)
        assert snap["timer"]["t"]["total_s"] == pytest.approx(0.3)
        assert snap["timer"]["t"]["count"] == 2

    def test_merge_gauges_take_other(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.set_gauge("g", 1.0)
        b.set_gauge("g", 9.0)
        a.merge(b)
        assert a.snapshot()["gauge"]["g"] == pytest.approx(9.0)


class TestCollect:
    def test_collect_installs_and_restores(self):
        assert current_metrics() is None
        with collect() as reg:
            assert current_metrics() is reg
            inc("inside")
        assert current_metrics() is None
        assert reg.snapshot()["counter"]["inside"] == pytest.approx(1.0)

    def test_nested_collect_shadows(self):
        with collect() as outer:
            inc("seen")
            with collect() as inner:
                inc("seen")
            inc("seen")
        assert outer.snapshot()["counter"]["seen"] == pytest.approx(2.0)
        assert inner.snapshot()["counter"]["seen"] == pytest.approx(1.0)
