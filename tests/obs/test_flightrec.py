"""Tests for the flight recorder (repro.obs.flightrec)."""

import json

import pytest

from repro.obs import FlightRecorder, read_flightrec
from repro.obs.flightrec import SCHEMA


class TestRing:
    def test_bounded_capacity_keeps_newest(self, tmp_path):
        rec = FlightRecorder(tmp_path / "f.json", capacity=4)
        for i in range(10):
            rec.record("request", i=i)
        events = rec.events()
        assert len(events) == 4
        assert [e["fields"]["i"] for e in events] == [6, 7, 8, 9]

    def test_sequence_and_drop_accounting(self, tmp_path):
        rec = FlightRecorder(tmp_path / "f.json", capacity=3)
        for i in range(5):
            rec.record("x")
        doc = json.loads(rec.dump("test").read_text())
        assert doc["recorded"] == 5
        assert doc["dropped"] == 2
        assert [e["seq"] for e in doc["events"]] == [3, 4, 5]

    def test_field_named_kind_is_allowed(self, tmp_path):
        # The server's error records carry a 'kind' field; it must not
        # collide with the record kind itself.
        rec = FlightRecorder(tmp_path / "f.json")
        rec.record("error", kind="internal_error", code=-32603)
        [event] = rec.events()
        assert event["kind"] == "error"
        assert event["fields"]["kind"] == "internal_error"

    def test_events_returns_a_copy(self, tmp_path):
        rec = FlightRecorder(tmp_path / "f.json")
        rec.record("a")
        snapshot = rec.events()
        rec.record("b")
        assert len(snapshot) == 1
        assert len(rec.events()) == 2

    def test_rejects_bad_capacity(self, tmp_path):
        with pytest.raises(ValueError):
            FlightRecorder(tmp_path / "f.json", capacity=0)


class TestDump:
    def test_dump_writes_a_valid_artifact(self, tmp_path):
        path = tmp_path / "flightrec.json"
        rec = FlightRecorder(path)
        rec.record("breaker", state="open", model="gemm@volta")
        assert rec.dump("sigterm") == path
        doc = read_flightrec(path)
        assert doc["schema"] == SCHEMA
        assert doc["reason"] == "sigterm"
        assert doc["dump_count"] == 1
        assert doc["events"][0]["fields"]["model"] == "gemm@volta"
        assert "git_rev" in doc["provenance"]

    def test_dump_replaces_and_counts(self, tmp_path):
        path = tmp_path / "f.json"
        rec = FlightRecorder(path)
        rec.record("a")
        rec.dump("worker_exception")
        rec.record("b")
        rec.dump("sigterm")
        doc = read_flightrec(path)
        assert doc["reason"] == "sigterm"
        assert doc["dump_count"] == 2
        assert len(doc["events"]) == 2

    def test_dump_once_is_edge_triggered(self, tmp_path):
        path = tmp_path / "f.json"
        rec = FlightRecorder(path)
        rec.record("breaker", state="open")
        assert rec.dump_once("breaker_open") == path
        rec.record("breaker", state="open")
        # A flapping breaker must not overwrite first-failure state.
        assert rec.dump_once("breaker_open") is None
        doc = read_flightrec(path)
        assert doc["dump_count"] == 1
        assert len(doc["events"]) == 1

    def test_dump_after_dump_once_still_works(self, tmp_path):
        # SIGTERM after a breaker-open dump must still capture the
        # (newer) ring: dump() is unconditional.
        path = tmp_path / "f.json"
        rec = FlightRecorder(path)
        rec.record("breaker", state="open")
        rec.dump_once("breaker_open")
        rec.record("signal", signum=15)
        rec.dump("sigterm")
        doc = read_flightrec(path)
        assert doc["reason"] == "sigterm"
        assert doc["dump_count"] == 2

    def test_no_tmp_file_left_behind(self, tmp_path):
        rec = FlightRecorder(tmp_path / "f.json")
        rec.record("a")
        rec.dump("test")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["f.json"]

    def test_read_refuses_foreign_schema(self, tmp_path):
        path = tmp_path / "f.json"
        path.write_text('{"schema": "other/1"}')
        with pytest.raises(ValueError, match="unknown flight-recorder"):
            read_flightrec(path)

    def test_read_refuses_missing_fields(self, tmp_path):
        path = tmp_path / "f.json"
        path.write_text(json.dumps({"schema": SCHEMA, "reason": "x"}))
        with pytest.raises(ValueError, match="does not conform"):
            read_flightrec(path)


class TestServerIntegration:
    def test_breaker_open_dumps_exactly_once(self, tmp_path):
        # Unit-level mirror of the chaos --serve assertion: wire a
        # recorder into a PredictionServer, corrupt the stored fit so
        # the breaker opens, and check the one edge-triggered dump.
        import numpy as np

        from repro.ml.forest import RandomForestRegressor
        from repro.serve import FitRegistry, PredictionServer, ServableFit

        features = ["a", "b"]
        rng = np.random.default_rng(0)
        X = rng.uniform(size=(40, 2))
        forest = RandomForestRegressor(n_trees=4, rng=1).fit(
            X, X @ np.array([1.0, 2.0]), feature_names=features
        )
        from repro.faults import FaultPlan, FaultSpec, fault_injection

        registry = FitRegistry(tmp_path / "models")
        registry.publish(ServableFit(
            kernel="k", arch="a", tag=None, forest=forest,
            feature_names=features, source={},
        ))
        path = tmp_path / "flightrec.json"
        server = PredictionServer(
            registry, breaker_threshold=2, breaker_cooldown=2,
            watch_reload=False, flightrec_path=str(path),
        )
        line = json.dumps({
            "id": "r1", "method": "predict",
            "params": {"kernel": "k", "arch": "a", "X": [[1.0, 2.0]]},
        })
        plan = FaultPlan(
            [FaultSpec("registry.load", "corrupt", payload={"times": 4})],
            seed=0,
        )
        with fault_injection(plan):
            for _ in range(6):
                server.handle_batch([line])
        doc = read_flightrec(path)
        assert doc["reason"] == "breaker_open"
        assert doc["dump_count"] == 1
        kinds = {e["kind"] for e in doc["events"]}
        assert "error" in kinds
