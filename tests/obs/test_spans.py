"""Tests for the hierarchical tracing spans (repro.obs.spans)."""

import pytest

from repro.obs import (
    SpanRecord,
    Tracer,
    child_trace,
    current_tracer,
    span,
    trace,
    tracing_enabled,
)
from repro.obs.spans import _NOOP


class TestDisabledDefault:
    def test_tracing_disabled_by_default(self):
        assert not tracing_enabled()
        assert current_tracer() is None

    def test_span_is_shared_noop_singleton(self):
        # the no-op path must not allocate per call
        assert span("anything") is _NOOP
        assert span("other", k=1) is _NOOP

    def test_noop_span_is_context_manager(self):
        with span("outer"):
            with span("inner", label="x"):
                pass


class TestTracer:
    def test_records_nested_spans(self):
        with trace() as tracer:
            with span("a"):
                with span("b"):
                    pass
            with span("c"):
                pass
        names = [r.name for r in tracer.records]
        assert names == ["a", "b", "c"]  # recorded in open order
        a = tracer.find("a")[0]
        b = tracer.find("b")[0]
        c = tracer.find("c")[0]
        assert b.parent_id == a.span_id
        assert a.parent_id is None
        assert c.parent_id is None

    def test_labels_and_duration(self):
        with trace() as tracer:
            with span("op", kernel="mm", n=3):
                pass
        rec = tracer.records[0]
        assert rec.labels == {"kernel": "mm", "n": 3}
        assert rec.duration_s >= 0.0

    def test_trace_context_restores_previous(self):
        assert current_tracer() is None
        with trace() as outer:
            assert current_tracer() is outer
            with trace() as inner:
                assert current_tracer() is inner
            assert current_tracer() is outer
        assert current_tracer() is None

    def test_children_of(self):
        with trace() as tracer:
            with span("root"):
                with span("kid"):
                    pass
                with span("kid"):
                    pass
        root = tracer.find("root")[0]
        assert len(tracer.children_of(root.span_id)) == 2


class TestAdopt:
    def test_adopt_remaps_ids_under_parent(self):
        child = Tracer()
        prev = current_tracer()
        with trace() as parent:
            with span("parent.op"):
                # simulate a worker recording independently
                with _install(child):
                    with span("worker.op"):
                        with span("worker.inner"):
                            pass
                parent.adopt(child.records)
        assert current_tracer() is prev
        worker = parent.find("worker.op")[0]
        inner = parent.find("worker.inner")[0]
        parent_op = parent.find("parent.op")[0]
        assert worker.parent_id == parent_op.span_id
        assert inner.parent_id == worker.span_id
        ids = [r.span_id for r in parent.records]
        assert len(ids) == len(set(ids))

    def test_child_trace_always_fresh(self):
        with trace() as outer:
            with span("outer.op"):
                pass
            with child_trace() as fresh:
                assert fresh is not outer
                assert fresh.records == []
                with span("in.child"):
                    pass
            assert current_tracer() is outer
        assert [r.name for r in fresh.records] == ["in.child"]


class _install:
    """Temporarily swap the active tracer (worker simulation)."""

    def __init__(self, tracer):
        self.tracer = tracer

    def __enter__(self):
        import repro.obs.spans as spans

        self.prev = spans._ACTIVE
        spans._ACTIVE = self.tracer
        return self.tracer

    def __exit__(self, *exc):
        import repro.obs.spans as spans

        spans._ACTIVE = self.prev
        return False


class TestSpanRecord:
    def test_duration(self):
        rec = SpanRecord(
            span_id=1, parent_id=None, name="x",
            start_s=1.0, end_s=3.5, labels={}, pid=0,
        )
        assert rec.duration_s == pytest.approx(2.5)
