"""Tests for provenance manifests (repro.obs.manifest)."""

import json

import pytest

from repro.obs import (
    Manifest,
    build_manifest,
    collect,
    git_revision,
    inc,
    span,
    trace,
)
from repro.obs.manifest import SCHEMA


class TestManifestRoundtrip:
    def test_json_roundtrip(self, tmp_path):
        m = Manifest(
            kernel="matrixMul", arch="GTX580", tag="trial", seed=7,
            n_runs=42, config={"n_trees": 300},
        )
        path = m.write(tmp_path / "manifest.json")
        back = Manifest.read(path)
        assert back == m

    def test_schema_tag_written(self, tmp_path):
        m = Manifest(kernel="k", arch="a")
        path = m.write(tmp_path / "m.json")
        data = json.loads(path.read_text())
        assert data["schema"] == SCHEMA

    def test_unknown_schema_rejected(self):
        bad = json.dumps({"kernel": "k", "arch": "a", "schema": "other/9"})
        with pytest.raises(ValueError, match="schema"):
            Manifest.from_json(bad)

    def test_unknown_fields_ignored(self):
        text = Manifest(kernel="k", arch="a").to_json()
        data = json.loads(text)
        data["future_field"] = True
        assert Manifest.from_json(json.dumps(data)).kernel == "k"


class TestBuildManifest:
    def test_captures_environment(self):
        m = build_manifest(kernel="k", arch="a", seed=1, n_runs=3)
        assert m.schema == SCHEMA
        assert m.python
        assert m.created_unix > 0

    def test_git_revision_recorded_in_repo(self):
        rev = git_revision()
        m = build_manifest(kernel="k", arch="a")
        assert m.git_rev == rev
        if rev is not None:
            assert len(rev) == 40

    def test_git_revision_outside_repo(self, tmp_path):
        assert git_revision(tmp_path) is None

    def test_folds_active_trace_and_metrics(self):
        with trace(), collect():
            with span("stage.one"):
                with span("stage.two"):
                    pass
            with span("stage.one"):
                pass
            inc("events", 5.0)
            m = build_manifest(kernel="k", arch="a")
        assert m.timings["stage.one"]["count"] == 2
        assert "stage.two" in m.timings
        assert m.metrics["counter"]["events"] == pytest.approx(5.0)

    def test_explicit_records_override_active(self):
        with trace() as tracer:
            with span("ignored"):
                pass
            m = build_manifest(
                kernel="k", arch="a", trace_records=[], metrics={}
            )
        assert m.timings == {}
        assert m.metrics == {}
        assert tracer.find("ignored")

    def test_no_collectors_no_timings(self):
        m = build_manifest(kernel="k", arch="a")
        assert m.timings == {}
        assert m.metrics == {}
