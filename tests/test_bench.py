"""Smoke tests for the micro-benchmark harness (``repro bench``)."""

import json

import pytest

from repro.bench import (
    BENCHMARKS,
    SCHEMA,
    bench_trace_transactions,
    format_results,
    run_benchmarks,
    write_report,
)


class TestBenchHarness:
    def test_single_op_result_shape(self):
        result = bench_trace_transactions(quick=True)
        assert result.op == "trace_transactions"
        assert result.n > 0 and result.wall_s > 0
        assert result.throughput == pytest.approx(result.n / result.wall_s)
        assert result.baseline_wall_s > 0
        assert result.speedup == pytest.approx(
            result.baseline_wall_s / result.wall_s
        )

    def test_run_benchmarks_selects_ops(self):
        results = run_benchmarks(ops=["trace_transactions"], quick=True)
        assert [r.op for r in results] == ["trace_transactions"]

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown benchmark"):
            run_benchmarks(ops=["no_such_op"], quick=True)

    def test_catalogue_covers_the_three_paths(self):
        assert {"trace_transactions", "cache_trace_replay",
                "forest_fit", "campaign_sweep"} <= set(BENCHMARKS)

    def test_write_report_json(self, tmp_path):
        results = run_benchmarks(ops=["trace_transactions"], quick=True)
        out = tmp_path / "BENCH_core.json"
        payload = write_report(results, str(out), quick=True)
        on_disk = json.loads(out.read_text())
        assert on_disk == payload
        assert on_disk["schema"] == SCHEMA
        assert on_disk["quick"] is True
        (entry,) = on_disk["results"]
        assert entry["op"] == "trace_transactions"
        assert set(entry) >= {
            "op", "n", "unit", "wall_s", "throughput",
            "baseline_wall_s", "speedup",
        }

    def test_format_results_renders_table(self):
        results = run_benchmarks(ops=["trace_transactions"], quick=True)
        text = format_results(results)
        assert "trace_transactions" in text
        assert "speedup" in text

    def test_cli_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "bench.json"
        code = main([
            "bench", "--quick", "--ops", "trace_transactions",
            "--out", str(out),
        ])
        assert code == 0
        assert out.exists()
        assert "trace_transactions" in capsys.readouterr().out
