"""Smoke tests for the micro-benchmark harness (``repro bench``)."""

import json

import pytest

from repro.bench import (
    BENCHMARKS,
    SCHEMA,
    BenchResult,
    bench_trace_transactions,
    check_regressions,
    format_results,
    run_benchmarks,
    write_report,
)


class TestBenchHarness:
    def test_single_op_result_shape(self):
        result = bench_trace_transactions(quick=True)
        assert result.op == "trace_transactions"
        assert result.n > 0 and result.wall_s > 0
        assert result.throughput == pytest.approx(result.n / result.wall_s)
        assert result.baseline_wall_s > 0
        assert result.speedup == pytest.approx(
            result.baseline_wall_s / result.wall_s
        )

    def test_run_benchmarks_selects_ops(self):
        results = run_benchmarks(ops=["trace_transactions"], quick=True)
        assert [r.op for r in results] == ["trace_transactions"]

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown benchmark"):
            run_benchmarks(ops=["no_such_op"], quick=True)

    def test_catalogue_covers_the_three_paths(self):
        assert {"trace_transactions", "cache_trace_replay",
                "forest_fit", "campaign_sweep"} <= set(BENCHMARKS)

    def test_write_report_json(self, tmp_path):
        results = run_benchmarks(ops=["trace_transactions"], quick=True)
        out = tmp_path / "BENCH_core.json"
        payload = write_report(results, str(out), quick=True)
        on_disk = json.loads(out.read_text())
        assert on_disk == payload
        assert on_disk["schema"] == SCHEMA
        assert on_disk["quick"] is True
        (entry,) = on_disk["results"]
        assert entry["op"] == "trace_transactions"
        assert set(entry) >= {
            "op", "n", "unit", "wall_s", "throughput",
            "baseline_wall_s", "speedup",
        }

    def test_format_results_renders_table(self):
        results = run_benchmarks(ops=["trace_transactions"], quick=True)
        text = format_results(results)
        assert "trace_transactions" in text
        assert "speedup" in text

    def test_cli_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "bench.json"
        code = main([
            "bench", "--quick", "--ops", "trace_transactions",
            "--out", str(out), "--no-history",
        ])
        assert code == 0
        assert out.exists()
        assert "trace_transactions" in capsys.readouterr().out


def _doctored(op: str, speedup: float) -> BenchResult:
    """A BenchResult with a pinned speedup (no actual timing)."""
    return BenchResult(
        op=op, n=100, unit="items", wall_s=1.0, throughput=100.0,
        baseline_wall_s=speedup, baseline_throughput=100.0 / speedup,
        speedup=speedup,
    )


def _baseline_file(tmp_path, **speedups) -> str:
    path = tmp_path / "baseline.json"
    payload = {
        "schema": SCHEMA,
        "results": [
            {"op": op, "speedup": s} for op, s in sorted(speedups.items())
        ],
    }
    path.write_text(json.dumps(payload))
    return str(path)


class TestCheckRegressions:
    def test_missing_baseline_raises(self, tmp_path):
        with pytest.raises(OSError):
            check_regressions(
                {"schema": SCHEMA, "results": []},
                baseline_path=str(tmp_path / "absent.json"),
            )

    def test_wrong_schema_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"schema": "something/else"}))
        with pytest.raises(ValueError, match="unknown bench schema"):
            check_regressions(
                {"schema": SCHEMA, "results": []}, baseline_path=str(path)
            )

    def test_flags_past_threshold_drop(self, tmp_path):
        baseline = _baseline_file(tmp_path, trace_transactions=10.0)
        payload = {
            "schema": SCHEMA,
            "results": [{"op": "trace_transactions", "speedup": 4.0}],
        }
        (reg,) = check_regressions(payload, baseline_path=baseline)
        assert reg.op == "trace_transactions"
        assert reg.drop_pct == pytest.approx(60.0)

    def test_passes_within_threshold(self, tmp_path):
        baseline = _baseline_file(tmp_path, trace_transactions=10.0)
        payload = {
            "schema": SCHEMA,
            "results": [{"op": "trace_transactions", "speedup": 9.0}],
        }
        assert check_regressions(payload, baseline_path=baseline) == []


class TestCliCheck:
    def _run(self, argv):
        from repro.cli import main

        return main(argv)

    def test_synthetic_regression_exits_nonzero(
        self, tmp_path, monkeypatch, capsys
    ):
        # Monkeypatch the op to report a collapsed speedup: the watchdog
        # must trip and the CLI must exit non-zero.
        monkeypatch.setitem(
            BENCHMARKS, "trace_transactions",
            lambda quick=False: _doctored("trace_transactions", 1.5),
        )
        baseline = _baseline_file(tmp_path, trace_transactions=15.0)
        code = self._run([
            "bench", "--quick", "--ops", "trace_transactions",
            "--check", "--baseline", baseline, "--no-history",
        ])
        assert code == 1
        err = capsys.readouterr().err
        assert "REGRESSIONS" in err
        assert "trace_transactions" in err

    def test_real_run_passes_generous_baseline(self, tmp_path, capsys):
        baseline = _baseline_file(tmp_path, trace_transactions=0.5)
        code = self._run([
            "bench", "--quick", "--ops", "trace_transactions",
            "--check", "--baseline", baseline, "--no-history",
        ])
        assert code == 0
        assert "no regressions" in capsys.readouterr().out

    def test_committed_baseline_passes(self, monkeypatch, capsys):
        # The acceptance gate: a healthy tree passes --check against the
        # committed BENCH_core.json. The doctored result reuses the
        # committed speedup so the test pins the wiring, not the timing
        # noise of the CI host.
        committed = json.loads(open("BENCH_core.json").read())
        speedups = {
            r["op"]: r["speedup"] for r in committed["results"]
        }
        for op, speedup in speedups.items():
            monkeypatch.setitem(
                BENCHMARKS, op,
                lambda quick=False, op=op, s=speedup: _doctored(op, s),
            )
        code = self._run(["bench", "--quick", "--check", "--no-history"])
        assert code == 0

    def test_check_without_out_leaves_baseline_untouched(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setitem(
            BENCHMARKS, "trace_transactions",
            lambda quick=False: _doctored("trace_transactions", 9.0),
        )
        baseline = _baseline_file(tmp_path, trace_transactions=10.0)
        before = open(baseline).read()
        code = self._run([
            "bench", "--quick", "--ops", "trace_transactions",
            "--check", "--baseline", baseline, "--no-history",
        ])
        assert code == 0
        assert open(baseline).read() == before

    def test_history_appended(self, tmp_path, monkeypatch):
        from repro.obs import read_history

        monkeypatch.setitem(
            BENCHMARKS, "trace_transactions",
            lambda quick=False: _doctored("trace_transactions", 9.0),
        )
        history = tmp_path / "history.jsonl"
        out = tmp_path / "bench.json"
        for _ in range(2):
            self._run([
                "bench", "--quick", "--ops", "trace_transactions",
                "--out", str(out), "--history", str(history),
            ])
        entries = read_history(history)
        assert len(entries) == 2
        assert entries[0]["bench"]["results"][0]["op"] == "trace_transactions"

    def test_json_format_lists_regressions(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setitem(
            BENCHMARKS, "trace_transactions",
            lambda quick=False: _doctored("trace_transactions", 2.0),
        )
        baseline = _baseline_file(tmp_path, trace_transactions=20.0)
        code = self._run([
            "bench", "--quick", "--ops", "trace_transactions",
            "--check", "--baseline", baseline, "--no-history",
            "--format", "json",
        ])
        assert code == 1
        doc = json.loads(capsys.readouterr().out)
        (reg,) = doc["regressions"]
        assert reg["op"] == "trace_transactions"
        assert reg["drop_pct"] == pytest.approx(90.0)
