"""Package-level sanity checks."""

import repro


def test_version_string():
    parts = repro.__version__.split(".")
    assert len(parts) == 3
    assert all(p.isdigit() for p in parts)


def test_public_api_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name


def test_subpackage_alls_resolve():
    import repro.core
    import repro.cpusim
    import repro.gpusim
    import repro.kernels
    import repro.ml
    import repro.profiling
    import repro.viz

    for mod in (repro.core, repro.cpusim, repro.gpusim, repro.kernels,
                repro.ml, repro.profiling, repro.viz):
        for name in mod.__all__:
            assert getattr(mod, name, None) is not None, (mod.__name__, name)
