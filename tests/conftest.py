"""Shared fixtures.

Campaign collection is the expensive part of most end-to-end tests, so
small representative campaigns are built once per session.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import GTX480, GTX580, K20M, Campaign, MatMulKernel, NeedlemanWunschKernel, ReductionKernel


@pytest.fixture(scope="session")
def reduce1_campaign():
    sizes = [int(s) for s in np.round(np.logspace(14, 24, 44, base=2.0))]
    return Campaign(ReductionKernel(1), GTX580, rng=0).run(problems=sizes)


@pytest.fixture(scope="session")
def reduce2_campaign():
    sizes = [int(s) for s in np.round(np.logspace(14, 24, 44, base=2.0))]
    return Campaign(ReductionKernel(2), GTX580, rng=0).run(problems=sizes)


@pytest.fixture(scope="session")
def matmul_campaign():
    sizes = [32, 48, 80, 128, 176, 256, 368, 512, 640, 768, 896, 1024]
    return Campaign(MatMulKernel(), GTX580, rng=0).run(problems=sizes, replicates=3)


@pytest.fixture(scope="session")
def matmul_campaign_gtx480():
    sizes = [32, 48, 80, 128, 176, 256, 368, 512, 640, 768, 896, 1024]
    return Campaign(MatMulKernel(), GTX480, rng=7).run(problems=sizes, replicates=3)


@pytest.fixture(scope="session")
def matmul_campaign_k20m():
    sizes = [32, 48, 80, 128, 176, 256, 368, 512, 640, 768, 896, 1024]
    return Campaign(MatMulKernel(), K20M, rng=1).run(problems=sizes, replicates=3)


@pytest.fixture(scope="session")
def nw_campaign():
    sizes = list(range(64, 2049, 128))
    return Campaign(NeedlemanWunschKernel(), GTX580, rng=0).run(problems=sizes)


@pytest.fixture(scope="session")
def nw_campaign_k20m():
    sizes = list(range(64, 2049, 128))
    return Campaign(NeedlemanWunschKernel(), K20M, rng=1).run(problems=sizes)
