"""Unit tests for the simulator and counter aggregation."""

import numpy as np
import pytest

from repro.gpusim.arch import GTX580, K20M
from repro.gpusim.noise import Perturbation
from repro.gpusim.simulator import (
    GPUSimulator,
    aggregate_launches,
    finalize_counters,
    sum_raw,
)
from repro.gpusim.workload import (
    GlobalAccessPattern,
    KernelWorkload,
    SharedAccessPattern,
)


def streaming_workload(n=1 << 20):
    warps = n // 32
    return KernelWorkload(
        name="stream",
        grid_blocks=n // 256,
        threads_per_block=256,
        regs_per_thread=10,
        arithmetic_instructions=warps * 4,
        branches=warps,
        global_accesses=[
            GlobalAccessPattern("load", warps * 2, stride_words=1),
            GlobalAccessPattern("store", warps, stride_words=1),
        ],
    )


def conflict_workload(n=1 << 20, degree=8.0):
    warps = n // 32
    return KernelWorkload(
        name="conflicted",
        grid_blocks=n // 256,
        threads_per_block=256,
        regs_per_thread=10,
        shared_mem_per_block=4096,
        arithmetic_instructions=warps * 8,
        shared_accesses=[
            SharedAccessPattern("load", warps * 8, conflict_degree=degree),
            SharedAccessPattern("store", warps * 4, conflict_degree=degree),
        ],
        global_accesses=[GlobalAccessPattern("load", warps, stride_words=1)],
    )


class TestLaunch:
    def test_event_counters_match_workload(self):
        wl = streaming_workload()
        prof = GPUSimulator(GTX580).launch(wl)
        assert prof.raw["gld_request"] == wl.total_warps * 2
        assert prof.raw["gst_request"] == wl.total_warps
        assert prof.raw["branch"] == wl.branches
        assert prof.raw["inst_executed"] == wl.executed_instructions

    def test_inst_issued_includes_replays(self):
        wl = conflict_workload(degree=4.0)
        prof = GPUSimulator(GTX580).launch(wl)
        expected_replays = wl.total_warps * 12 * 3.0  # (8+4) reqs x (4-1)
        assert prof.raw["inst_issued"] - prof.raw["inst_executed"] == pytest.approx(
            expected_replays
        )

    def test_streaming_near_peak_bandwidth(self):
        _, t, profs = GPUSimulator(GTX580).run([streaming_workload()])
        assert profs[0].timing.binding == "bandwidth"
        n_bytes = (1 << 20) * 12
        assert t == pytest.approx(n_bytes / 192.4e9, rel=0.25)

    def test_conflicts_slow_execution(self):
        sim = GPUSimulator(GTX580)
        clean = sim.launch(conflict_workload(degree=1.0)).timing.cycles
        dirty = sim.launch(conflict_workload(degree=8.0)).timing.cycles
        assert dirty > 2 * clean


class TestCounterAggregation:
    def test_fermi_exposes_l1_and_bank_counters(self):
        counters, _, _ = GPUSimulator(GTX580).run([conflict_workload()])
        assert "l1_shared_bank_conflict" in counters
        assert "l1_global_load_miss" in counters
        assert "shared_load_replay" not in counters

    def test_kepler_exposes_replay_split(self):
        counters, _, _ = GPUSimulator(K20M).run([conflict_workload()])
        assert "shared_load_replay" in counters
        assert "shared_store_replay" in counters
        assert "l1_shared_bank_conflict" not in counters

    def test_replay_overheads_consistent(self):
        counters, _, _ = GPUSimulator(GTX580).run([conflict_workload(degree=4.0)])
        assert counters["inst_replay_overhead"] == pytest.approx(
            counters["shared_replay_overhead"]
            + counters["global_replay_overhead"],
            rel=1e-9,
        )

    def test_occupancy_in_unit_interval(self):
        counters, _, _ = GPUSimulator(GTX580).run([streaming_workload()])
        assert 0.0 < counters["achieved_occupancy"] <= 1.0

    def test_warp_execution_efficiency_percent(self):
        counters, _, _ = GPUSimulator(GTX580).run([streaming_workload()])
        assert 0.0 < counters["warp_execution_efficiency"] <= 100.0

    def test_gld_efficiency_100_for_coalesced(self):
        counters, _, _ = GPUSimulator(GTX580).run([streaming_workload()])
        assert counters["gld_efficiency"] == pytest.approx(100.0)

    def test_multi_launch_events_sum(self):
        sim = GPUSimulator(GTX580)
        wl = streaming_workload()
        single, _, _ = sim.run([wl])
        double, _, _ = sim.run([wl, wl])
        assert double["gld_request"] == pytest.approx(2 * single["gld_request"])

    def test_multi_launch_time_sums(self):
        sim = GPUSimulator(GTX580)
        wl = streaming_workload()
        _, t1, _ = sim.run([wl])
        _, t2, _ = sim.run([wl, wl])
        assert t2 == pytest.approx(2 * t1, rel=1e-9)

    def test_throughputs_consistent_with_time(self):
        counters, t, profs = GPUSimulator(GTX580).run([streaming_workload()])
        total = sum_raw(profs)
        assert counters["dram_read_throughput"] == pytest.approx(
            total["dram_read_bytes"] / t / 1e9
        )


class TestPerturbations:
    def test_deterministic_without_noise(self):
        sim = GPUSimulator(GTX580)
        _, t1, _ = sim.run([streaming_workload()])
        _, t2, _ = sim.run([streaming_workload()])
        assert t1 == t2

    def test_noise_varies_time(self):
        sim = GPUSimulator(GTX580, noise_sigma=1.0, rng=0)
        times = {sim.run([streaming_workload()])[1] for _ in range(5)}
        assert len(times) == 5

    def test_explicit_perturbation_applied(self):
        sim = GPUSimulator(GTX580)
        base = sim.run([conflict_workload()], Perturbation())[0]
        bumped = sim.run(
            [conflict_workload()], Perturbation(conflict_factor=1.5)
        )[0]
        assert bumped["l1_shared_bank_conflict"] == pytest.approx(
            1.5 * base["l1_shared_bank_conflict"]
        )

    def test_dram_efficiency_slows_streaming(self):
        sim = GPUSimulator(GTX580)
        _, fast, _ = sim.run([streaming_workload()], Perturbation())
        _, slow, _ = sim.run(
            [streaming_workload()], Perturbation(dram_efficiency=0.7)
        )
        assert slow > fast

    def test_perturbation_validation(self):
        with pytest.raises(ValueError):
            Perturbation(sched_efficiency=1.2)
        with pytest.raises(ValueError):
            Perturbation(conflict_factor=0.0)
        with pytest.raises(ValueError):
            Perturbation.draw(scale=-1.0)

    def test_zero_scale_draw_is_identity(self):
        p = Perturbation.draw(rng=0, scale=0.0)
        assert p == Perturbation()

    def test_draw_reproducible(self):
        assert Perturbation.draw(rng=5) == Perturbation.draw(rng=5)


class TestValidation:
    def test_empty_run_rejected(self):
        with pytest.raises(ValueError):
            GPUSimulator(GTX580).run([])

    def test_empty_aggregation_rejected(self):
        with pytest.raises(ValueError):
            aggregate_launches(GTX580, [])

    def test_finalize_matches_aggregate(self):
        sim = GPUSimulator(GTX580)
        profs = [sim.launch(streaming_workload())]
        c1, t1 = aggregate_launches(GTX580, profs)
        c2, t2 = finalize_counters(GTX580, sum_raw(profs))
        assert t1 == t2
        assert c1.as_dict() == c2.as_dict()
