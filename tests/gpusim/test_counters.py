"""Unit tests for the counter catalogue and CounterSet."""

import pytest

from repro.gpusim.counters import (
    CATALOGUE,
    TABLE1_COUNTERS,
    CounterSet,
    available_counters,
    counters_for,
    predictor_counters,
)
from repro.gpusim.arch import GTX580, K20M


class TestCatalogue:
    def test_table1_counters_all_defined(self):
        for name in TABLE1_COUNTERS:
            assert name in CATALOGUE, name

    def test_table1_meanings_match_paper(self):
        assert "replays due to shared memory conflicts" in CATALOGUE[
            "shared_replay_overhead"
        ].meaning
        assert "ratio of average active warps" in CATALOGUE[
            "achieved_occupancy"
        ].meaning
        assert "issue slots" in CATALOGUE["issue_slot_utilization"].meaning

    def test_fermi_only_counters(self):
        for name in ("l1_global_load_hit", "l1_global_load_miss",
                     "l1_shared_bank_conflict"):
            assert CATALOGUE[name].available_on("fermi")
            assert not CATALOGUE[name].available_on("kepler")

    def test_kepler_only_counters(self):
        for name in ("shared_load_replay", "shared_store_replay"):
            assert CATALOGUE[name].available_on("kepler")
            assert not CATALOGUE[name].available_on("fermi")

    def test_counters_for_arch(self):
        fermi = counters_for(GTX580)
        kepler = counters_for(K20M)
        assert "l1_shared_bank_conflict" in fermi
        assert "l1_shared_bank_conflict" not in kepler
        assert "shared_load_replay" in kepler
        assert "shared_load_replay" not in fermi

    def test_events_vs_metrics(self):
        events = available_counters("fermi", kind="event")
        metrics = available_counters("fermi", kind="metric")
        assert "gld_request" in events
        assert "ipc" in metrics
        assert set(events).isdisjoint(metrics)

    def test_response_proxies_not_predictors(self):
        preds = predictor_counters("fermi")
        assert "active_cycles" not in preds
        assert "active_warps" not in preds
        assert "ipc" in preds  # paper Table 1 uses ipc as a predictor

    def test_predictors_subset_of_available(self):
        for fam in ("fermi", "kepler"):
            assert set(predictor_counters(fam)) <= set(available_counters(fam))


class TestCounterSet:
    def test_valid_construction(self):
        cs = CounterSet("fermi", {"ipc": 1.2, "gld_request": 100.0})
        assert cs["ipc"] == 1.2
        assert len(cs) == 2
        assert set(cs) == {"ipc", "gld_request"}

    def test_rejects_unknown_counter(self):
        with pytest.raises(KeyError, match="unknown counter"):
            CounterSet("fermi", {"made_up": 1.0})

    def test_rejects_unavailable_counter(self):
        with pytest.raises(KeyError, match="not available"):
            CounterSet("kepler", {"l1_shared_bank_conflict": 1.0})

    def test_rejects_unknown_family(self):
        with pytest.raises(ValueError):
            CounterSet("amd", {})

    def test_as_dict_is_copy(self):
        cs = CounterSet("fermi", {"ipc": 1.0})
        d = cs.as_dict()
        d["ipc"] = 99.0
        assert cs["ipc"] == 1.0

    def test_mapping_protocol(self):
        cs = CounterSet("fermi", {"ipc": 1.0})
        assert "ipc" in cs
        assert dict(cs) == {"ipc": 1.0}
