"""Focused tests for the run-perturbation model and its statistics."""

import numpy as np
import pytest

from repro.gpusim.noise import Perturbation


class TestDistributions:
    def test_draws_centered_near_nominal(self):
        rng = np.random.default_rng(0)
        draws = [Perturbation.draw(rng) for _ in range(500)]
        conflict = np.array([d.conflict_factor for d in draws])
        assert abs(np.median(conflict) - 1.0) < 0.02
        sched = np.array([d.sched_efficiency for d in draws])
        assert 0.9 < np.median(sched) <= 1.0
        dram = np.array([d.dram_efficiency for d in draws])
        assert 0.88 < np.median(dram) <= 1.0

    def test_scale_widens_dispersion(self):
        rng_a = np.random.default_rng(1)
        rng_b = np.random.default_rng(1)
        narrow = [Perturbation.draw(rng_a, scale=0.5) for _ in range(300)]
        wide = [Perturbation.draw(rng_b, scale=2.0) for _ in range(300)]
        std_n = np.std([d.conflict_factor for d in narrow])
        std_w = np.std([d.conflict_factor for d in wide])
        assert std_w > 2 * std_n

    def test_bounds_always_respected(self):
        rng = np.random.default_rng(2)
        for _ in range(300):
            d = Perturbation.draw(rng, scale=3.0)
            assert 0.6 <= d.sched_efficiency <= 1.0
            assert 0.6 <= d.dram_efficiency <= 1.0
            assert d.conflict_factor > 0
            assert d.cache_factor > 0

    def test_none_is_identity(self):
        d = Perturbation.none()
        assert d.conflict_factor == 1.0
        assert d.sched_efficiency == 1.0
        assert d.dram_efficiency == 1.0
        assert d.cache_factor == 1.0
        assert d.time_jitter == 1.0


class TestValidation:
    @pytest.mark.parametrize("field,value", [
        ("conflict_factor", 0.0),
        ("sched_efficiency", -0.1),
        ("dram_efficiency", 1.2),
        ("sched_efficiency", 1.01),
        ("cache_factor", 0.0),
        ("time_jitter", 0.0),
    ])
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ValueError):
            Perturbation(**{field: value})

    def test_frozen(self):
        d = Perturbation()
        with pytest.raises(AttributeError):
            d.conflict_factor = 2.0
