"""Unit tests for the analytical timing model."""

import pytest

from repro.gpusim.arch import GTX580, K20M
from repro.gpusim.memory import resolve_access
from repro.gpusim.occupancy import occupancy
from repro.gpusim.timing import TimingModel
from repro.gpusim.workload import GlobalAccessPattern


def evaluate(arch, grid=4096, warps_pb=8, issued_per_warp=20.0,
             load_requests=None, dram_bytes=None, sched=1.0, dram_eff=1.0,
             regs=16, threads=256, smem=0, shared_tx=0.0):
    occ = occupancy(arch, threads, regs, smem)
    total_warps = grid * warps_pb
    mem = []
    if load_requests:
        mem = [resolve_access(
            GlobalAccessPattern("load", load_requests, stride_words=1), arch)]
    if dram_bytes is None:
        dram_bytes = sum(m.dram_bytes for m in mem)
    return TimingModel(arch).evaluate(
        grid_blocks=grid, warps_per_block=warps_pb, occ=occ,
        issued_per_warp=issued_per_warp, mem=mem, total_warps=total_warps,
        dram_bytes=dram_bytes, shared_transactions=shared_tx,
        sched_efficiency=sched, dram_efficiency=dram_eff,
    )


class TestIssueRate:
    def test_fermi_is_one_warp_inst_per_cycle(self):
        assert TimingModel(GTX580).issue_rate == 1.0

    def test_kepler_is_six(self):
        assert TimingModel(K20M).issue_rate == 6.0


class TestBounds:
    def test_pure_compute_kernel_is_compute_bound(self):
        t = evaluate(GTX580, issued_per_warp=5000.0)
        assert t.binding == "compute"

    def test_streaming_kernel_is_bandwidth_bound(self):
        t = evaluate(GTX580, issued_per_warp=5.0,
                     load_requests=4096 * 8 * 4)
        assert t.binding == "bandwidth"

    def test_tiny_low_occupancy_launch_latency_dominated(self):
        t = evaluate(GTX580, grid=4, warps_pb=1, threads=16,
                     issued_per_warp=50.0, load_requests=64)
        assert t.binding in ("latency", "serial")

    def test_compute_time_matches_hand_calculation(self):
        # 4096 blocks/16 SMs = 256 blocks; 6 resident -> 43 waves.
        # pure compute: each wave wave_blocks*8 warps * 100 cycles.
        t = evaluate(GTX580, issued_per_warp=100.0)
        expected = 256 * 8 * 100.0  # total warp-cycles per SM at rate 1
        assert t.cycles == pytest.approx(expected, rel=0.01)

    def test_bandwidth_time_matches_bandwidth(self):
        n_bytes = 1 << 26
        t = evaluate(GTX580, issued_per_warp=1.0, load_requests=n_bytes // 128,
                     dram_bytes=n_bytes)
        seconds = t.cycles / (GTX580.clock_ghz * 1e9)
        assert seconds == pytest.approx(n_bytes / (192.4e9), rel=0.1)


class TestPerturbationResponse:
    def test_sched_efficiency_slows_compute(self):
        fast = evaluate(GTX580, issued_per_warp=1000.0, sched=1.0)
        slow = evaluate(GTX580, issued_per_warp=1000.0, sched=0.8)
        assert slow.cycles == pytest.approx(fast.cycles / 0.8, rel=1e-6)

    def test_sched_efficiency_does_not_touch_bandwidth(self):
        kw = dict(issued_per_warp=1.0, load_requests=(1 << 26) // 128,
                  dram_bytes=1 << 26)
        a = evaluate(GTX580, sched=1.0, **kw)
        b = evaluate(GTX580, sched=0.9, **kw)
        assert b.cycles == pytest.approx(a.cycles, rel=0.01)

    def test_dram_efficiency_slows_bandwidth(self):
        kw = dict(issued_per_warp=1.0, load_requests=(1 << 26) // 128,
                  dram_bytes=1 << 26)
        a = evaluate(GTX580, dram_eff=1.0, **kw)
        b = evaluate(GTX580, dram_eff=0.8, **kw)
        assert b.cycles == pytest.approx(a.cycles / 0.8, rel=0.01)

    def test_occupancy_reporting_scales_with_sched(self):
        a = evaluate(GTX580, issued_per_warp=100.0, sched=1.0)
        b = evaluate(GTX580, issued_per_warp=100.0, sched=0.9)
        assert b.avg_resident_warps == pytest.approx(
            a.avg_resident_warps * 0.9, rel=1e-6
        )


class TestWaves:
    def test_wave_count(self):
        t = evaluate(GTX580, grid=16 * 6 * 3, issued_per_warp=10.0)
        assert t.waves == 3

    def test_partial_last_wave_cheaper_than_full(self):
        full = evaluate(GTX580, grid=16 * 6 * 2, issued_per_warp=100.0)
        partial = evaluate(GTX580, grid=16 * 6 + 16, issued_per_warp=100.0)
        assert partial.cycles < full.cycles

    def test_n_active_sms_capped_by_grid(self):
        t = evaluate(GTX580, grid=4, warps_pb=1, threads=32,
                     issued_per_warp=10.0)
        assert t.n_active_sms == 4


class TestMonotonicity:
    def test_more_instructions_never_faster(self):
        a = evaluate(GTX580, issued_per_warp=100.0)
        b = evaluate(GTX580, issued_per_warp=200.0)
        assert b.cycles >= a.cycles

    def test_more_dram_traffic_never_faster(self):
        a = evaluate(GTX580, issued_per_warp=10.0, load_requests=10000)
        b = evaluate(GTX580, issued_per_warp=10.0, load_requests=40000)
        assert b.cycles >= a.cycles

    def test_launch_overhead_in_wall_time(self):
        t = evaluate(GTX580, issued_per_warp=10.0)
        assert t.time_s >= GTX580.kernel_launch_overhead_us * 1e-6
