"""Equivalence tests pinning the vectorized trace/cache paths to the
retained scalar oracles, plus the probe_bytes validation and the
resolve_access memoization semantics."""

import numpy as np
import pytest

from repro.gpusim import GTX480, GTX580, K20M
from repro.gpusim.arch import CacheGeometry
from repro.gpusim.memory import (
    CacheSim,
    clear_resolve_access_cache,
    coalesce_trace,
    resolve_access,
    resolve_access_memoization,
    transactions_from_trace,
    transactions_from_trace_scalar,
)
from repro.gpusim.workload import GlobalAccessPattern


def _random_trace(rng, rows):
    """Random (rows, 32) trace mixing locality and partial warps."""
    trace = np.empty((rows, 32), dtype=np.int64)
    lanes = np.arange(32)
    for i in range(rows):
        mode = rng.integers(0, 4)
        if mode == 0:  # coalesced
            trace[i] = int(rng.integers(0, 1 << 12)) * 128 + lanes * 4
        elif mode == 1:  # strided
            trace[i] = int(rng.integers(0, 1 << 8)) * 128 + lanes * 64
        elif mode == 2:  # scattered over a small window (reuse)
            trace[i] = rng.integers(0, 1 << 13, size=32)
        else:  # broadcast
            trace[i] = int(rng.integers(0, 1 << 14))
        if rng.random() < 0.3:
            trace[i, rng.integers(1, 32):] = -1
    return trace


class TestTransactionsFromTraceEquivalence:
    @pytest.mark.parametrize("seg", [32, 128])
    def test_matches_scalar_on_random_traces(self, seg):
        rng = np.random.default_rng(0)
        for _ in range(10):
            trace = _random_trace(rng, int(rng.integers(1, 120)))
            np.testing.assert_array_equal(
                transactions_from_trace(trace, seg),
                transactions_from_trace_scalar(trace, seg),
            )

    def test_all_inactive_row_counts_zero(self):
        trace = np.full((3, 32), -1, dtype=np.int64)
        trace[1] = 128 * np.arange(32)
        fast = transactions_from_trace(trace, 128)
        np.testing.assert_array_equal(
            fast, transactions_from_trace_scalar(trace, 128)
        )
        assert fast[0] == 0 and fast[2] == 0

    def test_coalesce_trace_is_the_oracle_probe_stream(self):
        rng = np.random.default_rng(1)
        trace = _random_trace(rng, 50)
        seg = 128
        expected = []
        for i in range(trace.shape[0]):
            row = trace[i]
            expected.extend(np.unique(row[row >= 0] // seg).tolist())
        assert coalesce_trace(trace, seg).tolist() == expected


class TestCacheReplayEquivalence:
    @pytest.mark.parametrize(
        "geometry",
        [
            CacheGeometry(16 * 1024, 128, 4),
            CacheGeometry(2048, 128, 2),  # tiny: heavy eviction pressure
            GTX580.l1,
        ],
    )
    def test_matches_scalar_replay(self, geometry):
        rng = np.random.default_rng(2)
        for trial in range(6):
            trace = _random_trace(rng, int(rng.integers(10, 150)))
            fast, base = CacheSim(geometry), CacheSim(geometry)
            assert fast.warm_trace_hit_rate(trace) == pytest.approx(
                base.warm_trace_hit_rate_scalar(trace)
            )
            assert (fast.hits, fast.misses) == (base.hits, base.misses)

    def test_batched_and_scalar_interleave_on_shared_state(self):
        geometry = CacheGeometry(4096, 128, 4)
        rng = np.random.default_rng(3)
        lines = rng.integers(0, 256, size=300)
        a, b = CacheSim(geometry), CacheSim(geometry)
        flags_a = []
        # a: alternate batched and per-line replay on the same state
        for chunk in np.array_split(lines, 10):
            if len(flags_a) % 2:
                flags_a.extend(bool(a.access_line(int(x))) for x in chunk)
            else:
                flags_a.extend(a.access_lines(chunk).tolist())
        flags_b = [b.access_line(int(x)) for x in lines]
        assert flags_a == flags_b
        assert (a.hits, a.misses) == (b.hits, b.misses)

    def test_probe_bytes_default_is_line_bytes(self):
        trace = _random_trace(np.random.default_rng(4), 40)
        a = CacheSim(GTX580.l1)
        b = CacheSim(GTX580.l1)
        assert a.warm_trace_hit_rate(trace) == b.warm_trace_hit_rate(
            trace, probe_bytes=GTX580.l1.line_bytes
        )

    def test_probe_bytes_mismatch_rejected(self):
        trace = _random_trace(np.random.default_rng(5), 10)
        sim = CacheSim(GTX580.l1)
        with pytest.raises(ValueError, match="line size"):
            sim.warm_trace_hit_rate(trace, probe_bytes=32)
        with pytest.raises(ValueError, match="line size"):
            sim.warm_trace_hit_rate_scalar(trace, probe_bytes=32)
        with pytest.raises(ValueError):
            sim.warm_trace_hit_rate(trace, probe_bytes=0)


class TestResolveAccessMemoization:
    def setup_method(self):
        clear_resolve_access_cache()

    def _pattern(self, rng):
        return GlobalAccessPattern(
            kind="load",
            requests=512,
            addresses=_random_trace(rng, 64),
        )

    @pytest.mark.parametrize("arch", [GTX480, GTX580, K20M])
    def test_memoized_equals_unmemoized(self, arch):
        acc = self._pattern(np.random.default_rng(6))
        with resolve_access_memoization(False):
            cold = resolve_access(acc, arch, cache_factor=0.9)
        warm_miss = resolve_access(acc, arch, cache_factor=0.9)
        warm_hit = resolve_access(acc, arch, cache_factor=0.9)
        assert cold == warm_miss == warm_hit

    def test_cache_factor_varies_on_one_cached_entry(self):
        # The perturbation factor is applied downstream of the cache, so
        # replicates with different draws still hit and still differ.
        acc = self._pattern(np.random.default_rng(7))
        a = resolve_access(acc, GTX580, cache_factor=1.0)
        b = resolve_access(acc, GTX580, cache_factor=1.2)
        with resolve_access_memoization(False):
            b_cold = resolve_access(acc, GTX580, cache_factor=1.2)
        assert b.l1_hits > a.l1_hits
        assert b == b_cold

    def test_content_keyed_not_identity_keyed(self):
        rng = np.random.default_rng(8)
        acc = self._pattern(rng)
        first = resolve_access(acc, GTX580)
        # mutate the trace in place: the key changes with the content
        acc.addresses[:] = _random_trace(rng, 64)
        second = resolve_access(acc, GTX580)
        with resolve_access_memoization(False):
            expected = resolve_access(acc, GTX580)
        assert second == expected
        assert first != second

    def test_context_manager_restores_state(self):
        with resolve_access_memoization(False):
            pass
        acc = self._pattern(np.random.default_rng(9))
        resolve_access(acc, GTX580)
        from repro.gpusim.memory import _RESOLVE_CACHE

        assert len(_RESOLVE_CACHE) == 1
