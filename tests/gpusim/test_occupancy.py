"""Unit tests for the CUDA occupancy calculator.

Expected values cross-checked against NVIDIA's occupancy calculator
tables for compute capability 2.0 and 3.5.
"""

import pytest

from repro.gpusim.arch import GTX580, K20M
from repro.gpusim.occupancy import occupancy


class TestFermiOccupancy:
    def test_full_occupancy_config(self):
        # 256 threads, 16 regs, little shared memory: 6 blocks = 48 warps.
        occ = occupancy(GTX580, 256, 16, 2048)
        assert occ.active_blocks_per_sm == 6
        assert occ.theoretical_occupancy == pytest.approx(1.0)

    def test_block_limit_binds_for_tiny_blocks(self):
        # 16-thread blocks (the NW case): 8 blocks max -> 8 warps of 48.
        occ = occupancy(GTX580, 16, 20, 2048)
        assert occ.limited_by == "blocks"
        assert occ.active_blocks_per_sm == 8
        assert occ.theoretical_occupancy == pytest.approx(8 / 48)

    def test_register_limit(self):
        # 63 regs/thread, 256 threads: per-warp alloc = ceil(63*32/64)*64
        # = 2048 regs -> per block 16384 -> 2 blocks of 32768.
        occ = occupancy(GTX580, 256, 63, 0)
        assert occ.limited_by == "registers"
        assert occ.active_blocks_per_sm == 2

    def test_shared_memory_limit(self):
        # 20 KB shared per block on a 48 KB SM -> 2 blocks.
        occ = occupancy(GTX580, 256, 16, 20 * 1024)
        assert occ.limited_by == "shared_memory"
        assert occ.active_blocks_per_sm == 2

    def test_warp_limit_with_huge_blocks(self):
        # 1024-thread blocks: 32 warps each; 48 warps max -> 1 block.
        occ = occupancy(GTX580, 1024, 16, 0)
        assert occ.active_blocks_per_sm == 1
        assert occ.active_warps_per_sm == 32
        assert occ.theoretical_occupancy == pytest.approx(32 / 48)


class TestKeplerOccupancy:
    def test_full_occupancy(self):
        occ = occupancy(K20M, 256, 32, 2048)
        assert occ.theoretical_occupancy == pytest.approx(1.0)
        assert occ.active_blocks_per_sm == 8

    def test_sixteen_block_limit(self):
        occ = occupancy(K20M, 32, 16, 0)
        assert occ.limit_blocks == 16
        assert occ.active_blocks_per_sm == 16

    def test_register_granularity_is_256(self):
        # 100 regs/thread -> per warp ceil(3200/256)*256 = 3328.
        occ = occupancy(K20M, 256, 100, 0)
        expected_blocks = 65536 // (3328 * 8)
        assert occ.active_blocks_per_sm == expected_blocks


class TestValidation:
    def test_rejects_excess_registers(self):
        with pytest.raises(ValueError, match="exceeds"):
            occupancy(GTX580, 256, 64, 0)

    def test_rejects_oversize_block(self):
        with pytest.raises(ValueError):
            occupancy(GTX580, 2048, 16, 0)

    def test_rejects_zero_threads(self):
        with pytest.raises(ValueError):
            occupancy(GTX580, 0, 16, 0)

    def test_rejects_unschedulable_shared_memory(self):
        with pytest.raises(ValueError, match="does not fit"):
            occupancy(GTX580, 256, 16, 64 * 1024)

    def test_negative_resources_rejected(self):
        with pytest.raises(ValueError):
            occupancy(GTX580, 256, -1, 0)


class TestConsistency:
    def test_active_warps_consistent(self):
        occ = occupancy(GTX580, 192, 20, 1024)
        assert occ.active_warps_per_sm == occ.active_blocks_per_sm * occ.warps_per_block

    def test_warps_per_block_rounds_up(self):
        occ = occupancy(GTX580, 33, 16, 0)
        assert occ.warps_per_block == 2

    def test_occupancy_monotone_in_block_size_resources(self):
        # fewer registers can never *reduce* occupancy
        low = occupancy(GTX580, 256, 16, 0)
        high = occupancy(GTX580, 256, 40, 0)
        assert low.theoretical_occupancy >= high.theoretical_occupancy
