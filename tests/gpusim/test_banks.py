"""Unit tests for the shared-memory bank conflict model."""

import numpy as np
import pytest

from repro.gpusim.banks import (
    conflict_degree_for_stride,
    conflict_degree_from_lanes,
    replay_count,
)


class TestStrideConflicts:
    def test_unit_stride_conflict_free(self):
        assert conflict_degree_for_stride(1) == 1.0

    def test_odd_strides_conflict_free(self):
        for stride in (3, 5, 7, 9, 17, 31):
            assert conflict_degree_for_stride(stride) == 1.0

    def test_stride_two_is_two_way(self):
        assert conflict_degree_for_stride(2) == 2.0

    def test_powers_of_two_ladder(self):
        # the reduce1 ladder: stride 2s at tree level s
        assert conflict_degree_for_stride(4) == 4.0
        assert conflict_degree_for_stride(8) == 8.0
        assert conflict_degree_for_stride(16) == 16.0
        assert conflict_degree_for_stride(32) == 32.0

    def test_broadcast_stride_zero(self):
        assert conflict_degree_for_stride(0) == 1.0

    def test_partial_warp_reduces_degree(self):
        # 8 active lanes stride 32: all in bank 0 -> degree 8
        assert conflict_degree_for_stride(32, active_lanes=8) == 8.0
        # 8 active lanes stride 4: 8 distinct banks -> no conflict
        assert conflict_degree_for_stride(4, active_lanes=8) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            conflict_degree_for_stride(1, active_lanes=0)
        with pytest.raises(ValueError):
            conflict_degree_for_stride(-1)


class TestLaneConflicts:
    def test_distinct_banks(self):
        assert conflict_degree_from_lanes(np.arange(32)) == 1.0

    def test_same_word_broadcast(self):
        assert conflict_degree_from_lanes(np.zeros(32, dtype=int)) == 1.0

    def test_same_bank_different_words(self):
        words = np.arange(4) * 32  # all bank 0, distinct words
        assert conflict_degree_from_lanes(words) == 4.0

    def test_nw_diagonal_pattern(self):
        # NW tile: lane t accesses word t*17 + (d - t) = 16t + d
        for d in range(16):
            width = d + 1
            lanes = np.arange(width)
            words = lanes * 17 + (d - lanes)
            expected = int(np.ceil(width / 2))  # stride 16 -> 2 banks
            assert conflict_degree_from_lanes(words) == float(expected)

    def test_empty_is_one(self):
        assert conflict_degree_from_lanes(np.array([], dtype=int)) == 1.0


class TestReplayCount:
    def test_no_conflicts_no_replays(self):
        assert replay_count(100, 1.0) == 0.0

    def test_k_way_conflict(self):
        assert replay_count(100, 8.0) == 700.0

    def test_fractional_degree(self):
        assert replay_count(10, 1.5) == pytest.approx(5.0)

    def test_rejects_degree_below_one(self):
        with pytest.raises(ValueError):
            replay_count(10, 0.5)
