"""Unit tests for GPU architecture descriptions."""

import pytest

from repro.gpusim.arch import GTX480, GTX580, K20M, TABLE2_METRICS, CacheGeometry


class TestTable2:
    """The exact hardware metric values of the paper's Table 2."""

    def test_gtx480_row(self):
        m = TABLE2_METRICS["GTX480"]
        assert m["wsched"] == 2
        assert m["freq"] == pytest.approx(1.4)
        assert m["smp"] == 15
        assert m["rco"] == 32
        assert m["mbw"] == pytest.approx(177.4)
        assert m["l1c"] == 63
        assert m["l2c"] == 768

    def test_k20m_row(self):
        m = TABLE2_METRICS["K20m"]
        assert m["wsched"] == 4
        assert m["freq"] == pytest.approx(0.71)
        assert m["smp"] == 13
        assert m["rco"] == 192
        assert m["mbw"] == pytest.approx(208.0)
        assert m["l1c"] == 255
        assert m["l2c"] == 1280

    def test_metric_names_match_paper(self):
        assert set(TABLE2_METRICS["GTX480"]) == {
            "wsched", "freq", "smp", "rco", "mbw", "l1c", "l2c"
        }


class TestArchitectures:
    def test_families(self):
        assert GTX480.family == GTX580.family == "fermi"
        assert K20M.family == "kepler"

    def test_compute_capabilities(self):
        assert GTX580.compute_capability == (2, 0)
        assert K20M.compute_capability == (3, 5)

    def test_fermi_caches_global_loads_kepler_does_not(self):
        assert GTX580.l1_caches_global_loads
        assert not K20M.l1_caches_global_loads

    def test_peak_flops_sane(self):
        # GTX580: 512 cores * 2 * 1.544 GHz ~ 1.58 TFLOPS
        assert GTX580.peak_gflops_sp == pytest.approx(1581, rel=0.01)
        # K20m: 2496 cores * 2 * 0.706 GHz ~ 3.5 TFLOPS
        assert K20M.peak_gflops_sp == pytest.approx(3544, rel=0.01)

    def test_bytes_per_cycle(self):
        assert GTX580.bytes_per_cycle() == pytest.approx(192.4 / 1.544)

    def test_max_threads_per_sm(self):
        assert GTX580.max_threads_per_sm == 1536
        assert K20M.max_threads_per_sm == 2048

    def test_with_overrides(self):
        fat = GTX580.with_overrides(n_sms=32)
        assert fat.n_sms == 32
        assert GTX580.n_sms == 16  # original untouched
        assert fat.family == "fermi"


class TestCacheGeometry:
    def test_n_sets(self):
        g = CacheGeometry(16 * 1024, 128, 4)
        assert g.n_sets == 32

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            CacheGeometry(1000, 128, 4)

    def test_l2_property(self):
        assert GTX580.l2.size_bytes == 768 * 1024
        assert GTX580.l2.line_bytes == 32
