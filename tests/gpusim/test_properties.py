"""Property-based tests (hypothesis) for the GPU simulator invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim.arch import GTX580, K20M
from repro.gpusim.banks import conflict_degree_for_stride, replay_count
from repro.gpusim.memory import estimate_hit_fraction, transactions_per_request
from repro.gpusim.noise import Perturbation
from repro.gpusim.occupancy import occupancy
from repro.gpusim.simulator import GPUSimulator
from repro.gpusim.workload import GlobalAccessPattern, KernelWorkload

ARCHS = [GTX580, K20M]


class TestCoalescingProperties:
    @given(st.integers(0, 64), st.sampled_from([1, 2, 4, 8]),
           st.integers(1, 32), st.sampled_from([32, 64, 128]))
    def test_transactions_bounded(self, stride, word, lanes, seg):
        if seg < word:
            return
        t = transactions_per_request(stride, word, lanes, seg)
        assert 1 <= t <= lanes

    @given(st.integers(1, 32), st.sampled_from([32, 128]))
    def test_monotone_in_stride(self, lanes, seg):
        results = [
            transactions_per_request(s, 4, lanes, seg) for s in (1, 2, 4, 8, 16, 32)
        ]
        assert results == sorted(results)


class TestBankProperties:
    @given(st.integers(0, 128), st.integers(1, 32))
    def test_degree_in_valid_range(self, stride, lanes):
        d = conflict_degree_for_stride(stride, lanes)
        assert 1.0 <= d <= lanes

    @given(st.floats(0, 1e6), st.floats(1.0, 32.0))
    def test_replays_nonnegative(self, requests, degree):
        assert replay_count(requests, degree) >= 0.0


class TestHitFractionProperties:
    @given(st.floats(1, 1e9), st.floats(1, 1e12), st.sampled_from([32, 128]),
           st.integers(1024, 1 << 24))
    def test_in_unit_interval(self, tx, unique, seg, cache):
        f = estimate_hit_fraction(tx, unique, seg, cache)
        assert 0.0 <= f <= 1.0

    @given(st.floats(1e3, 1e6), st.sampled_from([32, 128]))
    def test_monotone_in_cache_size(self, tx, seg):
        unique = 1 << 20
        fractions = [
            estimate_hit_fraction(tx, unique, seg, c)
            for c in (1 << 14, 1 << 17, 1 << 20, 1 << 23)
        ]
        assert fractions == sorted(fractions)


class TestOccupancyProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.sampled_from(ARCHS), st.integers(1, 1024), st.integers(0, 63),
           st.integers(0, 32 * 1024))
    def test_occupancy_in_unit_interval(self, arch, threads, regs, smem):
        try:
            occ = occupancy(arch, threads, regs, smem)
        except ValueError:
            return  # unschedulable configs may be rejected
        assert 0.0 < occ.theoretical_occupancy <= 1.0
        assert occ.active_blocks_per_sm >= 1
        assert occ.active_warps_per_sm <= arch.max_warps_per_sm

    @settings(max_examples=30, deadline=None)
    @given(st.sampled_from(ARCHS), st.integers(32, 512))
    def test_limit_is_minimum(self, arch, threads):
        occ = occupancy(arch, threads, 16, 1024)
        limits = [occ.limit_warps, occ.limit_registers,
                  occ.limit_shared_memory, occ.limit_blocks]
        assert occ.active_blocks_per_sm == min(limits)


class TestSimulatorProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.sampled_from(ARCHS), st.integers(10, 16384), st.integers(1, 200),
           st.integers(0, 500))
    def test_time_positive_and_finite(self, arch, blocks, arith, loads):
        warps = blocks * 8
        wl = KernelWorkload(
            name="w", grid_blocks=blocks, threads_per_block=256,
            regs_per_thread=16,
            arithmetic_instructions=warps * arith,
            global_accesses=(
                [GlobalAccessPattern("load", max(1, warps * loads // 10))]
                if loads else []
            ),
        )
        _, t, profs = GPUSimulator(arch).run([wl])
        assert np.isfinite(t) and t > 0
        assert profs[0].timing.cycles >= 0

    @settings(max_examples=15, deadline=None)
    @given(st.integers(1, 100))
    def test_time_monotone_in_work(self, scale):
        def wl(mult):
            warps = 1024 * 8
            return KernelWorkload(
                name="w", grid_blocks=1024, threads_per_block=256,
                regs_per_thread=16,
                arithmetic_instructions=warps * 10 * mult,
            )
        sim = GPUSimulator(GTX580)
        _, t1, _ = sim.run([wl(1)])
        _, t2, _ = sim.run([wl(1 + scale)])
        assert t2 >= t1

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 100_000))
    def test_counters_nonnegative(self, seed):
        rng = np.random.default_rng(seed)
        warps = 512 * 8
        wl = KernelWorkload(
            name="w", grid_blocks=512, threads_per_block=256,
            regs_per_thread=16,
            arithmetic_instructions=warps * int(rng.integers(1, 100)),
            global_accesses=[
                GlobalAccessPattern(
                    "load", warps, stride_words=int(rng.integers(1, 33))
                )
            ],
        )
        counters, _, _ = GPUSimulator(GTX580).run(
            [wl], Perturbation.draw(rng, scale=1.0)
        )
        for name, value in counters.items():
            assert value >= 0.0, name
            assert np.isfinite(value), name


class TestPerturbationProperties:
    @given(st.integers(0, 100_000), st.floats(0.0, 2.0))
    def test_draw_always_valid(self, seed, scale):
        p = Perturbation.draw(seed, scale=scale)
        assert 0 < p.sched_efficiency <= 1.0
        assert 0 < p.dram_efficiency <= 1.0
        assert p.conflict_factor > 0
        assert p.cache_factor > 0
        assert p.time_jitter > 0
