"""The micro-simulator itself, and its cross-check of the analytic model."""

import numpy as np
import pytest

from repro.gpusim.arch import GTX580, K20M
from repro.gpusim.memory import resolve_access
from repro.gpusim.microsim import Instruction, MicroSim
from repro.gpusim.occupancy import occupancy
from repro.gpusim.timing import TimingModel
from repro.gpusim.workload import GlobalAccessPattern


def alu(n, dependent=False):
    return [Instruction("alu", dependent=dependent)] * n


class TestMicroSimBasics:
    def test_empty_program(self):
        res = MicroSim(GTX580).run([], n_warps=4)
        assert res.cycles == 0

    def test_single_warp_independent_alu(self):
        # 100 independent ALU ops issue back to back: ~100 cycles
        res = MicroSim(GTX580).run(alu(100), n_warps=1)
        assert 100 <= res.cycles <= 130

    def test_single_warp_dependent_alu_chain(self):
        # a dependency chain pays the 18-cycle pipeline per hop
        # (19 waits between 20 instructions)
        res = MicroSim(GTX580).run(alu(20, dependent=True), n_warps=1)
        assert res.cycles >= 19 * 18

    def test_issue_width_throughput(self):
        # Fermi issues 1 warp-inst/cycle: N warps x I instructions ~ N*I
        res = MicroSim(GTX580).run(alu(50), n_warps=8)
        assert res.cycles == pytest.approx(8 * 50, rel=0.1)

    def test_kepler_wider_issue(self):
        f = MicroSim(GTX580).run(alu(60), n_warps=12).cycles
        k = MicroSim(K20M).run(alu(60), n_warps=12).cycles
        assert k < f / 3  # issue width 6 vs 1

    def test_warps_hide_memory_latency(self):
        prog = [Instruction("gld"), Instruction("alu", dependent=True)]
        solo = MicroSim(GTX580).run(prog * 10, n_warps=1).cycles
        many = MicroSim(GTX580).run(prog * 10, n_warps=16).cycles
        # 16 warps take far less than 16x the single warp's time
        assert many < 4 * solo

    def test_outstanding_load_cap_throttles(self):
        prog = [Instruction("gld")] * 20
        free = MicroSim(GTX580, max_outstanding_loads=1000).run(
            prog, n_warps=16
        ).cycles
        capped = MicroSim(GTX580, max_outstanding_loads=2).run(
            prog, n_warps=16
        ).cycles
        assert capped > 2 * free

    def test_bank_conflicts_serialize_lsu(self):
        clean = [Instruction("sld")] * 30
        dirty = [Instruction("sld", conflict_degree=8)] * 30
        t_clean = MicroSim(GTX580).run(clean, n_warps=8).cycles
        t_dirty = MicroSim(GTX580).run(dirty, n_warps=8).cycles
        assert t_dirty > 4 * t_clean

    def test_sync_barrier_aligns_warps(self):
        # without barrier, warps drift; with it, all finish together
        prog = alu(30) + [Instruction("sync")] + alu(5)
        res = MicroSim(GTX580).run(prog, n_warps=6)
        spread = max(res.completion) - min(res.completion)
        assert spread <= 6 + 1  # one issue round after the barrier

    def test_runaway_guard(self):
        with pytest.raises(RuntimeError):
            MicroSim(GTX580).run(alu(10_000), n_warps=48, max_cycles=100)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            Instruction("fpu")
        with pytest.raises(ValueError):
            Instruction("sld", conflict_degree=0)
        with pytest.raises(ValueError):
            MicroSim(GTX580).run(alu(1), n_warps=0)


class TestCrossValidation:
    """The analytic TimingModel against the event-driven reference.

    One wave of warps on one SM; the analytic per-wave cycles must land
    within a factor-of-two band of the micro simulation (they use the
    same latencies but idealize scheduling differently).
    """

    def analytic_wave_cycles(self, arch, n_warps, issued_per_warp,
                             load_requests_per_warp=0):
        occ = occupancy(arch, 32 * n_warps, 16, 0)
        mem = []
        total_warps = n_warps
        if load_requests_per_warp:
            mem = [resolve_access(
                GlobalAccessPattern("load", load_requests_per_warp * n_warps,
                                    stride_words=1),
                arch,
            )]
        timing = TimingModel(arch).evaluate(
            grid_blocks=1,
            warps_per_block=n_warps,
            occ=occ,
            issued_per_warp=issued_per_warp,
            mem=mem,
            total_warps=total_warps,
            dram_bytes=sum(m.dram_bytes for m in mem),
        )
        return timing.cycles

    @pytest.mark.parametrize("n_warps", [4, 8, 16])
    def test_compute_bound_agreement(self, n_warps):
        n_instr = 200
        micro = MicroSim(GTX580).run(alu(n_instr), n_warps=n_warps).cycles
        analytic = self.analytic_wave_cycles(GTX580, n_warps, float(n_instr))
        assert 0.5 < analytic / micro < 2.0, (analytic, micro)

    @pytest.mark.parametrize("n_warps", [8, 16])
    def test_memory_bound_agreement(self, n_warps):
        n_loads = 40
        prog = [Instruction("gld"), Instruction("alu", dependent=True)] * n_loads
        micro = MicroSim(GTX580).run(prog, n_warps=n_warps).cycles
        analytic = self.analytic_wave_cycles(
            GTX580, n_warps, 2.0 * n_loads, load_requests_per_warp=n_loads
        )
        assert 0.4 < analytic / micro < 2.5, (analytic, micro)

    def test_latency_chain_agreement(self):
        # a single warp's dependent global-load chain: both models must
        # charge ~latency per load
        n_loads = 30
        prog = [Instruction("gld", dependent=True)] * n_loads
        micro = MicroSim(GTX580).run(prog, n_warps=1).cycles
        expected = n_loads * GTX580.dram_latency_cycles
        assert micro == pytest.approx(expected, rel=0.15)
