"""Unit tests for coalescing, the cache simulator and traffic resolution."""

import numpy as np
import pytest

from repro.gpusim.arch import GTX580, K20M, CacheGeometry
from repro.gpusim.memory import (
    CacheSim,
    estimate_hit_fraction,
    resolve_access,
    transactions_from_trace,
    transactions_per_request,
)
from repro.gpusim.workload import GlobalAccessPattern


class TestCoalescingRules:
    def test_unit_stride_float_is_one_128b_transaction(self):
        assert transactions_per_request(1, 4, 32, 128) == 1

    def test_unit_stride_double_is_two_transactions(self):
        assert transactions_per_request(1, 8, 32, 128) == 2

    def test_broadcast_is_one(self):
        assert transactions_per_request(0, 4, 32, 128) == 1

    def test_stride_two_doubles_segments(self):
        assert transactions_per_request(2, 4, 32, 128) == 2

    def test_large_stride_fully_scattered(self):
        assert transactions_per_request(32, 4, 32, 128) == 32

    def test_capped_at_active_lanes(self):
        assert transactions_per_request(1000, 4, 16, 128) == 16

    def test_32b_segments_for_kepler_loads(self):
        assert transactions_per_request(1, 4, 32, 32) == 4

    def test_partial_warp(self):
        # 16 lanes x 4B unit stride: 64B -> one 128B segment
        assert transactions_per_request(1, 4, 16, 128) == 1

    def test_word_larger_than_segment_rejected(self):
        with pytest.raises(ValueError):
            transactions_per_request(1, 8, 32, 4)


class TestTraceTransactions:
    def test_coalesced_trace(self):
        addrs = np.arange(32)[None, :] * 4
        assert transactions_from_trace(addrs, 128).tolist() == [1]

    def test_scattered_trace(self):
        addrs = (np.arange(32)[None, :] * 128)
        assert transactions_from_trace(addrs, 128).tolist() == [32]

    def test_inactive_lanes_ignored(self):
        addrs = np.full((1, 32), -1, dtype=np.int64)
        addrs[0, :4] = [0, 4, 8, 12]
        assert transactions_from_trace(addrs, 128).tolist() == [1]

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            transactions_from_trace(np.zeros((3, 16)), 128)


class TestCacheSim:
    def test_cold_miss_then_hit(self):
        sim = CacheSim(CacheGeometry(1024, 64, 2))
        assert sim.access_line(5) is False
        assert sim.access_line(5) is True
        assert sim.hit_rate == pytest.approx(0.5)

    def test_lru_eviction_order(self):
        # 2-way set: fill both ways, touch the first, insert a third ->
        # the least recently used (second) is evicted.
        geom = CacheGeometry(2 * 64, 64, 2)  # a single set
        sim = CacheSim(geom)
        sim.access_line(0)
        sim.access_line(1)
        sim.access_line(0)      # refresh line 0
        sim.access_line(2)      # evicts line 1
        assert sim.access_line(0) is True
        assert sim.access_line(1) is False

    def test_streaming_never_hits(self):
        sim = CacheSim(CacheGeometry(4096, 64, 4))
        hits = sim.access(np.arange(0, 1 << 16, 64))
        assert not hits.any()

    def test_working_set_within_capacity_all_hits_second_pass(self):
        geom = CacheGeometry(4096, 64, 4)
        sim = CacheSim(geom)
        addrs = np.arange(0, 2048, 64)
        sim.access(addrs)
        assert sim.access(addrs).all()

    def test_reset(self):
        sim = CacheSim(CacheGeometry(1024, 64, 2))
        sim.access_line(1)
        sim.reset()
        assert sim.hits == sim.misses == 0
        assert sim.access_line(1) is False

    def test_warm_trace_hit_rate_with_reuse(self):
        geom = CacheGeometry(16 * 1024, 128, 4)
        sim = CacheSim(geom)
        row = np.arange(32) * 4
        trace = np.vstack([row, row + 128, row, row + 128])  # revisit both lines
        rate = sim.warm_trace_hit_rate(trace, 128)
        assert rate == pytest.approx(0.5)


class TestHitEstimate:
    def test_streaming_is_zero(self):
        assert estimate_hit_fraction(1000, None, 128, 16 * 1024) == 0.0

    def test_no_reuse_is_zero(self):
        assert estimate_hit_fraction(100, 100 * 128, 128, 1 << 20) == 0.0

    def test_high_reuse_fitting_cache(self):
        # 10x reuse of a 1KB footprint in a 16KB cache -> ~0.9
        frac = estimate_hit_fraction(80, 1024, 128, 16 * 1024)
        assert frac == pytest.approx(1 - 1 / 10, rel=0.01)

    def test_capacity_degrades_hit_rate(self):
        # 80k x 128B transactions over a 1 MiB footprint: ~10x reuse.
        small = estimate_hit_fraction(80_000, 1 << 20, 128, 16 * 1024)
        big = estimate_hit_fraction(80_000, 1 << 20, 128, 1 << 20)
        assert 0.0 < small < big

    def test_zero_transactions(self):
        assert estimate_hit_fraction(0, 100, 128, 1024) == 0.0


class TestResolveAccess:
    def test_fermi_load_miss_expands_to_l2(self):
        acc = GlobalAccessPattern("load", requests=100, stride_words=1)
        res = resolve_access(acc, GTX580)
        assert res.transactions == 100           # 128B lines
        assert res.l1_misses == 100              # streaming
        assert res.l2_transactions == 400        # 4 x 32B per line

    def test_kepler_load_bypasses_l1(self):
        acc = GlobalAccessPattern("load", requests=100, stride_words=1)
        res = resolve_access(acc, K20M)
        assert res.l1_hits == 0.0
        assert res.transactions == 400           # direct 32B transactions

    def test_store_coalesces_at_32b(self):
        acc = GlobalAccessPattern("store", requests=10, stride_words=1)
        res = resolve_access(acc, GTX580)
        assert res.transactions == 40

    def test_hit_fraction_override(self):
        acc = GlobalAccessPattern(
            "load", requests=100, stride_words=1, l1_hit_fraction=0.75
        )
        res = resolve_access(acc, GTX580)
        assert res.l1_hits == pytest.approx(75.0)

    def test_dram_bytes_zero_when_l2_hits(self):
        acc = GlobalAccessPattern(
            "load", requests=100, stride_words=1, l2_hit_fraction=1.0
        )
        res = resolve_access(acc, GTX580)
        assert res.dram_bytes == 0.0

    def test_cache_factor_scales_hits(self):
        acc = GlobalAccessPattern(
            "load", requests=100, stride_words=1, l1_hit_fraction=0.5
        )
        base = resolve_access(acc, GTX580, cache_factor=1.0)
        boosted = resolve_access(acc, GTX580, cache_factor=1.2)
        assert boosted.l1_hits == pytest.approx(base.l1_hits * 1.2)

    def test_cache_factor_clipped_at_one(self):
        acc = GlobalAccessPattern(
            "load", requests=100, stride_words=1, l1_hit_fraction=0.9
        )
        res = resolve_access(acc, GTX580, cache_factor=5.0)
        assert res.l1_hits <= res.transactions

    def test_replays_from_uncoalesced(self):
        acc = GlobalAccessPattern("load", requests=10, stride_words=32)
        res = resolve_access(acc, GTX580)
        assert res.replays == pytest.approx(10 * 32 - 10)

    def test_trace_driven_transactions(self):
        addrs = np.tile(np.arange(32) * 4, (5, 1))
        acc = GlobalAccessPattern("load", requests=50, addresses=addrs)
        res = resolve_access(acc, GTX580)
        assert res.transactions == pytest.approx(50.0)

    def test_requested_bytes(self):
        acc = GlobalAccessPattern("load", requests=10, active_lanes=16, word_bytes=8)
        assert acc.requested_bytes == 10 * 16 * 8
