"""Tests for the roofline analysis utility."""

import numpy as np
import pytest

from repro.gpusim import GTX580, K20M
from repro.gpusim.roofline import (
    RooflinePoint,
    attainable_gflops,
    roofline_chart,
    roofline_point,
)
from repro.kernels import MatMulKernel, ReductionKernel, VectorAddKernel


class TestAttainable:
    def test_bandwidth_region(self):
        # at intensity 0.1, attainable = 0.1 * bandwidth
        assert attainable_gflops(GTX580, 0.1) == pytest.approx(19.24)

    def test_compute_region(self):
        assert attainable_gflops(GTX580, 1e6) == pytest.approx(
            GTX580.peak_gflops_sp
        )

    def test_ridge_point_continuity(self):
        ridge = GTX580.peak_gflops_sp / GTX580.mem_bandwidth_gbs
        assert attainable_gflops(GTX580, ridge) == pytest.approx(
            GTX580.peak_gflops_sp, rel=1e-9
        )

    def test_negative_intensity_rejected(self):
        with pytest.raises(ValueError):
            attainable_gflops(GTX580, -1.0)


class TestRooflinePoints:
    def test_reduction_is_bandwidth_bound(self):
        p = roofline_point(ReductionKernel(6), 1 << 24, GTX580)
        assert p.bound == "bandwidth"
        assert p.operational_intensity < 1.0

    def test_matmul_intensity_grows_with_n(self):
        small = roofline_point(MatMulKernel(), 128, GTX580)
        # large matrices spill out of L2 -> DRAM bytes grow ~ O(n^3/16),
        # so intensity saturates near the tile reuse factor; it must at
        # least stay positive and finite
        big = roofline_point(MatMulKernel(), 1024, GTX580)
        assert np.isfinite(small.operational_intensity)
        assert np.isfinite(big.operational_intensity)
        assert big.achieved_gflops > small.achieved_gflops

    def test_achieved_below_attainable(self):
        for kernel, problem in ((ReductionKernel(6), 1 << 22),
                                (VectorAddKernel(), 1 << 22),
                                (MatMulKernel(), 512)):
            p = roofline_point(kernel, problem, GTX580)
            assert p.achieved_gflops <= p.attainable_gflops * 1.05, p

    def test_bandwidth_kernel_near_ceiling(self):
        p = roofline_point(ReductionKernel(6), 1 << 24, GTX580)
        assert p.ceiling_fraction > 0.7

    def test_k20m_higher_roof(self):
        p_f = roofline_point(MatMulKernel(), 512, GTX580)
        p_k = roofline_point(MatMulKernel(), 512, K20M)
        assert p_k.peak_gflops > p_f.peak_gflops


class TestChart:
    def test_chart_renders(self):
        points = [
            roofline_point(ReductionKernel(6), 1 << 22, GTX580),
            roofline_point(MatMulKernel(), 512, GTX580),
        ]
        chart = roofline_chart(points, GTX580)
        assert "Roofline: GTX580" in chart
        assert "A:" in chart and "B:" in chart
        assert "bound" in chart

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            roofline_chart([], GTX580)

    def test_point_bound_labels(self):
        p = RooflinePoint("x", operational_intensity=0.5,
                          achieved_gflops=10, attainable_gflops=96,
                          peak_gflops=1581, ridge_intensity=8.2)
        assert p.bound == "bandwidth"
        p2 = RooflinePoint("y", operational_intensity=100,
                           achieved_gflops=800, attainable_gflops=1581,
                           peak_gflops=1581, ridge_intensity=8.2)
        assert p2.bound == "compute"
