"""Unit tests for the workload IR."""

import pytest

from repro.gpusim.workload import (
    GlobalAccessPattern,
    KernelWorkload,
    SharedAccessPattern,
)


def simple_workload(**overrides):
    kwargs = dict(
        name="k",
        grid_blocks=10,
        threads_per_block=256,
        arithmetic_instructions=1000,
        branches=100,
        divergent_branches=10,
        other_instructions=50,
        global_accesses=[
            GlobalAccessPattern("load", 200),
            GlobalAccessPattern("store", 80),
        ],
        shared_accesses=[
            SharedAccessPattern("load", 300, conflict_degree=2.0),
            SharedAccessPattern("store", 150),
        ],
    )
    kwargs.update(overrides)
    return KernelWorkload(**kwargs)


class TestDerivedCounts:
    def test_warps_per_block(self):
        assert simple_workload().warps_per_block == 8
        assert simple_workload(threads_per_block=16).warps_per_block == 1
        assert simple_workload(threads_per_block=33).warps_per_block == 2

    def test_total_warps_and_threads(self):
        wl = simple_workload()
        assert wl.total_warps == 80
        assert wl.total_threads == 2560

    def test_ldst_instructions(self):
        assert simple_workload().ldst_instructions == 200 + 80 + 300 + 150

    def test_executed_excludes_replays(self):
        wl = simple_workload()
        assert wl.executed_instructions == 1000 + 100 + 50 + 730

    def test_loads_stores_selectors(self):
        wl = simple_workload()
        assert [a.requests for a in wl.loads("global")] == [200]
        assert [a.requests for a in wl.stores("global")] == [80]
        assert [a.requests for a in wl.loads("shared")] == [300]
        assert [a.requests for a in wl.stores("shared")] == [150]


class TestSharedPattern:
    def test_replays(self):
        assert SharedAccessPattern("load", 100, conflict_degree=3.0).replays == 200.0

    def test_rejects_bad_kind(self):
        with pytest.raises(ValueError):
            SharedAccessPattern("read", 1)

    def test_rejects_degree_below_one(self):
        with pytest.raises(ValueError):
            SharedAccessPattern("load", 1, conflict_degree=0.9)


class TestGlobalPattern:
    def test_requested_bytes(self):
        acc = GlobalAccessPattern("load", 10, word_bytes=4, active_lanes=32)
        assert acc.requested_bytes == 1280

    def test_rejects_bad_lane_count(self):
        with pytest.raises(ValueError):
            GlobalAccessPattern("load", 1, active_lanes=33)

    def test_rejects_bad_word(self):
        with pytest.raises(ValueError):
            GlobalAccessPattern("load", 1, word_bytes=3)

    def test_rejects_bad_hit_fraction(self):
        with pytest.raises(ValueError):
            GlobalAccessPattern("load", 1, l1_hit_fraction=1.5)

    def test_rejects_negative_stride(self):
        with pytest.raises(ValueError):
            GlobalAccessPattern("load", 1, stride_words=-2)


class TestWorkloadValidation:
    def test_rejects_zero_blocks(self):
        with pytest.raises(ValueError):
            simple_workload(grid_blocks=0)

    def test_rejects_divergent_exceeding_branches(self):
        with pytest.raises(ValueError):
            simple_workload(branches=5, divergent_branches=6)

    def test_rejects_bad_active_threads(self):
        with pytest.raises(ValueError):
            simple_workload(avg_active_threads=40.0)
        with pytest.raises(ValueError):
            simple_workload(avg_active_threads=0.0)

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            simple_workload(arithmetic_instructions=-1)
