"""Degenerate inputs for coalescing and the cache simulator.

Edge cases a chaos campaign can produce (a truncated trace, a kernel
with no memory traffic, a probe stream dwarfing the cache) must behave
sensibly instead of crashing or returning garbage.
"""

import numpy as np
import pytest

from repro.gpusim.arch import CacheGeometry
from repro.gpusim.memory import (
    CacheSim,
    coalesce_trace,
    transactions_from_trace,
)


def _tiny_geometry() -> CacheGeometry:
    # 16 sets x 2 ways x 32B lines = 1 KiB, 32-line capacity.
    return CacheGeometry(size_bytes=1024, line_bytes=32, associativity=2)


class TestCoalesceDegenerate:
    def test_empty_trace_yields_empty_segment_stream(self):
        empty = np.empty((0, 32), dtype=np.int64)
        assert coalesce_trace(empty, 32).size == 0
        assert transactions_from_trace(empty, 32).size == 0

    def test_broadcast_request_coalesces_to_one_segment(self):
        trace = np.zeros((1, 32), dtype=np.int64)  # all lanes, one address
        segments = coalesce_trace(trace, 32)
        assert segments.tolist() == [0]
        assert transactions_from_trace(trace, 32).tolist() == [1]

    def test_single_active_lane(self):
        trace = np.full((1, 32), -1, dtype=np.int64)
        trace[0, 7] = 96
        assert coalesce_trace(trace, 32).tolist() == [3]

    def test_fully_inactive_request_produces_no_segments(self):
        trace = np.full((2, 32), -1, dtype=np.int64)
        assert coalesce_trace(trace, 32).size == 0
        assert transactions_from_trace(trace, 32).tolist() == [0, 0]

    def test_wrong_trace_shape_rejected(self):
        with pytest.raises(ValueError):
            coalesce_trace(np.zeros((4, 16), dtype=np.int64), 32)

    def test_segment_bytes_must_be_positive(self):
        with pytest.raises(ValueError):
            coalesce_trace(np.zeros((1, 32), dtype=np.int64), 0)


class TestCacheSimDegenerate:
    def test_empty_probe_stream(self):
        sim = CacheSim(_tiny_geometry())
        hits = sim.access_lines(np.empty(0, dtype=np.int64))
        assert hits.size == 0 and hits.dtype == bool
        assert sim.hits == 0 and sim.misses == 0
        assert sim.hit_rate == 0.0

    def test_single_line_stream(self):
        sim = CacheSim(_tiny_geometry())
        first = sim.access_lines(np.array([5]))
        second = sim.access_lines(np.array([5]))
        assert not first[0] and second[0]
        assert (sim.hits, sim.misses) == (1, 1)

    def test_stream_within_capacity_hits_on_reuse(self):
        geometry = _tiny_geometry()
        sim = CacheSim(geometry)
        capacity = geometry.n_sets * geometry.associativity
        lines = np.arange(capacity)
        assert not sim.access_lines(lines).any()  # cold misses
        assert sim.access_lines(lines).all()  # fully resident

    def test_stream_larger_than_cache_thrashes(self):
        # A cyclic stream of 2x capacity under LRU: every reuse distance
        # exceeds the cache, so the second pass misses everything too.
        geometry = _tiny_geometry()
        sim = CacheSim(geometry)
        lines = np.arange(2 * geometry.n_sets * geometry.associativity)
        sim.access_lines(lines)
        assert not sim.access_lines(lines).any()
        assert sim.hits == 0

    def test_access_lines_matches_scalar_loop(self):
        rng = np.random.default_rng(0)
        lines = rng.integers(0, 200, size=500)
        vector = CacheSim(_tiny_geometry())
        scalar = CacheSim(_tiny_geometry())
        batched = vector.access_lines(lines)
        looped = np.array([scalar.access_line(int(l)) for l in lines])
        assert (batched == looped).all()
        assert (vector.hits, vector.misses) == (scalar.hits, scalar.misses)

    def test_reset_clears_state_and_counters(self):
        sim = CacheSim(_tiny_geometry())
        sim.access_lines(np.arange(10))
        sim.reset()
        assert (sim.hits, sim.misses) == (0, 0)
        assert not sim.access_lines(np.arange(10)).any()
