"""Snapshot of the public API surface.

The exported-name lists below are a deliberate contract: adding a name
is fine (update the snapshot in the same PR, with review), but a name
disappearing or moving is an API break and must fail loudly here rather
than in a downstream import.
"""

import warnings

import pytest

import repro
import repro.core
import repro.faults
import repro.obs
import repro.profiling

CORE_EXPORTS = [
    "BlackForest",
    "BlackForestFit",
    "BottleneckFinding",
    "BottleneckPattern",
    "CampaignKey",
    "CounterModel",
    "CounterModelSet",
    "FitArtifact",
    "HardwareScalingFit",
    "HardwareScalingPredictor",
    "HardwareScalingResult",
    "HeterogeneousPartitioner",
    "ImportanceRanking",
    "PATTERNS",
    "PartitionPlan",
    "PredictionReport",
    "Predictor",
    "ProblemScalingFit",
    "ProblemScalingPredictor",
    "RunStore",
    "bottleneck_report",
    "common_predictors",
    "detect_bottlenecks",
    "fit_summary",
    "importance_similarity",
    "induced_counter_ranking",
    "mixed_variable_set",
    "per_arch_importance",
    "predict_many",
    "prediction_report_text",
    "rank_importance",
    "rank_similarity",
    "reduced_model_check",
    "safe_component",
    "shard_of",
    "stacked_predict",
]

PROFILING_EXPORTS = [
    "Campaign",
    "CampaignCheckpoint",
    "CampaignKey",
    "CampaignResult",
    "CheckpointMismatch",
    "ProfileRepository",
    "Profiler",
    "QuarantinedRun",
    "RepositoryIntegrityError",
    "RunRecord",
]

FAULTS_EXPORTS = [
    "FaultError",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "LaunchTimeout",
    "RetryPolicy",
    "SITES",
    "WorkerCrash",
    "active_plan",
    "call_with_retry",
    "fault_injection",
    "should_inject",
]

OBS_EXPORTS = [
    "Event",
    "EventLog",
    "FlightRecorder",
    "LogHistogram",
    "Manifest",
    "MetricsRegistry",
    "Report",
    "ReportSection",
    "SpanRecord",
    "TelemetryExporter",
    "Tracer",
    "append_history",
    "build_manifest",
    "build_report",
    "child_event_log",
    "child_trace",
    "collect",
    "compare_results",
    "current_event_log",
    "current_metrics",
    "current_tracer",
    "emit",
    "event_log",
    "event_log_enabled",
    "git_revision",
    "inc",
    "metrics_enabled",
    "observe",
    "read_events",
    "read_flightrec",
    "read_history",
    "read_telemetry",
    "render_prometheus",
    "render_text_tree",
    "set_gauge",
    "snapshot_doc",
    "span",
    "span_totals",
    "timer",
    "to_chrome_trace",
    "trace",
    "tracing_enabled",
]


class TestExportSnapshots:
    def test_core_exports(self):
        assert sorted(repro.core.__all__) == CORE_EXPORTS

    def test_profiling_exports(self):
        assert sorted(repro.profiling.__all__) == PROFILING_EXPORTS

    def test_obs_exports(self):
        assert sorted(repro.obs.__all__) == OBS_EXPORTS

    def test_faults_exports(self):
        assert sorted(repro.faults.__all__) == FAULTS_EXPORTS

    @pytest.mark.parametrize("module,names", [
        (repro.core, CORE_EXPORTS),
        (repro.profiling, PROFILING_EXPORTS),
        (repro.obs, OBS_EXPORTS),
        (repro.faults, FAULTS_EXPORTS),
    ], ids=["core", "profiling", "obs", "faults"])
    def test_every_export_resolves(self, module, names):
        for name in names:
            assert getattr(module, name) is not None, name

    def test_top_level_reexports_protocol_types(self):
        for name in ("Predictor", "FitArtifact", "CampaignKey",
                     "ProfileRepository", "ProblemScalingFit",
                     "HardwareScalingFit"):
            assert name in repro.__all__
            assert getattr(repro, name) is not None

    def test_no_deprecated_names_in_all(self):
        # the Repository shim resolves via __getattr__, not __all__
        assert "Repository" not in repro.__all__
        assert "Repository" not in repro.profiling.__all__


class TestProtocolConformance:
    """Every pipeline predictor satisfies the unified protocol shape."""

    @pytest.mark.parametrize("cls", [
        repro.BlackForest,
        repro.ProblemScalingPredictor,
        repro.HardwareScalingPredictor,
    ])
    def test_predictor_surface(self, cls):
        for method in ("fit", "predict", "assess"):
            assert callable(getattr(cls, method)), (cls.__name__, method)

    @pytest.mark.parametrize("cls", [
        repro.BlackForestFit,
        repro.ProblemScalingFit,
        repro.HardwareScalingFit,
    ])
    def test_fit_artifact_surface(self, cls):
        for method in ("predict", "assess", "report"):
            assert callable(getattr(cls, method)), (cls.__name__, method)

    def test_star_import_emits_no_warnings(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            namespace: dict = {}
            exec("from repro import *", namespace)
        assert "BlackForest" in namespace
        assert "Repository" not in namespace
