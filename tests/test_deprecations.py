"""Every deprecation shim warns exactly once and delegates faithfully.

This is the one test module that *intentionally* exercises deprecated
surfaces; the CI deprecation-strict job runs the rest of the suite with
``-W error::DeprecationWarning`` and skips this file.
"""

import warnings

import numpy as np
import pytest

import repro
import repro.profiling
import repro.profiling.repository as repository_module
from repro import (
    BlackForest,
    Campaign,
    CampaignKey,
    GTX580,
    HardwareScalingPredictor,
    K20M,
    ProblemScalingPredictor,
    ProfileRepository,
    VectorAddKernel,
)
from repro._compat import reset_deprecation_warnings
from repro.kernels import MatMulKernel


@pytest.fixture(autouse=True)
def _fresh_shims():
    reset_deprecation_warnings()
    yield
    reset_deprecation_warnings()


def _deprecations(caught):
    return [w for w in caught if issubclass(w.category, DeprecationWarning)]


@pytest.fixture(scope="module")
def vecadd_campaign():
    return Campaign(VectorAddKernel(), GTX580, rng=0).run(
        problems=[1 << 14, 1 << 16, 1 << 18, 1 << 20], replicates=2
    )


@pytest.fixture(scope="module")
def matmul_small():
    return Campaign(MatMulKernel(), GTX580, rng=0).run(
        problems=[96, 160, 256, 384, 512, 640, 768], replicates=2
    )


class TestRepositoryRename:
    @pytest.mark.parametrize("module", [
        repro, repro.profiling, repository_module,
    ], ids=["repro", "repro.profiling", "repro.profiling.repository"])
    def test_alias_warns_once_and_delegates(self, module):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            first = module.Repository
            second = module.Repository
        assert first is ProfileRepository
        assert second is ProfileRepository
        assert len(_deprecations(caught)) == 1

    def test_unknown_attribute_still_raises(self):
        with pytest.raises(AttributeError):
            repro.profiling.DoesNotExist


class TestStringKeyShim:
    def test_load_by_strings_warns_once_and_delegates(
        self, vecadd_campaign, tmp_path
    ):
        repo = ProfileRepository(tmp_path)
        repo.save(vecadd_campaign)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            loaded = repo.load("vectorAdd", "GTX580")
            assert repo.has("vectorAdd", "GTX580")
        assert len(loaded) == len(vecadd_campaign)
        assert len(_deprecations(caught)) == 1

    def test_key_and_strings_together_rejected(self, tmp_path):
        repo = ProfileRepository(tmp_path)
        with pytest.raises(TypeError):
            repo.load(CampaignKey("a", "b"), "c")


class TestBlackForestPositionalFit:
    def test_positional_config_warns_once_and_delegates(self, vecadd_campaign):
        keyword = BlackForest(n_trees=20, rng=1).fit(
            vecadd_campaign, include_characteristics=False
        )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            positional = BlackForest(n_trees=20, rng=1).fit(
                vecadd_campaign, False
            )
            BlackForest(n_trees=20, rng=1).fit(vecadd_campaign, False)
        assert positional.feature_names == keyword.feature_names
        assert positional.oob_mse == keyword.oob_mse
        assert len(_deprecations(caught)) == 1

    def test_too_many_positionals_rejected(self, vecadd_campaign):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with pytest.raises(TypeError):
                BlackForest(n_trees=20, rng=1).fit(
                    vecadd_campaign, True, False, None, "time", "extra"
                )


class TestProblemScalingShims:
    def test_positional_init_warns_once_and_delegates(self, matmul_small):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            pred = ProblemScalingPredictor(
                BlackForest(n_trees=20, use_pca=False, rng=1), "size"
            )
        assert pred.characteristic == "size"
        assert len(_deprecations(caught)) == 1

    def test_report_warns_once_and_matches_assess(self, matmul_small):
        fit = ProblemScalingPredictor(
            BlackForest(n_trees=30, use_pca=False, rng=1), rng=2
        ).fit(matmul_small)
        assessed = fit.assess(matmul_small)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            reported = fit.report(matmul_small)
            fit.report(matmul_small)
        assert np.array_equal(reported.predicted_s, assessed.predicted_s)
        assert len(_deprecations(caught)) == 1

    def test_predictor_report_shim(self, matmul_small):
        pred = ProblemScalingPredictor(
            BlackForest(n_trees=30, use_pca=False, rng=1), rng=2
        )
        fit = pred.fit(matmul_small)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            reported = pred.report(matmul_small)
        assert np.array_equal(
            reported.predicted_s, fit.assess(matmul_small).predicted_s
        )
        assert len(_deprecations(caught)) == 1

    @pytest.mark.parametrize("alias,canonical", [
        ("fit_", "blackforest_fit"),
        ("retained_", "retained"),
        ("forest_", "forest"),
        ("counter_models_", "counter_models"),
    ])
    def test_fitted_state_aliases(self, matmul_small, alias, canonical):
        fit = ProblemScalingPredictor(
            BlackForest(n_trees=20, use_pca=False, rng=1), rng=2
        ).fit(matmul_small)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            value = getattr(fit, alias)
            getattr(fit, alias)
        assert value is getattr(fit, canonical)
        assert len(_deprecations(caught)) == 1


class TestHardwareScalingPositionalFit:
    def test_positional_config_warns_once_and_delegates(self, vecadd_campaign):
        kepler = Campaign(VectorAddKernel(), K20M, rng=1).run(
            problems=[1 << 14, 1 << 16, 1 << 18, 1 << 20], replicates=2
        )
        from repro import common_predictors

        common = common_predictors(vecadd_campaign, kepler)
        keyword = HardwareScalingPredictor(n_trees=20, rng=3).fit(
            vecadd_campaign, common=common
        )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            positional = HardwareScalingPredictor(n_trees=20, rng=3).fit(
                vecadd_campaign, None, common
            )
        assert positional.variables == keyword.variables
        assert len(_deprecations(caught)) == 1


class TestWarnOncePerProcessSemantics:
    def test_reset_re_arms_the_warning(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            _ = repro.profiling.Repository
            reset_deprecation_warnings()
            _ = repro.profiling.Repository
        assert len(_deprecations(caught)) == 2


class TestFlatLayoutShim:
    def test_v1_open_warns_once_and_reads(self, vecadd_campaign, tmp_path):
        from tests.profiling.test_repository_v2 import flatten_to_v1

        ProfileRepository(tmp_path).save(vecadd_campaign)
        flatten_to_v1(tmp_path)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            repo = ProfileRepository(tmp_path)
            ProfileRepository(tmp_path)  # second open: already warned
        assert repo.layout == 1
        assert len(repo.load(CampaignKey("vectorAdd", "GTX580"))) == len(
            vecadd_campaign
        )
        flat = _deprecations(caught)
        assert len(flat) == 1
        assert "repro repo migrate" in str(flat[0].message)
