"""CLI wiring for ``repro publish`` and ``repro serve``."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_publish_defaults(self):
        args = build_parser().parse_args(["publish", "reduce1"])
        assert args.registry == "./models"
        assert args.response == "time"

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.registry == "./models"
        assert args.max_batch == 32
        assert args.cache_size == 8
        assert args.socket is None


class TestPublishCommand:
    def test_publish_then_serve_roundtrip(
        self, tmp_path, capsys, monkeypatch
    ):
        registry = tmp_path / "models"
        rc = main([
            "publish", "reduce1", "--arch", "GTX580",
            "--registry", str(registry),
            "--sizes", "16384,65536,262144,1048576",
            "--trees", "10", "--format", "json",
        ])
        assert rc == 0
        published = json.loads(capsys.readouterr().out)
        assert published["kernel"] == "reduce1"
        assert (
            registry / "reduce1__GTX580" / published["version"] / "fit.json"
        ).exists()

        # Serve a query against the published fit over stdio.
        import io

        fit = json.loads(
            (registry / "reduce1__GTX580" / published["version"]
             / "fit.json").read_text()
        )
        row = {name: 1.0 for name in fit["feature_names"]}
        request = json.dumps({
            "id": 1, "method": "predict",
            "params": {"kernel": "reduce1", "arch": "GTX580", "rows": [row]},
        })
        monkeypatch.setattr("sys.stdin", io.StringIO(request + "\n"))
        rc = main(["serve", "--registry", str(registry)])
        assert rc == 0
        out = capsys.readouterr().out
        response = json.loads(out.splitlines()[-1])
        assert response["id"] == 1
        assert len(response["result"]["predictions"]) == 1

    def test_publish_unknown_kernel_exits(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["publish", "definitely-not-a-kernel",
                  "--registry", str(tmp_path)])


class TestHardenedFlags:
    def test_serve_hardening_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.workers == 4
        assert args.queue_size == 64
        assert args.linger_ms == 0.0
        assert args.request_timeout is None
        assert args.breaker_threshold == 5
        assert args.breaker_cooldown == 8
        assert args.no_reload is False

    def test_query_defaults(self):
        args = build_parser().parse_args(["query", "ping"])
        assert args.connect == "127.0.0.1:7070"
        assert args.retries == 4
        assert args.timeout == 10.0

    def test_chaos_serve_flags(self):
        args = build_parser().parse_args([
            "chaos", "matrixMul", "--serve", "--clients", "4",
            "--requests", "24", "--corrupt-times", "3",
        ])
        assert args.serve is True
        assert args.clients == 4
        assert args.requests == 24
        assert args.corrupt_times == 3


class TestObservabilityFlags:
    def test_serve_telemetry_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.telemetry is None
        assert args.telemetry_interval == 5.0
        assert args.flight_recorder is None

    def test_top_defaults(self):
        args = build_parser().parse_args(["top"])
        assert args.connect == "127.0.0.1:7070"
        assert args.interval == 2.0
        assert args.once is False

    def test_chaos_campaign_telemetry_flag(self):
        args = build_parser().parse_args(
            ["chaos", "reduce1", "--telemetry", "hb.jsonl"]
        )
        assert args.telemetry == "hb.jsonl"

    def test_analyze_telemetry_flag(self):
        args = build_parser().parse_args(
            ["analyze", "reduce1", "--telemetry", "hb.jsonl"]
        )
        assert args.telemetry == "hb.jsonl"


@pytest.fixture()
def live_server(tmp_path):
    """A real serve_tcp frontend over a freshly published fit."""
    import threading

    import numpy as np

    from repro.ml.forest import RandomForestRegressor
    from repro.serve import (
        FitRegistry,
        PredictionServer,
        ServableFit,
        serve_tcp,
    )

    features = ["a", "b"]
    rng = np.random.default_rng(0)
    X = rng.uniform(size=(60, 2))
    y = X @ np.array([1.0, 2.0])
    forest = RandomForestRegressor(n_trees=8, rng=1).fit(
        X, y, feature_names=features
    )
    registry = FitRegistry(tmp_path / "models")
    registry.publish(ServableFit(
        kernel="cliKernel", arch="volta", tag=None, forest=forest,
        feature_names=features, source={"n_runs": 60},
    ))
    server = PredictionServer(registry)
    ready = threading.Event()
    addr = {}

    def on_ready(host, port):
        addr["hp"] = (host, port)
        ready.set()

    thread = threading.Thread(
        target=serve_tcp, args=(server, "127.0.0.1", 0),
        kwargs={"workers": 2, "on_ready": on_ready, "announce": False},
        daemon=True,
    )
    thread.start()
    assert ready.wait(timeout=10)
    yield addr["hp"]
    try:
        main([
            "query", "shutdown",
            "--connect", f"{addr['hp'][0]}:{addr['hp'][1]}",
        ])
    except SystemExit:
        pass
    thread.join(timeout=10)


class TestQueryCommand:
    def test_query_ping_and_predict(self, live_server, capsys):
        host, port = live_server
        rc = main([
            "query", "ping", "--connect", f"{host}:{port}",
            "--format", "json",
        ])
        assert rc == 0
        health = json.loads(capsys.readouterr().out)
        assert health["result"]["status"] == "ready"

        rc = main([
            "query", "predict", "cliKernel",
            "--connect", f"{host}:{port}",
            "--arch", "volta", "--X", "[[0.5, 0.5]]",
            "--format", "json",
        ])
        assert rc == 0
        out = json.loads(capsys.readouterr().out)
        assert len(out["result"]["predictions"]) == 1

    def test_query_unknown_model_exits_nonzero(self, live_server, capsys):
        host, port = live_server
        rc = main([
            "query", "predict", "nope",
            "--connect", f"{host}:{port}",
            "--arch", "volta", "--X", "[[0.5, 0.5]]",
            "--format", "json",
        ])
        assert rc == 1

    def test_query_connection_refused_exits_nonzero(self):
        # Nothing listens on this port; the client's retries exhaust.
        rc = main([
            "query", "ping", "--connect", "127.0.0.1:1",
            "--retries", "1",
        ])
        assert rc == 1

    def test_query_telemetry_method(self, live_server, capsys):
        host, port = live_server
        rc = main([
            "query", "telemetry", "--connect", f"{host}:{port}",
            "--format", "json",
        ])
        assert rc == 0
        out = json.loads(capsys.readouterr().out)
        assert "counters" in out["result"]["telemetry"]


class TestTopCommand:
    def test_top_once_json(self, live_server, capsys):
        host, port = live_server
        # Generate one request so the dashboard has a latency series.
        main([
            "query", "predict", "cliKernel",
            "--connect", f"{host}:{port}",
            "--arch", "volta", "--X", "[[0.5, 0.5]]",
        ])
        capsys.readouterr()
        rc = main([
            "top", "--connect", f"{host}:{port}", "--once",
            "--format", "json",
        ])
        assert rc == 0
        frame = json.loads(capsys.readouterr().out)
        doc = frame["telemetry"]
        assert doc["server"]["requests_served"] >= 1
        assert any(
            key.startswith("serve.request") for key in doc["timers"]
        )

    def test_top_once_text(self, live_server, capsys):
        host, port = live_server
        rc = main(["top", "--connect", f"{host}:{port}", "--once"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "repro top" in out
        assert "qps" in out and "cache" in out

    def test_top_connection_refused_exits_nonzero(self, capsys):
        rc = main(["top", "--connect", "127.0.0.1:1", "--once"])
        assert rc == 1


class TestChaosServeCommand:
    def test_serve_chaos_survives_and_stays_bit_identical(self, capsys):
        rc = main([
            "chaos", "matrixMul", "--serve",
            "--sizes", "64,128,256,512", "--trees", "8",
            "--clients", "2", "--requests", "8",
            "--corrupt-times", "2", "--retries", "3",
            "--format", "json",
        ])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["bit_identical"] is True
        assert report["clean_shutdown"] is True
        # The injected corruption surfaced as typed errors, not crashes.
        assert report["typed_errors"].get("registry_corrupt", 0) >= 1
        assert report["faults_fired"].get("registry.load:corrupt") == 2
        assert report["lost"] == {}
        assert report["unanswered"] == []
        # Flight-recorder leg: the ring saw traffic; with corruption
        # below the breaker threshold there must be NO dump artifact.
        flight = report["flight_recorder"]
        assert flight["problems"] == []
        assert flight["ring_events"] > 0
        assert flight["breaker_opens"] == 0
        assert flight["dump_reason"] is None
