"""CLI wiring for ``repro publish`` and ``repro serve``."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_publish_defaults(self):
        args = build_parser().parse_args(["publish", "reduce1"])
        assert args.registry == "./models"
        assert args.response == "time"

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.registry == "./models"
        assert args.max_batch == 32
        assert args.cache_size == 8
        assert args.socket is None


class TestPublishCommand:
    def test_publish_then_serve_roundtrip(
        self, tmp_path, capsys, monkeypatch
    ):
        registry = tmp_path / "models"
        rc = main([
            "publish", "reduce1", "--arch", "GTX580",
            "--registry", str(registry),
            "--sizes", "16384,65536,262144,1048576",
            "--trees", "10", "--format", "json",
        ])
        assert rc == 0
        published = json.loads(capsys.readouterr().out)
        assert published["kernel"] == "reduce1"
        assert (
            registry / "reduce1__GTX580" / published["version"] / "fit.json"
        ).exists()

        # Serve a query against the published fit over stdio.
        import io

        fit = json.loads(
            (registry / "reduce1__GTX580" / published["version"]
             / "fit.json").read_text()
        )
        row = {name: 1.0 for name in fit["feature_names"]}
        request = json.dumps({
            "id": 1, "method": "predict",
            "params": {"kernel": "reduce1", "arch": "GTX580", "rows": [row]},
        })
        monkeypatch.setattr("sys.stdin", io.StringIO(request + "\n"))
        rc = main(["serve", "--registry", str(registry)])
        assert rc == 0
        out = capsys.readouterr().out
        response = json.loads(out.splitlines()[-1])
        assert response["id"] == 1
        assert len(response["result"]["predictions"]) == 1

    def test_publish_unknown_kernel_exits(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["publish", "definitely-not-a-kernel",
                  "--registry", str(tmp_path)])
