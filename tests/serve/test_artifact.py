"""Round-trip fidelity and schema behaviour of servable fit artifacts."""

import json

import numpy as np
import pytest

from repro import BlackForest
from repro.serve import ServableFit, servable_from_fit
from repro.serve.artifact import SCHEMA, forest_from_dict, forest_to_dict

from .conftest import FEATURES, make_servable


class TestRoundTrip:
    def test_predictions_bit_identical(self, servable, queries):
        restored = ServableFit.from_json(servable.to_json())
        for q in queries:
            assert np.array_equal(servable.predict(q), restored.predict(q))

    def test_predict_many_bit_identical(self, servable, queries):
        restored = ServableFit.from_json(servable.to_json())
        for a, b in zip(
            servable.predict_many(queries), restored.predict_many(queries)
        ):
            assert np.array_equal(a, b)

    def test_metadata_survives(self):
        sv = make_servable(kernel="spmv", arch="ampere", tag="v2")
        restored = ServableFit.from_json(sv.to_json())
        assert restored.kernel == "spmv"
        assert restored.arch == "ampere"
        assert restored.tag == "v2"
        assert restored.feature_names == FEATURES
        assert restored.source == sv.source

    def test_serialization_is_deterministic(self, servable):
        assert servable.to_json() == servable.to_json()
        restored = ServableFit.from_json(servable.to_json())
        assert restored.digest == servable.digest

    def test_payload_is_strict_json(self, servable):
        # NaN leaf thresholds must become nulls, not bare NaN tokens.
        text = servable.to_json()
        assert "NaN" not in text
        json.loads(text)  # strict parse


class TestSchema:
    def test_schema_tag_written(self, servable):
        assert servable.to_payload()["schema"] == SCHEMA

    def test_unknown_schema_rejected(self, servable):
        payload = servable.to_payload()
        payload["schema"] = "repro-fit/99"
        with pytest.raises(ValueError, match="repro-fit/99"):
            ServableFit.from_payload(payload)

    def test_registered_in_artifact_registry(self, servable, tmp_path):
        from repro.analysis import validate_artifact

        path = tmp_path / "fit.json"
        path.write_text(servable.to_json())
        assert validate_artifact(path) == []

    def test_treeless_artifact_rejected(self, servable):
        payload = servable.to_payload()
        payload["forest"]["trees"] = []
        with pytest.raises(ValueError, match="no trees"):
            ServableFit.from_payload(payload)


class TestForestDict:
    def test_roundtrip_preserves_node_arrays(self, servable):
        restored = forest_from_dict(forest_to_dict(servable.forest))
        for a, b in zip(servable.forest.trees_, restored.trees_):
            assert np.array_equal(a.feature_, b.feature_)
            assert np.array_equal(
                a.threshold_, b.threshold_, equal_nan=True
            )
            assert np.array_equal(a.value_, b.value_)


class TestServableFromFit:
    def test_from_blackforest_fit(self, reduce1_campaign):
        fit = BlackForest(n_trees=25, use_pca=False, rng=0).fit(
            reduce1_campaign
        )
        sv = servable_from_fit(fit, source={"campaign": "reduce1"})
        assert sv.kernel == fit.kernel
        assert sv.arch == fit.arch
        assert sv.feature_names == fit.feature_names
        restored = ServableFit.from_json(sv.to_json())
        assert np.array_equal(
            restored.predict(fit.X_test), fit.predict(fit.X_test)
        )

    def test_rejects_forestless_fit(self):
        class NoForest:
            kernel = "k"
            arch = "a"

        with pytest.raises(ValueError, match="no fitted forest"):
            servable_from_fit(NoForest())


class TestRowsFromDicts:
    def test_orders_by_feature_names(self, servable):
        row = {name: float(i) for i, name in enumerate(FEATURES)}
        mat = servable.rows_from_dicts([dict(reversed(list(row.items())))])
        assert np.array_equal(mat[0], np.arange(len(FEATURES), dtype=float))

    def test_missing_feature_named_in_error(self, servable):
        row = {name: 1.0 for name in FEATURES[:-1]}
        with pytest.raises(ValueError, match=FEATURES[-1]):
            servable.rows_from_dicts([row])
