"""The ``telemetry`` RPC and the telemetry-is-free invariant.

Two contracts: a scrape (JSON or Prometheus text) reflects the server's
metrics/breaker/cache state, and turning telemetry + flight recording
on changes *nothing* about the bytes the server answers with.
"""

import json

import pytest

from repro.obs import read_telemetry
from repro.serve import PredictionServer


def _request(rid, X, kernel="gemm", arch="volta"):
    return json.dumps({
        "id": rid,
        "method": "predict",
        "params": {"kernel": kernel, "arch": arch, "X": X.tolist()},
    }, sort_keys=True)


def _call(server, method, params=None, rid="t1"):
    req = {"id": rid, "method": method}
    if params is not None:
        req["params"] = params
    [line] = server.handle_batch([json.dumps(req)])
    return json.loads(line)


class TestTelemetryRpc:
    def test_json_snapshot_shape(self, registry, queries):
        server = PredictionServer(registry)
        server.handle_batch([_request("r1", queries[0])])
        resp = _call(server, "telemetry")
        assert "error" not in resp
        doc = resp["result"]["telemetry"]
        assert resp["result"]["format"] == "json"
        assert doc["timers"]["serve.request{method=predict}"]["count"] == 1
        srv = doc["server"]
        assert srv["requests_served"] == 1
        assert srv["cache_misses"] == 1
        assert srv["cache_hit_rate"] == pytest.approx(0.0)
        assert doc["breakers"] == {}

    def test_cache_hit_rate_moves(self, registry, queries):
        server = PredictionServer(registry)
        for i, X in enumerate(queries[:3]):
            server.handle_batch([_request(f"r{i}", X)])
        doc = _call(server, "telemetry")["result"]["telemetry"]
        srv = doc["server"]
        assert srv["cache_hits"] == 2
        assert srv["cache_misses"] == 1
        assert srv["cache_hit_rate"] == pytest.approx(2 / 3)

    def test_prometheus_exposition(self, registry, queries):
        server = PredictionServer(registry)
        server.handle_batch([_request("r1", queries[0])])
        result = _call(server, "telemetry", {"format": "prometheus"})
        text = result["result"]["text"]
        assert result["result"]["format"] == "prometheus"
        assert "# TYPE repro_serve_request_seconds histogram" in text
        assert (
            'repro_serve_request_seconds_count{method="predict"} 1' in text
        )
        assert "repro_server_requests_served 1" in text

    def test_scrapes_do_not_perturb_predict_series(self, registry, queries):
        # Scraping is observed under its own method label; the predict
        # series an operator is watching must not move.
        server = PredictionServer(registry)
        server.handle_batch([_request("r1", queries[0])])
        a = _call(server, "telemetry", rid="a")["result"]["telemetry"]
        b = _call(server, "telemetry", rid="b")["result"]["telemetry"]
        key = "serve.request{method=predict}"
        assert a["timers"][key] == b["timers"][key]
        assert b["timers"]["serve.request{method=telemetry}"]["count"] == 1

    def test_bad_format_is_a_typed_error(self, registry):
        resp = _call(server := PredictionServer(registry), "telemetry",
                     {"format": "xml"})
        assert resp["error"]["kind"] == "invalid_params"
        assert server.requests_served == 1  # still counted

    def test_counters_are_monotone_across_scrapes(self, registry, queries):
        server = PredictionServer(registry)
        server.handle_batch([_request("r1", queries[0])])
        first = _call(server, "telemetry")["result"]["telemetry"]
        server.handle_batch([_request("r2", queries[1])])
        second = _call(server, "telemetry")["result"]["telemetry"]
        for key, value in first["counters"].items():
            assert second["counters"].get(key, 0) >= value
        assert (
            second["server"]["requests_served"]
            > first["server"]["requests_served"]
        )


class TestTelemetryIsFree:
    def test_responses_bit_identical_with_telemetry_on(
        self, tmp_path, registry, queries
    ):
        # The core invariant of the PR: predictions are byte-identical
        # with the full observability stack on or off.
        plain = PredictionServer(registry)
        observed = PredictionServer(
            registry,
            telemetry_path=str(tmp_path / "telemetry.jsonl"),
            telemetry_interval_s=60.0,
            flightrec_path=str(tmp_path / "flightrec.json"),
        )
        lines = [_request(f"r{i}", X) for i, X in enumerate(queries)]
        assert plain.handle_batch(lines) == observed.handle_batch(lines)
        # ... and the exporter journal validates against its schema.
        observed.telemetry.export_once()
        [record] = read_telemetry(tmp_path / "telemetry.jsonl")
        assert record["server"]["requests_served"] == len(lines)

    def test_exporter_journal_passes_artifact_lint(
        self, tmp_path, registry, queries
    ):
        from repro.analysis.schemas import lint_artifacts

        server = PredictionServer(
            registry, telemetry_path=str(tmp_path / "telemetry.jsonl")
        )
        server.handle_batch([_request("r1", queries[0])])
        server.telemetry.export_once()
        server.telemetry.export_once()
        findings = lint_artifacts([tmp_path / "telemetry.jsonl"])
        assert [f for f in findings if f.severity != "info"] == []
