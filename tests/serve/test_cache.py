"""Warm-cache determinism: LRU order, counters, failure isolation."""

import pytest

from repro.obs import collect
from repro.serve import FitCache


def loader(value):
    return lambda: value


class TestLru:
    def test_hit_returns_cached_object(self):
        cache = FitCache(max_entries=2)
        obj = object()
        assert cache.get(("a", "1"), loader(obj)) is obj
        assert cache.get(("a", "1"), loader(object())) is obj

    def test_eviction_order_is_pinned(self):
        # Fill a, b, c into a 2-slot cache with a touch of `a` between:
        # the eviction order must be least-recently-USED (b first), not
        # insertion order.
        cache = FitCache(max_entries=2)
        cache.get(("a",), loader("A"))
        cache.get(("b",), loader("B"))
        cache.get(("a",), loader("A"))          # refresh a
        cache.get(("c",), loader("C"))          # evicts b, not a
        assert cache.keys() == [("a",), ("c",)]
        assert cache.get(("a",), loader("A2")) == "A"   # still cached
        assert cache.get(("b",), loader("B2")) == "B2"  # was evicted

    def test_eviction_sequence_deterministic(self):
        cache = FitCache(max_entries=3)
        sequence = ["a", "b", "c", "a", "d", "e", "b"]
        for name in sequence:
            cache.get((name,), loader(name.upper()))
        # Replaying the identical access sequence always lands on the
        # same resident set, in the same recency order.
        assert cache.keys() == [("d",), ("e",), ("b",)]
        assert cache.stats["eviction"] == 3

    def test_single_slot(self):
        cache = FitCache(max_entries=1)
        cache.get(("a",), loader("A"))
        cache.get(("b",), loader("B"))
        assert cache.keys() == [("b",)]

    def test_rejects_zero_slots(self):
        with pytest.raises(ValueError, match="at least one"):
            FitCache(max_entries=0)


class TestCounters:
    def test_local_stats(self):
        cache = FitCache(max_entries=1)
        cache.get(("a",), loader("A"))
        cache.get(("a",), loader("A"))
        cache.get(("b",), loader("B"))
        assert cache.stats == {"hit": 1, "miss": 2, "eviction": 1}

    def test_obs_metrics_counters(self):
        cache = FitCache(max_entries=1)
        with collect() as metrics:
            cache.get(("a",), loader("A"))
            cache.get(("a",), loader("A"))
            cache.get(("b",), loader("B"))
        counters = metrics.snapshot()["counter"]
        assert counters["serve.cache.hit"] == 1
        assert counters["serve.cache.miss"] == 2
        assert counters["serve.cache.eviction"] == 1


class TestFailureIsolation:
    def test_loader_error_caches_nothing(self):
        cache = FitCache(max_entries=2)

        def boom():
            raise ValueError("corrupt artifact")

        with pytest.raises(ValueError):
            cache.get(("a",), boom)
        assert len(cache) == 0
        # A later good load for the same key succeeds.
        assert cache.get(("a",), loader("A")) == "A"

    def test_invalidate(self):
        cache = FitCache(max_entries=2)
        cache.get(("a",), loader("A"))
        assert cache.invalidate(("a",))
        assert not cache.invalidate(("a",))
        assert cache.get(("a",), loader("A2")) == "A2"
