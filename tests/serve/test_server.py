"""Prediction-server behaviour: batching transparency, errors, lifecycle."""

import io
import json

import numpy as np
import pytest

from repro.profiling import CampaignKey
from repro.serve import FitRegistry, PredictionServer, serve_stdio
from repro.serve.server import (
    INVALID_PARAMS,
    METHOD_NOT_FOUND,
    MODEL_NOT_FOUND,
    PARSE_ERROR,
    REGISTRY_CORRUPT,
    drain_lines,
)

from .conftest import FEATURES, make_servable


def rpc(id, method, **params):
    req = {"id": id, "method": method}
    if params:
        req["params"] = params
    return json.dumps(req)


def predict_req(id, X, **extra):
    return rpc(
        id, "predict", kernel="gemm", arch="volta",
        X=np.asarray(X).tolist(), **extra
    )


def run_stream(server, lines):
    """Feed request lines through the stdio loop; responses by id."""
    stdin = io.StringIO("".join(line + "\n" for line in lines))
    stdout = io.StringIO()
    serve_stdio(server, stdin=stdin, stdout=stdout)
    out = {}
    for line in stdout.getvalue().splitlines():
        resp = json.loads(line)
        out[resp["id"]] = resp
    return out


class TestBatchingTransparency:
    @pytest.mark.parametrize("max_batch", [1, 3, 64])
    def test_bit_identical_across_batch_settings(
        self, registry, servable, queries, max_batch
    ):
        # Whatever the coalescing window, every response must equal the
        # offline per-query prediction exactly.
        server = PredictionServer(registry, max_batch=max_batch)
        lines = [predict_req(i, q) for i, q in enumerate(queries)]
        responses = run_stream(server, lines)
        for i, q in enumerate(queries):
            want = [float(v) for v in servable.predict(q)]
            assert responses[i]["result"]["predictions"] == want

    def test_mixed_single_and_batched_rows(self, registry, servable):
        server = PredictionServer(registry, max_batch=16)
        rng = np.random.default_rng(3)
        single = rng.uniform(size=(1, len(FEATURES)))
        batch = rng.uniform(size=(6, len(FEATURES)))
        row = {name: 0.5 for name in FEATURES}
        responses = run_stream(server, [
            predict_req(0, single),
            rpc(1, "predict", kernel="gemm", arch="volta", rows=[row]),
            predict_req(2, batch),
        ])
        assert responses[0]["result"]["predictions"] == [
            float(v) for v in servable.predict(single)
        ]
        mat = servable.rows_from_dicts([row])
        assert responses[1]["result"]["predictions"] == [
            float(v) for v in servable.predict(mat)
        ]
        assert responses[2]["result"]["predictions"] == [
            float(v) for v in servable.predict(batch)
        ]

    def test_coalesced_batch_loads_fit_once(self, registry, queries):
        server = PredictionServer(registry, max_batch=64)
        lines = [predict_req(i, q) for i, q in enumerate(queries)]
        server.handle_batch(lines)
        assert server.cache.stats["miss"] == 1
        assert server.cache.stats["hit"] == 0

    def test_bad_query_does_not_poison_the_batch(self, registry, servable):
        server = PredictionServer(registry, max_batch=8)
        good = np.full((2, len(FEATURES)), 0.5)
        responses = run_stream(server, [
            predict_req(0, good),
            rpc(1, "predict", kernel="gemm", arch="volta",
                X=[[1.0, 2.0]]),  # wrong width
            predict_req(2, good),
        ])
        assert responses[1]["error"]["code"] == INVALID_PARAMS
        want = [float(v) for v in servable.predict(good)]
        assert responses[0]["result"]["predictions"] == want
        assert responses[2]["result"]["predictions"] == want


class TestErrors:
    def test_unknown_model(self, registry):
        server = PredictionServer(registry)
        responses = run_stream(server, [
            rpc(1, "predict", kernel="nope", arch="never", X=[[1.0]]),
        ])
        assert responses[1]["error"]["code"] == MODEL_NOT_FOUND
        assert "no fit published" in responses[1]["error"]["message"]

    def test_unknown_method(self, registry):
        server = PredictionServer(registry)
        responses = run_stream(server, [rpc(1, "frobnicate")])
        assert responses[1]["error"]["code"] == METHOD_NOT_FOUND

    def test_parse_error(self, registry):
        server = PredictionServer(registry)
        stdin = io.StringIO("{not json\n")
        stdout = io.StringIO()
        serve_stdio(server, stdin=stdin, stdout=stdout)
        # Unparseable request has no id; the loop stays alive and no
        # reply can be addressed, matching notification semantics.
        assert stdout.getvalue() == ""

    def test_missing_params(self, registry):
        server = PredictionServer(registry)
        responses = run_stream(server, [rpc(1, "predict")])
        assert responses[1]["error"]["code"] == INVALID_PARAMS

    def test_corrupt_artifact_surfaces_as_error(self, registry):
        version = registry.resolve_version(CampaignKey("gemm", "volta"))
        fit_path = registry.root / "gemm__volta" / version / "fit.json"
        fit_path.write_text(fit_path.read_text().replace("0.", "1.", 1))
        server = PredictionServer(registry)
        responses = run_stream(server, [
            rpc(1, "predict", kernel="gemm", arch="volta", X=[[0.0] * 4]),
        ])
        assert responses[1]["error"]["code"] == REGISTRY_CORRUPT
        assert "corrupt" in responses[1]["error"]["message"]


class TestLifecycle:
    def test_shutdown_stops_the_loop(self, registry):
        server = PredictionServer(registry)
        responses = run_stream(server, [
            rpc(1, "ping"),
            rpc(2, "shutdown"),
            rpc(3, "ping"),  # after shutdown: batch already drained, but
        ])
        # ping now answers the repro-serve-health/1 readiness document.
        health = responses[1]["result"]
        assert health["ok"] is True
        assert health["status"] == "ready"
        assert health["schema"] == "repro-serve-health/1"
        assert responses[2]["result"]["ok"] is True
        # A ping queued behind shutdown in the same batch sees draining.
        assert responses[3]["result"]["status"] == "draining"

    def test_eof_is_graceful(self, registry):
        server = PredictionServer(registry)
        assert run_stream(server, []) == {}

    def test_stats_reports_latency_percentiles(self, registry, queries):
        server = PredictionServer(registry, max_batch=4)
        lines = [predict_req(i, q) for i, q in enumerate(queries)]
        lines.append(rpc(99, "stats"))
        responses = run_stream(server, lines)
        stats = responses[99]["result"]
        latency = stats["latency"]["serve.request{method=predict}"]
        assert latency["count"] == len(queries)
        for field in ("p50_s", "p95_s", "p99_s"):
            assert latency[field] > 0
        assert stats["cache"]["miss"] == 1

    def test_models_lists_registry(self, registry):
        server = PredictionServer(registry)
        responses = run_stream(server, [rpc(1, "models")])
        models = responses[1]["result"]["models"]
        assert models[0]["kernel"] == "gemm"
        assert len(models[0]["versions"]) == 1

    def test_rejects_bad_max_batch(self, registry):
        with pytest.raises(ValueError, match="max_batch"):
            PredictionServer(registry, max_batch=0)


class TestDrainLines:
    def test_drains_buffered_lines_up_to_cap(self):
        stream = io.StringIO("a\nb\nc\nd\n")
        assert drain_lines(stream, 3) == ["a\n", "b\n", "c\n"]
        assert drain_lines(stream, 3) == ["d\n"]
        assert drain_lines(stream, 3) is None

    def test_single_line_window(self):
        stream = io.StringIO("a\nb\n")
        assert drain_lines(stream, 1) == ["a\n"]


class TestTcp:
    def test_serves_over_local_socket(self, registry, servable):
        import socket
        import threading

        from repro.serve import serve_tcp

        server = PredictionServer(registry)
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        thread = threading.Thread(
            target=serve_tcp, args=(server, "127.0.0.1", port), daemon=True
        )
        thread.start()
        q = np.full((2, len(FEATURES)), 0.25)
        deadline_attempts = 50
        for attempt in range(deadline_attempts):
            try:
                conn = socket.create_connection(
                    ("127.0.0.1", port), timeout=5
                )
                break
            except OSError:
                if attempt == deadline_attempts - 1:
                    raise
                import time

                time.sleep(0.05)
        with conn, conn.makefile("rw") as fh:
            fh.write(predict_req(1, q) + "\n")
            fh.write(rpc(2, "shutdown") + "\n")
            fh.flush()
            first = json.loads(fh.readline())
        assert first["result"]["predictions"] == [
            float(v) for v in servable.predict(q)
        ]
        thread.join(timeout=5)
