"""Fit-registry behaviour: versioning, latest-resolution, integrity."""

import json

import numpy as np
import pytest

from repro.profiling import CampaignKey
from repro.serve import FitRegistry, RegistryIntegrityError

from .conftest import make_servable

KEY = CampaignKey("gemm", "volta")


class TestPublish:
    def test_layout(self, tmp_path, servable):
        reg = FitRegistry(tmp_path)
        ver = reg.publish(servable)
        vdir = tmp_path / ver.key.dirname / ver.version
        assert (vdir / "fit.json").exists()
        assert (vdir / "manifest.json").exists()
        assert (tmp_path / ver.key.dirname / "index.json").exists()

    def test_version_defaults_to_content_digest(self, tmp_path, servable):
        ver = FitRegistry(tmp_path).publish(servable)
        assert ver.version == servable.digest[:16]

    def test_version_prefers_campaign_manifest_digest(self, tmp_path):
        sv = make_servable()
        sv.source["campaign_manifest_sha256"] = "deadbeef" * 8
        ver = FitRegistry(tmp_path).publish(sv)
        assert ver.version == ("deadbeef" * 8)[:16]

    def test_manifest_records_payload_checksum(self, tmp_path, servable):
        reg = FitRegistry(tmp_path)
        ver = reg.publish(servable)
        manifest = json.loads(
            (tmp_path / ver.key.dirname / ver.version / "manifest.json")
            .read_text()
        )
        assert manifest["checksums"]["fit.json"] == servable.digest

    def test_republish_is_idempotent(self, tmp_path, servable):
        reg = FitRegistry(tmp_path)
        reg.publish(servable)
        reg.publish(servable)
        assert reg.versions(KEY) == [servable.digest[:16]]


class TestResolve:
    def test_latest_is_publish_order(self, tmp_path):
        reg = FitRegistry(tmp_path)
        first = reg.publish(make_servable(seed=0))
        second = reg.publish(make_servable(seed=9))
        assert reg.versions(KEY) == [first.version, second.version]
        assert reg.resolve_version(KEY) == second.version

    def test_explicit_version_loads_that_fit(self, tmp_path):
        reg = FitRegistry(tmp_path)
        first = reg.publish(make_servable(seed=0))
        reg.publish(make_servable(seed=9))
        loaded = reg.load(KEY, first.version)
        assert loaded.digest == first.digest

    def test_missing_campaign_raises(self, tmp_path):
        reg = FitRegistry(tmp_path)
        with pytest.raises(FileNotFoundError, match="no fit published"):
            reg.resolve_version(CampaignKey("nope", "never"))

    def test_has(self, registry):
        assert registry.has(KEY)
        assert not registry.has(CampaignKey("nope", "never"))

    def test_keys_lists_published_campaigns(self, tmp_path):
        reg = FitRegistry(tmp_path)
        reg.publish(make_servable(kernel="a", arch="x"))
        reg.publish(make_servable(kernel="b", arch="y", tag="t"))
        keys = reg.keys()
        assert CampaignKey("a", "x") in keys
        assert CampaignKey("b", "y", "t") in keys


class TestIntegrity:
    def test_roundtrip_bit_identical(self, registry, servable, queries):
        loaded = registry.load(KEY)
        for q in queries:
            assert np.array_equal(loaded.predict(q), servable.predict(q))

    def test_tampered_artifact_refused(self, registry, servable):
        version = registry.resolve_version(KEY)
        fit_path = registry.root / KEY.dirname / version / "fit.json"
        fit_path.write_text(
            fit_path.read_text().replace('"volta"', '"turing"')
        )
        with pytest.raises(
            RegistryIntegrityError,
            match=r"BF610.*registry corrupt.*digest mismatch",
        ) as err:
            registry.load(KEY)
        assert "refused" in str(err.value)

    def test_truncated_artifact_refused(self, registry):
        version = registry.resolve_version(KEY)
        fit_path = registry.root / KEY.dirname / version / "fit.json"
        fit_path.write_text(fit_path.read_text()[: 100])
        with pytest.raises(RegistryIntegrityError, match="corrupt"):
            registry.load(KEY)

    def test_corrupt_index_refused(self, registry):
        (registry.root / KEY.dirname / "index.json").write_text("{nope")
        with pytest.raises(RegistryIntegrityError, match="corrupt"):
            registry.versions(KEY)

    def test_error_is_a_valueerror(self, registry):
        # Callers that already catch ValueError for repository corruption
        # handle registry corruption the same way.
        assert issubclass(RegistryIntegrityError, ValueError)

    def test_index_schema_tag_validates(self, registry):
        from repro.analysis import validate_artifact

        assert validate_artifact(
            registry.root / KEY.dirname / "index.json"
        ) == []


class TestRunStore:
    def test_registry_and_repository_satisfy_protocol(self, tmp_path):
        from repro.core import RunStore
        from repro.profiling.repository import ProfileRepository

        assert isinstance(FitRegistry(tmp_path / "reg"), RunStore)
        assert isinstance(ProfileRepository(tmp_path / "repo"), RunStore)

    def test_iter_keys_matches_keys(self, tmp_path):
        reg = FitRegistry(tmp_path)
        reg.publish(make_servable(kernel="a", arch="x"))
        reg.publish(make_servable(kernel="b", arch="y"))
        by_dirname = lambda k: k.dirname  # noqa: E731
        assert sorted(reg.iter_keys(), key=by_dirname) == sorted(
            reg.keys(), key=by_dirname
        )


class TestVerify:
    def test_clean_registry_verifies_empty(self, registry):
        assert registry.verify(KEY) == []
        assert registry.verify_all() == {}

    def test_tamper_detected(self, registry):
        version = registry.resolve_version(KEY)
        fit_path = registry.root / KEY.dirname / version / "fit.json"
        fit_path.write_text(fit_path.read_text().replace('"volta"', '"x"'))
        findings = registry.verify_all()
        assert KEY.dirname in findings
        assert any("corrupt" in f for f in findings[KEY.dirname])

    def test_missing_fit_detected(self, registry):
        version = registry.resolve_version(KEY)
        (registry.root / KEY.dirname / version / "fit.json").unlink()
        findings = registry.verify(KEY)
        assert any("missing on disk" in f for f in findings)


class TestGc:
    def _publish_versions(self, tmp_path, n):
        reg = FitRegistry(tmp_path)
        versions = [
            reg.publish(make_servable(seed=i, trees=4)).version
            for i in range(n)
        ]
        return reg, versions

    def test_keep_latest_validated(self, tmp_path):
        reg = FitRegistry(tmp_path)
        with pytest.raises(ValueError, match="keep_latest"):
            reg.gc(keep_latest=0)

    def test_gc_drops_old_versions(self, tmp_path):
        reg, versions = self._publish_versions(tmp_path, 3)
        removed = reg.gc(keep_latest=1)
        assert removed == {KEY.dirname: versions[:-1]}
        assert reg.versions(KEY) == [versions[-1]]
        assert reg.resolve_version(KEY) == versions[-1]
        reg.load(KEY)  # survivor still loads clean
        for gone in versions[:-1]:
            assert not (reg.root / KEY.dirname / gone).exists()

    def test_gc_noop_when_under_budget(self, tmp_path):
        reg, versions = self._publish_versions(tmp_path, 2)
        assert reg.gc(keep_latest=5) == {}
        assert reg.versions(KEY) == versions

    def test_gc_invalidates_cache(self, tmp_path):
        from repro.serve import FitCache

        reg, versions = self._publish_versions(tmp_path, 3)
        cache = FitCache(max_entries=8)
        for v in versions:
            cache.get((KEY.dirname, v), lambda v=v: reg.load(KEY, version=v))
        assert len(cache) == 3
        reg.gc(keep_latest=1, cache=cache)
        assert cache.keys() == [(KEY.dirname, versions[-1])]
