"""Integration tests for the production hardening of the prediction server.

Covers the standing guarantee (N concurrent TCP clients receive
byte-identical responses to the serial server) and each robustness
feature both positively and negatively: deadlines, load shedding,
graceful drain, hot reload, and the circuit breaker under injected
``registry.load`` corruption.
"""

import json
import socket
import threading
import time

import numpy as np
import pytest

from repro.faults.plan import FaultPlan, FaultSpec, fault_injection
from repro.serve import (
    FitRegistry,
    PredictionClient,
    PredictionServer,
    parse_ready_line,
    ready_line,
    serve_tcp,
)
from repro.serve.server import READY_PREFIX

from .conftest import FEATURES, make_servable


def _predict_line(rid, kernel="gemm", arch="volta", rows=1, seed=7, **extra):
    rng = np.random.default_rng(seed)
    params = {
        "kernel": kernel,
        "arch": arch,
        "X": rng.uniform(size=(rows, len(FEATURES))).tolist(),
    }
    params.update(extra)
    return json.dumps(
        {"id": rid, "method": "predict", "params": params}, sort_keys=True
    )


def _error_kind(line):
    return json.loads(line)["error"]["kind"]


def _start_tcp(server, **kwargs):
    """serve_tcp on an ephemeral port; returns ((host, port), thread)."""
    ready = threading.Event()
    addr = {}

    def on_ready(host, port):
        addr["hp"] = (host, port)
        ready.set()

    thread = threading.Thread(
        target=serve_tcp,
        args=(server, "127.0.0.1", 0),
        kwargs={"on_ready": on_ready, "announce": False, **kwargs},
        daemon=True,
    )
    thread.start()
    assert ready.wait(timeout=10), "frontend never became ready"
    return addr["hp"], thread


def _shutdown(hp):
    with socket.create_connection(hp, timeout=5) as conn:
        rf, wf = conn.makefile("r"), conn.makefile("w")
        wf.write(json.dumps({"id": "stop", "method": "shutdown"}) + "\n")
        wf.flush()
        return rf.readline()


class TestReadyLine:
    def test_round_trip(self):
        assert parse_ready_line(ready_line("127.0.0.1", 43117)) == (
            "127.0.0.1",
            43117,
        )

    def test_rejects_noise(self):
        assert parse_ready_line("starting up...") is None
        assert parse_ready_line(f"{READY_PREFIX} host=x port=notaport") is None
        assert parse_ready_line("") is None

    def test_frontend_announces_once_after_bind(self, registry, capsys):
        server = PredictionServer(registry)
        hp, thread = _start_tcp(server, announce=True, workers=1)
        _shutdown(hp)
        thread.join(timeout=10)
        ready_lines = [
            ln
            for ln in capsys.readouterr().out.splitlines()
            if ln.startswith(READY_PREFIX)
        ]
        assert len(ready_lines) == 1
        assert parse_ready_line(ready_lines[0]) == hp


class TestDeadlines:
    def test_expired_deadline_is_refused_typed(self, registry):
        server = PredictionServer(registry)
        line = _predict_line("d1", deadline_ms=50)
        # Arrival stamped 10 s in the past: the 50 ms budget is long gone.
        out = server.handle_lines([line], [time.monotonic() - 10.0])
        assert _error_kind(out[0]) == "deadline_exceeded"
        assert server.metrics.counters.get(("serve.timeouts",), 0) == 1

    def test_generous_deadline_is_served(self, registry):
        server = PredictionServer(registry)
        out = server.handle_lines(
            [_predict_line("d2", deadline_ms=60_000)], [time.monotonic()]
        )
        assert "result" in json.loads(out[0])

    def test_server_default_timeout_applies(self, registry):
        server = PredictionServer(registry, request_timeout_s=0.05)
        out = server.handle_lines(
            [_predict_line("d3")], [time.monotonic() - 1.0]
        )
        assert _error_kind(out[0]) == "deadline_exceeded"

    def test_no_deadline_means_no_timeout(self, registry):
        server = PredictionServer(registry)  # request_timeout_s=None
        out = server.handle_lines(
            [_predict_line("d4")], [time.monotonic() - 60.0]
        )
        assert "result" in json.loads(out[0])

    @pytest.mark.parametrize("bad", ["soon", 0, -5, True])
    def test_invalid_deadline_is_invalid_params(self, registry, bad):
        server = PredictionServer(registry)
        out = server.handle_batch([_predict_line("d5", deadline_ms=bad)])
        assert _error_kind(out[0]) == "invalid_params"


class TestFaultSiteServeRequest:
    def test_raise_mode_yields_typed_internal_error(self, registry):
        server = PredictionServer(registry)
        plan = FaultPlan(
            specs=[FaultSpec("serve.request", "raise", match={"method": "predict"})]
        )
        with fault_injection(plan):
            out = server.handle_batch([_predict_line("f1"), '{"id":"p","method":"ping"}'])
        assert _error_kind(out[0]) == "internal_error"
        assert "injected fault" in json.loads(out[0])["error"]["message"]
        # The non-matching method is untouched.
        assert json.loads(out[1])["result"]["ok"] is True

    def test_delay_mode_still_serves(self, registry):
        server = PredictionServer(registry)
        plan = FaultPlan(
            specs=[
                FaultSpec(
                    "serve.request", "delay", payload={"seconds": 0.01}
                )
            ]
        )
        with fault_injection(plan):
            t0 = time.monotonic()
            out = server.handle_batch([_predict_line("f2")])
            elapsed = time.monotonic() - t0
        assert "result" in json.loads(out[0])
        assert elapsed >= 0.01


class TestBreakerUnderCorruption:
    """Injected ``registry.load`` corruption opens the breaker without
    killing the server, and a half-open probe recovers it once the
    fault burst ends."""

    def _server(self, tmp_path):
        reg = FitRegistry(tmp_path / "models")
        reg.publish(make_servable())
        return PredictionServer(
            reg, breaker_threshold=2, breaker_cooldown=2, watch_reload=False
        )

    def test_open_then_probe_then_recover(self, tmp_path):
        server = self._server(tmp_path)
        plan = FaultPlan(
            specs=[
                FaultSpec("registry.load", "corrupt", payload={"times": 2})
            ]
        )
        kinds = []
        with fault_injection(plan):
            for i in range(6):
                out = server.handle_batch([_predict_line(f"b{i}")])
                resp = json.loads(out[0])
                kinds.append(
                    resp["error"]["kind"] if "error" in resp else "ok"
                )
        # Two corrupt loads open the breaker (threshold=2); rejection 1
        # short-circuits; rejection 2 converts request 4 into a probe,
        # which succeeds (the fault burst is exhausted) and closes it.
        assert kinds == [
            "registry_corrupt",
            "registry_corrupt",
            "breaker_open",
            "ok",
            "ok",
            "ok",
        ]
        counters = server.metrics.counters
        assert counters.get(("serve.breaker.open",), 0) == 1
        assert counters.get(("serve.breaker.half_open",), 0) == 1
        assert counters.get(("serve.breaker.close",), 0) == 1
        assert server.health()["ok"] is True

    def test_corruption_below_threshold_never_opens(self, tmp_path):
        server = self._server(tmp_path)
        plan = FaultPlan(
            specs=[
                FaultSpec("registry.load", "corrupt", payload={"times": 1})
            ]
        )
        with fault_injection(plan):
            first = server.handle_batch([_predict_line("c0")])
            second = server.handle_batch([_predict_line("c1")])
        assert _error_kind(first[0]) == "registry_corrupt"
        assert "result" in json.loads(second[0])
        assert server.breakers.summary() == {}

    def test_client_errors_never_trip_the_breaker(self, tmp_path):
        server = self._server(tmp_path)
        bad = json.dumps(
            {
                "id": "x",
                "method": "predict",
                "params": {"kernel": "gemm", "arch": "volta", "X": [[1.0]]},
            }
        )
        for _ in range(5):
            out = server.handle_batch([bad])
            assert _error_kind(out[0]) == "invalid_params"
        assert server.breakers.summary() == {}

    def test_missing_mode_is_model_not_found(self, tmp_path):
        server = self._server(tmp_path)
        plan = FaultPlan(
            specs=[
                FaultSpec("registry.load", "missing", payload={"times": 1})
            ]
        )
        with fault_injection(plan):
            out = server.handle_batch([_predict_line("m0")])
        assert _error_kind(out[0]) == "model_not_found"
        # A vanished artifact is not an integrity failure: no breaker.
        assert server.breakers.summary() == {}


class TestHotReload:
    def test_republish_invalidates_cache_and_bumps_digest(self, tmp_path):
        reg = FitRegistry(tmp_path / "models")
        v1 = reg.publish(make_servable(seed=0))
        server = PredictionServer(reg)
        server.handle_batch([_predict_line("r0")])  # warm cache, prime watch
        digest_before = server.health()["registry_digest"]
        assert len(server.cache) == 1

        v2 = reg.publish(make_servable(seed=1))
        assert v1.version != v2.version
        changed = server.check_reload()
        assert changed == [v1.key.dirname]
        assert len(server.cache) == 0
        assert server.metrics.counters.get(("serve.reloads",), 0) == 1
        assert server.health()["registry_digest"] != digest_before

    def test_reload_happens_inside_the_request_loop(self, tmp_path):
        reg = FitRegistry(tmp_path / "models")
        reg.publish(make_servable(seed=0))
        server = PredictionServer(reg)
        out1 = server.handle_batch([_predict_line("r1")])
        v2 = reg.publish(make_servable(seed=1))
        out2 = server.handle_batch([_predict_line("r2")])
        # The very next batch serves the republished version.
        assert json.loads(out2[0])["result"]["version"] == v2.version
        assert json.loads(out1[0])["result"]["version"] != v2.version
        assert server.metrics.counters.get(("serve.reloads",), 0) == 1

    def test_no_change_no_reload(self, tmp_path):
        reg = FitRegistry(tmp_path / "models")
        reg.publish(make_servable())
        server = PredictionServer(reg)
        server.handle_batch([_predict_line("r3")])
        assert server.check_reload() == []
        assert server.metrics.counters.get(("serve.reloads",), 0) == 0

    def test_watch_reload_false_disables_watching(self, tmp_path):
        reg = FitRegistry(tmp_path / "models")
        reg.publish(make_servable(seed=0))
        server = PredictionServer(reg, watch_reload=False)
        server.handle_batch([_predict_line("r4")])
        reg.publish(make_servable(seed=1))
        assert server.check_reload() == []
        assert len(server.cache) == 1  # warm entry untouched

    def test_reload_resets_the_campaign_breaker(self, tmp_path):
        reg = FitRegistry(tmp_path / "models")
        v1 = reg.publish(make_servable(seed=0))
        server = PredictionServer(reg, breaker_threshold=1)
        server.handle_batch([_predict_line("r5")])  # prime watch state
        plan = FaultPlan(
            specs=[
                FaultSpec("registry.load", "corrupt", payload={"times": 1})
            ]
        )
        server.cache.invalidate_key(v1.key.dirname)  # force a re-load
        with fault_injection(plan):
            out = server.handle_batch([_predict_line("r6")])
        assert _error_kind(out[0]) == "registry_corrupt"
        assert server.breakers.summary() != {}
        reg.publish(make_servable(seed=1))
        server.check_reload()
        assert server.breakers.summary() == {}


class TestDrain:
    def test_drain_is_idempotent_and_counts(self, registry):
        server = PredictionServer(registry)
        server.handle_batch([_predict_line("g0")])
        assert server.drained_count() == 0
        server.begin_drain()
        server.begin_drain()
        server.handle_batch([_predict_line("g1")])
        assert server.draining
        assert server.drained_count() == 1
        health = server.health()
        assert health["status"] == "draining"
        assert health["ok"] is False

    def test_tcp_drain_refuses_late_lines_and_finishes(self, registry):
        server = PredictionServer(registry)
        hp, thread = _start_tcp(server, workers=2)
        # A second connection opened BEFORE the drain begins.
        late = socket.create_connection(hp, timeout=5)
        lrf, lwf = late.makefile("r"), late.makefile("w")

        resp = json.loads(_shutdown(hp))
        assert resp["result"]["ok"] is True

        lwf.write(_predict_line("late") + "\n")
        lwf.flush()
        assert _error_kind(lrf.readline()) == "draining"
        late.close()
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert server.draining

    def test_new_connections_refused_after_drain(self, registry):
        server = PredictionServer(registry)
        hp, thread = _start_tcp(server, workers=1)
        _shutdown(hp)
        thread.join(timeout=10)
        with pytest.raises(OSError):
            socket.create_connection(hp, timeout=0.5)


class TestShedding:
    def test_overload_sheds_typed_not_stalls(self, registry):
        server = PredictionServer(registry)
        plan = FaultPlan(
            specs=[
                FaultSpec(
                    "serve.request",
                    "delay",
                    match={"method": "predict"},
                    payload={"seconds": 0.05},
                )
            ]
        )
        with fault_injection(plan):
            hp, thread = _start_tcp(server, workers=1, queue_size=1)
            with socket.create_connection(hp, timeout=5) as conn:
                rf, wf = conn.makefile("r"), conn.makefile("w")
                # Pipeline a burst: worker busy on the first (delayed)
                # request, queue holds one, the rest must shed.
                burst = 8
                for i in range(burst):
                    wf.write(_predict_line(f"s{i}") + "\n")
                wf.flush()
                kinds = []
                for _ in range(burst):
                    resp = json.loads(rf.readline())
                    kinds.append(
                        resp["error"]["kind"] if "error" in resp else "ok"
                    )
            _shutdown(hp)
            thread.join(timeout=10)
        assert "overloaded" in kinds  # some were shed...
        assert "ok" in kinds  # ...but admitted work still finished
        shed = server.metrics.counters.get(("serve.shed",), 0)
        assert shed == kinds.count("overloaded")

    def test_no_shedding_under_capacity(self, registry):
        server = PredictionServer(registry)
        hp, thread = _start_tcp(server, workers=2, queue_size=64)
        with PredictionClient(*hp) as client:
            for _ in range(10):
                client.ping()
        _shutdown(hp)
        thread.join(timeout=10)
        assert server.metrics.counters.get(("serve.shed",), 0) == 0


class TestConcurrentBitIdentity:
    """The standing guarantee: 8 concurrent TCP clients receive
    responses byte-identical to the serial stdio server."""

    CLIENTS = 8
    PER_CLIENT = 6

    def _payloads(self):
        lines = {}
        for c in range(self.CLIENTS):
            for i in range(self.PER_CLIENT):
                rid = f"c{c}-{i}"
                kernel = "gemm" if (c + i) % 2 == 0 else "jacobi"
                lines[rid] = _predict_line(
                    rid, kernel=kernel, rows=1 + (i % 3), seed=100 * c + i
                )
        return lines

    def test_eight_clients_match_serial(self, tmp_path):
        reg = FitRegistry(tmp_path / "models")
        reg.publish(make_servable(kernel="gemm"))
        reg.publish(make_servable(kernel="jacobi", seed=3))
        lines = self._payloads()

        # Serial reference: a fresh server handling one line at a time.
        serial = PredictionServer(reg)
        expected = {
            rid: serial.handle_batch([line])[0]
            for rid, line in lines.items()
        }

        server = PredictionServer(reg)
        hp, thread = _start_tcp(server, workers=4, queue_size=256)
        got = {}
        lock = threading.Lock()

        def client(c):
            with socket.create_connection(hp, timeout=10) as conn:
                rf, wf = conn.makefile("r"), conn.makefile("w")
                for i in range(self.PER_CLIENT):
                    rid = f"c{c}-{i}"
                    wf.write(lines[rid] + "\n")
                    wf.flush()
                    resp = rf.readline().rstrip("\n")
                    with lock:
                        got[json.loads(resp)["id"]] = resp

        threads = [
            threading.Thread(target=client, args=(c,))
            for c in range(self.CLIENTS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        _shutdown(hp)
        thread.join(timeout=10)

        assert got == expected  # byte-identical, every single response


class TestClient:
    def test_client_end_to_end(self, registry):
        server = PredictionServer(registry)
        hp, thread = _start_tcp(server, workers=2)
        with PredictionClient(*hp) as client:
            health = client.ping()
            assert health["status"] == "ready"
            result = client.predict(
                "gemm", "volta", X=[[0.1, 0.2, 0.3, 0.4]]
            )
            assert len(result["predictions"]) == 1
            models = client.models()["models"]
            assert models[0]["kernel"] == "gemm"
            resp = client.shutdown()
            assert resp["ok"] is True
        thread.join(timeout=10)
