"""Unit tests for the per-model circuit breaker.

The breaker is deliberately wall-clock free: opening is a consecutive-
failure count, recovery a deterministic every-``cooldown``-th half-open
probe. That makes every transition here exactly reproducible — no
sleeps, no flaky timing.
"""

import pytest

from repro.serve.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker

KEY = ("gemm__volta", "v1")
OTHER = ("jacobi__volta", "v2")


class TestOpening:
    def test_starts_closed_and_allows(self):
        br = CircuitBreaker(threshold=3, cooldown=2)
        assert br.state(KEY) == CLOSED
        assert br.allow(KEY)

    def test_opens_after_threshold_consecutive_failures(self):
        br = CircuitBreaker(threshold=3, cooldown=2)
        for _ in range(2):
            br.record_failure(KEY, "boom")
        assert br.state(KEY) == CLOSED  # one short of the threshold
        br.record_failure(KEY, "boom")
        assert br.state(KEY) == OPEN
        assert not br.allow(KEY)

    def test_success_resets_the_failure_streak(self):
        br = CircuitBreaker(threshold=3, cooldown=2)
        br.record_failure(KEY)
        br.record_failure(KEY)
        br.record_success(KEY)  # streak broken
        br.record_failure(KEY)
        br.record_failure(KEY)
        assert br.state(KEY) == CLOSED

    def test_keys_are_independent(self):
        br = CircuitBreaker(threshold=1, cooldown=2)
        br.record_failure(KEY)
        assert br.state(KEY) == OPEN
        assert br.state(OTHER) == CLOSED
        assert br.allow(OTHER)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown=0)


class TestRecovery:
    def test_probe_on_every_cooldownth_rejection(self):
        br = CircuitBreaker(threshold=1, cooldown=3)
        br.record_failure(KEY)
        # Rejections 1 and 2 short-circuit; the 3rd converts into a probe.
        assert not br.allow(KEY)
        assert not br.allow(KEY)
        assert br.allow(KEY)
        assert br.state(KEY) == HALF_OPEN

    def test_only_one_probe_in_flight(self):
        br = CircuitBreaker(threshold=1, cooldown=1)
        br.record_failure(KEY)
        assert br.allow(KEY)  # the probe
        assert not br.allow(KEY)  # everyone else still rejected
        assert br.state(KEY) == HALF_OPEN

    def test_successful_probe_closes(self):
        br = CircuitBreaker(threshold=1, cooldown=1)
        br.record_failure(KEY)
        assert br.allow(KEY)
        br.record_success(KEY)
        assert br.state(KEY) == CLOSED
        assert br.allow(KEY)

    def test_failed_probe_reopens_and_restarts_the_count(self):
        br = CircuitBreaker(threshold=1, cooldown=2)
        br.record_failure(KEY)
        assert not br.allow(KEY)
        assert br.allow(KEY)  # probe
        br.record_failure(KEY)  # probe fails
        assert br.state(KEY) == OPEN
        # The rejection count restarted: one short-circuit, then a probe.
        assert not br.allow(KEY)
        assert br.allow(KEY)


class TestEventsAndIntrospection:
    def test_event_stream_matches_transitions(self):
        events = []
        br = CircuitBreaker(
            threshold=1, cooldown=1, on_event=lambda kind, key: events.append(kind)
        )
        br.record_failure(KEY)
        br.allow(KEY)  # probe immediately (cooldown=1)
        br.record_success(KEY)
        assert events == ["open", "half_open", "close"]

    def test_shortcircuit_event(self):
        events = []
        br = CircuitBreaker(
            threshold=1, cooldown=5, on_event=lambda kind, key: events.append(kind)
        )
        br.record_failure(KEY)
        br.allow(KEY)
        assert events == ["open", "shortcircuit"]

    def test_summary_lists_only_non_closed(self):
        br = CircuitBreaker(threshold=1, cooldown=2)
        br.record_failure(KEY)
        br.record_failure(OTHER)
        br.record_success(OTHER)
        assert br.summary() == {"gemm__volta@v1": OPEN}

    def test_reset_scoped_to_one_campaign(self):
        br = CircuitBreaker(threshold=1, cooldown=2)
        br.record_failure(KEY)
        br.record_failure(OTHER)
        assert br.reset("gemm__volta") == 1
        assert br.state(KEY) == CLOSED
        assert br.state(OTHER) == OPEN

    def test_reset_all(self):
        br = CircuitBreaker(threshold=1, cooldown=2)
        br.record_failure(KEY)
        br.record_failure(OTHER)
        assert br.reset() == 2
        assert br.summary() == {}
