"""Unit tests for the retrying prediction client.

A scripted stub server (one thread, line-in/line-out) stands in for
``repro serve`` so every retry path is exercised deterministically:
typed transient errors, permanent errors, dropped connections, and the
never-retry rule for ``shutdown``. Sleeps are neutralized by a
zero-backoff policy, so the suite stays fast.
"""

import json
import socket
import threading

import pytest

from repro.faults.retry import RetryPolicy
from repro.serve.client import (
    RETRYABLE_CODES,
    PredictionClient,
    RetryableServeError,
    ServeError,
)
from repro.serve.server import MODEL_NOT_FOUND, OVERLOADED

FAST_RETRY = RetryPolicy(max_attempts=4, backoff_s=0.0)


def _err(rid, code, kind, message="scripted"):
    return json.dumps(
        {"id": rid, "error": {"code": code, "kind": kind, "message": message}},
        sort_keys=True,
    )


def _ok(rid, result):
    return json.dumps({"id": rid, "result": result}, sort_keys=True)


class StubServer:
    """Answers each request line with the next scripted behavior.

    A behavior is either a callable ``(request dict) -> response line``
    or the string ``"drop"`` — close the connection without answering.
    New connections are accepted until the script runs out.
    """

    def __init__(self, script):
        self.script = list(script)
        self.requests = []
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self.sock.bind(("127.0.0.1", 0))
        self.sock.listen(8)
        self.sock.settimeout(5.0)
        self.host, self.port = self.sock.getsockname()
        self.thread = threading.Thread(target=self._serve, daemon=True)
        self.thread.start()

    def _serve(self):
        while self.script:
            try:
                conn, _ = self.sock.accept()
            except (socket.timeout, OSError):
                return
            with conn:
                rf, wf = conn.makefile("r"), conn.makefile("w")
                while self.script:
                    line = rf.readline()
                    if not line:
                        break  # client went away; await a reconnect
                    req = json.loads(line)
                    self.requests.append(req)
                    step = self.script.pop(0)
                    if step == "drop":
                        break  # close without answering
                    wf.write(step(req) + "\n")
                    wf.flush()
                # The makefile objects keep the socket alive; close
                # them so the peer actually sees EOF.
                rf.close()
                wf.close()

    def close(self):
        self.script = []
        self.sock.close()
        self.thread.join(timeout=5)


@pytest.fixture()
def stub(request):
    servers = []

    def make(script):
        server = StubServer(script)
        servers.append(server)
        return server

    yield make
    for server in servers:
        server.close()


class TestRetryBehavior:
    def test_transient_error_then_success(self, stub):
        server = stub(
            [
                lambda req: _err(req["id"], OVERLOADED, "overloaded"),
                lambda req: _ok(req["id"], {"pong": True}),
            ]
        )
        with PredictionClient(server.host, server.port, retry=FAST_RETRY) as c:
            assert c.call("ping") == {"pong": True}
            assert c.last_attempts == 2
        # The retry re-sent the SAME request id (at-least-once replay).
        assert [r["id"] for r in server.requests] == ["q1", "q1"]

    def test_permanent_error_raises_immediately(self, stub):
        server = stub(
            [lambda req: _err(req["id"], MODEL_NOT_FOUND, "model_not_found")]
        )
        with PredictionClient(server.host, server.port, retry=FAST_RETRY) as c:
            with pytest.raises(ServeError) as exc_info:
                c.predict("nope", "volta", X=[[1.0]])
        assert not isinstance(exc_info.value, RetryableServeError)
        assert exc_info.value.kind == "model_not_found"
        assert len(server.requests) == 1  # no retry burned

    def test_exhausted_retries_raise_the_last_typed_error(self, stub):
        server = stub(
            [lambda req: _err(req["id"], OVERLOADED, "overloaded")] * 4
        )
        with PredictionClient(server.host, server.port, retry=FAST_RETRY) as c:
            with pytest.raises(RetryableServeError) as exc_info:
                c.call("ping")
        assert exc_info.value.code == OVERLOADED
        assert len(server.requests) == 4  # max_attempts, then give up

    def test_reconnects_after_dropped_connection(self, stub):
        server = stub(["drop", lambda req: _ok(req["id"], {"pong": True})])
        with PredictionClient(server.host, server.port, retry=FAST_RETRY) as c:
            assert c.call("ping") == {"pong": True}
            assert c.last_attempts == 2

    def test_shutdown_is_never_retried(self, stub):
        server = stub(
            [lambda req: _err(req["id"], OVERLOADED, "overloaded")] * 2
        )
        with PredictionClient(server.host, server.port, retry=FAST_RETRY) as c:
            with pytest.raises(ServeError):
                c.shutdown()
        assert len(server.requests) == 1

    def test_last_line_holds_the_raw_response(self, stub):
        server = stub([lambda req: _ok(req["id"], {"pong": True})])
        with PredictionClient(server.host, server.port, retry=FAST_RETRY) as c:
            c.call("ping")
            assert json.loads(c.last_line) == {
                "id": "q1",
                "result": {"pong": True},
            }


class TestRequestShapes:
    def test_predict_builds_minimal_params(self, stub):
        server = stub([lambda req: _ok(req["id"], {"predictions": [1.0]})])
        with PredictionClient(server.host, server.port, retry=FAST_RETRY) as c:
            c.predict("gemm", "volta", X=[[1.0, 2.0]])
        params = server.requests[0]["params"]
        assert params == {"kernel": "gemm", "arch": "volta", "X": [[1.0, 2.0]]}

    def test_predict_forwards_deadline_and_version(self, stub):
        server = stub([lambda req: _ok(req["id"], {"predictions": [1.0]})])
        with PredictionClient(server.host, server.port, retry=FAST_RETRY) as c:
            c.predict(
                "gemm",
                "volta",
                rows=[{"n": 1.0}],
                tag="t",
                version="abc",
                deadline_ms=250,
            )
        params = server.requests[0]["params"]
        assert params["rows"] == [{"n": 1.0}]
        assert params["tag"] == "t"
        assert params["version"] == "abc"
        assert params["deadline_ms"] == 250

    def test_ids_increment_per_client_with_prefix(self, stub):
        server = stub([lambda req: _ok(req["id"], {})] * 3)
        with PredictionClient(
            server.host, server.port, retry=FAST_RETRY, id_prefix="c7-"
        ) as c:
            c.call("ping")
            c.call("ping")
            c.call("stats")
        assert [r["id"] for r in server.requests] == ["c7-1", "c7-2", "c7-3"]


class TestRetryableCodeSet:
    def test_deadline_exceeded_is_retryable(self):
        from repro.serve.server import (
            BREAKER_OPEN,
            DEADLINE_EXCEEDED,
            DRAINING,
            REGISTRY_CORRUPT,
        )

        assert DEADLINE_EXCEEDED in RETRYABLE_CODES
        assert BREAKER_OPEN in RETRYABLE_CODES
        assert DRAINING in RETRYABLE_CODES
        # Corruption is NOT transient: retrying would hammer a broken
        # artifact and keep the breaker open.
        assert REGISTRY_CORRUPT not in RETRYABLE_CODES
