"""Shared fixtures for the serving-layer tests.

One small fitted forest wrapped as a :class:`ServableFit` is enough for
most of the suite; it is built once per session (fitting is the slow
part) and never mutated.
"""

import numpy as np
import pytest

from repro.ml.forest import RandomForestRegressor
from repro.serve import FitRegistry, ServableFit

FEATURES = ["gld", "gst", "occupancy", "n"]


def make_servable(kernel="gemm", arch="volta", tag=None, seed=0, trees=12):
    rng = np.random.default_rng(seed)
    X = rng.uniform(size=(80, len(FEATURES)))
    y = X @ np.arange(1.0, len(FEATURES) + 1) + rng.normal(0, 0.01, 80)
    forest = RandomForestRegressor(n_trees=trees, rng=seed + 1).fit(
        X, y, feature_names=FEATURES
    )
    return ServableFit(
        kernel=kernel,
        arch=arch,
        tag=tag,
        forest=forest,
        feature_names=FEATURES,
        source={"n_runs": 80, "seed": seed},
    )


@pytest.fixture(scope="session")
def servable():
    return make_servable()


@pytest.fixture()
def registry(tmp_path, servable):
    reg = FitRegistry(tmp_path / "models")
    reg.publish(servable)
    return reg


@pytest.fixture()
def queries():
    rng = np.random.default_rng(42)
    return [rng.uniform(size=(k, len(FEATURES))) for k in (1, 3, 1, 8, 2)]
