"""CLI tests for the chaos harness and repository verification."""

import json

import pytest

from repro.cli import main


def _flip_middle_byte(path) -> None:
    data = bytearray(path.read_bytes())
    data[len(data) // 2] ^= 0x01
    path.write_bytes(bytes(data))


class TestChaosCommand:
    def test_requires_some_fault(self):
        with pytest.raises(SystemExit, match="no faults configured"):
            main(["chaos", "vectorAdd"])

    def test_campaign_survives_partial_faults(self, capsys):
        rc = main([
            "chaos", "vectorAdd", "--sizes",
            "16384,32768,65536,131072",
            "--launch-rate", "0.4", "--seed", "3", "--format", "json",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_records"] + payload["n_quarantined"] == 4
        assert payload["n_records"] > 0
        assert payload["faults_fired"]

    def test_quarantine_set_is_njobs_invariant(self, capsys):
        argv = ["chaos", "vectorAdd", "--sizes",
                "16384,32768,65536,131072",
                "--launch-rate", "0.4", "--seed", "3", "--format", "json"]
        main(argv)
        serial = json.loads(capsys.readouterr().out)
        main(argv + ["--jobs", "3"])
        parallel = json.loads(capsys.readouterr().out)
        assert serial["quarantined"] == parallel["quarantined"]
        assert serial["n_records"] == parallel["n_records"]

    def test_total_loss_exits_nonzero(self, capsys):
        rc = main([
            "chaos", "vectorAdd", "--sizes", "16384,32768",
            "--launch-rate", "1.0", "--retries", "1",
        ])
        assert rc == 1

    def test_transient_faults_recovered_by_retries(self, capsys):
        rc = main([
            "chaos", "vectorAdd", "--sizes", "16384,32768",
            "--launch-rate", "1.0", "--transient", "--format", "json",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_quarantined"] == 0
        assert payload["faults_fired"] == {"profiler.launch:raise": 2}

    def test_plan_file_and_save_to(self, tmp_path, capsys):
        plan = tmp_path / "plan.json"
        plan.write_text(json.dumps({
            "seed": 0,
            "specs": [{"site": "repository.write", "mode": "torn_file",
                       "match": {"file": "runs.csv"}}],
        }))
        rc = main([
            "chaos", "vectorAdd", "--sizes", "16384,32768",
            "--plan", str(plan), "--save-to", str(tmp_path / "repo"),
            "--format", "json",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert any("corrupt" in f for f in payload["repository_findings"])

    def test_bad_plan_file_rejected(self, tmp_path):
        plan = tmp_path / "plan.json"
        plan.write_text(json.dumps([{"site": "nowhere", "mode": "raise"}]))
        with pytest.raises(SystemExit, match="bad fault plan"):
            main(["chaos", "vectorAdd", "--plan", str(plan)])


class TestRepoCommand:
    def _populate_clean(self, root) -> None:
        # chaos requires a fault; build the repo through the library.
        from repro.gpusim import GTX580
        from repro.kernels import VectorAddKernel
        from repro.profiling import Campaign, ProfileRepository

        kernel = VectorAddKernel()
        result = Campaign(kernel, GTX580, rng=0).run(
            problems=kernel.default_sweep()[:2]
        )
        ProfileRepository(root).save(result)

    def test_list_and_verify_clean(self, tmp_path, capsys):
        self._populate_clean(tmp_path)
        assert main(["repo", "list", str(tmp_path)]) == 0
        assert "vectorAdd" in capsys.readouterr().out
        assert main(["repo", "verify", str(tmp_path)]) == 0
        assert "0 damaged" in capsys.readouterr().out

    def test_verify_flags_damage(self, tmp_path, capsys):
        self._populate_clean(tmp_path)
        cdir = next(tmp_path.glob("shards/*/*/runs.csv")).parent
        _flip_middle_byte(cdir / "runs.csv")
        assert main(["repo", "verify", str(tmp_path)]) == 1
        assert "DAMAGED" in capsys.readouterr().out

    def test_verify_quarantine_moves_damage(self, tmp_path, capsys):
        self._populate_clean(tmp_path)
        cdir = next(tmp_path.glob("shards/*/*/runs.csv")).parent
        _flip_middle_byte(cdir / "runs.csv")
        assert main(["repo", "verify", str(tmp_path), "--quarantine"]) == 0
        assert "quarantined" in capsys.readouterr().out
        assert not cdir.exists()
        assert (tmp_path / "_quarantine" / cdir.name).is_dir()
        # A second verify over the now-empty root is clean.
        assert main(["repo", "verify", str(tmp_path)]) == 0


class TestRepoMigrateStats:
    def _populate_v1(self, root) -> None:
        import warnings

        from repro._compat import reset_deprecation_warnings
        from tests.profiling.test_repository_v2 import flatten_to_v1

        TestRepoCommand()._populate_clean(root)
        flatten_to_v1(root)
        reset_deprecation_warnings()
        # The CLI itself opens the v1 repo; keep the shim's warning out
        # of the deprecation-strict run's way for the calls below.
        warnings.simplefilter("ignore", DeprecationWarning)

    def test_migrate_then_stats(self, tmp_path, capsys):
        import warnings

        with warnings.catch_warnings():
            self._populate_v1(tmp_path)
            assert main(["repo", "migrate", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "1 campaign(s) moved" in out
        assert "0 damaged" in out
        assert main(["repo", "stats", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "layout v2" in out
        assert "campaigns: 1" in out

    def test_migrate_json_idempotent(self, tmp_path, capsys):
        import warnings

        with warnings.catch_warnings():
            self._populate_v1(tmp_path)
            assert main([
                "repo", "migrate", str(tmp_path), "--format", "json",
            ]) == 0
        capsys.readouterr()
        assert main(["repo", "migrate", str(tmp_path),
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["migrated"] == 0
        assert payload["layout"] == 2

    def test_stats_json(self, tmp_path, capsys):
        TestRepoCommand()._populate_clean(tmp_path)
        assert main(["repo", "stats", str(tmp_path),
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["layout"] == 2
        assert payload["campaigns"] == 1
        assert payload["index"]["fresh"] == 1

    def test_verify_full_flag(self, tmp_path, capsys):
        TestRepoCommand()._populate_clean(tmp_path)
        assert main(["repo", "verify", str(tmp_path), "--full"]) == 0
        assert "0 damaged" in capsys.readouterr().out
