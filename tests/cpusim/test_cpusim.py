"""Tests for the CPU substrate (architectures, simulator, kernels)."""

import numpy as np
import pytest

from repro.cpusim import I7_SANDY, XEON_E5, CPUSimulator, CPUWorkload, cpu_average_power_w
from repro.gpusim.counters import CATALOGUE, predictor_counters
from repro.gpusim.noise import Perturbation
from repro.kernels.cpu import (
    CpuMatMulKernel,
    CpuReductionKernel,
    CpuStencilKernel,
    CpuVectorAddKernel,
)

DET = Perturbation()


def simple_workload(**overrides):
    kwargs = dict(
        name="w",
        scalar_instructions=1e7,
        simd_instructions=2e7,
        branches=1e6,
        l1_loads=1e7,
        l1_miss_fraction=0.05,
        llc_miss_fraction=0.5,
        working_set_bytes=1e7,
        parallel_fraction=0.99,
    )
    kwargs.update(overrides)
    return CPUWorkload(**kwargs)


class TestArchitecture:
    def test_peak_flops(self):
        # 8 cores x 8 lanes x 2 flops x 2.6 GHz
        assert XEON_E5.peak_gflops_sp == pytest.approx(332.8)

    def test_machine_metrics(self):
        m = XEON_E5.machine_metrics()
        assert m["cores"] == 8 and m["simd"] == 8
        assert m["mbw"] == pytest.approx(51.2)

    def test_family(self):
        assert XEON_E5.family == "cpu"

    def test_with_overrides(self):
        fat = XEON_E5.with_overrides(n_cores=16)
        assert fat.n_cores == 16 and XEON_E5.n_cores == 8


class TestCounters:
    def test_cpu_counters_in_catalogue(self):
        for name in ("instructions", "cache_misses", "cpu_ipc",
                     "cpu_mem_bandwidth"):
            assert CATALOGUE[name].available_on("cpu")
            assert not CATALOGUE[name].available_on("fermi")

    def test_cycles_not_a_predictor(self):
        preds = predictor_counters("cpu")
        assert "cpu_cycles" not in preds
        assert "instructions" in preds


class TestSimulator:
    def test_counters_and_time(self):
        counters, t = CPUSimulator(XEON_E5).run([simple_workload()], DET)
        assert t > 0
        assert counters["instructions"] == pytest.approx(3.1e7)
        assert 0 < counters["cpu_ipc"] <= XEON_E5.ipc_peak * XEON_E5.n_cores

    def test_more_cores_faster_for_compute(self):
        wl = simple_workload(l1_loads=0.0, l1_miss_fraction=0.0)
        _, t8 = CPUSimulator(XEON_E5).run([wl], DET)
        _, t16 = CPUSimulator(XEON_E5.with_overrides(n_cores=16)).run([wl], DET)
        assert t16 < t8

    def test_amdahl_serial_fraction_limits_scaling(self):
        par = simple_workload(parallel_fraction=1.0)
        ser = simple_workload(parallel_fraction=0.5)
        _, t_par = CPUSimulator(XEON_E5).run([par], DET)
        _, t_ser = CPUSimulator(XEON_E5).run([ser], DET)
        assert t_ser > 2 * t_par

    def test_bandwidth_not_scaled_by_cores(self):
        # a fully bandwidth-bound region is no faster with more cores
        # enough MLP that latency is hidden and DRAM bandwidth binds
        wl = simple_workload(
            scalar_instructions=1e5, simd_instructions=1e5, branches=0.0,
            l1_loads=5e7, l1_miss_fraction=1.0, llc_miss_fraction=1.0,
            working_set_bytes=5e9, memory_ilp=16.0,
        )
        _, t8 = CPUSimulator(XEON_E5).run([wl], DET)
        _, t16 = CPUSimulator(XEON_E5.with_overrides(n_cores=16)).run([wl], DET)
        assert t16 == pytest.approx(t8, rel=0.05)

    def test_cache_misses_cost_time(self):
        good = simple_workload(l1_miss_fraction=0.01)
        bad = simple_workload(l1_miss_fraction=0.5, llc_miss_fraction=1.0,
                              working_set_bytes=1e9)
        _, t_good = CPUSimulator(XEON_E5).run([good], DET)
        _, t_bad = CPUSimulator(XEON_E5).run([bad], DET)
        assert t_bad > 2 * t_good

    def test_perturbations_move_time(self):
        sim = CPUSimulator(XEON_E5)
        _, base = sim.run([simple_workload()], Perturbation())
        _, slow = sim.run([simple_workload()], Perturbation(sched_efficiency=0.7))
        assert slow > base

    def test_validation(self):
        with pytest.raises(ValueError):
            CPUSimulator(XEON_E5).run([], DET)
        with pytest.raises(ValueError):
            CPUWorkload(name="x", scalar_instructions=-1.0)
        with pytest.raises(ValueError):
            simple_workload(parallel_fraction=1.5)

    def test_power_model(self):
        p = cpu_average_power_w(XEON_E5, 1e9, 1e8, 0.01)
        assert XEON_E5.static_power_w < p <= XEON_E5.tdp_w
        assert cpu_average_power_w(XEON_E5, 0, 0, 0) == XEON_E5.static_power_w


class TestCpuKernels:
    @pytest.mark.parametrize("kernel_cls,probe", [
        (CpuVectorAddKernel, 100_000),
        (CpuReductionKernel, 100_000),
        (CpuStencilKernel, 256),
        (CpuMatMulKernel, 192),
    ])
    def test_functional(self, kernel_cls, probe):
        k = kernel_cls()
        assert np.allclose(k.run(probe), k.reference(probe), rtol=1e-5)

    def test_time_monotone_in_size(self):
        sim = CPUSimulator(XEON_E5)
        k = CpuStencilKernel()
        _, t1 = sim.run(k.workloads(256, XEON_E5), DET)
        _, t2 = sim.run(k.workloads(1024, XEON_E5), DET)
        assert t2 > t1

    def test_vectoradd_bandwidth_bound(self):
        sim = CPUSimulator(XEON_E5)
        n = 1 << 24
        counters, t = sim.run(CpuVectorAddKernel().workloads(n, XEON_E5), DET)
        assert counters["cpu_mem_bandwidth"] > 0.3 * XEON_E5.mem_bandwidth_gbs

    def test_matmul_compute_bound(self):
        sim = CPUSimulator(XEON_E5)
        n = 1024
        counters, t = sim.run(CpuMatMulKernel().workloads(n, XEON_E5), DET)
        gflops = 2 * n**3 / t / 1e9
        assert gflops > 0.2 * XEON_E5.peak_gflops_sp

    def test_i7_slower_than_xeon_at_bandwidth(self):
        k = CpuVectorAddKernel()
        n = 1 << 24
        _, t_xeon = CPUSimulator(XEON_E5).run(k.workloads(n, XEON_E5), DET)
        _, t_i7 = CPUSimulator(I7_SANDY).run(k.workloads(n, I7_SANDY), DET)
        assert t_i7 > t_xeon  # 21 vs 51.2 GB/s

    def test_matmul_rejects_bad_size(self):
        with pytest.raises(ValueError):
            CpuMatMulKernel().workloads(100, XEON_E5)


class TestCpuPipeline:
    def test_blackforest_on_cpu_campaign(self):
        from repro import BlackForest, Campaign

        campaign = Campaign(CpuStencilKernel(), XEON_E5, rng=0).run(replicates=2)
        fit = BlackForest(n_trees=100, rng=1).fit(campaign)
        # OOB EV on this small noisy campaign sits at ~0.45-0.6 across
        # forest/noise seeds; pin "the pipeline models CPU data", not a
        # particular draw.
        assert fit.oob_explained_variance > 0.45
        assert all(
            n in set(predictor_counters("cpu")) | {"size"}
            for n in fit.feature_names
        )

    def test_cpu_records_power(self):
        from repro import Campaign

        c = Campaign(CpuVectorAddKernel(), XEON_E5, rng=0).run(
            problems=[1 << 20]
        )
        assert c.records[0].power_w is not None
        assert c.records[0].power_w >= XEON_E5.static_power_w
