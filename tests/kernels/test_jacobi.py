"""Tests for the two-characteristic Jacobi solver workload."""

import numpy as np
import pytest

from repro import BlackForest, Campaign, GTX580, JacobiSolverKernel
from repro.core.prediction import ProblemScalingPredictor
from repro.gpusim import GPUSimulator


class TestFunctional:
    @pytest.mark.parametrize("iters", [1, 3, 7])
    def test_matches_reference(self, iters):
        k = JacobiSolverKernel()
        assert np.allclose(k.run((96, iters)), k.reference((96, iters)))

    def test_iterations_change_result(self):
        k = JacobiSolverKernel()
        assert not np.allclose(k.run((96, 1)), k.run((96, 5)))

    def test_bad_problems_rejected(self):
        k = JacobiSolverKernel()
        with pytest.raises(ValueError):
            k.run(128)           # not a pair
        with pytest.raises(ValueError):
            k.run((128, 0))      # no iterations


class TestWorkloadStructure:
    def test_one_launch_per_iteration(self):
        wls = JacobiSolverKernel().workloads((256, 6), GTX580)
        assert len(wls) == 6
        assert all(w.grid_blocks == wls[0].grid_blocks for w in wls)

    def test_time_scales_with_both_characteristics(self):
        sim = GPUSimulator(GTX580)
        k = JacobiSolverKernel()
        _, t_base, _ = sim.run(k.workloads((512, 4), GTX580))
        _, t_iter, _ = sim.run(k.workloads((512, 8), GTX580))
        _, t_size, _ = sim.run(k.workloads((1024, 4), GTX580))
        assert t_iter == pytest.approx(2 * t_base, rel=0.05)
        assert t_size > 2.5 * t_base  # ~4x work, some fixed overhead

    def test_characteristics(self):
        chars = JacobiSolverKernel().characteristics((512, 8))
        assert chars == {"size": 512.0, "iterations": 8.0}

    def test_default_sweep_is_grid(self):
        sweep = JacobiSolverKernel().default_sweep()
        sizes = {n for n, _ in sweep}
        iters = {i for _, i in sweep}
        assert len(sweep) == len(sizes) * len(iters)


class TestTwoCharacteristicPrediction:
    @pytest.fixture(scope="class")
    def predictor(self):
        campaign = Campaign(JacobiSolverKernel(), GTX580, rng=0).run()
        return ProblemScalingPredictor(
            BlackForest(n_trees=120, use_pca=False, rng=1),
            characteristic=["size", "iterations"],
            rng=2,
        ).fit(campaign)

    def test_both_characteristics_retained(self, predictor):
        assert "size" in predictor.retained
        assert "iterations" in predictor.retained

    def test_counter_models_capture_interaction(self, predictor):
        # with size x iterations driving the counts, at least one MARS
        # model needs a degree-2 (interaction) basis function
        has_interaction = any(
            m.kind == "mars" and any(b.degree == 2 for b in m.model.basis_)
            for m in predictor.counter_models.models.values()
        )
        assert has_interaction

    def test_unseen_pairs_predicted(self, predictor):
        unseen = Campaign(JacobiSolverKernel(), GTX580, rng=77).run(
            problems=[(320, 3), (640, 12), (896, 24), (1280, 6)]
        )
        report = predictor.assess(unseen)
        assert report.explained_variance > 0.6

    def test_prediction_monotone_in_iterations(self, predictor):
        probs = np.array([[512.0, 2.0], [512.0, 8.0], [512.0, 24.0]])
        times = predictor.predict(probs)
        assert times[0] < times[1] < times[2]

    def test_wrong_width_rejected(self, predictor):
        with pytest.raises(ValueError):
            predictor.counter_models.predict_counters(np.zeros((3, 5)))
