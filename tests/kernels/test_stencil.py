"""Tests for the 2-D stencil kernel (trace-driven cache modeling)."""

import numpy as np
import pytest

from repro.gpusim import GTX580, K20M, GPUSimulator
from repro.kernels.stencil import StencilKernel


class TestFunctional:
    @pytest.mark.parametrize("n", [32, 64, 96, 128])
    def test_matches_reference(self, n):
        k = StencilKernel()
        assert np.allclose(k.run(n), k.reference(n))

    def test_coefficients_respected(self):
        laplace = StencilKernel(coeff=0.25, center=0.0)
        damped = StencilKernel(coeff=0.2, center=0.2)
        assert not np.allclose(laplace.run(32), damped.run(32))

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            StencilKernel().run(50)


class TestCacheModel:
    def test_fermi_gets_high_l1_hit_rate(self):
        # the 5-point pattern re-touches almost every line 3-5 times
        counters, _, _ = GPUSimulator(GTX580).run(
            StencilKernel().workloads(1024, GTX580)
        )
        hits = counters["l1_global_load_hit"]
        misses = counters["l1_global_load_miss"]
        assert hits / (hits + misses) > 0.5

    def test_kepler_pays_for_missing_l1(self):
        # K20m serves global loads from L2: more DRAM round trips for
        # the same kernel (compare bytes moved, not rates)
        k = StencilKernel()
        cf, tf, _ = GPUSimulator(GTX580).run(k.workloads(1024, GTX580))
        ck, tk, _ = GPUSimulator(K20M).run(k.workloads(1024, K20M))
        fermi_bytes = cf["dram_read_throughput"] * tf
        kepler_bytes = ck["dram_read_throughput"] * tk
        assert kepler_bytes > fermi_bytes

    def test_hit_fraction_cached_per_size(self):
        k = StencilKernel()
        k.workloads(1024, GTX580)
        assert ("GTX580", 1024) in k._hit_cache
        # second call reuses the cached trace simulation
        before = dict(k._hit_cache)
        k.workloads(1024, GTX580)
        assert k._hit_cache == before

    def test_bandwidth_bound_at_scale(self):
        _, _, profs = GPUSimulator(GTX580).run(
            StencilKernel().workloads(2048, GTX580)
        )
        assert profs[0].timing.binding == "bandwidth"

    def test_block_trace_shape(self):
        trace = StencilKernel()._block_trace(256)
        assert trace.shape == (8 * 5, 32)
        assert (trace >= 0).all()


class TestSweep:
    def test_default_sweep_valid(self):
        k = StencilKernel()
        for n in k.default_sweep():
            assert n % 32 == 0
        assert len(k.default_sweep()) >= 8

    def test_registered(self):
        from repro.kernels import kernel_registry

        assert "stencil2d" in kernel_registry()
