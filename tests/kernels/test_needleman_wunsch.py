"""Tests for the Needleman-Wunsch kernel model."""

import numpy as np
import pytest

from repro.gpusim import GTX580, K20M, GPUSimulator
from repro.kernels.needleman_wunsch import NeedlemanWunschKernel


class TestFunctional:
    @pytest.mark.parametrize("L", [16, 32, 48, 96])
    def test_wavefront_matches_rowwise_dp(self, L):
        k = NeedlemanWunschKernel()
        assert k.run(L) == k.reference(L)

    @pytest.mark.parametrize("L", [16, 32, 64])
    def test_blocked_traversal_equivalent(self, L):
        # the GPU tile order must preserve the DP recurrence
        k = NeedlemanWunschKernel()
        assert k.run_blocked(L) == k.run(L)

    def test_penalty_changes_score(self):
        assert NeedlemanWunschKernel(penalty=1).run(32) >= NeedlemanWunschKernel(
            penalty=20
        ).run(32)

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            NeedlemanWunschKernel().workloads(100, GTX580)

    def test_rejects_bad_penalty(self):
        with pytest.raises(ValueError):
            NeedlemanWunschKernel(penalty=0)


class TestLaunchStructure:
    def test_two_diagonal_sweeps(self):
        # L=256 -> B=16 block diagonals: kernel1 d=1..16, kernel2 d=15..1
        wls = NeedlemanWunschKernel().workloads(256, GTX580)
        assert len(wls) == 2 * 16 - 1
        grids = [w.grid_blocks for w in wls]
        assert grids == list(range(1, 17)) + list(range(15, 0, -1))

    def test_total_blocks_cover_matrix(self):
        L = 512
        wls = NeedlemanWunschKernel().workloads(L, GTX580)
        assert sum(w.grid_blocks for w in wls) == (L // 16) ** 2

    def test_sixteen_thread_blocks(self):
        # "For maximum occupancy, each TB only has 16 threads"
        wls = NeedlemanWunschKernel().workloads(128, GTX580)
        assert all(w.threads_per_block == 16 for w in wls)

    def test_kernel_names_distinguish_passes(self):
        wls = NeedlemanWunschKernel().workloads(128, GTX580)
        assert any("kernel1" in w.name for w in wls)
        assert any("kernel2" in w.name for w in wls)


class TestBottleneckStructure:
    def test_low_occupancy(self):
        counters, _, _ = GPUSimulator(GTX580).run(
            NeedlemanWunschKernel().workloads(1024, GTX580)
        )
        assert counters["achieved_occupancy"] < 0.2

    def test_bank_conflicts_present_on_fermi(self):
        counters, _, _ = GPUSimulator(GTX580).run(
            NeedlemanWunschKernel().workloads(512, GTX580)
        )
        assert counters["l1_shared_bank_conflict"] > 0

    def test_l1_misses_present_on_fermi(self):
        counters, _, _ = GPUSimulator(GTX580).run(
            NeedlemanWunschKernel().workloads(512, GTX580)
        )
        assert counters["l1_global_load_miss"] > 0

    def test_uncoalesced_west_halo_hurts_efficiency(self):
        counters, _, _ = GPUSimulator(GTX580).run(
            NeedlemanWunschKernel().workloads(512, GTX580)
        )
        assert counters["gld_efficiency"] < 100.0

    def test_idle_lanes_reduce_warp_efficiency(self):
        counters, _, _ = GPUSimulator(GTX580).run(
            NeedlemanWunschKernel().workloads(512, GTX580)
        )
        # 16-thread blocks can never exceed 50% of a 32-lane warp
        assert counters["warp_execution_efficiency"] < 50.0

    def test_time_grows_superlinearly(self):
        sim = GPUSimulator(GTX580)
        k = NeedlemanWunschKernel()
        _, t1, _ = sim.run(k.workloads(512, GTX580))
        _, t2, _ = sim.run(k.workloads(2048, GTX580))
        assert t2 > 3.5 * t1  # ~quadratic work, partially amortized


class TestOnKepler:
    def test_replay_counters_instead_of_bank_conflicts(self):
        counters, _, _ = GPUSimulator(K20M).run(
            NeedlemanWunschKernel().workloads(512, K20M)
        )
        assert counters["shared_load_replay"] > 0
        assert "l1_shared_bank_conflict" not in counters
        assert "l1_global_load_miss" not in counters


class TestSweep:
    def test_129_trials(self):
        # "We vary the sequence length from 64 to 8192 with a pitch of
        # 64, generating 129 trials"
        sweep = NeedlemanWunschKernel().default_sweep()
        assert len(sweep) == 129
        assert sweep[0] == 64
        assert all(b - a == 64 for a, b in zip(sweep, sweep[1:]))
