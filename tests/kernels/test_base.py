"""Tests for the kernel base interface and the workload accumulator."""

import numpy as np
import pytest

from repro.kernels.base import WorkloadAccumulator


def make_acc(**overrides):
    kwargs = dict(name="k", grid_blocks=10, threads_per_block=256,
                  regs_per_thread=16, shared_mem_per_block=1024)
    kwargs.update(overrides)
    return WorkloadAccumulator(**kwargs)


class TestAccumulator:
    def test_counts_scale_by_grid(self):
        acc = make_acc()
        acc.arith(5)
        acc.branch(2, divergent=1)
        acc.sync(1)
        wl = acc.build()
        assert wl.arithmetic_instructions == 50
        assert wl.branches == 20
        assert wl.divergent_branches == 10
        assert wl.other_instructions == 10

    def test_build_for_grid_rescales(self):
        acc = make_acc()
        acc.arith(3)
        small = acc.build_for_grid(2)
        big = acc.build_for_grid(200, name="custom")
        assert small.arithmetic_instructions == 6
        assert big.arithmetic_instructions == 600
        assert big.name == "custom"
        assert small.name == "k"

    def test_shared_buckets_by_conflict_degree(self):
        acc = make_acc()
        acc.shared("load", 4, conflict_degree=1.0)
        acc.shared("load", 2, conflict_degree=8.0)
        acc.shared("store", 1, conflict_degree=8.0)
        wl = acc.build()
        degrees = sorted((s.kind, s.conflict_degree) for s in wl.shared_accesses)
        assert degrees == [("load", 1.0), ("load", 8.0), ("store", 8.0)]

    def test_warp_efficiency_from_lane_counts(self):
        acc = make_acc()
        acc.arith(1, lanes=32.0)
        acc.arith(1, lanes=16.0)
        wl = acc.build()
        assert wl.avg_active_threads == pytest.approx(24.0)

    def test_fma_flag(self):
        acc = make_acc()
        acc.arith(4, fma=True)
        acc.arith(6)
        wl = acc.build()
        assert wl.fma_instructions == 40
        assert wl.arithmetic_instructions == 100

    def test_memory_ilp_and_chain_propagate(self):
        acc = make_acc()
        acc.set_memory_ilp(4.0)
        acc.chain(100.0)
        acc.chain(50.0)
        acc.arith(1)
        wl = acc.build()
        assert wl.memory_ilp == 4.0
        assert wl.critical_path_cycles == 150.0

    def test_global_access_passthrough(self):
        acc = make_acc()
        acc.global_access("load", 3, lanes=16, stride_words=2,
                          word_bytes=8, unique_bytes=4096,
                          l1_hit_fraction=0.5)
        wl = acc.build()
        (access,) = wl.global_accesses
        assert access.requests == 30
        assert access.active_lanes == 16
        assert access.stride_words == 2
        assert access.word_bytes == 8
        assert access.l1_hit_fraction == 0.5

    def test_minimum_one_request_after_rounding(self):
        acc = make_acc(grid_blocks=1)
        acc.global_access("store", 0.2)  # rounds to >= 1
        wl = acc.build()
        assert wl.global_accesses[0].requests == 1

    def test_kernel_repr(self):
        from repro.kernels import ReductionKernel

        assert "reduce3" in repr(ReductionKernel(3))
