"""Property-based tests (hypothesis) over the kernel models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import GTX580, K20M, GPUSimulator
from repro.kernels import (
    MatMulKernel,
    NeedlemanWunschKernel,
    ReductionKernel,
    StencilKernel,
    VectorAddKernel,
)

SIM = GPUSimulator(GTX580)


class TestFunctionalProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 6), st.integers(2, 200_000))
    def test_reduction_always_matches_sum(self, variant, n):
        k = ReductionKernel(variant)
        assert k.run(n) == pytest.approx(k.reference(n), rel=1e-9)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(1, 6))
    def test_matmul_matches_reference(self, mult):
        n = 16 * mult
        k = MatMulKernel()
        assert np.allclose(k.run(n), k.reference(n))

    @settings(max_examples=8, deadline=None)
    @given(st.integers(1, 6), st.integers(0, 100))
    def test_nw_wavefront_equals_rowwise(self, mult, seed):
        L = 16 * mult
        k = NeedlemanWunschKernel()
        assert k.run(L, rng=seed) == k.reference(L, rng=seed)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(1, 500_000))
    def test_vectoradd_matches(self, n):
        k = VectorAddKernel()
        assert np.allclose(k.run(n), k.reference(n))


class TestSimulationProperties:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 6), st.integers(10, 22))
    def test_reduction_time_finite_positive(self, variant, log_n):
        wls = ReductionKernel(variant).workloads(1 << log_n, GTX580)
        _, t, _ = SIM.run(wls)
        assert np.isfinite(t) and t > 0

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 6), st.integers(12, 20))
    def test_reduction_time_monotone_in_size(self, variant, log_n):
        k = ReductionKernel(variant)
        _, t1, _ = SIM.run(k.workloads(1 << log_n, GTX580))
        _, t2, _ = SIM.run(k.workloads(1 << (log_n + 2), GTX580))
        assert t2 > t1

    @settings(max_examples=10, deadline=None)
    @given(st.sampled_from([GTX580, K20M]), st.integers(1, 40))
    def test_matmul_counters_nonnegative(self, arch, mult):
        n = 16 * mult
        counters, t, _ = GPUSimulator(arch).run(
            MatMulKernel().workloads(n, arch)
        )
        assert t > 0
        for name, value in counters.items():
            assert value >= 0.0, name
            assert np.isfinite(value), name

    @settings(max_examples=10, deadline=None)
    @given(st.integers(1, 20))
    def test_gld_requests_proportional_to_work(self, mult):
        # doubling the vector length doubles the load requests exactly
        k = VectorAddKernel()
        n = 4096 * mult
        c1, _, _ = SIM.run(k.workloads(n, GTX580))
        c2, _, _ = SIM.run(k.workloads(2 * n, GTX580))
        assert c2["gld_request"] == pytest.approx(2 * c1["gld_request"], rel=1e-6)

    @settings(max_examples=8, deadline=None)
    @given(st.integers(2, 24))
    def test_stencil_hit_rate_bounded(self, mult):
        n = 32 * mult  # multiple of both block dimensions
        counters, _, _ = SIM.run(StencilKernel().workloads(n, GTX580))
        hits = counters["l1_global_load_hit"]
        misses = counters["l1_global_load_miss"]
        assert 0.0 <= hits / (hits + misses) <= 1.0

    @settings(max_examples=8, deadline=None)
    @given(st.integers(1, 30), st.integers(0, 10_000))
    def test_nw_launch_count_invariant(self, mult, _seed):
        L = 16 * mult
        wls = NeedlemanWunschKernel().workloads(L, GTX580)
        B = L // 16
        assert len(wls) == max(1, 2 * B - 1)
        assert sum(w.grid_blocks for w in wls) == B * B
