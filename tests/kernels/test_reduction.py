"""Tests for the reduction kernel family (functional + workload model)."""

import numpy as np
import pytest

from repro.gpusim import GTX580, K20M, GPUSimulator
from repro.kernels.reduction import REDUCTION_VARIANTS, ReductionKernel


class TestFunctional:
    @pytest.mark.parametrize("variant", range(7))
    def test_matches_reference_sum(self, variant):
        k = ReductionKernel(variant)
        for n in (2, 100, 1024, 100_000):
            assert k.run(n) == pytest.approx(k.reference(n), rel=1e-10)

    def test_non_power_of_two_sizes(self):
        k = ReductionKernel(6)
        for n in (3, 777, 65_537):
            assert k.run(n) == pytest.approx(k.reference(n), rel=1e-10)

    def test_input_deterministic_per_problem(self):
        k = ReductionKernel(0)
        assert k.run(5000) == k.run(5000)

    def test_explicit_rng_changes_input(self):
        k = ReductionKernel(0)
        assert k.run(5000, rng=1) != k.run(5000, rng=2)

    def test_rejects_sub_two_elements(self):
        with pytest.raises(ValueError):
            ReductionKernel(1).workloads(1, GTX580)


class TestLaunchStructure:
    def test_multiple_launches_until_single_value(self):
        wls = ReductionKernel(2).workloads(1 << 20, GTX580)
        assert len(wls) >= 2
        assert wls[0].grid_blocks == (1 << 20) // 256
        assert wls[-1].grid_blocks >= 1

    def test_first_add_during_load_halves_blocks(self):
        n = 1 << 20
        v2 = ReductionKernel(2).workloads(n, GTX580)[0]
        v3 = ReductionKernel(3).workloads(n, GTX580)[0]
        assert v3.grid_blocks == v2.grid_blocks // 2

    def test_reduce6_grid_capped(self):
        wl = ReductionKernel(6).workloads(1 << 24, GTX580)[0]
        assert wl.grid_blocks == 64

    def test_small_array_single_block(self):
        wls = ReductionKernel(2).workloads(128, GTX580)
        assert len(wls) == 1
        assert wls[0].grid_blocks == 1


class TestBottleneckStructure:
    """Each variant must carry its documented bottleneck signature."""

    def test_reduce0_diverges(self):
        wl = ReductionKernel(0).workloads(1 << 20, GTX580)[0]
        assert wl.divergent_branches > 0.3 * wl.branches

    def test_reduce0_modulo_cost_dominates_arithmetic(self):
        v0 = ReductionKernel(0).workloads(1 << 20, GTX580)[0]
        v1 = ReductionKernel(1).workloads(1 << 20, GTX580)[0]
        assert v0.arithmetic_instructions > 2 * v1.arithmetic_instructions

    def test_only_reduce1_has_bank_conflicts(self):
        n = 1 << 20
        for variant in range(7):
            wl = ReductionKernel(variant).workloads(n, GTX580)[0]
            max_degree = max(
                (s.conflict_degree for s in wl.shared_accesses), default=1.0
            )
            if variant == 1:
                assert max_degree > 4.0
            else:
                assert max_degree == 1.0

    def test_optimization_ladder_monotone_time(self):
        """The SDK's documented speedup ladder: each optimization step
        is at least as fast as the previous (reduce0 slowest)."""
        sim = GPUSimulator(GTX580)
        times = []
        for variant in range(7):
            wls = ReductionKernel(variant).workloads(1 << 22, GTX580)
            _, t, _ = sim.run(wls)
            times.append(t)
        assert all(t_next <= t_prev * 1.02
                   for t_prev, t_next in zip(times, times[1:]))
        assert times[0] > 2 * times[6]

    def test_reduce1_shared_replay_overhead_positive(self):
        counters, _, _ = GPUSimulator(GTX580).run(
            ReductionKernel(1).workloads(1 << 22, GTX580)
        )
        assert counters["shared_replay_overhead"] > 0.1

    def test_reduce2_conflict_free(self):
        counters, _, _ = GPUSimulator(GTX580).run(
            ReductionKernel(2).workloads(1 << 22, GTX580)
        )
        assert counters["shared_replay_overhead"] == 0.0

    def test_reduce6_near_peak_bandwidth(self):
        counters, t, profs = GPUSimulator(GTX580).run(
            ReductionKernel(6).workloads(1 << 24, GTX580)
        )
        read_gbs = counters["dram_read_throughput"]
        assert read_gbs > 0.85 * GTX580.mem_bandwidth_gbs

    def test_gld_requests_scale_with_size(self):
        k = ReductionKernel(2)
        sim = GPUSimulator(GTX580)
        c_small, _, _ = sim.run(k.workloads(1 << 18, GTX580))
        c_big, _, _ = sim.run(k.workloads(1 << 20, GTX580))
        assert c_big["gld_request"] == pytest.approx(
            4 * c_small["gld_request"], rel=0.05
        )


class TestOnKepler:
    def test_workloads_build_on_k20m(self):
        wls = ReductionKernel(1).workloads(1 << 20, K20M)
        counters, t, _ = GPUSimulator(K20M).run(wls)
        assert t > 0
        assert counters["shared_load_replay"] > 0


class TestRegistry:
    def test_all_seven_variants(self):
        assert set(REDUCTION_VARIANTS) == {f"reduce{v}" for v in range(7)}

    def test_characteristics(self):
        assert ReductionKernel(1).characteristics(4096) == {"size": 4096.0}

    def test_default_sweep_under_100_samples(self):
        # paper: "collections of less than 100 data samples"
        sweep = ReductionKernel(1).default_sweep()
        assert 50 <= len(sweep) < 100
        assert sweep == sorted(sweep)

    def test_invalid_variant(self):
        with pytest.raises(ValueError):
            ReductionKernel(7)
        with pytest.raises(ValueError):
            ReductionKernel(1, block_size=100)
