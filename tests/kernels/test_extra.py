"""Tests for the extra kernels (vector add, transpose) and the registry."""

import numpy as np
import pytest

from repro.gpusim import GTX580, GPUSimulator
from repro.kernels import kernel_registry
from repro.kernels.extra import TransposeKernel, VectorAddKernel


class TestVectorAdd:
    @pytest.mark.parametrize("n", [1, 255, 256, 1000, 4096])
    def test_matches_reference(self, n):
        k = VectorAddKernel()
        assert np.allclose(k.run(n), k.reference(n))

    def test_bandwidth_bound(self):
        _, _, profs = GPUSimulator(GTX580).run(
            VectorAddKernel().workloads(1 << 22, GTX580)
        )
        assert profs[0].timing.binding == "bandwidth"

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            VectorAddKernel().workloads(0, GTX580)


class TestTranspose:
    @pytest.mark.parametrize("variant", ["naive", "tiled"])
    def test_matches_reference(self, variant):
        k = TransposeKernel(variant)
        assert np.allclose(k.run(64), k.reference(64))

    def test_naive_stores_uncoalesced(self):
        counters, _, _ = GPUSimulator(GTX580).run(
            TransposeKernel("naive").workloads(1024, GTX580)
        )
        assert counters["gst_efficiency"] < 50.0

    def test_tiled_stores_coalesced(self):
        counters, _, _ = GPUSimulator(GTX580).run(
            TransposeKernel("tiled").workloads(1024, GTX580)
        )
        assert counters["gst_efficiency"] == pytest.approx(100.0)

    def test_tiled_faster_than_naive(self):
        sim = GPUSimulator(GTX580)
        _, t_naive, _ = sim.run(TransposeKernel("naive").workloads(2048, GTX580))
        _, t_tiled, _ = sim.run(TransposeKernel("tiled").workloads(2048, GTX580))
        assert t_tiled < t_naive / 2

    def test_unpadded_tile_has_conflicts(self):
        counters, _, _ = GPUSimulator(GTX580).run(
            TransposeKernel("tiled", padded=False).workloads(1024, GTX580)
        )
        assert counters["shared_replay_overhead"] > 0.0

    def test_padded_tile_conflict_free(self):
        counters, _, _ = GPUSimulator(GTX580).run(
            TransposeKernel("tiled", padded=True).workloads(1024, GTX580)
        )
        assert counters["shared_replay_overhead"] == 0.0

    def test_invalid_variant(self):
        with pytest.raises(ValueError):
            TransposeKernel("blocked")


class TestRegistry:
    def test_contains_all_paper_kernels(self):
        reg = kernel_registry()
        for name in ("reduce1", "reduce2", "reduce6", "matrixMul",
                     "needleman-wunsch"):
            assert name in reg

    def test_every_kernel_has_sweep_and_characteristics(self):
        for name, kernel in kernel_registry().items():
            sweep = kernel.default_sweep()
            assert len(sweep) >= 5, name
            chars = kernel.characteristics(sweep[0])
            assert "size" in chars, name

    def test_every_kernel_simulates(self):
        from repro.cpusim import XEON_E5, CPUSimulator
        from repro.gpusim import Perturbation

        gpu_sim = GPUSimulator(GTX580)
        cpu_sim = CPUSimulator(XEON_E5)
        for name, kernel in kernel_registry().items():
            problem = kernel.default_sweep()[0]
            if name.startswith("cpu-"):
                counters, t = cpu_sim.run(
                    kernel.workloads(problem, XEON_E5), Perturbation()
                )
                assert counters["instructions"] > 0, name
            else:
                counters, t, _ = gpu_sim.run(kernel.workloads(problem, GTX580))
                assert counters["inst_executed"] > 0, name
            assert t > 0, name
