"""Tests for the tiled matrix-multiply kernel model."""

import numpy as np
import pytest

from repro.gpusim import GTX580, K20M, GPUSimulator
from repro.kernels.matmul import MatMulKernel


class TestFunctional:
    @pytest.mark.parametrize("n", [16, 32, 64, 80])
    def test_matches_reference(self, n):
        k = MatMulKernel()
        assert np.allclose(k.run(n), k.reference(n))

    def test_other_tile_size(self):
        k = MatMulKernel(tile=8)
        assert np.allclose(k.run(32), k.reference(32))

    def test_rejects_non_multiple(self):
        with pytest.raises(ValueError):
            MatMulKernel().run(50)

    def test_rejects_bad_tile(self):
        with pytest.raises(ValueError):
            MatMulKernel(tile=12)


class TestWorkloadStructure:
    def test_single_launch(self):
        assert len(MatMulKernel().workloads(256, GTX580)) == 1

    def test_grid_and_block_geometry(self):
        wl = MatMulKernel().workloads(512, GTX580)[0]
        assert wl.grid_blocks == (512 // 16) ** 2
        assert wl.threads_per_block == 256

    def test_fma_count_matches_n_cubed(self):
        n = 256
        wl = MatMulKernel().workloads(n, GTX580)[0]
        # n^3 thread-level FMAs at warp granularity
        assert wl.fma_instructions == pytest.approx(n**3 / 32, rel=0.01)

    def test_load_store_ratio_is_block_size(self):
        # "a ratio of block size loads per store" (paper Section 6.1.1)
        n = 512
        wl = MatMulKernel().workloads(n, GTX580)[0]
        loads = sum(a.requests for a in wl.loads("global"))
        stores = sum(a.requests for a in wl.stores("global"))
        assert loads / stores == pytest.approx(2 * n / 16, rel=0.05)

    def test_shared_memory_two_tiles(self):
        wl = MatMulKernel().workloads(256, GTX580)[0]
        assert wl.shared_mem_per_block == 2 * 16 * 16 * 4


class TestScalingBehaviour:
    def test_time_scales_cubically(self):
        sim = GPUSimulator(GTX580)
        k = MatMulKernel()
        _, t1, _ = sim.run(k.workloads(512, GTX580))
        _, t2, _ = sim.run(k.workloads(1024, GTX580))
        assert t2 / t1 == pytest.approx(8.0, rel=0.35)

    def test_bandwidth_pressure_grows_with_n(self):
        # "this version of MM is compute intensive and bandwidth-limited
        # for large matrix sizes": the DRAM-bandwidth bound approaches
        # the compute bound as n grows (L2 stops containing the tiles).
        sim = GPUSimulator(GTX580)
        ratios = []
        for n in (256, 1024, 2048):
            _, _, profs = sim.run(MatMulKernel().workloads(n, GTX580))
            t = profs[0].timing
            ratios.append(t.bandwidth_bound_cycles / t.compute_bound_cycles)
        assert ratios[0] < ratios[1] < ratios[2]
        assert ratios[2] > 0.8

    def test_small_sizes_not_bandwidth_limited(self):
        sim = GPUSimulator(GTX580)
        _, _, profs = sim.run(MatMulKernel().workloads(256, GTX580))
        assert profs[0].timing.binding != "bandwidth"

    def test_gst_requested_throughput_decreases_with_n(self):
        # the store-bottleneck signature behind Fig. 5a
        sim = GPUSimulator(GTX580)
        k = MatMulKernel()
        values = []
        for n in (256, 512, 1024):
            counters, _, _ = sim.run(k.workloads(n, GTX580))
            values.append(counters["gst_requested_throughput"])
        assert values[0] > values[1] > values[2]

    def test_achievable_gflops_sane(self):
        sim = GPUSimulator(GTX580)
        _, t, _ = sim.run(MatMulKernel().workloads(1024, GTX580))
        gflops = 2 * 1024**3 / t / 1e9
        # tiled SGEMM on Fermi: well below peak, far above scalar
        assert 100 < gflops < 1581

    def test_k20m_competitive_at_midsize(self):
        # The SDK's naive tiled kernel is shared-memory-throughput bound,
        # so the K20m's peak-FLOP advantage does not materialize; it
        # must however stay in the same performance class.
        k = MatMulKernel()
        _, t_fermi, _ = GPUSimulator(GTX580).run(k.workloads(1024, GTX580))
        _, t_kepler, _ = GPUSimulator(K20M).run(k.workloads(1024, K20M))
        assert t_kepler < 1.6 * t_fermi

    def test_k20m_wins_where_bandwidth_rules(self):
        # 208 vs 192.4 GB/s: a bandwidth-bound kernel must be faster on
        # the K20m.
        from repro.kernels import VectorAddKernel

        k = VectorAddKernel()
        _, t_fermi, _ = GPUSimulator(GTX580).run(k.workloads(1 << 24, GTX580))
        _, t_kepler, _ = GPUSimulator(K20M).run(k.workloads(1 << 24, K20M))
        assert t_kepler < t_fermi


class TestSweep:
    def test_paper_24_runs(self):
        sweep = MatMulKernel().default_sweep()
        assert len(sweep) == 24
        assert sweep[0] == 32
        assert sweep[-1] == 2048
        assert all(s % 16 == 0 for s in sweep)
        assert len(set(sweep)) == 24
