"""Tests for the determinism sanitizer (BF401-BF405)."""

import ast
import textwrap
from pathlib import Path

import pytest

import repro
from repro.analysis import lint_determinism, lint_determinism_file
from repro.analysis.determinism import (
    ALLOWLIST_PATH,
    AllowlistEntry,
    apply_allowlist,
    load_allowlist,
    pipeline_modules,
)
from repro.analysis.findings import run_rules

FIXTURES = Path(__file__).parent / "fixtures"


def lint_snippet(code, path="src/repro/core/model.py"):
    tree = ast.parse(textwrap.dedent(code))
    return run_rules("determinism", tree, path)


def rules_fired(code, path="src/repro/core/model.py"):
    return {f.rule for f in lint_snippet(code, path)}


def fixture_findings(name):
    return lint_determinism_file(FIXTURES / name)


class TestBF401UnseededRandom:
    def test_stdlib_random_flagged(self):
        findings = fixture_findings("unseeded_random.py")
        stdlib = [f for f in findings if "stdlib random" in f.message]
        assert len(stdlib) == 2
        assert all(f.rule == "BF401" for f in stdlib)

    def test_numpy_global_state_flagged(self):
        findings = fixture_findings("unseeded_random.py")
        legacy = [f for f in findings if "RandomState" in f.message]
        assert len(legacy) == 2

    def test_bare_default_rng_flagged(self):
        findings = fixture_findings("unseeded_random.py")
        bare = [f for f in findings if "default_rng" in f.message]
        assert len(bare) == 1
        assert bare[0].context["qualname"] == "entropy_seeded"

    def test_seeded_generator_is_clean(self):
        code = """
        def draw(seed):
            rng = np.random.default_rng(seed)
            return rng.standard_normal()
        """
        assert rules_fired(code) == set()

    def test_generator_methods_are_clean(self):
        assert rules_fired("x = rng.shuffle(items)") == set()

    def test_line_numbers_in_subject(self):
        findings = lint_snippet("\nimport random\nx = random.random()")
        assert findings[0].subject.endswith(":3")


class TestBF402WallClock:
    def test_wall_clock_flagged(self):
        findings = fixture_findings("wall_clock.py")
        assert [f.rule for f in findings] == ["BF402", "BF402"]
        assert all(f.context["qualname"] == "measure_badly"
                   for f in findings)

    def test_monotonic_clocks_clean(self):
        code = """
        def elapsed(fn):
            t0 = time.monotonic()
            fn()
            return time.perf_counter() - t0
        """
        assert rules_fired(code) == set()

    def test_datetime_time_not_confused(self):
        assert rules_fired("t = obj.time()") == set()


class TestBF403SetIteration:
    def test_fixture_fires_three_times(self):
        findings = fixture_findings("set_iteration.py")
        assert [f.rule for f in findings] == ["BF403"] * 3
        assert all(f.context["qualname"] == "order_dependent"
                   for f in findings)

    def test_for_over_set_literal(self):
        code = """
        for item in {"a", "b"}:
            emit(item)
        """
        assert rules_fired(code) == {"BF403"}

    def test_sorted_set_is_clean(self):
        assert rules_fired("out = sorted({x for x in xs})") == set()

    def test_sum_over_set_genexp_is_clean(self):
        assert rules_fired("n = sum(f(x) for x in set(xs))") == set()

    def test_list_of_set_call_flagged(self):
        assert rules_fired("out = list(set(xs))") == {"BF403"}

    def test_set_method_chain_flagged(self):
        code = """
        for k in set(a).union(b):
            emit(k)
        """
        assert rules_fired(code) == {"BF403"}


class TestBF404RawWrites:
    def test_persistence_fixture_flagged(self):
        findings = fixture_findings("obs/raw_writes.py")
        assert [f.rule for f in findings] == ["BF404", "BF404"]
        messages = " ".join(f.message for f in findings)
        assert "open" in messages and "write_text" in messages

    def test_read_open_is_clean(self):
        code = "fh = open(path)"
        assert rules_fired(code, "src/repro/obs/log.py") == set()

    def test_write_outside_persistence_paths_clean(self):
        code = "fh = open(path, 'w')"
        assert rules_fired(code, "src/repro/cli.py") == set()

    def test_mode_keyword_detected(self):
        code = "fh = open(path, mode='w')"
        assert rules_fired(code, "src/repro/profiling/repository.py") \
            == {"BF404"}

    def test_append_mode_flag_not_required(self):
        # "a" appends — torn-tail risk is handled by the journal reader,
        # only full rewrites ("w") must be atomic.
        code = "fh = open(path, 'a')"
        assert rules_fired(code, "src/repro/obs/log.py") == set()


class TestBF405RogueMultiprocessing:
    def test_fixture_flags_both_import_forms(self):
        findings = fixture_findings("rogue_pool.py")
        assert [f.rule for f in findings] == ["BF405", "BF405"]

    def test_repro_parallel_is_exempt(self):
        code = "from concurrent.futures import ProcessPoolExecutor"
        assert rules_fired(code, "src/repro/parallel.py") == set()

    def test_other_modules_flagged(self):
        code = "import multiprocessing"
        assert rules_fired(code, "src/repro/ml/forest.py") == {"BF405"}

    def test_unrelated_imports_clean(self):
        assert rules_fired("import itertools\nimport json") == set()


class TestCleanFixture:
    def test_clean_module_has_no_findings(self):
        assert fixture_findings("clean_module.py") == []


class TestPipelineReachability:
    def test_entry_points_and_their_imports_in_scope(self):
        modules = {p.name for p in pipeline_modules()}
        assert {"campaign.py", "forest.py", "parallel.py",
                "model.py"} <= modules

    def test_frontends_out_of_scope(self):
        modules = {p.name for p in pipeline_modules()}
        assert "cli.py" not in modules
        assert "bench.py" not in modules


class TestAllowlist:
    def test_packaged_allowlist_is_small_and_justified(self):
        entries = load_allowlist()
        assert 0 < len(entries) <= 10
        for entry in entries:
            assert len(entry.justification) > 10, entry

    def test_no_stale_entries(self):
        # Every allowlist entry must still suppress at least one raw
        # finding, or it is dead weight hiding future regressions.
        raw = lint_determinism(allowlist=None)
        for entry in load_allowlist():
            assert any(entry.matches(f) for f in raw), \
                f"stale allowlist entry: {entry}"

    def test_malformed_line_rejected(self, tmp_path):
        bad = tmp_path / "allowlist.txt"
        bad.write_text("BF402 some/path.py\n")
        with pytest.raises(ValueError, match="allowlist entries"):
            load_allowlist(bad)

    def test_missing_justification_rejected(self, tmp_path):
        bad = tmp_path / "allowlist.txt"
        bad.write_text("BF402 some/path.py func —\n")
        with pytest.raises(ValueError):
            load_allowlist(bad)

    def test_comments_and_blanks_skipped(self, tmp_path):
        lst = tmp_path / "allowlist.txt"
        lst.write_text("# header\n\nBF402 a/b.py fn — because reasons\n")
        entries = load_allowlist(lst)
        assert len(entries) == 1
        assert entries[0].qualname == "fn"

    def test_wildcard_qualname_matches_everything(self):
        findings = fixture_findings("wall_clock.py")
        entry = AllowlistEntry("BF402", "fixtures/wall_clock.py", "*",
                               "test")
        assert apply_allowlist(findings, [entry]) == []

    def test_qualname_must_match(self):
        findings = fixture_findings("wall_clock.py")
        entry = AllowlistEntry("BF402", "fixtures/wall_clock.py",
                               "other_function", "test")
        assert apply_allowlist(findings, [entry]) == findings


class TestSelfHosting:
    def test_shipped_pipeline_is_clean(self):
        assert lint_determinism() == []

    def test_raw_findings_exist_and_are_all_allowlisted(self):
        raw = lint_determinism(allowlist=None)
        assert raw, "expected justified hazards in the shipped tree"
        assert apply_allowlist(raw, load_allowlist(ALLOWLIST_PATH)) == []

    def test_syntax_error_reported_not_raised(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def oops(:\n")
        findings = lint_determinism_file(bad)
        assert len(findings) == 1
        assert "cannot parse" in findings[0].message
