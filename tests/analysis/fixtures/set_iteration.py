"""Fixture: set iteration feeding ordered output (BF403)."""


def order_dependent(records):
    out = []
    for name in {r.name for r in records} - {"skip"}:  # BF403
        out.append(name)
    ordered = [n.upper() for n in {r.name for r in records}]  # BF403
    return out, ordered, list(set(records))  # BF403: list(set)


def order_safe(records):
    names = sorted({r.name for r in records})     # clean: sorted
    total = sum(len(n) for n in set(records))     # clean: folded away
    return names, total
