"""Fixture: pipeline-style code with none of the BF4xx hazards."""

import time

import numpy as np


def deterministic_work(seed, names):
    rng = np.random.default_rng(seed)
    start = time.monotonic()
    ordered = sorted({n.lower() for n in names})
    draw = rng.standard_normal(len(ordered))
    elapsed = time.monotonic() - start
    return ordered, draw, elapsed
