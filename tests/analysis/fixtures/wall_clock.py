"""Fixture: wall-clock timing in pipeline code (BF402)."""

import time


def measure_badly(fn):
    start = time.time()            # BF402: wall-clock jumps under NTP
    fn()
    return time.time() - start     # BF402


def measure_correctly(fn):
    start = time.perf_counter()    # clean: monotonic interval clock
    fn()
    return time.perf_counter() - start
