"""Fixture: process fan-out bypassing repro.parallel (BF405)."""

import multiprocessing                                  # BF405
from concurrent.futures import ProcessPoolExecutor      # BF405


def fan_out(worker, tasks):
    with ProcessPoolExecutor() as pool:
        return list(pool.map(worker, tasks))


def fan_out_mp(worker, tasks):
    with multiprocessing.Pool() as pool:
        return pool.map(worker, tasks)
