"""Fixture: every flavor of unseeded randomness BF401 must catch.

Never imported — parsed by tests/analysis/test_determinism_rules.py and
fed through the determinism rules.
"""

import random

import numpy as np


def stdlib_global_state(items):
    random.shuffle(items)          # BF401: stdlib global RNG
    return random.random()         # BF401


def numpy_legacy_global_state(n):
    np.random.seed(0)              # BF401: hidden global RandomState
    return np.random.normal(size=n)  # BF401


def entropy_seeded():
    rng = np.random.default_rng()  # BF401: unseeded — differs every run
    return rng.standard_normal()


def properly_seeded(seed):
    rng = np.random.default_rng(seed)  # clean: explicit seed
    return rng.standard_normal()
