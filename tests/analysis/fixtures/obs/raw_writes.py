"""Fixture: non-atomic artifact writes in a persistence module (BF404).

The path component ``obs/`` puts this file in BF404's scope.
"""

import json
from pathlib import Path


def tearable_write(path, payload):
    with open(path, "w") as fh:              # BF404: torn on crash
        json.dump(payload, fh)


def tearable_write_text(path, text):
    Path(path).write_text(text)              # BF404: in-place, non-atomic


def read_is_fine(path):
    with open(path) as fh:                   # clean: reads cannot tear
        return fh.read()
