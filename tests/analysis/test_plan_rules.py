"""Tests for the campaign plan checker (BF501-BF505)."""

import json
import warnings

import pytest

from repro.analysis import (
    CampaignPlan,
    InvariantViolation,
    Severity,
    lint_plan,
    plan_from_dict,
    plan_from_file,
)
from repro.analysis.plan import bench_launch_cost_s, preflight
from repro.cli import main
from repro.cpusim.arch import I7_SANDY
from repro.gpusim.arch import GTX480, GTX580, K20M
from repro.kernels import kernel_registry
from repro.profiling.campaign import Campaign

KERNELS = kernel_registry()
JACOBI = KERNELS["jacobi"]
VECTOR_ADD = KERNELS["vectorAdd"]

#: A jacobi sweep whose two characteristics (size, iterations) move in
#: exact lockstep — rank 1 from 2 varied columns.
LOCKSTEP = [(s, 2 * s) for s in (16, 32, 64, 128)]


def rules_fired(plan, min_severity=Severity.WARNING):
    return {
        f.rule for f in lint_plan(plan) if f.severity >= min_severity
    }


def errors_fired(plan):
    return rules_fired(plan, Severity.ERROR)


class TestBF501DesignRank:
    def test_lockstep_sweep_is_rank_deficient(self):
        plan = CampaignPlan(JACOBI, GTX580, problems=LOCKSTEP)
        findings = [f for f in lint_plan(plan) if f.rule == "BF501"]
        assert len(findings) == 1
        assert findings[0].severity == Severity.ERROR
        assert "rank" in findings[0].message

    def test_single_problem_is_warning_not_error(self):
        plan = CampaignPlan(JACOBI, GTX580, problems=[(64, 10)])
        findings = [f for f in lint_plan(plan) if f.rule == "BF501"]
        assert len(findings) == 1
        assert findings[0].severity == Severity.WARNING

    def test_default_sweep_is_full_rank(self):
        plan = CampaignPlan(JACOBI, GTX580)
        assert "BF501" not in rules_fired(plan)

    def test_repeated_identical_problems_warn(self):
        plan = CampaignPlan(JACOBI, GTX580, problems=[(64, 10)] * 4)
        findings = [f for f in lint_plan(plan) if f.rule == "BF501"]
        assert findings and findings[0].severity == Severity.WARNING


class TestBF502Collinearity:
    def test_near_lockstep_warns(self):
        # One point off the size = iterations/2 line: full rank, but
        # |r| stays above 0.99.
        problems = LOCKSTEP + [(256, 513)]
        plan = CampaignPlan(JACOBI, GTX580, problems=problems)
        findings = [f for f in lint_plan(plan) if f.rule == "BF502"]
        assert len(findings) == 1
        assert findings[0].severity == Severity.WARNING
        assert set(findings[0].context["pair"]) == {"size", "iterations"}

    def test_exact_collinearity_left_to_bf501(self):
        plan = CampaignPlan(JACOBI, GTX580, problems=LOCKSTEP)
        assert "BF502" not in {f.rule for f in lint_plan(plan)}

    def test_decorrelated_grid_is_clean(self):
        problems = [
            (s, i) for s in (16, 64, 256) for i in (1, 10, 100)
        ]
        plan = CampaignPlan(JACOBI, GTX580, problems=problems)
        assert "BF502" not in {f.rule for f in lint_plan(plan)}


class TestBF503CounterCoverage:
    def test_power_on_fermi_rejected(self):
        plan = CampaignPlan(VECTOR_ADD, GTX580, predictor="power")
        assert "BF503" in errors_fired(plan)

    def test_power_on_kepler_allowed(self):
        plan = CampaignPlan(VECTOR_ADD, K20M, predictor="power")
        assert "BF503" not in rules_fired(plan)

    def test_power_on_cpu_allowed(self):
        plan = CampaignPlan(
            KERNELS["cpu-vectorAdd"], I7_SANDY, predictor="power"
        )
        assert "BF503" not in rules_fired(plan)

    def test_transfer_with_common_counters_allowed(self):
        plan = CampaignPlan(
            VECTOR_ADD, GTX580, predictor="hardware_scaling",
            test_arch=K20M,
        )
        assert "BF503" not in rules_fired(plan)


class TestBF504TransferOverlap:
    def test_missing_test_arch_rejected(self):
        plan = CampaignPlan(
            VECTOR_ADD, GTX580, predictor="hardware_scaling"
        )
        assert "BF504" in errors_fired(plan)

    def test_same_arch_rejected(self):
        plan = CampaignPlan(
            VECTOR_ADD, GTX580, predictor="hardware_scaling",
            test_arch=GTX580,
        )
        assert "BF504" in errors_fired(plan)

    def test_distinct_arch_clean(self):
        plan = CampaignPlan(
            VECTOR_ADD, GTX580, predictor="hardware_scaling",
            test_arch=K20M,
        )
        assert "BF504" not in rules_fired(plan)

    def test_rule_scoped_to_hardware_scaling(self):
        plan = CampaignPlan(VECTOR_ADD, GTX580,
                            predictor="problem_scaling")
        assert "BF504" not in rules_fired(plan)


class TestBF505Cost:
    def test_bench_cost_resolves_from_committed_baseline(self):
        cost = bench_launch_cost_s()
        assert cost is not None and 0 < cost < 1.0

    def test_estimate_reported_as_info(self):
        plan = CampaignPlan(VECTOR_ADD, GTX580)
        findings = [f for f in lint_plan(plan) if f.rule == "BF505"]
        assert len(findings) == 1
        assert findings[0].severity == Severity.INFO
        assert findings[0].context["launches"] == len(plan.problems)

    def test_over_budget_is_error(self):
        plan = CampaignPlan(VECTOR_ADD, GTX580, replicates=1000,
                            budget_s=0.001)
        findings = [f for f in lint_plan(plan) if f.rule == "BF505"]
        assert findings[0].severity == Severity.ERROR
        assert findings[0].context["estimate_s"] > 0.001

    def test_within_budget_is_info(self):
        plan = CampaignPlan(VECTOR_ADD, GTX580, budget_s=3600.0)
        findings = [f for f in lint_plan(plan) if f.rule == "BF505"]
        assert findings[0].severity == Severity.INFO

    def test_missing_baseline_disables_estimate(self, tmp_path):
        assert bench_launch_cost_s(tmp_path / "nope.json") is None


class TestRegistrySweepsPass:
    @pytest.mark.parametrize("name", sorted(kernel_registry()))
    def test_default_sweep_has_no_errors(self, name):
        kernel = KERNELS[name]
        arch = I7_SANDY if name.startswith("cpu-") else GTX580
        plan = CampaignPlan(kernel, arch)
        assert errors_fired(plan) == set()


class TestPlanFromDict:
    def test_round_trip_with_problems(self):
        plan = plan_from_dict({
            "kernel": "jacobi", "arch": "GTX580",
            "problems": [[16, 32], [64, 8]], "replicates": 3,
            "predictor": "hardware_scaling", "test_arch": "K20m",
            "budget_s": 60,
        })
        assert plan.kernel.name == JACOBI.name
        assert plan.arch is GTX580
        assert plan.problems == [(16, 32), (64, 8)]
        assert plan.replicates == 3
        assert plan.test_arch is K20M
        assert plan.budget_s == 60.0

    def test_problems_default_to_kernel_sweep(self):
        plan = plan_from_dict({"kernel": "vectorAdd", "arch": "GTX480"})
        assert plan.problems == list(VECTOR_ADD.default_sweep())

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            plan_from_dict({"kernel": "nope", "arch": "GTX580"})

    def test_unknown_arch_rejected(self):
        with pytest.raises(ValueError, match="unknown architecture"):
            plan_from_dict({"kernel": "jacobi", "arch": "RTX9090"})

    def test_unknown_predictor_rejected(self):
        with pytest.raises(ValueError, match="unknown predictor"):
            plan_from_dict({"kernel": "jacobi", "arch": "GTX580",
                            "predictor": "oracle"})


class TestCliPlanMode:
    def write_plan(self, tmp_path, **overrides):
        data = {"kernel": "jacobi", "arch": "GTX580", **overrides}
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(data))
        return str(path)

    def test_good_plan_exits_zero(self, tmp_path, capsys):
        path = self.write_plan(tmp_path)
        assert main(["lint", "--plan", path]) == 0
        assert "0 findings" not in capsys.readouterr().out or True

    def test_rank_deficient_plan_exits_one(self, tmp_path, capsys):
        path = self.write_plan(
            tmp_path, problems=[[s, 2 * s] for s in (16, 32, 64)]
        )
        assert main(["lint", "--plan", path, "--fail-on", "error"]) == 1
        assert "BF501" in capsys.readouterr().out

    def test_budget_flag_overrides_plan(self, tmp_path, capsys):
        path = self.write_plan(tmp_path)
        code = main(["lint", "--plan", path, "--budget", "0.0001",
                     "--fail-on", "error"])
        assert code == 1
        assert "BF505" in capsys.readouterr().out

    def test_plan_and_artifacts_mutually_exclusive(self, tmp_path,
                                                   capsys):
        path = self.write_plan(tmp_path)
        code = main(["lint", "--plan", path, "--artifacts", path])
        assert code == 2

    def test_plan_from_file_matches_dict(self, tmp_path):
        path = self.write_plan(tmp_path, replicates=2)
        plan = plan_from_file(path)
        assert plan.replicates == 2


class TestCampaignPreflight:
    def test_strict_run_raises_on_rank_deficiency(self):
        campaign = Campaign(JACOBI, GTX580, rng=0)
        with pytest.raises(InvariantViolation, match="BF501"):
            campaign.run(problems=[(32, 64), (64, 128)], strict=True)

    def test_default_run_warns_and_proceeds(self):
        campaign = Campaign(JACOBI, GTX580, rng=0)
        with pytest.warns(UserWarning, match="BF501"):
            result = campaign.run(problems=[(32, 64), (64, 128)])
        assert len(result.records) == 2

    def test_good_sweep_runs_silently(self):
        campaign = Campaign(VECTOR_ADD, GTX580, rng=0)
        problems = VECTOR_ADD.default_sweep()[:3]
        with warnings.catch_warnings():
            warnings.simplefilter("error", UserWarning)
            result = campaign.run(problems=problems)
        assert len(result.records) == 3

    def test_preflight_returns_all_findings(self):
        findings = preflight(JACOBI, GTX580, JACOBI.default_sweep(), 1)
        assert {f.rule for f in findings} == {"BF505"}

    def test_preflight_strict_passes_good_plans(self):
        findings = preflight(
            JACOBI, GTX580, JACOBI.default_sweep(), 1, strict=True
        )
        assert all(f.severity < Severity.ERROR for f in findings)
