"""Meta-tests: the rule registry itself stays coherent.

Three invariants over the whole catalogue, so adding a rule cannot
silently fragment the id space, drift from the documentation, or ship
untested: every id is well-formed and sits in its declared family, the
``docs/analysis.md`` rule tables mirror the registry exactly, and every
rule id is exercised by tests (with at least one clean-subject test in
the files that cover it).
"""

import re
from pathlib import Path

import pytest

import repro.analysis  # noqa: F401 — imports register every rule
from repro.analysis.findings import (
    FAMILIES,
    Severity,
    all_rules,
    doc_url_of,
    family_of,
    rule,
    rules_for,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
TESTS_ROOT = REPO_ROOT / "tests"
DOCS = REPO_ROOT / "docs" / "analysis.md"

RULE_ID = re.compile(r"^BF\d{3}$")


class TestRegistryHygiene:
    def test_ids_well_formed(self):
        for r in all_rules():
            assert RULE_ID.fullmatch(r.id), r.id

    def test_ids_unique(self):
        ids = [r.id for r in all_rules()]
        assert len(ids) == len(set(ids))

    def test_every_id_has_a_family(self):
        for r in all_rules():
            assert family_of(r.id), r.id
            assert doc_url_of(r.id).startswith("docs/analysis.md#")

    def test_domain_matches_family_block(self):
        for r in all_rules():
            prefixes = [r.id[:4], r.id[:3]]
            entry = next(
                FAMILIES[p] for p in prefixes if p in FAMILIES
            )
            assert entry[1] == r.domain, r.id

    def test_every_family_block_is_populated(self):
        populated = {family_of(r.id) for r in all_rules()}
        assert populated == {name for name, _, _ in FAMILIES.values()}

    def test_rule_metadata_complete(self):
        for r in all_rules():
            assert r.summary.strip(), r.id
            assert isinstance(r.severity, Severity), r.id


class TestRegistrationValidation:
    def test_malformed_id_rejected(self):
        with pytest.raises(ValueError, match="does not match"):
            rule("BF99", Severity.ERROR, "source", "x")

    def test_unknown_family_block_rejected(self):
        with pytest.raises(ValueError, match="no declared family"):
            rule("BF999", Severity.ERROR, "source", "x")

    def test_wrong_domain_for_block_rejected(self):
        with pytest.raises(ValueError, match="belongs to domain"):
            rule("BF499", Severity.ERROR, "plan", "x")

    def test_duplicate_id_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            rule("BF401", Severity.ERROR, "determinism", "x")

    def test_unknown_domain_rejected(self):
        with pytest.raises(ValueError, match="unknown rule domain"):
            rule("BF301", Severity.ERROR, "vibes", "x")


class TestDocsCrossCheck:
    ROW = re.compile(r"^\| (BF\d{3}) \| (info|warning|error) \|",
                     re.MULTILINE)

    def table_rows(self):
        return {m.group(1): m.group(2)
                for m in self.ROW.finditer(DOCS.read_text())}

    def test_docs_list_exactly_the_registered_rules(self):
        documented = set(self.table_rows())
        registered = {r.id for r in all_rules()}
        assert documented == registered, (
            f"undocumented: {sorted(registered - documented)}; "
            f"stale docs: {sorted(documented - registered)}"
        )

    def test_docs_severities_match_defaults(self):
        rows = self.table_rows()
        for r in all_rules():
            assert rows[r.id] == r.severity.name.lower(), r.id

    def test_docs_contain_every_family_anchor(self):
        # GitHub anchors derive from headings: "### Determinism rules
        # (BF4xx)" -> determinism-rules-bf4xx.
        anchors = {
            re.sub(r"[^\w\- ]", "", h.lower()).replace(" ", "-")
            for h in re.findall(r"^#+ (.+)$", DOCS.read_text(),
                                re.MULTILINE)
        }
        for _name, _domain, anchor in FAMILIES.values():
            assert anchor in anchors, anchor


class TestTestCoverage:
    CLEAN = re.compile(
        r"== set\(\)|== \[\]|not in |_clean|_allowed|_ignored"
        r"|still_works|silently|no_errors"
    )

    def sources(self):
        return {
            p: p.read_text()
            for p in TESTS_ROOT.rglob("test_*.py")
            if p != Path(__file__)
        }

    def test_every_rule_id_referenced_by_tests(self):
        sources = self.sources()
        for r in all_rules():
            referencing = [
                p for p, text in sources.items() if r.id in text
            ]
            assert referencing, f"{r.id} appears in no test"

    def test_every_rule_has_a_negative_test_alongside(self):
        # Wherever a rule is asserted to fire, the same file (or a
        # sibling covering the same id) must also assert a clean
        # subject passes — firing-only coverage never catches false
        # positives.
        sources = self.sources()
        for r in all_rules():
            referencing = [
                text for text in sources.values() if r.id in text
            ]
            assert any(self.CLEAN.search(text) for text in referencing), \
                f"{r.id}: no clean-subject test in any covering file"
