"""Tests for the AST source linter (BF301-BF303)."""

import ast
import textwrap
from pathlib import Path

import repro
from repro.analysis import lint_source_file, lint_source_tree
from repro.analysis.findings import run_rules


def lint_snippet(code, path="src/repro/somemodule.py"):
    tree = ast.parse(textwrap.dedent(code))
    return run_rules("source", tree, path)


def rules_fired(code, path="src/repro/somemodule.py"):
    return {f.rule for f in lint_snippet(code, path)}


class TestBF301CounterLiterals:
    def test_unknown_counter_subscript(self):
        findings = lint_snippet("x = record.counters['gld_requests']")
        assert [f.rule for f in findings] == ["BF301"]
        assert "gld_requests" in findings[0].message

    def test_known_counter_subscript_clean(self):
        assert rules_fired("x = record.counters['gld_request']") == set()

    def test_bare_counters_dict(self):
        assert "BF301" in rules_fired("y = counters['not_a_counter']")

    def test_unrelated_dicts_ignored(self):
        assert rules_fired("z = totals['time_s']") == set()

    def test_counter_list_assignment(self):
        code = "MY_COUNTERS = ['ipc', 'definitely_fake']"
        findings = lint_snippet(code)
        assert [f.rule for f in findings] == ["BF301"]
        assert "definitely_fake" in findings[0].message

    def test_line_number_in_subject(self):
        findings = lint_snippet("\n\nx = counters['nope']")
        assert findings[0].subject.endswith(":3")


class TestBF302UnguardedDivisions:
    def test_unguarded_division_in_efficiency_function(self):
        code = """
        def gld_efficiency(requested, actual):
            return 100.0 * requested / actual
        """
        assert "BF302" in rules_fired(code)

    def test_ifexp_guard_is_clean(self):
        code = """
        def gld_efficiency(requested, actual):
            return 100.0 * requested / actual if actual > 0 else 0.0
        """
        assert rules_fired(code) == set()

    def test_if_statement_guard_is_clean(self):
        code = """
        def shared_efficiency(a, b):
            if b > 0:
                return a / b
            return 0.0
        """
        assert rules_fired(code) == set()

    def test_max_denominator_is_clean(self):
        code = """
        def inst_replay_overhead(issued, executed):
            return (issued - executed) / max(1, executed)
        """
        assert rules_fired(code) == set()

    def test_constant_denominator_is_clean(self):
        code = """
        def l2_read_throughput(nbytes):
            return nbytes / 1e9
        """
        assert rules_fired(code) == set()

    def test_functions_outside_scope_ignored(self):
        code = """
        def resize(a, b):
            return a / b
        """
        assert rules_fired(code) == set()


class TestBF303FloatEquality:
    TIMING_PATH = "src/repro/gpusim/timing.py"

    def test_float_equality_in_timing_module(self):
        assert "BF303" in rules_fired("done = t == 0.0", self.TIMING_PATH)

    def test_not_equal_also_flagged(self):
        assert "BF303" in rules_fired("busy = t != 1.0", self.TIMING_PATH)

    def test_int_comparison_is_clean(self):
        assert rules_fired("done = n == 0", self.TIMING_PATH) == set()

    def test_other_modules_not_in_scope(self):
        assert rules_fired("done = t == 0.0", "src/repro/ml/metrics.py") == set()


class TestTreeLint:
    def test_shipped_package_is_clean(self):
        root = Path(repro.__file__).parent
        assert lint_source_tree(root) == []

    def test_syntax_error_reported_not_raised(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def oops(:\n")
        findings = lint_source_file(bad)
        assert len(findings) == 1
        assert "cannot parse" in findings[0].message

    def test_lint_file_accepts_path(self):
        target = Path(repro.__file__).parent / "gpusim" / "counters.py"
        assert lint_source_file(target) == []
