"""Profiler sanitizer-mode tests: corrupted inputs must fail fast."""

import pytest

from repro import (
    GTX580,
    InvariantViolation,
    K20M,
    Profiler,
    ReductionKernel,
    VectorAddKernel,
)


def corrupted_profiler(mutate, arch=GTX580, problem=65536):
    """A sanitizing profiler whose cached workload model was corrupted
    after construction (``__post_init__`` blocks bad values at build
    time, so corruption is injected into the cache)."""
    kernel = VectorAddKernel()
    profiler = Profiler(arch, sanitize=True, rng=0)
    workloads = kernel.workloads(problem, arch)
    mutate(workloads)
    profiler._workload_cache[(kernel.name, problem)] = workloads
    return profiler, kernel, problem


class TestSanitizerMode:
    def test_default_is_off(self):
        assert Profiler(GTX580).sanitize is False

    def test_clean_profile_passes(self):
        for arch in (GTX580, K20M):
            records = Profiler(arch, sanitize=True, rng=0).profile(
                VectorAddKernel(), 65536, replicates=2
            )
            assert len(records) == 2

    def test_clean_shared_memory_kernel_passes(self):
        records = Profiler(GTX580, sanitize=True, rng=0).profile(
            ReductionKernel(2), 1 << 16
        )
        assert len(records) == 1

    def test_active_lanes_33_raises(self):
        # Acceptance criteria: the corrupted workload that makes
        # `repro lint` exit 1 also trips the sanitizer.
        def mutate(wls):
            wls[0].global_accesses[0].active_lanes = 33

        profiler, kernel, problem = corrupted_profiler(mutate)
        with pytest.raises(InvariantViolation) as exc_info:
            profiler.profile(kernel, problem)
        assert exc_info.value.rules() == ["BF102"]
        assert "vectorAdd" in str(exc_info.value)

    def test_hit_fraction_out_of_range_raises(self):
        def mutate(wls):
            wls[0].global_accesses[0].l1_hit_fraction = 2.0

        profiler, kernel, problem = corrupted_profiler(mutate)
        with pytest.raises(InvariantViolation) as exc_info:
            profiler.profile(kernel, problem)
        assert "BF103" in exc_info.value.rules()

    def test_register_budget_violation_raises(self):
        def mutate(wls):
            wls[0].regs_per_thread = GTX580.max_registers_per_thread + 10

        profiler, kernel, problem = corrupted_profiler(mutate)
        with pytest.raises(InvariantViolation) as exc_info:
            profiler.profile(kernel, problem)
        assert "BF107" in exc_info.value.rules()

    def test_same_corruption_passes_without_sanitize(self):
        kernel = VectorAddKernel()
        profiler = Profiler(GTX580, rng=0)  # sanitize off
        workloads = kernel.workloads(65536, GTX580)
        workloads[0].global_accesses[0].l1_hit_fraction = 2.0
        profiler._workload_cache[(kernel.name, 65536)] = workloads
        profiler.profile(kernel, 65536)  # silently mis-simulates

    def test_findings_are_structured(self):
        def mutate(wls):
            wls[0].global_accesses[0].active_lanes = 33
            wls[0].memory_ilp = 0.0

        profiler, kernel, problem = corrupted_profiler(mutate)
        with pytest.raises(InvariantViolation) as exc_info:
            profiler.profile(kernel, problem)
        findings = exc_info.value.findings
        assert {f.rule for f in findings} == {"BF102", "BF109"}
        assert all(f.severity.name == "ERROR" for f in findings)

    def test_campaigns_can_sanitize(self):
        # The profiler hook composes with the campaign layer unchanged.
        from repro.profiling import Campaign

        campaign = Campaign(VectorAddKernel(), GTX580, rng=0)
        campaign.profiler.sanitize = True
        result = campaign.run(problems=[1 << 14, 1 << 15])
        assert len(result.records) == 2
