"""Per-rule tests for the counter-catalogue linter (BF001-BF008).

Each rule gets a positive fixture (the shipped catalogue is clean) and
negative fixtures built by corrupting a copy of CATALOGUE.
"""

from dataclasses import replace

from repro.analysis import lint_catalogue
from repro.gpusim.counters import CATALOGUE, CounterSpec


def corrupted(name, **changes):
    bad = dict(CATALOGUE)
    bad[name] = replace(bad[name], **changes)
    return bad


def rules_fired(catalogue):
    return {f.rule for f in lint_catalogue(catalogue)}


class TestShippedCatalogue:
    def test_is_clean(self):
        assert lint_catalogue() == []
        assert lint_catalogue(CATALOGUE) == []


class TestBF001FamilyTags:
    def test_unknown_family(self):
        assert "BF001" in rules_fired(corrupted("ipc", families=("maxwell",)))

    def test_empty_families(self):
        assert "BF001" in rules_fired(corrupted("ipc", families=()))

    def test_duplicate_families(self):
        assert "BF001" in rules_fired(
            corrupted("ipc", families=("fermi", "fermi"))
        )

    def test_cpu_mixed_with_gpu(self):
        assert "BF001" in rules_fired(
            corrupted("instructions", families=("cpu", "fermi"))
        )


class TestBF002Kind:
    def test_invalid_kind(self):
        bad = corrupted("shared_load", kind="gauge")
        assert "BF002" in rules_fired(bad)


class TestBF003Units:
    def test_unit_outside_vocabulary(self):
        assert "BF003" in rules_fired(corrupted("gld_throughput", unit="MB/s"))

    def test_event_with_metric_unit(self):
        assert "BF003" in rules_fired(corrupted("gld_request", unit="percent"))


class TestBF004FamilyExclusives:
    def test_kepler_tagged_l1_hit_counter(self):
        # The acceptance-criteria defect: a Fermi L1 event leaking into
        # Kepler feature vectors.
        bad = corrupted("l1_global_load_hit", families=("kepler",))
        assert "BF004" in rules_fired(bad)

    def test_bank_conflict_counter_tagged_both(self):
        bad = corrupted("l1_shared_bank_conflict",
                        families=("fermi", "kepler"))
        assert "BF004" in rules_fired(bad)

    def test_incomplete_replay_pairing(self):
        bad = dict(CATALOGUE)
        del bad["shared_store_replay"]
        assert "BF004" in rules_fired(bad)


class TestBF005PredictorFlags:
    def test_response_proxy_flagged_predictor(self):
        assert "BF005" in rules_fired(corrupted("active_cycles",
                                                predictor=True))

    def test_undeclared_predictor_exclusion(self):
        assert "BF005" in rules_fired(corrupted("ipc", predictor=False))


class TestBF006MetricDependencies:
    def test_metric_without_dependency_entry(self):
        bad = dict(CATALOGUE)
        bad["mystery_metric"] = CounterSpec(
            "mystery_metric", "made up", "metric", ("fermi",), "ratio"
        )
        assert "BF006" in rules_fired(bad)

    def test_dependency_not_available_on_family(self):
        # Narrow inst_executed to Fermi: every both-family metric that
        # depends on it loses its Kepler leg.
        bad = corrupted("inst_executed", families=("fermi",))
        assert "BF006" in rules_fired(bad)

    def test_event_with_dependency_entry(self):
        bad = dict(CATALOGUE)
        bad["ipc"] = replace(bad["ipc"], kind="event", unit="count")
        assert "BF006" in rules_fired(bad)


class TestBF007Table1:
    def test_missing_table1_counter(self):
        bad = dict(CATALOGUE)
        del bad["achieved_occupancy"]
        fired = rules_fired(bad)
        assert "BF007" in fired


class TestBF008Hygiene:
    def test_uppercase_name(self):
        bad = dict(CATALOGUE)
        spec = CounterSpec("IPC", "shouty", "metric", ("fermi",), "ratio")
        bad["IPC"] = spec
        fired = {f.rule for f in lint_catalogue(bad)}
        assert "BF008" in fired

    def test_empty_meaning(self):
        assert "BF008" in rules_fired(corrupted("branch", meaning="  "))

    def test_key_spec_mismatch(self):
        bad = dict(CATALOGUE)
        bad["branch"] = replace(bad["branch"], name="branches_gpu")
        assert "BF008" in rules_fired(bad)
