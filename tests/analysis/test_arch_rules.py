"""Per-rule tests for the architecture-description validator (BF2xx)."""

from repro.analysis import lint_arch
from repro.gpusim import GTX480, GTX580, K20M


def rules_fired(arch):
    return {f.rule for f in lint_arch(arch)}


class TestShippedArchs:
    def test_all_clean(self):
        for arch in (GTX480, GTX580, K20M):
            assert lint_arch(arch) == [], arch.name


class TestBF201Family:
    def test_unknown_family(self):
        assert "BF201" in rules_fired(GTX580.with_overrides(family="maxwell"))


class TestBF202Table2:
    def test_zero_bandwidth(self):
        assert "BF202" in rules_fired(
            GTX580.with_overrides(mem_bandwidth_gbs=0.0)
        )

    def test_negative_clock(self):
        assert "BF202" in rules_fired(GTX580.with_overrides(clock_ghz=-1.4))


class TestBF203Geometry:
    def test_nonstandard_warp_size(self):
        assert "BF203" in rules_fired(GTX580.with_overrides(warp_size=64))

    def test_block_larger_than_sm(self):
        bad = GTX580.with_overrides(max_threads_per_block=4096)
        assert "BF203" in rules_fired(bad)

    def test_zero_shared_banks(self):
        assert "BF203" in rules_fired(GTX580.with_overrides(shared_banks=0))


class TestBF204MemoryGeometry:
    def test_segment_larger_than_line(self):
        bad = GTX580.with_overrides(global_mem_segment_bytes=256)
        assert "BF204" in rules_fired(bad)

    def test_l2_slower_than_dram(self):
        bad = GTX580.with_overrides(l2_latency_cycles=500.0)
        assert "BF204" in rules_fired(bad)


class TestBF205MachineMetrics:
    def test_shipped_vector_complete(self):
        for arch in (GTX480, GTX580, K20M):
            assert set(arch.machine_metrics()) == {
                "wsched", "freq", "smp", "rco", "mbw", "l1c", "l2c"
            }


class TestBF206FamilyFlags:
    def test_kepler_with_l1_global_caching(self):
        bad = K20M.with_overrides(l1_caches_global_loads=True)
        assert "BF206" in rules_fired(bad)

    def test_static_power_above_tdp(self):
        bad = GTX580.with_overrides(static_power_w=300.0)
        assert "BF206" in rules_fired(bad)

    def test_fermi_l1_caching_is_fine(self):
        assert "BF206" not in rules_fired(GTX580)
