"""Tests for the artifact schema registry (BF601-BF605)."""

import json
from pathlib import Path

import pytest

from repro.analysis import (
    SCHEMAS,
    Severity,
    lint_artifacts,
    validate_artifact,
    validate_fields,
)
from repro.analysis.schemas import load_artifact, schema_for_path
from repro.gpusim.arch import GTX580
from repro.kernels import kernel_registry
from repro.obs.history import append_history, read_history
from repro.obs.log import EventLog, read_events
from repro.obs.manifest import Manifest, build_manifest
from repro.profiling.campaign import Campaign
from repro.profiling.repository import ProfileRepository

REPO_ROOT = Path(__file__).resolve().parents[2]
VECTOR_ADD = kernel_registry()["vectorAdd"]


def rules_fired(findings):
    return {f.rule for f in findings}


def write_manifest(tmp_path, mutate=None):
    manifest = build_manifest(
        kernel="vectorAdd", arch="GTX580", seed=7, n_runs=3,
        trace_records=[], metrics={},
    )
    path = tmp_path / "manifest.json"
    manifest.write(path)
    if mutate is not None:
        data = json.loads(path.read_text())
        mutate(data)
        path.write_text(json.dumps(data))
    return path


def run_campaign(tmp_path, checkpoint=None):
    campaign = Campaign(VECTOR_ADD, GTX580, rng=0)
    return campaign.run(
        problems=VECTOR_ADD.default_sweep()[:3], checkpoint=checkpoint
    )


class TestShippedFormatsValidate:
    def test_manifest(self, tmp_path):
        assert validate_artifact(write_manifest(tmp_path)) == []

    def test_event_log_sink(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path)
        log.emit("campaign.start", kernel="vectorAdd")
        log.emit("campaign.finish", n=3)
        assert validate_artifact(path) == []

    def test_checkpoint_journal(self, tmp_path):
        path = tmp_path / "checkpoint.jsonl"
        run_campaign(tmp_path, checkpoint=path)
        assert validate_artifact(path) == []

    def test_repository_meta(self, tmp_path):
        repo = ProfileRepository(tmp_path / "repo")
        cdir = repo.save(run_campaign(tmp_path))
        assert validate_artifact(cdir / "meta.json") == []

    def test_bench_baseline(self):
        assert validate_artifact(REPO_ROOT / "BENCH_core.json") == []

    def test_committed_history_journal(self):
        path = REPO_ROOT / "benchmarks" / "history.jsonl"
        assert validate_artifact(path) == []

    def test_fresh_history_append(self, tmp_path):
        bench = json.loads((REPO_ROOT / "BENCH_core.json").read_text())
        path = append_history(tmp_path / "history.jsonl", bench)
        assert validate_artifact(path) == []

    def test_lint_artifacts_batches(self, tmp_path):
        paths = [write_manifest(tmp_path),
                 REPO_ROOT / "BENCH_core.json"]
        assert lint_artifacts(paths) == []


class TestBF601SchemaTag:
    def test_unknown_tag(self, tmp_path):
        path = tmp_path / "thing.json"
        path.write_text(json.dumps({"schema": "mystery/9"}))
        findings = validate_artifact(path)
        assert "BF601" in rules_fired(findings)
        tagged = [f for f in findings if f.rule == "BF601"]
        assert "mystery/9" in tagged[0].message

    def test_missing_tag_unmatched_filename(self, tmp_path):
        path = tmp_path / "thing.json"
        path.write_text(json.dumps({"kernel": "vectorAdd"}))
        assert "BF601" in rules_fired(validate_artifact(path))

    def test_tagless_format_matched_by_filename(self, tmp_path):
        assert schema_for_path("some/dir/meta.json") is \
            SCHEMAS["repro-campaign-meta/1"]

    def test_mixed_tags_in_jsonl(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path)
        log.emit("ok")
        with open(path, "a") as fh:
            line = dict(log.events[0].to_dict(), schema="repro-bench/1")
            fh.write(json.dumps(line) + "\n")
        assert "BF601" in rules_fired(validate_artifact(path))


class TestBF602MissingFields:
    def test_renamed_field_is_finding_not_exception(self, tmp_path):
        def rename(data):
            data["kern"] = data.pop("kernel")

        findings = validate_artifact(write_manifest(tmp_path, rename))
        fired = rules_fired(findings)
        assert "BF602" in fired and "BF603" in fired
        missing = [f for f in findings if f.rule == "BF602"]
        assert "kernel" in missing[0].message
        drift = [f for f in findings if f.rule == "BF603"]
        assert any("kern" in f.message for f in drift)

    def test_optional_fields_may_be_absent(self, tmp_path):
        def drop_optional(data):
            data.pop("checksums")
            data.pop("git_rev")

        path = write_manifest(tmp_path, drop_optional)
        assert validate_artifact(path) == []


class TestBF603Drift:
    def test_unknown_field_is_warning(self, tmp_path):
        def add(data):
            data["vibe"] = "good"

        findings = validate_artifact(write_manifest(tmp_path, add))
        assert [f.rule for f in findings] == ["BF603"]
        assert findings[0].severity == Severity.WARNING

    def test_type_mismatch_is_error(self, tmp_path):
        def mistype(data):
            data["n_runs"] = "three"

        findings = validate_artifact(write_manifest(tmp_path, mistype))
        assert [f.rule for f in findings] == ["BF603"]
        assert findings[0].severity == Severity.ERROR

    def test_bool_is_not_an_int(self, tmp_path):
        def boolify(data):
            data["seed"] = True

        findings = validate_artifact(write_manifest(tmp_path, boolify))
        assert [f.rule for f in findings] == ["BF603"]
        assert findings[0].severity == Severity.ERROR

    def test_nullable_fields_accept_null(self, tmp_path):
        def nullify(data):
            data["tag"] = None
            data["seed"] = None

        path = write_manifest(tmp_path, nullify)
        assert validate_artifact(path) == []


class TestBF604Parse:
    def test_invalid_json_document(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        findings = validate_artifact(path)
        assert rules_fired(findings) == {"BF604"}
        assert findings[0].severity == Severity.ERROR

    def test_torn_trailing_line_is_warning(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path)
        log.emit("ok")
        with open(path, "a") as fh:
            fh.write('{"schema": "repro-events/1", "kind": "tru')
        findings = [
            f for f in validate_artifact(path) if f.rule == "BF604"
        ]
        assert len(findings) == 1
        assert findings[0].severity == Severity.WARNING

    def test_torn_mid_file_is_error(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path)
        log.emit("ok")
        good = path.read_text()
        path.write_text(good + '{"torn\n' + good)
        findings = [
            f for f in validate_artifact(path) if f.rule == "BF604"
        ]
        assert len(findings) == 1
        assert findings[0].severity == Severity.ERROR


class TestBF605JournalStructure:
    def read_checkpoint(self, tmp_path):
        path = tmp_path / "checkpoint.jsonl"
        run_campaign(tmp_path, checkpoint=path)
        return path, path.read_text().splitlines()

    def test_entry_without_body_flagged(self, tmp_path):
        path, lines = self.read_checkpoint(tmp_path)
        path.write_text("\n".join(lines) + '\n{"index": 99}\n')
        assert "BF605" in rules_fired(validate_artifact(path))

    def test_entry_with_both_bodies_flagged(self, tmp_path):
        path, lines = self.read_checkpoint(tmp_path)
        entry = json.loads(lines[1])
        entry["quarantined"] = {"problem": [1], "error": "x"}
        lines[1] = json.dumps(entry)
        path.write_text("\n".join(lines) + "\n")
        assert "BF605" in rules_fired(validate_artifact(path))

    def test_entry_lines_not_held_to_header_schema(self, tmp_path):
        # Journal entries carry no schema tag; only the header does.
        path, _lines = self.read_checkpoint(tmp_path)
        assert validate_artifact(path) == []


class TestReaderWiring:
    def test_manifest_from_json_names_rule(self, tmp_path):
        path = write_manifest(
            tmp_path, lambda d: d.update(kern=d.pop("kernel"))
        )
        with pytest.raises(ValueError, match="BF602"):
            Manifest.read(path)

    def test_manifest_round_trip_still_works(self, tmp_path):
        path = write_manifest(tmp_path)
        assert Manifest.read(path).kernel == "vectorAdd"

    def test_read_events_names_rule(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path)
        log.emit("ok")
        data = log.events[0].to_dict()
        del data["seq"]
        with open(path, "a") as fh:
            fh.write(json.dumps(data) + "\n")
        with pytest.raises(ValueError, match="BF602"):
            read_events(path)

    def test_read_events_round_trip_still_works(self, tmp_path):
        path = tmp_path / "events.jsonl"
        EventLog(path).emit("ok", n=1)
        events = read_events(path)
        assert len(events) == 1 and events[0].kind == "ok"

    def test_read_history_names_rule(self, tmp_path):
        bench = json.loads((REPO_ROOT / "BENCH_core.json").read_text())
        path = append_history(tmp_path / "history.jsonl", bench)
        line = json.loads(path.read_text())
        del line["provenance"]
        path.write_text(json.dumps(line) + "\n")
        with pytest.raises(ValueError, match="BF602"):
            read_history(path)

    def test_repository_verify_reports_drift(self, tmp_path):
        repo = ProfileRepository(tmp_path / "repo")
        cdir = repo.save(run_campaign(tmp_path))
        meta_path = cdir / "meta.json"
        data = json.loads(meta_path.read_text())
        data["surprise"] = 1
        meta_path.write_text(json.dumps(data))
        findings = repo.verify(repo.keys()[0])
        assert any("BF603" in f and "legacy/drift" in f
                   for f in findings)

    def test_repository_verify_reports_renamed_field(self, tmp_path):
        repo = ProfileRepository(tmp_path / "repo")
        cdir = repo.save(run_campaign(tmp_path))
        manifest_path = cdir / "manifest.json"
        data = json.loads(manifest_path.read_text())
        data["kern"] = data.pop("kernel")
        manifest_path.write_text(json.dumps(data))
        findings = repo.verify(repo.keys()[0])
        assert any("BF602" in f and "corrupt" in f for f in findings)

    def test_intact_repository_verifies_clean(self, tmp_path):
        repo = ProfileRepository(tmp_path / "repo")
        repo.save(run_campaign(tmp_path))
        assert repo.verify(repo.keys()[0]) == []


class TestValidateFields:
    def test_clean_payload(self):
        manifest = build_manifest(
            kernel="k", arch="a", trace_records=[], metrics={},
        )
        data = json.loads(manifest.to_json())
        assert validate_fields(data, "repro-manifest/1") == []

    def test_unknown_tag(self):
        problems = validate_fields({}, "nope/1")
        assert problems and problems[0].startswith("BF601")

    def test_entry_specs_used_for_journal_entries(self):
        good = {"index": 0, "records": []}
        assert validate_fields(
            good, "repro-checkpoint/1", entry=True
        ) == []
        bad = {"records": []}
        problems = validate_fields(
            bad, "repro-checkpoint/1", entry=True
        )
        assert problems and problems[0].startswith("BF602")


class TestRepositoryV2Artifacts:
    """The four formats added with the sharded layout all validate."""

    def _v2_repo(self, tmp_path):
        repo = ProfileRepository(tmp_path / "repo")
        cdir = repo.save(run_campaign(tmp_path))
        return repo, cdir

    def test_registered(self):
        for tag in ("repro-repo/1", "repro-shard/1", "repro-matrix/1",
                    "repro-forest-state/1"):
            assert tag in SCHEMAS

    def test_repo_marker(self, tmp_path):
        repo, _ = self._v2_repo(tmp_path)
        assert validate_artifact(repo.root / "repo.json") == []

    def test_shard_manifest(self, tmp_path):
        repo, cdir = self._v2_repo(tmp_path)
        assert validate_artifact(cdir.parent / "shard.json") == []

    def test_matrix_header(self, tmp_path):
        _, cdir = self._v2_repo(tmp_path)
        assert validate_artifact(cdir / "matrix.json") == []

    def test_forest_state(self, tmp_path):
        from repro.ml import fit_from_repo
        from repro.profiling.repository import CampaignKey

        repo, _ = self._v2_repo(tmp_path)
        state = tmp_path / "state.json"
        fit_from_repo(
            repo, CampaignKey("vectorAdd", "GTX580"),
            state_path=state, n_trees=3, seed=0,
        )
        assert validate_artifact(state) == []
