"""Tests for the finding/rule framework."""

import pytest

from repro.analysis import (
    Finding,
    InvariantViolation,
    Severity,
    all_rules,
    get_rule,
    max_severity,
    rules_for,
)


class TestSeverity:
    def test_ordering(self):
        assert Severity.ERROR > Severity.WARNING > Severity.INFO

    def test_parse(self):
        assert Severity.parse("error") is Severity.ERROR
        assert Severity.parse(" Warning ") is Severity.WARNING

    def test_parse_unknown(self):
        with pytest.raises(ValueError, match="unknown severity"):
            Severity.parse("fatal")


class TestFinding:
    def test_format_includes_rule_and_subject(self):
        f = Finding("BF001", Severity.ERROR, "boom", subject="ipc")
        assert "BF001" in f.format()
        assert "[ipc]" in f.format()
        assert "ERROR" in f.format()

    def test_as_dict_roundtrips_severity_lowercase(self):
        f = Finding("BF101", Severity.WARNING, "m", context={"limit": 32})
        d = f.as_dict()
        assert d["severity"] == "warning"
        assert d["context"] == {"limit": 32}


class TestRegistry:
    def test_rule_ids_are_unique_and_sorted(self):
        ids = [r.id for r in all_rules()]
        assert len(ids) == len(set(ids))
        assert ids == sorted(ids)

    def test_every_domain_has_rules(self):
        for domain in ("catalogue", "workload", "arch", "counters", "source"):
            assert rules_for(domain), f"no rules registered for {domain}"

    def test_get_rule(self):
        assert get_rule("BF001").domain == "catalogue"
        with pytest.raises(KeyError):
            get_rule("BF999")

    def test_unknown_domain_rejected(self):
        with pytest.raises(ValueError):
            rules_for("quantum")


class TestMaxSeverity:
    def test_empty_is_none(self):
        assert max_severity([]) is None

    def test_picks_worst(self):
        findings = [
            Finding("a", Severity.INFO, "i"),
            Finding("b", Severity.ERROR, "e"),
            Finding("c", Severity.WARNING, "w"),
        ]
        assert max_severity(findings) is Severity.ERROR


class TestInvariantViolation:
    def test_carries_findings_and_rules(self):
        findings = [
            Finding("BF102", Severity.ERROR, "lanes"),
            Finding("BF106", Severity.ERROR, "mix"),
        ]
        exc = InvariantViolation(findings, subject="wl")
        assert exc.rules() == ["BF102", "BF106"]
        assert list(exc) == findings
        assert "wl" in str(exc) and "BF102" in str(exc)

    def test_message_truncates_long_lists(self):
        findings = [Finding("BF102", Severity.ERROR, f"f{i}") for i in range(7)]
        assert "(+4 more)" in str(InvariantViolation(findings))
