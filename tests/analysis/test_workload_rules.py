"""Per-rule tests for workload-model and counter-vector invariants.

Workload corruption fixtures mutate fields *after* construction —
``__post_init__`` rejects them at build time (see test_workload.py),
but the linter/sanitizer must still catch models corrupted later.
"""

import numpy as np
import pytest

from repro import GTX580, K20M, VectorAddKernel
from repro.analysis import lint_counters, lint_workload
from repro.gpusim.noise import Perturbation
from repro.gpusim.simulator import GPUSimulator, finalize_counters, sum_raw
from repro.gpusim.workload import (
    GlobalAccessPattern,
    KernelWorkload,
    SharedAccessPattern,
)


@pytest.fixture
def wl():
    return KernelWorkload(
        name="fixture",
        grid_blocks=64,
        threads_per_block=256,
        regs_per_thread=20,
        shared_mem_per_block=4096,
        arithmetic_instructions=4096,
        fma_instructions=1024,
        branches=512,
        divergent_branches=16,
        other_instructions=64,
        global_accesses=[GlobalAccessPattern("load", 2048)],
        shared_accesses=[SharedAccessPattern("load", 1024,
                                             conflict_degree=2.0)],
    )


def rules_fired(wl, arch=GTX580):
    return {f.rule for f in lint_workload(wl, arch)}


class TestCleanWorkloads:
    def test_fixture_is_clean(self, wl):
        assert lint_workload(wl, GTX580) == []
        assert lint_workload(wl, K20M) == []

    def test_every_registered_kernel_is_clean(self):
        from repro.kernels import kernel_registry

        for arch in (GTX580, K20M):
            for kernel in kernel_registry().values():
                try:
                    workloads = kernel.workloads(
                        kernel.default_sweep()[0], arch
                    )
                except (AttributeError, ValueError):
                    continue
                for w in workloads:
                    assert lint_workload(w, arch) == [], (kernel.name, w.name)


class TestWorkloadRules:
    def test_bf101_zero_blocks(self, wl):
        wl.grid_blocks = 0
        assert "BF101" in rules_fired(wl)

    def test_bf101_oversized_block(self, wl):
        wl.threads_per_block = 2048
        assert "BF101" in rules_fired(wl)

    def test_bf102_active_lanes_33(self, wl):
        # The acceptance-criteria defect.
        wl.global_accesses[0].active_lanes = 33
        assert "BF102" in rules_fired(wl)

    def test_bf102_negative_stride(self, wl):
        wl.global_accesses[0].stride_words = -1
        assert "BF102" in rules_fired(wl)

    def test_bf102_bad_word_bytes(self, wl):
        wl.global_accesses[0].word_bytes = 3
        assert "BF102" in rules_fired(wl)

    def test_bf103_hit_fraction_above_one(self, wl):
        wl.global_accesses[0].l1_hit_fraction = 1.5
        assert "BF103" in rules_fired(wl)

    def test_bf103_negative_footprint(self, wl):
        wl.global_accesses[0].unique_bytes = -4
        assert "BF103" in rules_fired(wl)

    def test_bf104_bad_trace_shape(self, wl):
        wl.global_accesses[0].addresses = np.zeros((4, 16), dtype=np.int64)
        assert "BF104" in rules_fired(wl)

    def test_bf105_conflict_degree_above_banks(self, wl):
        wl.shared_accesses[0].conflict_degree = 64.0
        assert "BF105" in rules_fired(wl)

    def test_bf106_divergent_exceeds_branches(self, wl):
        wl.divergent_branches = wl.branches + 1
        assert "BF106" in rules_fired(wl)

    def test_bf106_fma_exceeds_arithmetic(self, wl):
        wl.fma_instructions = wl.arithmetic_instructions + 1
        assert "BF106" in rules_fired(wl)

    def test_bf106_nan_active_threads(self, wl):
        wl.avg_active_threads = float("nan")
        assert "BF106" in rules_fired(wl)

    def test_bf107_register_budget(self, wl):
        wl.regs_per_thread = GTX580.max_registers_per_thread + 1
        assert "BF107" in rules_fired(wl)

    def test_bf107_shared_memory_budget(self, wl):
        wl.shared_mem_per_block = GTX580.shared_mem_per_sm + 1
        assert "BF107" in rules_fired(wl)

    def test_bf108_empty_launch(self, wl):
        wl.arithmetic_instructions = 0
        wl.fma_instructions = 0
        wl.branches = 0
        wl.divergent_branches = 0
        wl.other_instructions = 0
        wl.global_accesses = []
        wl.shared_accesses = []
        assert "BF108" in rules_fired(wl)

    def test_bf109_memory_ilp_below_one(self, wl):
        wl.memory_ilp = 0.5
        assert "BF109" in rules_fired(wl)


class TestCounterRules:
    @pytest.fixture
    def vector(self):
        wls = VectorAddKernel().workloads(65536, GTX580)
        sim = GPUSimulator(GTX580)
        profiles = [sim.launch(w, Perturbation.none()) for w in wls]
        values, _ = finalize_counters(GTX580, sum_raw(profiles))
        return dict(values)

    def test_simulated_vector_is_clean(self, vector):
        assert lint_counters(vector, "fermi") == []

    def test_bf120_transactions_below_requests(self, vector):
        vector["global_store_transaction"] = vector["gst_request"] / 2
        fired = {f.rule for f in lint_counters(vector, "fermi")}
        assert "BF120" in fired

    def test_bf120_l1_lines_below_loads(self, vector):
        vector["l1_global_load_hit"] = 0.0
        vector["l1_global_load_miss"] = 0.0
        fired = {f.rule for f in lint_counters(vector, "fermi")}
        assert "BF120" in fired

    def test_bf121_issued_below_executed(self, vector):
        vector["inst_issued"] = vector["inst_executed"] - 1
        fired = {f.rule for f in lint_counters(vector, "fermi")}
        assert "BF121" in fired

    def test_bf122_divergent_exceeds_branch(self, vector):
        vector["divergent_branch"] = vector["branch"] + 1
        fired = {f.rule for f in lint_counters(vector, "fermi")}
        assert "BF122" in fired

    def test_bf123_negative_and_nan(self, vector):
        vector["shared_load"] = -1.0
        vector["ipc"] = float("nan")
        findings = [f for f in lint_counters(vector, "fermi")
                    if f.rule == "BF123"]
        assert {f.subject for f in findings} == {"shared_load", "ipc"}

    def test_bf124_fermi_counter_in_kepler_run(self, vector):
        # The motivating failure mode: l1_global_load_hit leaking into
        # a Kepler feature vector.
        findings = [f for f in lint_counters(vector, "kepler")
                    if f.rule == "BF124"]
        assert any("l1_global_load_hit" == f.subject for f in findings)

    def test_bf124_unknown_counter(self, vector):
        vector["gld_requests"] = 1.0  # typo'd name
        fired = {f.rule for f in lint_counters(vector, "fermi")}
        assert "BF124" in fired

    def test_bf125_occupancy_above_one(self, vector):
        vector["achieved_occupancy"] = 1.2
        findings = lint_counters(vector, "fermi")
        assert any(f.rule == "BF125" for f in findings)
        # range breaches are warnings, not errors
        assert all(f.severity.name == "WARNING" for f in findings
                   if f.rule == "BF125")
