"""Whole-tree runner and `repro lint` CLI tests."""

import json
from dataclasses import replace

import pytest

from repro.analysis import lint_tree, rule_table, summarize
from repro.cli import main
from repro.gpusim.counters import CATALOGUE


class TestLintTree:
    def test_shipped_tree_is_clean(self):
        assert lint_tree() == []

    def test_select_restricts_rules(self):
        # BF1xx selection with a seeded catalogue defect: the defect is
        # outside the selection, so the run stays clean.
        findings = lint_tree(select=["BF9"])
        assert findings == []

    def test_seeded_catalogue_defect_found(self, monkeypatch):
        monkeypatch.setitem(
            CATALOGUE, "l1_global_load_hit",
            replace(CATALOGUE["l1_global_load_hit"], families=("kepler",)),
        )
        findings = lint_tree(include_launches=False, include_source=False)
        assert "BF004" in {f.rule for f in findings}

    def test_findings_sorted_most_severe_first(self, monkeypatch):
        monkeypatch.setitem(
            CATALOGUE, "branch",
            replace(CATALOGUE["branch"], meaning="", families=("maxwell",)),
        )
        findings = lint_tree(include_launches=False, include_source=False)
        severities = [f.severity for f in findings]
        assert severities == sorted(severities, reverse=True)


class TestSummarize:
    def test_clean_summary(self):
        assert "clean: 0 findings" in summarize([])

    def test_rule_table_covers_all_rules(self):
        rows = rule_table()
        assert len(rows) >= 20
        assert all(rid.startswith("BF") for rid, *_ in rows)


class TestLintCLI:
    def test_shipped_tree_exits_zero(self, capsys):
        assert main(["lint"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_json_format(self, capsys):
        assert main(["lint", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"] == []
        assert payload["max_severity"] is None
        assert payload["rules_run"] >= 20

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "BF001" in out and "BF301" in out

    def test_seeded_defect_exits_one_with_rule_id(self, capsys, monkeypatch):
        # Acceptance criteria: a Kepler-tagged l1_global_load_hit makes
        # `repro lint` exit 1 and report BF004.
        monkeypatch.setitem(
            CATALOGUE, "l1_global_load_hit",
            replace(CATALOGUE["l1_global_load_hit"], families=("kepler",)),
        )
        rc = main(["lint", "--format", "json", "--no-launches", "--no-source"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert payload["max_severity"] == "error"
        assert "BF004" in {f["rule"] for f in payload["findings"]}

    def test_fail_on_error_ignores_warnings(self, capsys, monkeypatch):
        monkeypatch.setitem(
            CATALOGUE, "branch",
            replace(CATALOGUE["branch"], meaning=""),  # BF008, a warning
        )
        assert main(["lint", "--no-launches", "--no-source",
                     "--fail-on", "error"]) == 0
        capsys.readouterr()
        assert main(["lint", "--no-launches", "--no-source"]) == 1

    def test_select_filters(self, capsys, monkeypatch):
        monkeypatch.setitem(
            CATALOGUE, "branch",
            replace(CATALOGUE["branch"], meaning=""),  # BF008 only
        )
        assert main(["lint", "--no-launches", "--no-source",
                     "--select", "BF00"]) == 1
        capsys.readouterr()
        assert main(["lint", "--no-launches", "--no-source",
                     "--select", "BF2"]) == 0


@pytest.mark.parametrize("fmt", ["text", "json"])
def test_lint_parser_defaults(fmt):
    from repro.cli import build_parser

    args = build_parser().parse_args(["lint", "--format", fmt])
    assert args.fail_on == "warning"
    assert args.format == fmt
