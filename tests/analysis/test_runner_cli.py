"""Whole-tree runner and `repro lint` CLI tests."""

import json
from dataclasses import replace

import pytest

from repro.analysis import (
    Finding,
    Severity,
    as_json,
    exit_code,
    lint_tree,
    rule_table,
    summarize,
)
from repro.cli import main
from repro.gpusim.counters import CATALOGUE


class TestLintTree:
    def test_shipped_tree_is_clean(self):
        assert lint_tree() == []

    def test_select_restricts_rules(self):
        # BF1xx selection with a seeded catalogue defect: the defect is
        # outside the selection, so the run stays clean.
        findings = lint_tree(select=["BF9"])
        assert findings == []

    def test_seeded_catalogue_defect_found(self, monkeypatch):
        monkeypatch.setitem(
            CATALOGUE, "l1_global_load_hit",
            replace(CATALOGUE["l1_global_load_hit"], families=("kepler",)),
        )
        findings = lint_tree(include_launches=False, include_source=False)
        assert "BF004" in {f.rule for f in findings}

    def test_findings_sorted_most_severe_first(self, monkeypatch):
        monkeypatch.setitem(
            CATALOGUE, "branch",
            replace(CATALOGUE["branch"], meaning="", families=("maxwell",)),
        )
        findings = lint_tree(include_launches=False, include_source=False)
        severities = [f.severity for f in findings]
        assert severities == sorted(severities, reverse=True)


class TestSummarize:
    def test_clean_summary(self):
        assert "clean: 0 findings" in summarize([])

    def test_rule_table_covers_all_rules(self):
        rows = rule_table()
        assert len(rows) >= 20
        assert all(rid.startswith("BF") for rid, *_ in rows)


class TestLintCLI:
    def test_shipped_tree_exits_zero(self, capsys):
        assert main(["lint"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_json_format(self, capsys):
        assert main(["lint", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"] == []
        assert payload["max_severity"] is None
        assert payload["rules_run"] >= 20

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "BF001" in out and "BF301" in out

    def test_seeded_defect_exits_one_with_rule_id(self, capsys, monkeypatch):
        # Acceptance criteria: a Kepler-tagged l1_global_load_hit makes
        # `repro lint` exit 1 and report BF004.
        monkeypatch.setitem(
            CATALOGUE, "l1_global_load_hit",
            replace(CATALOGUE["l1_global_load_hit"], families=("kepler",)),
        )
        rc = main(["lint", "--format", "json", "--no-launches", "--no-source"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert payload["max_severity"] == "error"
        assert "BF004" in {f["rule"] for f in payload["findings"]}

    def test_fail_on_error_ignores_warnings(self, capsys, monkeypatch):
        monkeypatch.setitem(
            CATALOGUE, "branch",
            replace(CATALOGUE["branch"], meaning=""),  # BF008, a warning
        )
        assert main(["lint", "--no-launches", "--no-source",
                     "--fail-on", "error"]) == 0
        capsys.readouterr()
        assert main(["lint", "--no-launches", "--no-source"]) == 1

    def test_select_filters(self, capsys, monkeypatch):
        monkeypatch.setitem(
            CATALOGUE, "branch",
            replace(CATALOGUE["branch"], meaning=""),  # BF008 only
        )
        assert main(["lint", "--no-launches", "--no-source",
                     "--select", "BF00"]) == 1
        capsys.readouterr()
        assert main(["lint", "--no-launches", "--no-source",
                     "--select", "BF2"]) == 0


def seeded_findings():
    """One finding per severity, deliberately out of output order."""
    return [
        Finding("BF403", Severity.WARNING, "warn",
                subject="src/repro/b.py:7"),
        Finding("BF505", Severity.INFO, "info", subject="k@a"),
        Finding("BF402", Severity.ERROR, "err",
                subject="src/repro/b.py:3"),
        Finding("BF402", Severity.ERROR, "err",
                subject="src/repro/a.py:12"),
    ]


class TestJsonOutput:
    def test_output_is_deterministic(self, monkeypatch):
        monkeypatch.setitem(
            CATALOGUE, "branch",
            replace(CATALOGUE["branch"], meaning="", families=("maxwell",)),
        )
        findings = lint_tree(include_launches=False, include_source=False)
        assert as_json(findings, n_rules=47) \
            == as_json(list(reversed(findings)), n_rules=47)

    def test_findings_sorted_by_rule_file_line(self):
        payload = json.loads(as_json(seeded_findings(), n_rules=4))
        order = [
            (f["rule"], f["subject"]) for f in payload["findings"]
        ]
        assert order == [
            ("BF402", "src/repro/a.py:12"),
            ("BF402", "src/repro/b.py:3"),
            ("BF403", "src/repro/b.py:7"),
            ("BF505", "k@a"),
        ]

    def test_line_numbers_sort_numerically(self):
        findings = [
            Finding("BF402", Severity.ERROR, "m",
                    subject=f"src/repro/a.py:{n}")
            for n in (100, 9, 20)
        ]
        payload = json.loads(as_json(findings, n_rules=1))
        subjects = [f["subject"] for f in payload["findings"]]
        assert subjects == [
            "src/repro/a.py:9", "src/repro/a.py:20",
            "src/repro/a.py:100",
        ]

    def test_findings_carry_rule_metadata(self):
        payload = json.loads(as_json(seeded_findings(), n_rules=4))
        for f in payload["findings"]:
            assert f["severity"] in ("info", "warning", "error")
            assert f["family"] in (
                "determinism", "campaign-plan", "artifact-schema",
            )
            assert f["doc_url"].startswith("docs/analysis.md#")

    def test_max_severity_reported(self):
        payload = json.loads(as_json(seeded_findings(), n_rules=4))
        assert payload["max_severity"] == "error"
        assert payload["rules_run"] == 4


class TestFailOnThreshold:
    CASES = [
        # (worst seeded severity, fail_on, expected exit code)
        (None, Severity.INFO, 0),
        (Severity.INFO, Severity.INFO, 1),
        (Severity.INFO, Severity.WARNING, 0),
        (Severity.INFO, Severity.ERROR, 0),
        (Severity.WARNING, Severity.INFO, 1),
        (Severity.WARNING, Severity.WARNING, 1),
        (Severity.WARNING, Severity.ERROR, 0),
        (Severity.ERROR, Severity.INFO, 1),
        (Severity.ERROR, Severity.WARNING, 1),
        (Severity.ERROR, Severity.ERROR, 1),
    ]

    @pytest.mark.parametrize("worst,fail_on,expected", CASES)
    def test_exit_code_inclusive_threshold(self, worst, fail_on,
                                           expected):
        findings = [
            f for f in seeded_findings()
            if worst is not None and f.severity <= worst
        ]
        assert exit_code(findings, fail_on) == expected

    def test_cli_fail_on_info_trips_on_info(self, capsys, monkeypatch):
        monkeypatch.setitem(
            CATALOGUE, "branch",
            replace(CATALOGUE["branch"], meaning=""),  # BF008, warning
        )
        assert main(["lint", "--no-launches", "--no-source",
                     "--fail-on", "info"]) == 1

    def test_cli_fail_on_error_passes_warnings(self, capsys,
                                               monkeypatch):
        monkeypatch.setitem(
            CATALOGUE, "branch",
            replace(CATALOGUE["branch"], meaning=""),
        )
        assert main(["lint", "--no-launches", "--no-source",
                     "--fail-on", "error"]) == 0

    def test_unknown_fail_on_rejected(self):
        with pytest.raises(ValueError, match="unknown severity"):
            Severity.parse("catastrophic")


class TestArtifactsCLI:
    def test_committed_artifacts_validate(self, capsys):
        assert main(["lint", "--artifacts", "BENCH_core.json",
                     "benchmarks/history.jsonl"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_directory_expansion(self, tmp_path, capsys):
        (tmp_path / "a.json").write_text('{"schema": "mystery/9"}')
        (tmp_path / "sub").mkdir()
        (tmp_path / "sub" / "b.json").write_text("{broken")
        rc = main(["lint", "--artifacts", str(tmp_path),
                   "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert {f["rule"] for f in payload["findings"]} \
            == {"BF601", "BF604"}

    def test_select_applies_to_artifacts(self, tmp_path, capsys):
        (tmp_path / "a.json").write_text('{"schema": "mystery/9"}')
        assert main(["lint", "--artifacts", str(tmp_path / "a.json"),
                     "--select", "BF605"]) == 0


@pytest.mark.parametrize("fmt", ["text", "json"])
def test_lint_parser_defaults(fmt):
    from repro.cli import build_parser

    args = build_parser().parse_args(["lint", "--format", fmt])
    assert args.fail_on == "warning"
    assert args.format == fmt
