"""Table 2 — "GPU hardware metrics".

Regenerates the machine-characteristic rows the paper injects as
predictors for hardware scaling, with the paper's exact values.
"""

from repro.gpusim import GTX480, GTX580, K20M, TABLE2_METRICS
from repro.viz import table

_PAPER_TABLE2 = {
    # metric: (meaning, GTX480, K20m) — verbatim from the paper
    "wsched": ("number of warp schedulers", 2, 4),
    "freq": ("clock rate (GHz)", 1.4, 0.71),
    "smp": ("number of MPs", 15, 13),
    "rco": ("cores per MP", 32, 192),
    "mbw": ("memory bandwidth (GB/s)", 177.4, 208),
    "l1c": ("registers", 63, 255),
    "l2c": ("L2 size (KB)", 768, 1280),
}


def test_table2_hardware(benchmark):
    metrics = benchmark.pedantic(
        lambda: {a.name: a.machine_metrics() for a in (GTX480, GTX580, K20M)},
        rounds=5, iterations=1,
    )

    rows = [
        (name, meaning, gtx480, k20m)
        for name, (meaning, gtx480, k20m) in _PAPER_TABLE2.items()
    ]
    print()
    print(table(["metric", "meaning", "GTX480", "K20m"], rows,
                title="Table 2: GPU hardware metrics"))

    for name, (_, gtx480, k20m) in _PAPER_TABLE2.items():
        assert metrics["GTX480"][name] == float(gtx480), name
        assert metrics["K20m"][name] == float(k20m), name
    assert TABLE2_METRICS["GTX480"] == metrics["GTX480"]
    assert TABLE2_METRICS["K20m"] == metrics["K20m"]

    # the training GPU of the paper's text (GTX580) is the same Fermi
    # family as the Table 2 GTX480 row
    assert metrics["GTX580"]["wsched"] == 2
    assert metrics["GTX580"]["rco"] == 32
    assert metrics["GTX580"]["smp"] == 16
