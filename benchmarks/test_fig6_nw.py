"""Figure 6 — "Characterization and prediction of NW".

Paper claims reproduced:

* (6a) the importance figure is the paper's *pathological case*: after
  the leaders comes "a bunch of predictors of similar importance among
  which various memory throughput metrics"; "the lack of locality from
  the diagonal strip memory accesses leads to the presence of both
  l1_global_load_miss and l1_shared_bank_conflict";
* (6b) execution-time predictions for unseen sequence lengths with
  "average MSE and explained variance ... around 0 and 99%";
* (6c) the counter models are MARS fits ("built using earth, an R MARS
  implementation, with average R-squared of 0.99").
"""

import numpy as np

from repro import (
    BlackForest,
    Campaign,
    GTX580,
    NeedlemanWunschKernel,
    ProblemScalingPredictor,
)
from repro.viz import importance_chart, prediction_table, table

from _helpers import MEMORY_FAMILY


def build_predictor(campaign):
    return ProblemScalingPredictor(
        BlackForest(rng=1, importance_repeats=3), prefer_mars=True, rng=2
    ).fit(campaign)


def test_fig6_nw(nw_campaign, benchmark):
    predictor = benchmark.pedantic(
        build_predictor, args=(nw_campaign,), rounds=1, iterations=1
    )
    fit = predictor.fit_

    print()
    print("==== Fig. 6a: NW variable importance ====")
    print(importance_chart(fit.importance, k=12))

    # (6a) the Fermi cache/conflict witnesses of the diagonal-strip
    # access pattern are present and influential
    ranking = fit.importance
    assert "l1_global_load_miss" in ranking.names
    assert "l1_shared_bank_conflict" in ranking.names
    assert ranking.rank_of("l1_global_load_miss") < 8
    assert ranking.rank_of("l1_shared_bank_conflict") < 14

    # "a large number of variables have similar importance" — the
    # pathological case §7 discusses: many counters within 60% of the
    # leader's score
    scores = ranking.scores
    similar = int(np.sum(scores > 0.6 * scores[0]))
    print(f"\npredictors within 60% of the leader: {similar}")
    assert similar >= 8

    # ... most of them memory metrics
    upper = ranking.top(max(8, similar))
    assert len([n for n in upper if n in MEMORY_FAMILY]) >= 5

    # size is a predictor in the model (paper: size is a leader)
    assert "size" in ranking.names
    assert ranking.rank_of("size") < len(ranking.names) // 2

    # model accuracy: "MSE and explained variance ... around 0 and 99%"
    assert fit.oob_explained_variance > 0.97

    # (6b) unseen sequence lengths
    unseen = [96, 992, 2080, 4032, 6080, 7936]
    eval_campaign = Campaign(NeedlemanWunschKernel(), GTX580, rng=77).run(
        problems=unseen
    )
    report = predictor.report(eval_campaign)
    print()
    print(prediction_table(report, title="Fig. 6b: predicted vs measured NW times"))
    assert report.explained_variance > 0.97

    # (6c) MARS counter models with high average R^2 (paper: 0.99)
    rows = predictor.counter_models_.quality_table()
    print()
    print(table(["counter", "model", "R^2", "residual deviance"], rows,
                title="Fig. 6c: MARS counter models vs sequence length"))
    assert any(kind == "mars" for _, kind, _, _ in rows)
    assert predictor.counter_models_.average_r_squared > 0.95
