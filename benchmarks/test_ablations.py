"""Ablation studies for the design choices DESIGN.md calls out.

Not figures of the paper, but experiments the paper motivates:

* **minimal training set** — Section 7: "Additional studies need to be
  made to determine the minimal training set, thus limiting the
  overhead to a minimum"; also Section 4.2's empirical "100 samples are
  more than sufficient for 1-D problems". Here: accuracy vs number of
  training runs.
* **random forest vs. traditional regressors** — Section 1: "random
  forest ... usually outperforms the more traditional classification
  and regression algorithms ... especially for scarce training data".
  Here: RF vs a single CART tree vs a linear model vs MARS on the same
  campaign.
* **importance stabilization** — this reproduction averages permutation
  importances over several forests (because of the instability the
  paper cites as [19]); the ablation quantifies the stability gain.
* **straightforward vs mixed-variable hardware transfer** — the Fig. 8c
  workaround against its baseline.
* **PCA-first pipeline** — Section 7's proposal ("first applying PCA
  onto the data ... leading to easy interpretation"), measured against
  the paper's raw-counter pipeline.
"""

import numpy as np

from repro.core.hardware import (
    HardwareScalingPredictor,
    common_predictors,
    mixed_variable_set,
    per_arch_importance,
)
from repro.ml import Mars, RandomForestRegressor, RegressionTree, explained_variance
from repro.ml.preprocessing import StandardScaler, train_test_split
from repro.viz import table


def test_minimal_training_set(reduce2_campaign, benchmark):
    """Accuracy as a function of the number of profiled runs."""
    X, y, names = reduce2_campaign.matrix(include_characteristics=False)
    rng = np.random.default_rng(0)

    def sweep():
        rows = []
        for n_train in (10, 20, 40, 60):
            scores = []
            for seed in range(3):
                perm = rng.permutation(len(y))
                train, test = perm[:n_train], perm[n_train:]
                rf = RandomForestRegressor(
                    n_trees=150, importance=False, rng=seed
                ).fit(X[train], y[train])
                scores.append(rf.score(X[test], y[test]))
            rows.append((n_train, float(np.mean(scores))))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(table(["training runs", "held-out explained variance"],
                [(n, f"{100 * s:.1f}%") for n, s in rows],
                title="Minimal training set (reduce2, GTX580)"))

    scores = dict(rows)
    # accuracy grows with data and is already strong well under the
    # paper's "100 samples" rule of thumb
    assert scores[60] >= scores[10]
    assert scores[40] > 0.85


def test_rf_vs_traditional_regressors(mm_campaign, benchmark):
    """The paper's model-choice claim on scarce training data."""
    X, y, names = mm_campaign.matrix()

    def compare():
        results = {}
        for seed in range(3):
            X_tr, X_te, y_tr, y_te = train_test_split(X, y, rng=seed)
            scaler = StandardScaler().fit(X_tr)
            Z_tr, Z_te = scaler.transform(X_tr), scaler.transform(X_te)

            rf = RandomForestRegressor(n_trees=150, importance=False,
                                       rng=seed).fit(X_tr, y_tr)
            tree = RegressionTree(min_samples_leaf=5, rng=seed).fit(X_tr, y_tr)
            B_tr = np.column_stack([np.ones(len(Z_tr)), Z_tr])
            B_te = np.column_stack([np.ones(len(Z_te)), Z_te])
            coef, *_ = np.linalg.lstsq(B_tr, y_tr, rcond=None)
            mars = Mars(max_terms=15).fit(Z_tr, y_tr)

            for name, pred in (
                ("random forest", rf.predict(X_te)),
                ("single CART tree", tree.predict(X_te)),
                ("linear regression", B_te @ coef),
                ("MARS", mars.predict(Z_te)),
            ):
                results.setdefault(name, []).append(
                    explained_variance(y_te, pred)
                )
        return {k: float(np.mean(v)) for k, v in results.items()}

    results = benchmark.pedantic(compare, rounds=1, iterations=1)
    print()
    print(table(["model", "held-out explained variance"],
                [(k, f"{100 * v:.1f}%") for k, v in sorted(
                    results.items(), key=lambda kv: -kv[1])],
                title="Response model comparison (MM, 72 runs)"))

    assert results["random forest"] > results["single CART tree"]
    assert results["random forest"] > 0.8


def test_importance_stabilization(reduce1_campaign, benchmark):
    """Averaging forests stabilizes the top-k ranking.

    On a *fixed* training partition (the instability being ablated is
    the forest's own bootstrap/mtry/permutation randomness, not the
    data split), compare the run-to-run agreement of single-forest
    rankings against 3-forest-averaged rankings.
    """
    X, y, names = reduce1_campaign.matrix(include_characteristics=False)
    X_tr, _, y_tr, _ = train_test_split(X, y, rng=0)

    def ranking(seeds, k=8):
        total = None
        for seed in seeds:
            rf = RandomForestRegressor(n_trees=150, rng=seed).fit(
                X_tr, y_tr, feature_names=names
            )
            total = rf.importance_ if total is None else total + rf.importance_
        order = np.argsort(total)[::-1][:k]
        return [names[j] for j in order]

    def stability(group_size, k=8):
        groups = [
            ranking(range(base, base + group_size), k=k)
            for base in (100, 200, 300, 400)
        ]
        return float(np.mean([
            len(set(a) & set(b)) / k
            for i, a in enumerate(groups) for b in groups[i + 1:]
        ]))

    def both():
        return stability(1), stability(4)

    single, averaged = benchmark.pedantic(both, rounds=1, iterations=1)
    print(f"\nmean pairwise top-8 overlap across reruns: "
          f"single forest {single:.2f}, 4-forest average {averaged:.2f}")
    assert averaged >= single


def test_mixed_vs_straightforward_transfer(
    nw_campaign, nw_campaign_k20m, benchmark
):
    """The Fig. 8c workaround against the straightforward baseline."""

    def run_both():
        common = common_predictors(nw_campaign, nw_campaign_k20m)
        straightforward = HardwareScalingPredictor(n_trees=200, rng=3).fit(
            nw_campaign, common=common
        ).assess(nw_campaign_k20m).report.explained_variance

        ia = per_arch_importance(nw_campaign, n_trees=200, repeats=2, rng=5)
        ib = per_arch_importance(nw_campaign_k20m, n_trees=200, repeats=2, rng=5)
        mixed_vars = mixed_variable_set(ia, ib, k=3, common=common)
        mixed = HardwareScalingPredictor(n_trees=200, rng=3).fit(
            nw_campaign, variables=mixed_vars, common=common
        ).assess(nw_campaign_k20m).report.explained_variance
        return straightforward, mixed

    straightforward, mixed = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print(f"\nNW GTX580->K20m explained variance: "
          f"straightforward {straightforward:.2f}, mixed variables {mixed:.2f}")
    # the focused variable set must stay competitive with (or beat) the
    # kitchen-sink baseline while using a fraction of the predictors
    assert mixed > straightforward - 0.15
    assert mixed > 0.3


def test_pca_first_tradeoff(reduce1_campaign, benchmark):
    """Section 7's PCA-first idea: simpler model, measurable accuracy cost."""
    from repro import BlackForest

    def both():
        raw = BlackForest(n_trees=200, rng=1).fit(
            reduce1_campaign, include_characteristics=False
        )
        pca_first = BlackForest(n_trees=200, pca_first=True, rng=1).fit(
            reduce1_campaign, include_characteristics=False
        )
        return raw, pca_first

    raw, pca_first = benchmark.pedantic(both, rounds=1, iterations=1)
    print()
    print(table(
        ["pipeline", "predictors", "OOB expl.var", "primary bottleneck"],
        [
            ("raw counters (paper)", len(raw.feature_names),
             f"{100 * raw.oob_explained_variance:.1f}%",
             raw.bottlenecks[0].pattern.key),
            ("PCA-first (Section 7)", len(pca_first.feature_names),
             f"{100 * pca_first.oob_explained_variance:.1f}%",
             pca_first.bottlenecks[0].pattern.key),
        ],
        title="PCA-first ablation (reduce1, GTX580)",
    ))
    # the documented trade-off: fewer variables, lower accuracy
    assert len(pca_first.feature_names) < len(raw.feature_names)
    assert pca_first.oob_explained_variance < raw.oob_explained_variance
    # interpretation still names counters, not components
    assert all(
        not w.startswith("PC")
        for f in pca_first.bottlenecks for w in f.evidence
    )
