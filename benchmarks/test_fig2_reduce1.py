"""Figure 2 — "Counters affecting the performance of reduce1".

Paper claims reproduced here:

* (2a) the variable importance of the reduce1 campaign is led by the
  bank-conflict replay machinery ("shared_replay_overhead,
  inst_replay_overhead, l2_read_throughput" in the paper's ordering —
  asserted at family level: replay/conflict counters in the top 3);
* (2b) the leading replay counter's partial dependence is monotone
  ("strongly ... affects the average predicted execution time");
* (2c / §5.2) PCA produces a handful of components explaining >= 96-97%
  of the variance, with the replay counters loading strongly on a
  common component;
* §5.2's diagnosis: the detected primary bottleneck is the shared-
  memory bank conflict pattern introduced by strided indexing.
"""

import numpy as np

from repro.ml.partial_dependence import partial_dependence

from _helpers import REPLAY_FAMILY, fit_pipeline, print_figure


def test_fig2_reduce1(reduce1_campaign, benchmark):
    fit = benchmark.pedantic(
        fit_pipeline, args=(reduce1_campaign,), rounds=1, iterations=1
    )
    print_figure(fit, "Fig. 2: reduce1 on GTX580")

    # (2a) replay/conflict counters lead the importance ranking
    top3 = set(fit.importance.top(3))
    assert top3 & REPLAY_FAMILY, f"no replay-family counter in top 3: {top3}"
    assert "l1_shared_bank_conflict" in fit.importance.top(5)

    # model quality backs the interpretation
    assert fit.oob_explained_variance > 0.85
    assert fit.test_explained_variance > 0.85

    # (2b) the leading conflict counter moves the predicted time
    # monotonically over (most of) its range
    conflict_leader = next(
        n for n in fit.importance.names if n in REPLAY_FAMILY
    )
    j = fit.feature_names.index(conflict_leader)
    pd = partial_dependence(fit.forest, fit.X_train, j,
                            feature_name=conflict_leader)
    assert abs(pd.monotonicity) > 0.5, (
        f"{conflict_leader} partial dependence not monotone: "
        f"{pd.monotonicity:.2f}"
    )

    # (2c) a handful of components explains the paper's >=96-97%
    # variance (the paper needed 4; the per-counter measurement noise
    # modeled here spreads the tail over a few more — see
    # EXPERIMENTS.md)
    assert fit.pca is not None
    cum = np.cumsum(fit.pca.explained_variance_ratio_)
    assert fit.pca.n_components_ <= 10
    assert cum[-1] >= 0.96
    print(f"4-component cumulative variance: {cum[min(3, cum.size - 1)]:.3f} "
          f"(paper: >0.97)")

    # replay counters share a rotated component (the paper's PC2 story)
    loadings = fit.pca.loadings
    conflict_vars = [n for n in ("l1_shared_bank_conflict", "inst_issued")
                     if n in loadings.names]
    shared_component = None
    for comp in loadings.components:
        strong = {name for name, _ in loadings.strong(comp, threshold=0.45)}
        if all(v in strong for v in conflict_vars):
            shared_component = comp
            break
    assert shared_component is not None, "replay counters do not co-load"

    # §5.2 diagnosis
    keys = [b.pattern.key for b in fit.bottlenecks]
    assert keys[0] == "shared_bank_conflicts", keys
