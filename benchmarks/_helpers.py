"""Shared analysis helpers for the figure benches."""

from __future__ import annotations

from repro import BlackForest
from repro.viz import dependence_plot, importance_chart, loadings_table

#: Counter families used in shape assertions.
REPLAY_FAMILY = {
    "shared_replay_overhead",
    "inst_replay_overhead",
    "l1_shared_bank_conflict",
    "shared_load_replay",
    "shared_store_replay",
    "inst_issued",
}

MEMORY_FAMILY = {
    "l1_global_load_hit",
    "l1_global_load_miss",
    "l2_read_transactions",
    "l2_write_transactions",
    "l2_read_throughput",
    "l2_write_throughput",
    "dram_read_throughput",
    "dram_write_throughput",
    "gld_request",
    "gst_request",
    "gld_throughput",
    "gst_throughput",
    "gld_requested_throughput",
    "gst_requested_throughput",
    "global_store_transaction",
    "shared_load",
    "shared_store",
    "ldst_fu_utilization",
}

STORE_FAMILY = {
    "gst_request",
    "gst_throughput",
    "gst_requested_throughput",
    "global_store_transaction",
    "l2_write_transactions",
    "l2_write_throughput",
    "dram_write_throughput",
}


def fit_pipeline(campaign, rng=1, include_characteristics=False, **kwargs):
    """The standard stage 2-5 run used by the Section 5 benches.

    Importance is averaged over three forest fits: single-forest
    rankings among the highly correlated counters are unstable (the
    Strobl et al. effect the paper cites as [19]).
    """
    kwargs.setdefault("importance_repeats", 3)
    return BlackForest(rng=rng, **kwargs).fit(
        campaign, include_characteristics=include_characteristics
    )


def print_figure(fit, title, top_k=10):
    """Importance chart + leader partial dependence + PCA loadings."""
    print()
    print(f"==== {title} ====")
    print(importance_chart(fit.importance, k=top_k))
    leader = fit.importance.names[0]
    pd = fit.importance.dependence.get(leader)
    if pd is not None:
        print()
        print(dependence_plot(pd))
    if fit.pca is not None:
        variance = 100 * float(fit.pca.explained_variance_ratio_.sum())
        print()
        print(f"PCA: {fit.pca.n_components_} components, {variance:.1f}% variance")
        print(loadings_table(fit.pca.loadings, threshold=0.45))
    print()
    print(f"OOB explained variance: {100 * fit.oob_explained_variance:.1f}%  "
          f"test: {100 * fit.test_explained_variance:.1f}%")
    if fit.bottlenecks:
        print(f"primary bottleneck: {fit.bottlenecks[0].pattern.key}")
