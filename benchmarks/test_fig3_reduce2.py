"""Figure 3 — "Counters affecting the performance of reduce2".

Paper claims reproduced:

* (3a) after replacing strided with sequential addressing "the most
  relevant counters all pertain to the memory subsystem performance"
  (paper's top three: l1_global_load_miss, l2_write_transactions,
  l2_read_transactions) — asserted at family level;
* "Observe how the most important counter for reduce1 is the least
  important for reduce2": with zero bank conflicts the
  shared_replay_overhead counter is constant zero, i.e. it drops out of
  the model entirely ("the metric measuring overhead due to shared
  memory bank conflicts also vanishes from PCA outcome");
* (3b) the leading memory counter relates monotonically to time;
* (3c) PCA again yields a handful of components covering >= 96%.
"""

import numpy as np

from _helpers import MEMORY_FAMILY, fit_pipeline, print_figure


def test_fig3_reduce2(reduce2_campaign, benchmark):
    fit = benchmark.pedantic(
        fit_pipeline, args=(reduce2_campaign,), rounds=1, iterations=1
    )
    print_figure(fit, "Fig. 3: reduce2 on GTX580")

    # (3a) memory-subsystem counters dominate
    top6 = fit.importance.top(6)
    memory_hits = [n for n in top6 if n in MEMORY_FAMILY]
    assert len(memory_hits) >= 4, f"top6 not memory-dominated: {top6}"

    # reduce1's winner vanishes: no conflicts -> constant zero -> dropped
    assert "shared_replay_overhead" not in fit.feature_names
    assert "l1_shared_bank_conflict" not in fit.feature_names
    assert "shared_replay_overhead" not in fit.pca.loadings.names

    # model quality
    assert fit.oob_explained_variance > 0.85

    # (3b) the leading variable's marginal effect is strong over (at
    # least part of) the range — "strong positive relationship ...
    # although on a rather limited range"
    leader = fit.importance.names[0]
    pd = fit.importance.dependence[leader]
    assert np.ptp(pd.values) > 0

    # the detected pathology is a memory one, never bank conflicts
    assert fit.bottlenecks[0].pattern.key in (
        "cache_misses", "uncoalesced_access", "bandwidth", "memory_requests"
    )

    # (3c) PCA variance coverage
    assert fit.pca.n_components_ <= 10
    assert float(np.sum(fit.pca.explained_variance_ratio_)) >= 0.96


def test_fig3_vs_fig2_contrast(reduce1_campaign, reduce2_campaign, benchmark):
    """The cross-kernel contrast of Section 5.3, as one measurement."""

    def both():
        return (
            fit_pipeline(reduce1_campaign, rng=11),
            fit_pipeline(reduce2_campaign, rng=11),
        )

    fit1, fit2 = benchmark.pedantic(both, rounds=1, iterations=1)

    # reduce1 pays a replay tax that reduce2 does not
    t1 = np.median(reduce1_campaign.times())
    t2 = np.median(reduce2_campaign.times())
    print(f"\nmedian reduce1 time {t1 * 1e6:.0f} us vs reduce2 {t2 * 1e6:.0f} us"
          f"  -> conflict slowdown x{t1 / t2:.2f}")
    assert t1 > 1.2 * t2

    # the conflict machinery matters for reduce1 and cannot matter for
    # reduce2 (it never fires there)
    assert "l1_shared_bank_conflict" in fit1.importance.top(5)
    assert "l1_shared_bank_conflict" not in fit2.feature_names
    assert fit1.bottlenecks[0].pattern.key == "shared_bank_conflicts"
    assert fit2.bottlenecks[0].pattern.key != "shared_bank_conflicts"
