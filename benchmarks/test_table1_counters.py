"""Table 1 — "Performance counters used in this study".

Regenerates the counter/meaning table and validates that a profiling
run actually produces every Table 1 counter on the architecture family
it belongs to.
"""

from repro import GTX580, K20M, Profiler, ReductionKernel
from repro.gpusim.counters import CATALOGUE, TABLE1_COUNTERS
from repro.viz import table


def collect_table1(arch):
    prof = Profiler(arch, rng=0)
    record = prof.profile(ReductionKernel(1), 1 << 20)[0]
    return {
        name: record.counters[name]
        for name in TABLE1_COUNTERS
        if CATALOGUE[name].available_on(arch.family)
    }


def test_table1_counters(benchmark):
    values = benchmark.pedantic(
        collect_table1, args=(GTX580,), rounds=3, iterations=1
    )

    rows = [(name, CATALOGUE[name].meaning[:72]) for name in TABLE1_COUNTERS]
    print()
    print(table(["counter", "meaning"], rows,
                title="Table 1: performance counters used in this study"))
    print()
    print(table(["counter", "reduce1 @ 2^20 (GTX580)"],
                sorted(values.items())))

    # every Table 1 counter exists in the catalogue with a meaning
    assert len(TABLE1_COUNTERS) == 16
    for name in TABLE1_COUNTERS:
        assert name in CATALOGUE
        assert CATALOGUE[name].meaning

    # a Fermi profiling run reports every Fermi-available Table 1 counter
    fermi_expected = [
        n for n in TABLE1_COUNTERS if CATALOGUE[n].available_on("fermi")
    ]
    assert sorted(values) == sorted(fermi_expected)
    assert all(v >= 0 for v in values.values())


def test_table1_kepler_availability(benchmark):
    values = benchmark.pedantic(
        collect_table1, args=(K20M,), rounds=3, iterations=1
    )
    # the L1 hit/miss events are Fermi-only (paper Section 7); everything
    # else in Table 1 is reported by the Kepler profiler too
    assert "l1_global_load_hit" not in values
    assert "l1_global_load_miss" not in values
    assert "shared_replay_overhead" in values
    assert "achieved_occupancy" in values
    assert 0.0 < values["achieved_occupancy"] <= 1.0
