#!/usr/bin/env python
"""Standalone driver for the hot-path micro-benchmark suite.

Equivalent to ``python -m repro bench``; exists so the benchmarks can be
run without installing the package::

    python benchmarks/perf/run.py [--quick] [--out BENCH_core.json]

See benchmarks/perf/README.md and docs/performance.md.
"""

import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "src")
)

from repro.bench import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())
