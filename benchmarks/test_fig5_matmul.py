"""Figure 5 — "Characterization and prediction of MM".

Paper claims reproduced:

* (5a) "the most important variables for the prediction are counters
  relative to global memory performance and occupancy, especially
  counters pertaining to global store throughput" — store/global-memory
  counters populate the top of the ranking; ``gst_requested_throughput``
  falls with the matrix size (the store-bottleneck signature: "higher
  memory parallelism for load operations in contrary to stores");
* (5b) predicted vs measured execution times for unseen sizes — the
  paper reports "average MSE of 3.2 and 98% of explained variance";
* (5c) the retained counters are modeled as generalized linear models
  of the matrix size, "all low residual deviance ... except for
  inst_replay_overhead", whose poor fit the paper calls out.
"""

import numpy as np

from repro import BlackForest, Campaign, GTX580, MatMulKernel, ProblemScalingPredictor
from repro.viz import importance_chart, prediction_table, table

from _helpers import MEMORY_FAMILY, STORE_FAMILY


def build_predictor(campaign):
    return ProblemScalingPredictor(
        BlackForest(rng=1, importance_repeats=3), rng=2
    ).fit(campaign)


def test_fig5_matmul(mm_campaign, benchmark):
    predictor = benchmark.pedantic(
        build_predictor, args=(mm_campaign,), rounds=1, iterations=1
    )
    fit = predictor.fit_

    print()
    print("==== Fig. 5a: MM variable importance ====")
    print(importance_chart(fit.importance, k=10))

    # (5a) global-memory/store counters dominate the ranking
    top8 = fit.importance.top(8)
    assert len([n for n in top8 if n in MEMORY_FAMILY]) >= 3, top8
    assert set(top8) & STORE_FAMILY, f"no store counter in top 8: {top8}"

    # store-throughput signature: requested store throughput falls as n
    # grows (stores become the bottleneck)
    X, _, names = mm_campaign.matrix()
    size = X[:, names.index("size")]
    gst = X[:, names.index("gst_requested_throughput")]
    order = np.argsort(size)
    first, last = gst[order[:6]].mean(), gst[order[-6:]].mean()
    print(f"\ngst_requested_throughput: {first:.2f} GB/s at small n -> "
          f"{last:.2f} GB/s at large n")
    assert last < first

    # (5b) predictions for unseen sizes
    unseen = [96, 208, 416, 608, 928, 1360, 1936]
    eval_campaign = Campaign(MatMulKernel(), GTX580, rng=99).run(problems=unseen)
    report = predictor.report(eval_campaign)
    print()
    print(prediction_table(report, title="Fig. 5b: predicted vs measured MM times"))
    assert report.explained_variance > 0.90   # paper: 98%

    # (5c) counter models
    rows = predictor.counter_models_.quality_table()
    print()
    print(table(["counter", "model", "R^2", "residual deviance"], rows,
                title="Fig. 5c: counter models vs matrix size"))
    r2s = {name: r2 for name, _, r2, _ in rows}
    good = [name for name, r2 in r2s.items() if r2 > 0.95]
    assert len(good) >= max(1, len(r2s) - 2), (
        f"too many poor counter models: {r2s}"
    )

    # reduced model keeps 6-8 variables with full predictive power
    assert 6 <= len(predictor.retained_) <= 9
    assert fit.reduced_retains_power
