"""Shared campaign fixtures for the figure/table regeneration benches.

Every bench regenerates one table or figure of the paper from scratch:
collect the campaign (cached on disk in ``benchmarks/.cache`` — the
paper's "structured repository"), run the statistical pipeline, print
the figure's rows/series, and assert the paper's qualitative claims.

Run with:  pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro import (
    GTX480,
    GTX580,
    K20M,
    Campaign,
    MatMulKernel,
    NeedlemanWunschKernel,
    ReductionKernel,
    Repository,
)

_CACHE = Path(__file__).parent / ".cache"


def cached_campaign(kernel, arch, rng, problems=None, replicates=1, tag=None):
    """Collect (or reload) a campaign through the on-disk repository."""
    repo = Repository(_CACHE)
    if repo.has(kernel.name, arch.name, tag=tag):
        return repo.load(kernel.name, arch.name, tag=tag)
    campaign = Campaign(kernel, arch, rng=rng).run(
        problems=problems, replicates=replicates
    )
    repo.save(campaign, tag=tag)
    return campaign


@pytest.fixture(scope="session")
def reduce1_campaign():
    """reduce1 on GTX580 over the default ~80-length sweep."""
    return cached_campaign(ReductionKernel(1), GTX580, rng=0)


@pytest.fixture(scope="session")
def reduce2_campaign():
    return cached_campaign(ReductionKernel(2), GTX580, rng=0)


@pytest.fixture(scope="session")
def reduce6_campaign():
    return cached_campaign(ReductionKernel(6), GTX580, rng=0)


@pytest.fixture(scope="session")
def mm_campaign():
    """The paper's 24 matrix sizes, profiled three times each."""
    return cached_campaign(MatMulKernel(), GTX580, rng=0, replicates=3)


@pytest.fixture(scope="session")
def mm_campaign_gtx480():
    return cached_campaign(MatMulKernel(), GTX480, rng=7, replicates=3)


@pytest.fixture(scope="session")
def mm_campaign_k20m():
    return cached_campaign(MatMulKernel(), K20M, rng=1, replicates=3)


@pytest.fixture(scope="session")
def nw_campaign():
    """The paper's 129 sequence lengths (64..8256, pitch 64)."""
    return cached_campaign(NeedlemanWunschKernel(), GTX580, rng=0)


@pytest.fixture(scope="session")
def nw_campaign_gtx480():
    return cached_campaign(NeedlemanWunschKernel(), GTX480, rng=7)


@pytest.fixture(scope="session")
def nw_campaign_k20m():
    return cached_campaign(NeedlemanWunschKernel(), K20M, rng=1)
