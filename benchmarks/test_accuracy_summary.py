"""Accuracy summary across all use cases, vs. the Zhang et al. baseline.

The paper positions its accuracy against the closest related work
(Zhang et al. [21]): a random-forest model over ATI counters validated
"with a coefficient of determination of 79.7% and a median absolute
error of 13.1%". This bench regenerates a per-kernel accuracy table for
BlackForest on the simulated GTX580 and checks that the reproduction
clears that comparison floor on its primary use cases, as the paper's
Sections 5-6 accuracies (93-99% explained variance) do.
"""

import numpy as np

from repro import BlackForest
from repro.ml.metrics import median_absolute_percentage_error
from repro.viz import table

_ZHANG_R2 = 0.797
_ZHANG_MEDAE = 13.1  # percent


def evaluate(campaign, rng=1):
    fit = BlackForest(rng=rng).fit(campaign)
    pred = fit.forest.predict(fit.X_test)
    return {
        "kernel": campaign.kernel,
        "runs": len(campaign),
        "oob_ev": fit.oob_explained_variance,
        "test_ev": fit.test_explained_variance,
        "medae": median_absolute_percentage_error(fit.y_test, pred),
    }


def test_accuracy_summary(
    reduce1_campaign, reduce2_campaign, reduce6_campaign,
    mm_campaign, nw_campaign, benchmark,
):
    campaigns = [reduce1_campaign, reduce2_campaign, reduce6_campaign,
                 mm_campaign, nw_campaign]

    results = benchmark.pedantic(
        lambda: [evaluate(c) for c in campaigns], rounds=1, iterations=1
    )

    rows = [
        (r["kernel"], r["runs"], f"{100 * r['oob_ev']:.1f}%",
         f"{100 * r['test_ev']:.1f}%", f"{r['medae']:.1f}%")
        for r in results
    ]
    rows.append(("Zhang et al. [21] (baseline)", 22 * 10, "-",
                 f"{100 * _ZHANG_R2:.1f}%", f"{_ZHANG_MEDAE:.1f}%"))
    print()
    print(table(
        ["kernel", "runs", "OOB expl.var", "test expl.var", "median |err|"],
        rows,
        title="Model accuracy per use case (GTX580) vs the related-work floor",
    ))

    # every use case must clear the related-work comparison floor on
    # explained variance, as the paper's results do
    test_evs = [r["test_ev"] for r in results]
    assert all(ev > _ZHANG_R2 for ev in test_evs), test_evs

    # and the median absolute error stays in the same class
    medaes = [r["medae"] for r in results]
    assert np.median(medaes) < 2 * _ZHANG_MEDAE, medaes
