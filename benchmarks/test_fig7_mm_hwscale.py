"""Figure 7 — "K20m predictions for MM from GTX580".

Paper claims reproduced:

* "The approach works straightforwardly on MM ... the predictions
  mostly match the measured execution times, the inaccuracies at the
  edges coming from interpolation";
* "From the calibration on the K20m, we notice that the most important
  variables are almost the same on both architectures, which guarantees
  the good accuracy of the predictions".

Protocol (Section 6.2): machine characteristics from Table 2 are
injected as predictors; the training data spans the two Fermi cards
(GTX480 + GTX580) so those predictors vary during training; the test
GPU's campaign is split 80:20 and the held-out part assessed.
"""

import numpy as np

from repro.core.hardware import (
    HardwareScalingPredictor,
    common_predictors,
    importance_similarity,
    per_arch_importance,
)
from repro.viz import prediction_table


def transfer(train, test, rng=3):
    common = common_predictors(train, test)
    hw = HardwareScalingPredictor(n_trees=300, rng=rng).fit(train, common=common)
    return hw.assess(test)


def test_fig7_mm_hardware_scaling(
    mm_campaign, mm_campaign_gtx480, mm_campaign_k20m, benchmark
):
    train = mm_campaign.merged_with(mm_campaign_gtx480)
    result = benchmark.pedantic(
        transfer, args=(train, mm_campaign_k20m), rounds=1, iterations=1
    )

    print()
    print(prediction_table(
        result.report,
        title=f"Fig. 7: K20m MM predictions from the "
              f"{result.train_arch}-trained forest",
    ))

    # "the predictions mostly match the measured execution times"
    assert result.report.explained_variance > 0.7

    # "inaccuracies at the edges coming from interpolation": the
    # interior of the size range is predicted better than the edges
    rows = sorted(result.report.rows())
    sizes = np.array([r[0] for r in rows])
    rel = np.array([abs(p - m) / m for _, p, m in rows])
    lo, hi = np.percentile(sizes, [20, 80])
    interior = rel[(sizes > lo) & (sizes < hi)]
    if interior.size:
        print(f"\nmean relative error interior: {interior.mean():.1%}  "
              f"edges: {rel[(sizes <= lo) | (sizes >= hi)].mean():.1%}")


def test_fig7_importance_rankings_similar(
    mm_campaign, mm_campaign_k20m, benchmark
):
    def similarity():
        ia = per_arch_importance(mm_campaign, n_trees=300, repeats=3, rng=5)
        ib = per_arch_importance(mm_campaign_k20m, n_trees=300, repeats=3, rng=5)
        return ia, ib, importance_similarity(ia, ib, k=8)

    ia, ib, sim = benchmark.pedantic(similarity, rounds=1, iterations=1)
    print(f"\nGTX580 top6: {ia.top(6)}")
    print(f"K20m   top6: {ib.top(6)}")
    print(f"importance similarity (top-8 average overlap): {sim:.2f}")

    # "the most important variables are almost the same on both
    # architectures" — the two rankings share leaders
    assert set(ia.top(8)) & set(ib.top(8)), "no shared leaders at all"
    assert sim > 0.15
