"""Figure 4 — "Counters affecting the performance of reduce6".

Paper claims reproduced:

* (4a) for the fully optimized kernel "memory performance counters are
  still the most influential in predicting the execution time" (paper's
  top three: gst_request, shared_store, shared_load);
* (4b) they have "a strong correlation with it" — monotone partial
  dependence of the leading memory counter;
* §5.4: few variables "seriously precluding optimal utilization,
  confirming the bandwidth bounded character of the reduction
  primitive" — the kernel runs at near-peak DRAM bandwidth and the
  detected bottleneck is bandwidth/memory volume (nothing pathological
  left to fix).
"""

from repro import GTX580, ReductionKernel
from repro.gpusim import GPUSimulator

from _helpers import MEMORY_FAMILY, fit_pipeline, print_figure


def test_fig4_reduce6(reduce6_campaign, benchmark):
    fit = benchmark.pedantic(
        fit_pipeline, args=(reduce6_campaign,), rounds=1, iterations=1
    )
    print_figure(fit, "Fig. 4: reduce6 on GTX580")

    # (4a) memory counters dominate
    top3 = fit.importance.top(3)
    assert len([n for n in top3 if n in MEMORY_FAMILY]) >= 2, top3

    # no conflict pathology left
    assert "shared_replay_overhead" not in fit.feature_names
    keys = [b.pattern.key for b in fit.bottlenecks]
    assert "shared_bank_conflicts" not in keys
    assert keys[0] in ("bandwidth", "memory_requests"), keys

    # (4b) strong monotone correlation of the leading memory counter
    leader = next(n for n in fit.importance.names if n in MEMORY_FAMILY)
    pd = fit.importance.dependence.get(leader)
    if pd is not None:
        assert abs(pd.monotonicity) > 0.5

    assert fit.oob_explained_variance > 0.85

    # bandwidth-bounded character, measured directly
    counters, _, profs = GPUSimulator(GTX580).run(
        ReductionKernel(6).workloads(1 << 24, GTX580)
    )
    total_gbs = (counters["dram_read_throughput"]
                 + counters["dram_write_throughput"])
    print(f"\nreduce6 @ 2^24: {total_gbs:.0f} GB/s of "
          f"{GTX580.mem_bandwidth_gbs} GB/s peak; "
          f"binding = {profs[0].timing.binding}")
    assert profs[0].timing.binding == "bandwidth"
    assert total_gbs > 0.85 * GTX580.mem_bandwidth_gbs


def test_fig4_ladder_context(benchmark):
    """reduce6 is the endpoint of the documented optimization ladder."""

    def ladder():
        sim = GPUSimulator(GTX580)
        times = []
        for variant in range(7):
            _, t, _ = sim.run(ReductionKernel(variant).workloads(1 << 22, GTX580))
            times.append(t)
        return times

    times = benchmark.pedantic(ladder, rounds=1, iterations=1)
    print("\nreduction ladder @ 2^22 (us):",
          ", ".join(f"r{v}={t * 1e6:.0f}" for v, t in enumerate(times)))
    assert times[6] == min(times)
    assert times[0] > 2 * times[6]
