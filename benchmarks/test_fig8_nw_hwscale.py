"""Figure 8 — "Hardware scaling for NW" (the dissimilar-architecture case).

Paper claims reproduced:

* (8a) "caching related variables such as l2_read_transactions and
  l1_global_load_miss are among the most influential predictors for the
  GTX580";
* (8b) "these same variables are less important ... or even totally
  unimportant for K20m" — here Kepler does not even expose the Fermi L1
  events, and its own top counters are the Kepler-only
  shared_load_replay/shared_store_replay pair (the Section 7 counter-
  evolution problem);
* the architectures fail the similarity test that MM passes;
* (8c) the workaround — training on "a mixture of important variables
  from both architectures" — produces usable but degraded predictions
  whose accuracy "slightly improves as the size increases".
"""

import numpy as np

from repro.core.hardware import (
    HardwareScalingPredictor,
    common_predictors,
    importance_similarity,
    mixed_variable_set,
    per_arch_importance,
)
from repro.viz import importance_chart, prediction_table


def test_fig8ab_importance_differs(nw_campaign, nw_campaign_k20m, benchmark):
    def rankings():
        ia = per_arch_importance(nw_campaign, n_trees=300, repeats=3, rng=5)
        ib = per_arch_importance(nw_campaign_k20m, n_trees=300, repeats=3, rng=5)
        return ia, ib

    ia, ib = benchmark.pedantic(rankings, rounds=1, iterations=1)
    print()
    print(importance_chart(ia, k=8, title="Fig. 8a: NW importance on GTX580"))
    print()
    print(importance_chart(ib, k=8, title="Fig. 8b: NW importance on K20m"))

    # (8a) caching counters influential on Fermi
    caching = {"l1_global_load_miss", "l1_shared_bank_conflict",
               "l2_read_transactions", "l2_write_transactions"}
    assert set(ia.top(8)) & caching

    # (8b) the Fermi cache events do not exist on the K20m at all
    assert "l1_global_load_miss" not in ib.names
    assert "l1_shared_bank_conflict" not in ib.names
    # ... while Kepler-only replay counters surface there
    kepler_specific = {"shared_load_replay", "shared_store_replay"}
    assert set(ib.top(8)) & kepler_specific

    # the similarity test fails for NW
    sim_nw = importance_similarity(ia, ib, k=8)
    print(f"\nNW importance similarity: {sim_nw:.2f}")
    assert sim_nw < 0.6


def test_fig8_nw_less_similar_than_mm(
    nw_campaign, nw_campaign_k20m, mm_campaign, mm_campaign_k20m, benchmark
):
    """The cross-figure claim: MM transfers, NW does not."""

    def similarities():
        mm = importance_similarity(
            per_arch_importance(mm_campaign, n_trees=300, repeats=3, rng=5),
            per_arch_importance(mm_campaign_k20m, n_trees=300, repeats=3, rng=5),
            k=8,
        )
        nw = importance_similarity(
            per_arch_importance(nw_campaign, n_trees=300, repeats=3, rng=5),
            per_arch_importance(nw_campaign_k20m, n_trees=300, repeats=3, rng=5),
            k=8,
        )
        return mm, nw

    sim_mm, sim_nw = benchmark.pedantic(similarities, rounds=1, iterations=1)
    print(f"\nimportance similarity: MM={sim_mm:.2f}  NW={sim_nw:.2f}")
    assert sim_mm > sim_nw, (
        "MM must look more hardware-similar than NW "
        f"(MM={sim_mm:.2f}, NW={sim_nw:.2f})"
    )


def test_fig8c_mixed_variable_predictions(nw_campaign, nw_campaign_k20m, benchmark):
    def mixed_transfer():
        common = common_predictors(nw_campaign, nw_campaign_k20m)
        ia = per_arch_importance(nw_campaign, n_trees=300, repeats=3, rng=5)
        ib = per_arch_importance(nw_campaign_k20m, n_trees=300, repeats=3, rng=5)
        mixed = mixed_variable_set(ia, ib, k=3, common=common)
        hw = HardwareScalingPredictor(n_trees=300, rng=3).fit(
            nw_campaign, variables=mixed, common=common
        )
        return mixed, hw.assess(nw_campaign_k20m)

    mixed, result = benchmark.pedantic(mixed_transfer, rounds=1, iterations=1)

    print(f"\nmixed variable set (paper's: inst_issued, "
          f"global_store_transaction, size, achieved_occupancy, "
          f"issue_slot_utilization, gld_throughput):\n  {mixed}")
    print()
    print(prediction_table(
        result.report, title="Fig. 8c: K20m NW predictions (mixed variables)"
    ))

    # size always participates; the rest come from both rankings
    assert "size" in mixed
    assert len(mixed) >= 4

    # predictions are usable but "less accurate" than problem scaling
    ev = result.report.explained_variance
    assert 0.3 < ev <= 1.0
    print(f"\nexplained variance: {ev:.2f} (degraded vs the ~0.99 of "
          f"same-hardware problem scaling — as in the paper)")

    # accuracy improves with the sequence length (paper: "bad for
    # sequence sizes up until around 3700, it slightly improves as the
    # size increases")
    rows = sorted(result.report.rows())
    rel = [(s, abs(p - m) / m) for s, p, m in rows]
    small = np.mean([e for s, e in rel if s <= 3700])
    large = np.mean([e for s, e in rel if s > 3700])
    print(f"mean relative error: lengths<=3700 {small:.1%}, >3700 {large:.1%}")
    assert large < small
