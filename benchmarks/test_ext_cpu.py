"""Extension bench — "proving BF's usability on CPUs" (paper Section 7).

Runs the unchanged five-stage pipeline on CPU campaigns (perf-style
counters from the multicore substrate) and regenerates a per-kernel
accuracy/diagnosis table, plus the heterogeneous partitioning curve the
paper's closing paragraph envisions.
"""

import numpy as np

from repro import (
    BlackForest,
    Campaign,
    GTX580,
    HeterogeneousPartitioner,
    ProblemScalingPredictor,
    XEON_E5,
)
from repro.kernels import StencilKernel
from repro.kernels.cpu import (
    CpuMatMulKernel,
    CpuReductionKernel,
    CpuStencilKernel,
    CpuVectorAddKernel,
)
from repro.viz import table


def test_ext_cpu_usability(benchmark):
    kernels = [CpuVectorAddKernel(), CpuReductionKernel(),
               CpuStencilKernel(), CpuMatMulKernel()]

    def analyze_all():
        results = []
        for kernel in kernels:
            campaign = Campaign(kernel, XEON_E5, rng=0).run(replicates=3)
            fit = BlackForest(n_trees=200, importance_repeats=2, rng=1).fit(
                campaign
            )
            results.append((kernel.name, len(campaign), fit))
        return results

    results = benchmark.pedantic(analyze_all, rounds=1, iterations=1)

    rows = [
        (name, runs, f"{100 * fit.oob_explained_variance:.1f}%",
         fit.importance.names[0],
         fit.bottlenecks[0].pattern.key if fit.bottlenecks else "-")
        for name, runs, fit in results
    ]
    print()
    print(table(
        ["kernel", "runs", "OOB expl.var", "top predictor", "bottleneck"],
        rows,
        title="BlackForest on CPU campaigns (Xeon E5-2670)",
    ))

    # the pipeline is usable on CPUs: accurate models and CPU-native
    # counters/diagnoses throughout
    for name, _, fit in results:
        assert fit.oob_explained_variance > 0.55, name
        assert fit.bottlenecks, name
        assert not fit.importance.names[0].startswith("PC")

    # the streaming kernels' diagnoses name memory, not compute
    by_name = {name: fit for name, _, fit in results}
    vadd_keys = [b.pattern.key for b in by_name["cpu-vectorAdd"].bottlenecks]
    assert any(k.startswith("cpu_") for k in vadd_keys)


def test_ext_heterogeneous_partitioning(benchmark):
    sizes = [128, 192, 256, 384, 512, 768, 1024, 1536, 2048]

    def build_and_plan():
        gpu_campaign = Campaign(StencilKernel(), GTX580, rng=0).run(
            problems=sizes, replicates=2
        )
        cpu_campaign = Campaign(CpuStencilKernel(), XEON_E5, rng=1).run(
            problems=sizes, replicates=2
        )
        gpu_model = ProblemScalingPredictor(
            BlackForest(n_trees=150, use_pca=False, min_samples_leaf=3, rng=2),
            rng=3,
        ).fit(gpu_campaign)
        cpu_model = ProblemScalingPredictor(
            BlackForest(n_trees=150, use_pca=False, min_samples_leaf=3, rng=4),
            rng=5,
        ).fit(cpu_campaign)
        part = HeterogeneousPartitioner(cpu_model, gpu_model, min_chunk=128.0)
        return part.sweep([256.0, 512.0, 1024.0, 2048.0])

    plans = benchmark.pedantic(build_and_plan, rounds=1, iterations=1)

    rows = [
        (int(p.total), f"{100 * p.cpu_share:.0f}%",
         f"{p.makespan_s * 1e3:.3f} ms",
         f"{p.speedup_vs_best_device:.2f}x")
        for p in plans
    ]
    print()
    print(table(
        ["total size", "CPU share", "co-run makespan", "speedup vs best device"],
        rows,
        title="Heterogeneous stencil partitioning (Xeon E5 + GTX580)",
    ))

    # small problems stay on one device (GPU launch overhead); at scale
    # the co-run never loses to the best single device
    assert plans[0].cpu_share in (0.0, 1.0)
    for p in plans:
        assert p.makespan_s <= p.best_single_device_s * 1.02
    assert any(p.speedup_vs_best_device > 1.05 for p in plans[1:])
