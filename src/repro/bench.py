"""Micro-benchmark harness for the pipeline's hot paths (``repro bench``).

Times the three paths the perf pass vectorized — trace coalescing /
cache replay (gpusim), forest fitting (ml) and campaign sweeps
(profiling) — **against the retained pre-vectorization implementations**
(the ``*_scalar`` oracles, :mod:`repro.ml._reference`, and memoization
disabled), so the recorded speedups compare real code rather than
remembered numbers. Results land in ``BENCH_core.json``.

Every benchmark first checks that fast and baseline paths agree on the
workload being timed; a divergence makes the harness fail loudly rather
than publish a meaningless speedup.

Run it as::

    python -m repro bench [--quick] [--ops cache_trace_replay,...]
    python -m repro bench --quick --check   # regression watchdog
    python benchmarks/perf/run.py        # same suite, standalone driver

Each run is appended to the bench-history journal
(``benchmarks/history.jsonl``, see :mod:`repro.obs.history`) with
manifest-style provenance; ``--check`` compares the fresh run's per-op
speedups against the committed ``BENCH_core.json`` baseline and exits
non-zero when any op regressed past ``--threshold`` percent.

See docs/performance.md and docs/observability.md for how to read the
output.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from dataclasses import asdict, dataclass, field

import numpy as np

__all__ = [
    "BenchResult",
    "run_benchmarks",
    "write_report",
    "format_results",
    "check_regressions",
]

#: Default journal each bench run is appended to.
HISTORY_PATH = "benchmarks/history.jsonl"

#: Default committed baseline the watchdog compares against.
BASELINE_PATH = "BENCH_core.json"

#: Schema tag written into the JSON report.
SCHEMA = "repro-bench/1"


@dataclass
class BenchResult:
    """One benchmarked operation: fast path vs. pre-PR baseline."""

    op: str
    n: int                      #: work items processed per timed call
    unit: str                   #: what one work item is
    wall_s: float               #: best wall time of the fast path
    throughput: float           #: items per second, fast path
    baseline_wall_s: float | None = None
    baseline_throughput: float | None = None
    speedup: float | None = None
    detail: dict = field(default_factory=dict)


def _best_of(fn, repeats: int) -> float:
    """Minimum wall time over ``repeats`` calls (noise-robust)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _result(
    op: str,
    n: int,
    unit: str,
    fast_s: float,
    baseline_s: float | None,
    detail: dict,
) -> BenchResult:
    return BenchResult(
        op=op,
        n=n,
        unit=unit,
        wall_s=fast_s,
        throughput=n / fast_s if fast_s > 0 else float("inf"),
        baseline_wall_s=baseline_s,
        baseline_throughput=(
            n / baseline_s if baseline_s and baseline_s > 0 else None
        ),
        speedup=baseline_s / fast_s if baseline_s and fast_s > 0 else None,
        detail=detail,
    )


def _mixed_trace(rng: np.random.Generator, rows: int, segment_bytes: int) -> np.ndarray:
    """A (rows, 32) lane-address trace mixing locality regimes.

    Thirds of the requests are coalesced-sequential (1 segment),
    strided (several segments) and scattered-with-reuse (pressure on
    the replacement policy) — roughly the spread the kernel models
    produce, so neither path gets a best-case workload.
    """
    lanes = np.arange(32)
    trace = np.empty((rows, 32), dtype=np.int64)
    for i in range(rows):
        mode = i % 3
        if mode == 0:  # unit-stride: one segment per request
            base = int(rng.integers(0, 1 << 18)) * segment_bytes
            trace[i] = base + lanes * 4
        elif mode == 1:  # strided: several segments
            base = int(rng.integers(0, 1 << 14)) * segment_bytes
            trace[i] = base + lanes * segment_bytes // 2
        else:  # scattered over a reused window
            trace[i] = rng.integers(0, 64 * segment_bytes, size=32)
        if rng.random() < 0.2:  # partially active warps
            trace[i, rng.integers(1, 32):] = -1
    return trace


class _TraceSweepKernel:
    """Synthetic trace-bearing kernel for the campaign benchmark.

    Its load pattern carries a sampled ``(n_requests, 32)`` address
    trace, so every profiled run pays the trace-simulation cost that
    :func:`repro.gpusim.resolve_access` memoizes — the access class the
    memoization targets (the library kernels currently model their
    traffic analytically or pre-compute hit rates themselves).
    Implements the :class:`repro.kernels.base.Kernel` interface.
    """

    name = "benchTraceSweep"

    def __init__(self, sample_requests: int = 1024) -> None:
        self.sample_requests = sample_requests

    def run(self, problem, rng=None):
        return float(problem)

    def reference(self, problem, rng=None):
        return float(problem)

    def characteristics(self, problem) -> dict:
        return {"n": float(problem)}

    def default_sweep(self) -> list:
        return [1 << k for k in range(14, 22)]

    def workloads(self, problem, arch) -> list:
        from dataclasses import replace

        from repro.kernels.base import WorkloadAccumulator

        n = int(problem)
        acc = WorkloadAccumulator(
            self.name,
            grid_blocks=max(n // 256, 1),
            threads_per_block=256,
            regs_per_thread=18,
            shared_mem_per_block=0,
        )
        warps = 8.0  # per block: 256 threads / 32
        acc.arith(6 * warps, fma=True)
        acc.global_access("load", warps)
        acc.global_access("store", warps)
        wl = acc.build()
        # Same trace for a given (problem, arch): replicates re-resolve
        # the identical pattern, which is what the sweep memoizes.
        trace = _mixed_trace(
            np.random.default_rng(n),
            self.sample_requests,
            arch.global_mem_segment_bytes,
        )
        wl.global_accesses[0] = replace(wl.global_accesses[0], addresses=trace)
        return [wl]


# -- individual benchmarks --------------------------------------------------


def bench_trace_transactions(quick: bool = False) -> BenchResult:
    """Per-request transaction counting: row-sort vs. per-row np.unique."""
    from repro.gpusim.memory import (
        transactions_from_trace,
        transactions_from_trace_scalar,
    )

    rows = 2_000 if quick else 20_000
    seg = 128
    trace = _mixed_trace(np.random.default_rng(0), rows, seg)

    fast = transactions_from_trace(trace, seg)
    base = transactions_from_trace_scalar(trace, seg)
    if not np.array_equal(fast, base):
        raise AssertionError("vectorized transaction counts diverge from oracle")

    fast_s = _best_of(lambda: transactions_from_trace(trace, seg), 5)
    base_s = _best_of(lambda: transactions_from_trace_scalar(trace, seg), 2)
    return _result(
        "trace_transactions", rows, "requests", fast_s, base_s,
        {"segment_bytes": seg},
    )


def bench_cache_trace_replay(quick: bool = False) -> BenchResult:
    """Warm L1 replay: set-partitioned batch sweep vs. per-probe access."""
    from repro.gpusim import GTX580
    from repro.gpusim.memory import CacheSim, coalesce_trace

    rows = 1_500 if quick else 6_000
    geometry = GTX580.l1
    trace = _mixed_trace(np.random.default_rng(1), rows, geometry.line_bytes)
    probes = int(coalesce_trace(trace, geometry.line_bytes).size)

    sim_fast = CacheSim(geometry)
    sim_base = CacheSim(geometry)
    rate_fast = sim_fast.warm_trace_hit_rate(trace)
    rate_base = sim_base.warm_trace_hit_rate_scalar(trace)
    if rate_fast != rate_base:
        raise AssertionError("batched cache replay diverges from oracle")

    def run_fast():
        sim_fast.reset()
        sim_fast.warm_trace_hit_rate(trace)

    def run_base():
        sim_base.reset()
        sim_base.warm_trace_hit_rate_scalar(trace)

    fast_s = _best_of(run_fast, 5)
    base_s = _best_of(run_base, 2)
    return _result(
        "cache_trace_replay", probes, "probes", fast_s, base_s,
        {
            "requests": rows,
            "hit_rate": rate_fast,
            "geometry": f"{geometry.size_bytes}B/{geometry.associativity}way",
        },
    )


def bench_forest_fit(quick: bool = False) -> BenchResult:
    """Paper-scale forest fit: block split scan + batched OOB importance
    vs. the per-feature / per-variable reference."""
    from repro.ml._reference import ReferenceRandomForestRegressor
    from repro.ml.forest import RandomForestRegressor

    # Paper scale: "tens to hundreds" of runs (129 in the use cases)
    # with a Table-1-sized predictor set.
    n, p = 129, 36
    trees = 20 if quick else 60
    rng = np.random.default_rng(2)
    X = rng.normal(size=(n, p))
    y = X[:, 0] * 2.0 + np.sin(X[:, 1]) + rng.normal(scale=0.3, size=n)

    def run_fast():
        RandomForestRegressor(
            n_trees=trees, importance=True, rng=np.random.default_rng(3)
        ).fit(X, y)

    def run_base():
        ReferenceRandomForestRegressor(
            n_trees=trees, importance=True, rng=np.random.default_rng(3)
        ).fit(X, y)

    fast_s = _best_of(run_fast, 3)
    base_s = _best_of(run_base, 1 if quick else 2)
    return _result(
        "forest_fit", trees, "trees", fast_s, base_s,
        {"n_samples": n, "n_features": p, "importance": True},
    )


def bench_campaign_sweep(quick: bool = False) -> BenchResult:
    """End-to-end campaign sweep: memoized resolve_access vs. disabled.

    Uses a trace-bearing kernel (:class:`_TraceSweepKernel`): sampled
    address traces are the access class whose resolution the
    memoization was built for — replicates re-resolve the identical
    pattern and skip the trace simulation.
    """
    from repro.gpusim import GTX580, clear_resolve_access_cache
    from repro.gpusim.memory import resolve_access_memoization
    from repro.profiling import Campaign

    kernel = _TraceSweepKernel(sample_requests=256 if quick else 1024)
    problems = kernel.default_sweep()[: 3 if quick else 6]
    replicates = 2 if quick else 3

    def collect():
        return Campaign(kernel, GTX580, rng=4).run(
            problems=problems, replicates=replicates
        )

    with resolve_access_memoization(False):
        reference = collect()
    clear_resolve_access_cache()
    memoized = collect()
    for a, b in zip(reference.records, memoized.records):
        if a.time_s != b.time_s or a.counters != b.counters:
            raise AssertionError("memoized campaign diverges from unmemoized")

    def run_fast():
        clear_resolve_access_cache()
        collect()

    def run_base():
        with resolve_access_memoization(False):
            collect()

    runs = len(problems) * replicates
    fast_s = _best_of(run_fast, 3)
    base_s = _best_of(run_base, 2)
    return _result(
        "campaign_sweep", runs, "profiled runs", fast_s, base_s,
        {
            "kernel": kernel.name,
            "arch": "GTX580",
            "problems": len(problems),
            "replicates": replicates,
        },
    )


def bench_predict_many(quick: bool = False) -> BenchResult:
    """Batched serving path: one stacked predict_many pass over many
    queued queries vs. the per-query predict loop it replaces.

    The workload mirrors what ``repro serve`` coalesces — many small
    (often single-row) query matrices against one warm fit — where the
    per-query loop pays ``n_trees`` python-level tree traversal calls
    *per query* and the stacked pass pays them once for the whole batch.
    The two paths are checked bit-identical before timing (the stacking
    lemma: forest prediction maps rows independently).
    """
    from repro.ml.forest import RandomForestRegressor

    n, p = 200, 12
    trees = 40 if quick else 100
    n_queries = 64 if quick else 256
    rng = np.random.default_rng(5)
    X = rng.normal(size=(n, p))
    y = X[:, 0] * 1.5 + np.abs(X[:, 1]) + rng.normal(scale=0.2, size=n)
    forest = RandomForestRegressor(
        n_trees=trees, importance=False, rng=np.random.default_rng(6)
    ).fit(X, y)
    # Serving-shaped queries: mostly single rows, a few small batches.
    queries = [
        rng.normal(size=(1 if i % 4 else 8, p)) for i in range(n_queries)
    ]
    rows = sum(q.shape[0] for q in queries)

    batched = forest.predict_many(queries)
    looped = [forest.predict(q) for q in queries]
    for a, b in zip(batched, looped):
        if not np.array_equal(a, b):
            raise AssertionError("batched predict diverges from per-query loop")

    fast_s = _best_of(lambda: forest.predict_many(queries), 5)
    base_s = _best_of(lambda: [forest.predict(q) for q in queries], 2)
    return _result(
        "predict_many", n_queries, "queries", fast_s, base_s,
        {
            "rows": rows,
            "trees": trees,
            "n_features": p,
            "predictions_per_s": rows / fast_s if fast_s > 0 else None,
        },
    )


def bench_serve_concurrent(quick: bool = False) -> BenchResult:
    """Concurrent serving frontend vs. the single-connection serial loop.

    Eight closed-loop TCP clients send single-row predicts. The fast
    path is the threaded ``serve_tcp`` frontend (bounded worker pool,
    cross-client batching); the baseline replicates the pre-hardening
    accept loop — one connection served to completion at a time — so
    the eight clients serialize. Both paths are checked byte-identical
    (per request id) against the serial stdio server before timing: the
    concurrency is a transport property, never a semantic one.
    """
    import socket
    import tempfile
    import threading

    from repro.ml.forest import RandomForestRegressor
    from repro.serve import FitRegistry, PredictionServer, ServableFit
    from repro.serve.server import serve_stdio, serve_tcp

    clients = 8
    per_client = 8 if quick else 20
    trees = 150  # deep forest: the per-pass tree loop is what batching amortizes
    rows = 1
    p = 8
    features = [f"f{i}" for i in range(p)]
    rng = np.random.default_rng(11)
    X = rng.uniform(size=(120, p))
    y = X @ np.linspace(1.0, 2.0, p) + rng.normal(0, 0.01, 120)
    forest = RandomForestRegressor(
        n_trees=trees, importance=False, rng=np.random.default_rng(12)
    ).fit(X, y, feature_names=features)
    servable = ServableFit(
        kernel="benchServe", arch="volta", tag=None, forest=forest,
        feature_names=features, source={"n_runs": 120},
    )
    payloads = [
        [
            json.dumps(
                {
                    "id": f"c{c}-{i}",
                    "method": "predict",
                    "params": {
                        "kernel": "benchServe",
                        "arch": "volta",
                        "X": rng.uniform(size=(rows, p)).tolist(),
                    },
                },
                sort_keys=True,
            )
            for i in range(per_client)
        ]
        for c in range(clients)
    ]
    n_requests = clients * per_client

    def session(host: str, port: int, lines: list[str]) -> dict[str, str]:
        """One closed-loop client: send a line, wait for its response."""
        out = {}
        with socket.create_connection((host, port)) as conn:
            rf = conn.makefile("r")
            wf = conn.makefile("w")
            for line in lines:
                wf.write(line + "\n")
                wf.flush()
                resp = rf.readline()
                out[json.loads(resp)["id"]] = resp.rstrip("\n")
        return out

    def drive(host: str, port: int) -> dict[str, str]:
        results: dict[str, str] = {}
        lock = threading.Lock()

        def one(c: int) -> None:
            got = session(host, port, payloads[c])
            with lock:
                results.update(got)

        threads = [
            threading.Thread(target=one, args=(c,)) for c in range(clients)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        return results

    def serial_tcp(server: PredictionServer, sock) -> None:
        # Replica of the pre-hardening frontend: one connection at a
        # time, served to completion over stdio framing.
        while not server._stop:
            try:
                conn, _ = sock.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            with conn:
                serve_stdio(
                    server, stdin=conn.makefile("r"),
                    stdout=conn.makefile("w"),
                )

    with tempfile.TemporaryDirectory() as tmp:
        registry = FitRegistry(tmp)
        registry.publish(servable)

        # Ground truth: the serial stdio server, one request per batch.
        ref = PredictionServer(registry, watch_reload=False)
        expected: dict[str, str] = {}
        for lines in payloads:
            for line in lines:
                out = ref.handle_batch([line])[0]
                expected[json.loads(out)["id"]] = out

        # The telemetry exporter rides along on the fast path — the
        # acceptance bar is that live observability costs almost
        # nothing, so the timed configuration is the observed one.
        fast_server = PredictionServer(
            registry, watch_reload=False,
            telemetry_path=f"{tmp}/telemetry.jsonl",
            telemetry_interval_s=0.5,
        )
        ready = threading.Event()
        addr: dict = {}

        def on_ready(host, port):
            addr["fast"] = (host, port)
            ready.set()

        fast_thread = threading.Thread(
            target=serve_tcp,
            args=(fast_server, "127.0.0.1", 0),
            kwargs={
                # Two workers, not four: one handles while the other
                # collects the next cross-client batch; more workers
                # fragment batches and contend for the GIL.
                "workers": 2,
                "queue_size": 4 * n_requests,
                "on_ready": on_ready,
                "announce": False,
                # Batching window: closed-loop clients send in bursts
                # right after each response wave; a millisecond of
                # linger coalesces the burst into one stacked pass.
                "linger_s": 0.001,
            },
            daemon=True,
        )
        fast_thread.start()
        if not ready.wait(timeout=15):
            raise AssertionError("concurrent frontend never became ready")

        base_server = PredictionServer(registry, watch_reload=False)
        bsock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        bsock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        bsock.bind(("127.0.0.1", 0))
        bsock.listen(16)
        bsock.settimeout(0.05)
        base_thread = threading.Thread(
            target=serial_tcp, args=(base_server, bsock), daemon=True
        )
        base_thread.start()
        addr["base"] = bsock.getsockname()

        try:
            if drive(*addr["fast"]) != expected:
                raise AssertionError(
                    "concurrent responses diverge from the serial server"
                )
            if drive(*addr["base"]) != expected:
                raise AssertionError(
                    "baseline responses diverge from the serial server"
                )
            fast_s = _best_of(lambda: drive(*addr["fast"]), 4)
            base_s = _best_of(lambda: drive(*addr["base"]), 2)
        finally:
            shutdown = json.dumps({"id": "stop", "method": "shutdown"})
            for which in ("fast", "base"):
                try:
                    session(*addr[which], [shutdown])
                except OSError:
                    pass
            fast_thread.join(timeout=10)
            base_thread.join(timeout=10)
            bsock.close()

    return _result(
        "serve_concurrent", n_requests, "requests", fast_s, base_s,
        {
            "clients": clients,
            "per_client": per_client,
            "trees": trees,
            "workers": 2,
            "telemetry": True,
            "requests_per_s": (
                n_requests / fast_s if fast_s > 0 else None
            ),
        },
    )


def _synthetic_campaign(n_runs: int, seed: int):
    """A repository-scale synthetic campaign with real catalogue counters.

    Fabricates ``RunRecord`` rows directly (no simulator in the loop) so
    the benchmark times the storage layer, not profiling. Counter names
    come from the real GTX580 catalogue so ``predictor_names`` and the
    index's predictor subset resolve exactly as they do for profiled
    campaigns.
    """
    from repro.gpusim.counters import CATALOGUE, available_counters
    from repro.profiling.campaign import CampaignResult
    from repro.profiling.profiler import RunRecord

    names = [
        n for n in available_counters("fermi") if CATALOGUE[n].predictor
    ][:24]
    rng = np.random.default_rng(seed)
    values = rng.uniform(1.0, 1e6, size=(n_runs, len(names)))
    sizes = rng.integers(64, 4096, size=n_runs)
    times = rng.uniform(1e-4, 0.5, size=n_runs)
    records = [
        RunRecord(
            kernel="bench-synth",
            arch="GTX580",
            family="fermi",
            problem=int(sizes[i]),
            characteristics={"n": float(sizes[i])},
            counters=dict(zip(names, values[i].tolist())),
            time_s=float(times[i]),
            replicate=0,
        )
        for i in range(n_runs)
    ]
    return CampaignResult(
        kernel="bench-synth", arch="GTX580", family="fermi", records=records
    )


def bench_time_to_matrix(quick: bool = False) -> BenchResult:
    """Repository-scale ``matrix()``: columnar index vs. CSV re-parse.

    Saves one synthetic campaign at production scale (10^4 runs; 2·10^3
    in quick mode) and times the question every fit starts with — "give
    me the dense predictor matrix" — answered from the ``repro-matrix/1``
    sidecar versus re-parsing ``runs.csv`` through ``load()``. The two
    paths are checked bit-identical before timing.
    """
    import shutil
    import tempfile

    from repro.profiling.repository import CampaignKey, ProfileRepository

    n_runs = 2_000 if quick else 10_000
    tmp = tempfile.mkdtemp(prefix="repro-bench-repo-")
    try:
        repo = ProfileRepository(tmp)
        result = _synthetic_campaign(n_runs, seed=11)
        repo.save(result, seed=11)
        key = CampaignKey("bench-synth", "GTX580")

        X_fast, y_fast, names_fast = repo.matrix(key)
        X_base, y_base, names_base = repo.load(key).matrix()
        if (
            names_fast != names_base
            or not np.array_equal(X_fast, X_base)
            or not np.array_equal(y_fast, y_base)
        ):
            raise AssertionError("indexed matrix diverges from CSV parse")

        fast_s = _best_of(lambda: repo.matrix(key), 3)
        base_s = _best_of(lambda: repo.load(key).matrix(), 2)
        return _result(
            "time_to_matrix", n_runs, "stored runs", fast_s, base_s,
            {
                "n_predictors": X_fast.shape[1],
                "layout": repo.layout,
            },
        )
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def bench_fit_from_repo(quick: bool = False) -> BenchResult:
    """Incremental fit from a stored campaign vs. full parse-and-refit.

    Scenario: a 10^4-run campaign (2·10^3 quick) grows by a small
    append. The fast path resumes from serialized forest state
    (``repro-forest-state/1``) — matrix from the columnar index, stored
    trees restored, only the delta's worth of trees grown. The baseline
    re-parses the CSV and refits the full forest from scratch. The
    resumed forest is checked bit-identical to the in-process
    fit-then-refit replay before timing.
    """
    import shutil
    import tempfile
    from pathlib import Path

    from repro.ml.forest import RandomForestRegressor
    from repro.ml.incremental import fit_from_repo
    from repro.profiling.repository import CampaignKey, ProfileRepository

    n_base = 2_000 if quick else 10_000
    n_delta = max(n_base // 20, 50)
    trees = 8
    tmp = tempfile.mkdtemp(prefix="repro-bench-fit-")
    try:
        repo = ProfileRepository(Path(tmp) / "repo")
        full = _synthetic_campaign(n_base + n_delta, seed=13)
        base_result = _synthetic_campaign(n_base + n_delta, seed=13)
        base_result.records = base_result.records[:n_base]
        repo.save(base_result, seed=13)
        key = CampaignKey("bench-synth", "GTX580")
        cfg = dict(
            n_trees=trees, max_depth=6, importance=False, seed=21,
        )

        state0 = Path(tmp) / "state0.json"
        fit_from_repo(repo, key, state_path=state0, **cfg)

        delta = _synthetic_campaign(n_base + n_delta, seed=13)
        delta.records = delta.records[n_base:]
        repo.append(delta)

        # Bit-identity gate: resumed == in-process fit-then-refit replay.
        state_work = Path(tmp) / "state.json"
        shutil.copy(state0, state_work)
        resumed, info = fit_from_repo(
            repo, key, state_path=state_work, **cfg
        )
        if info["path"] != "resumed":
            raise AssertionError(
                f"expected the resumed path, got {info['path']!r}"
            )
        X, y, names = repo.matrix(key)
        replay = RandomForestRegressor(
            n_trees=trees, max_depth=6, importance=False, rng=21,
        ).fit(X[:n_base], y[:n_base], feature_names=list(names))
        replay.refit(X, y)
        probe = np.asarray(X[:64], dtype=float)
        if not np.array_equal(resumed.predict(probe), replay.predict(probe)):
            raise AssertionError("resumed fit diverges from fit+refit replay")

        def run_fast():
            shutil.copy(state0, state_work)
            fit_from_repo(repo, key, state_path=state_work, **cfg)

        def run_base():
            Xb, yb, nb = repo.load(key).matrix()
            RandomForestRegressor(
                n_trees=trees + info["n_new_trees"], max_depth=6,
                importance=False, rng=21,
            ).fit(Xb, yb, feature_names=list(nb))

        fast_s = _best_of(run_fast, 3)
        base_s = _best_of(run_base, 2)
        return _result(
            "fit_from_repo", n_base + n_delta, "stored runs",
            fast_s, base_s,
            {
                "n_appended": n_delta,
                "n_trees": trees,
                "n_new_trees": info["n_new_trees"],
            },
        )
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


BENCHMARKS = {
    "trace_transactions": bench_trace_transactions,
    "cache_trace_replay": bench_cache_trace_replay,
    "forest_fit": bench_forest_fit,
    "campaign_sweep": bench_campaign_sweep,
    "predict_many": bench_predict_many,
    "serve_concurrent": bench_serve_concurrent,
    "time_to_matrix": bench_time_to_matrix,
    "fit_from_repo": bench_fit_from_repo,
}


def run_benchmarks(
    ops: list[str] | None = None,
    quick: bool = False,
    log=None,
) -> list[BenchResult]:
    """Run the selected benchmarks (default: all), in catalogue order."""
    selected = list(BENCHMARKS) if ops is None else list(ops)
    unknown = [op for op in selected if op not in BENCHMARKS]
    if unknown:
        raise ValueError(
            f"unknown benchmark op(s) {unknown}; choose from {list(BENCHMARKS)}"
        )
    results = []
    for op in selected:
        if log is not None:
            log(f"running {op} ({'quick' if quick else 'full'})...")
        results.append(BENCHMARKS[op](quick=quick))
    return results


def write_report(
    results: list[BenchResult], path: str, quick: bool = False
) -> dict:
    """Serialize results (plus environment metadata) to ``path``."""
    payload = {
        "schema": SCHEMA,
        "quick": quick,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "results": [asdict(r) for r in results],
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    return payload


def format_results(results: list[BenchResult]) -> str:
    """Human-readable table of the per-op timings and speedups."""
    from repro.viz import table

    rows = []
    for r in results:
        rows.append((
            r.op,
            f"{r.n} {r.unit}",
            f"{r.wall_s * 1e3:.2f} ms",
            f"{r.throughput:,.0f}/s",
            f"{r.baseline_wall_s * 1e3:.2f} ms" if r.baseline_wall_s else "-",
            f"{r.speedup:.1f}x" if r.speedup else "-",
        ))
    return table(
        ["op", "workload", "fast", "throughput", "baseline", "speedup"],
        rows,
        title="repro bench (baselines: pre-vectorization scalar paths)",
    )


def check_regressions(
    payload: dict,
    baseline_path: str = BASELINE_PATH,
    threshold_pct: float | None = None,
):
    """Compare a fresh ``repro-bench/1`` payload to the committed baseline.

    Returns the list of :class:`repro.obs.history.Regression` findings
    (empty = no op slowed past the threshold). Raises ``OSError`` if the
    baseline file is absent — a watchdog with nothing to compare against
    must fail loudly, not pass vacuously.
    """
    from repro.obs.history import DEFAULT_THRESHOLD_PCT, compare_results

    with open(baseline_path, encoding="utf-8") as fh:
        baseline = json.load(fh)
    if baseline.get("schema") != SCHEMA:
        raise ValueError(
            f"{baseline_path}: unknown bench schema "
            f"{baseline.get('schema')!r} (expected {SCHEMA!r})"
        )
    if threshold_pct is None:
        threshold_pct = DEFAULT_THRESHOLD_PCT
    return compare_results(payload, baseline, threshold_pct=threshold_pct)


def main(argv: list[str] | None = None) -> int:
    """Standalone entry point (``benchmarks/perf/run.py`` delegates here)."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller workloads (CI smoke sizes)")
    parser.add_argument("--out", default=None,
                        help="JSON report path (default: BENCH_core.json; "
                        "with --check the report is only written when "
                        "--out is given, so the baseline stays intact)")
    parser.add_argument("--ops", help="comma-separated subset of: "
                        + ",".join(BENCHMARKS))
    parser.add_argument("--check", action="store_true",
                        help="compare speedups against the committed "
                        "baseline and exit non-zero on regression")
    parser.add_argument("--baseline", default=BASELINE_PATH,
                        help="baseline report for --check "
                        f"(default: {BASELINE_PATH})")
    parser.add_argument("--threshold", type=float, default=None,
                        metavar="PCT",
                        help="per-op speedup drop (percent) that counts "
                        "as a regression (default: 30)")
    parser.add_argument("--history", default=HISTORY_PATH,
                        help="bench-history journal to append to "
                        f"(default: {HISTORY_PATH})")
    parser.add_argument("--no-history", action="store_true",
                        help="skip the history append")
    args = parser.parse_args(argv)
    ops = (
        [tok.strip() for tok in args.ops.split(",") if tok.strip()]
        if args.ops else None
    )
    results = run_benchmarks(
        ops=ops, quick=args.quick,
        log=lambda msg: print(msg, file=sys.stderr),
    )

    import os
    import tempfile

    out = args.out
    if out is None and not args.check:
        out = BASELINE_PATH
    if out is not None:
        payload = write_report(results, out, quick=args.quick)
    else:
        # --check without --out: build the payload without touching the
        # committed baseline file.
        with tempfile.TemporaryDirectory() as tmp:
            payload = write_report(
                results, os.path.join(tmp, "bench.json"), quick=args.quick
            )

    if not args.no_history:
        from repro.obs.history import append_history

        append_history(args.history, payload)

    print(format_results(results))
    if out is not None:
        print(f"\nreport written to {out}")

    if args.check:
        regressions = check_regressions(
            payload, baseline_path=args.baseline,
            threshold_pct=args.threshold,
        )
        if regressions:
            print("\nREGRESSIONS detected against "
                  f"{args.baseline}:", file=sys.stderr)
            for reg in regressions:
                print(f"  {reg.describe()}", file=sys.stderr)
            return 1
        print(f"\nno regressions against {args.baseline}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
