"""Deprecation plumbing for the unified public API.

Every legacy call surface kept alive after the API redesign (old
positional signatures, renamed classes/methods) funnels through
:func:`warn_once`, which emits exactly one :class:`DeprecationWarning`
per distinct shim per process — loud enough to notice, quiet enough not
to drown a campaign loop in repeats. ``tests/test_deprecations.py``
pins both the single warning and the delegation; CI additionally runs
the non-shim test suite under ``-W error::DeprecationWarning`` so
internal code never calls its own deprecated surfaces.
"""

from __future__ import annotations

import warnings

__all__ = ["warn_once", "reset_deprecation_warnings"]

_WARNED: set[str] = set()


def warn_once(key: str, message: str, stacklevel: int = 3) -> None:
    """Emit ``message`` as a DeprecationWarning, once per ``key``."""
    if key in _WARNED:
        return
    _WARNED.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)


def reset_deprecation_warnings() -> None:
    """Forget which shims already warned (test isolation helper)."""
    _WARNED.clear()
