"""Shared helpers for deterministic multi-process fan-out.

Both the forest fit (:mod:`repro.ml.forest`) and the profiling campaign
sweep (:mod:`repro.profiling.campaign`) parallelize over independent
work items (trees, problem instances) while guaranteeing that the
result is bit-for-bit identical to the serial path. The recipe is the
same in both places and lives here:

* :func:`spawn_streams` gives every work item its *own* child RNG
  stream derived with ``SeedSequence.spawn`` semantics, so item ``i``
  consumes the same random numbers no matter which process runs it or
  in what order;
* :func:`resolve_n_jobs` normalizes the user-facing ``n_jobs`` knob
  (``-1`` = all cores, ``0`` rejected);
* :func:`chunk_bounds` splits ``n`` items into at most ``jobs``
  contiguous chunks, so per-process results can be concatenated back in
  item order.
"""

from __future__ import annotations

import os

import numpy as np

__all__ = ["chunk_bounds", "resolve_n_jobs", "spawn_streams"]


def resolve_n_jobs(n_jobs: int) -> int:
    """Worker-count for an ``n_jobs`` knob: ``-1`` means all CPUs."""
    if n_jobs == 0:
        raise ValueError("n_jobs must be >= 1 or -1")
    if n_jobs < 0:
        return max(os.cpu_count() or 1, 1)
    return n_jobs


def spawn_streams(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """``n`` independent child streams (SeedSequence.spawn semantics).

    Child ``i`` is a deterministic function of the parent's seed
    sequence and ``i`` alone — not of how many numbers the parent has
    produced since, nor of which process asks — which is what makes
    serial and parallel execution replay identically.
    """
    if hasattr(rng, "spawn"):  # numpy >= 1.25
        return rng.spawn(n)
    seeds = rng.bit_generator.seed_seq.spawn(n)  # type: ignore[attr-defined]
    return [np.random.default_rng(s) for s in seeds]


def chunk_bounds(n_items: int, jobs: int) -> np.ndarray:
    """Boundaries of at most ``jobs`` contiguous, near-equal chunks."""
    jobs = max(1, min(jobs, n_items))
    return np.linspace(0, n_items, jobs + 1).astype(int)
