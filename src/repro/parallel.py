"""Shared helpers for deterministic multi-process fan-out.

Both the forest fit (:mod:`repro.ml.forest`) and the profiling campaign
sweep (:mod:`repro.profiling.campaign`) parallelize over independent
work items (trees, problem instances) while guaranteeing that the
result is bit-for-bit identical to the serial path. The recipe is the
same in both places and lives here:

* :func:`spawn_streams` gives every work item its *own* child RNG
  stream derived with ``SeedSequence.spawn`` semantics, so item ``i``
  consumes the same random numbers no matter which process runs it or
  in what order;
* :func:`resolve_n_jobs` normalizes the user-facing ``n_jobs`` knob
  (``-1`` = all cores, ``0`` rejected);
* :func:`chunk_bounds` splits ``n`` items into at most ``jobs``
  contiguous chunks, so per-process results can be concatenated back in
  item order;
* :func:`process_map` is the one place in the package that touches
  ``concurrent.futures`` — it fans tasks out over a process pool and
  returns results *in task order*, with an optional in-parent recovery
  hook for crashed workers. The determinism sanitizer (rule BF405)
  rejects process fan-out anywhere else.
"""

from __future__ import annotations

import os
from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = ["chunk_bounds", "process_map", "resolve_n_jobs", "spawn_streams"]


def resolve_n_jobs(n_jobs: int) -> int:
    """Worker-count for an ``n_jobs`` knob: ``-1`` means all CPUs."""
    if n_jobs == 0:
        raise ValueError("n_jobs must be >= 1 or -1")
    if n_jobs < 0:
        return max(os.cpu_count() or 1, 1)
    return n_jobs


def spawn_streams(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """``n`` independent child streams (SeedSequence.spawn semantics).

    Child ``i`` is a deterministic function of the parent's seed
    sequence and ``i`` alone — not of how many numbers the parent has
    produced since, nor of which process asks — which is what makes
    serial and parallel execution replay identically.
    """
    if hasattr(rng, "spawn"):  # numpy >= 1.25
        return rng.spawn(n)
    seeds = rng.bit_generator.seed_seq.spawn(n)  # type: ignore[attr-defined]
    return [np.random.default_rng(s) for s in seeds]


def chunk_bounds(n_items: int, jobs: int) -> np.ndarray:
    """Boundaries of at most ``jobs`` contiguous, near-equal chunks."""
    jobs = max(1, min(jobs, n_items))
    return np.linspace(0, n_items, jobs + 1).astype(int)


def process_map(
    worker: Callable,
    tasks: Sequence,
    max_workers: int,
    *,
    recoverable: tuple[type[BaseException], ...] | None = None,
    recover: Callable | None = None,
) -> list:
    """Run ``worker(task)`` for every task on a process pool, in order.

    Results come back in *task order* regardless of which worker
    finishes first, so callers can concatenate them and stay
    bit-identical with the serial path. When a task raises one of
    ``recoverable`` — including a ``BrokenProcessPool`` from a worker
    that died outright — ``recover(task, exc)`` runs *in the parent*
    and its return value stands in for the lost result; without a
    recovery hook the exception propagates.

    This is deliberately the only module in the package that imports
    ``concurrent.futures`` (enforced by determinism rule BF405): every
    process fan-out shares one audited, order-stable code path.
    """
    from concurrent.futures import ProcessPoolExecutor
    from concurrent.futures.process import BrokenProcessPool

    catch: tuple[type[BaseException], ...] = tuple(recoverable or ())
    if recover is not None and BrokenProcessPool not in catch:
        catch = catch + (BrokenProcessPool,)

    results: list = []
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        futures = [pool.submit(worker, task) for task in tasks]
        for task, future in zip(tasks, futures):
            try:
                results.append(future.result())
            except catch as exc:
                if recover is None:  # pragma: no cover - guarded above
                    raise
                results.append(recover(task, exc))
    return results
