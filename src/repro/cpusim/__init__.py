"""CPU performance substrate (the paper's Section 7 CPU extension).

Multicore architecture descriptions, perf-style counters and a timing
model, so the BlackForest pipeline runs unchanged on CPU campaigns —
and so heterogeneous CPU+GPU workload partitioning (the Glinda/StarPU
use case the paper cites) can be driven by two BlackForest models.
"""

from .arch import I7_SANDY, XEON_E5, CPUArchitecture
from .simulator import CPUSimulator, CPUWorkload, cpu_average_power_w

__all__ = [
    "I7_SANDY",
    "XEON_E5",
    "CPUArchitecture",
    "CPUSimulator",
    "CPUWorkload",
    "cpu_average_power_w",
]
