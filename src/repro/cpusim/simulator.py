"""CPU performance simulator: the multicore counterpart of `gpusim`.

Prices a :class:`CPUWorkload` with the same bound structure the GPU
model uses — instruction throughput, memory bandwidth, and a
miss-latency bound overlapped by memory-level parallelism — plus
Amdahl-style scaling over cores with a fork/join overhead. Counters
follow `perf stat` conventions; the same :class:`Perturbation` model
supplies run-to-run variance so the statistical pipeline sees realistic
data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gpusim.counters import CounterSet
from repro.gpusim.noise import Perturbation

from .arch import CPUArchitecture

__all__ = ["CPUWorkload", "CPUSimulator", "cpu_average_power_w"]


@dataclass
class CPUWorkload:
    """One parallel region, as seen by the CPU model.

    Instruction counts are totals over the whole region (all threads).
    """

    name: str
    #: Scalar retired instructions (address math, control, scalar FP).
    scalar_instructions: float
    #: Packed SIMD instructions (each processes `vector_width` lanes).
    simd_instructions: float = 0.0
    branches: float = 0.0
    branch_miss_rate: float = 0.01
    #: L1 data loads and the fraction missing L1 / the LLC.
    l1_loads: float = 0.0
    l1_miss_fraction: float = 0.02
    llc_miss_fraction: float = 0.3   # of L1 misses
    #: Distinct bytes touched (drives the LLC-capacity adjustment).
    working_set_bytes: float = 0.0
    #: Fraction of the work that parallelizes (Amdahl).
    parallel_fraction: float = 1.0
    #: Independent outstanding misses per thread (MLP).
    memory_ilp: float = 4.0

    def __post_init__(self) -> None:
        for name in ("scalar_instructions", "simd_instructions", "branches",
                     "l1_loads", "working_set_bytes"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        for name in ("branch_miss_rate", "l1_miss_fraction",
                     "llc_miss_fraction", "parallel_fraction"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if self.memory_ilp < 1.0:
            raise ValueError("memory_ilp must be >= 1")

    @property
    def instructions(self) -> float:
        return self.scalar_instructions + self.simd_instructions + self.branches


class CPUSimulator:
    """Multicore timing + perf-counter model."""

    def __init__(
        self,
        arch: CPUArchitecture,
        noise_sigma: float = 0.0,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        self.arch = arch
        self.noise_sigma = noise_sigma
        self._rng = np.random.default_rng(rng)

    def _resolve(self, wl: CPUWorkload, pert: Perturbation) -> dict[str, float]:
        arch = self.arch
        l1_misses = wl.l1_loads * wl.l1_miss_fraction / min(pert.cache_factor, 2.0)
        # LLC capacity adjustment: working sets beyond the LLC miss more.
        llc_bytes = arch.llc_mb * (1 << 20)
        capacity_factor = 1.0
        if wl.working_set_bytes > llc_bytes > 0:
            capacity_factor = min(3.0, wl.working_set_bytes / llc_bytes)
        llc_misses = min(
            l1_misses,
            l1_misses * wl.llc_miss_fraction * capacity_factor
            / min(pert.cache_factor, 2.0),
        )
        dram_bytes = llc_misses * 64.0  # line fills

        # --- per-core cycle bounds for the parallel part ---
        threads = arch.n_cores  # one worker per core (SMT feeds the pipe)
        par = wl.parallel_fraction
        instr_par = wl.instructions * par / threads
        issue_cycles = instr_par / (arch.ipc_peak * pert.sched_efficiency)
        branch_cycles = (
            wl.branches * par / threads * wl.branch_miss_rate * 15.0
        )
        miss_lat_cycles = arch.mem_latency_ns * arch.clock_ghz
        llc_lat_cycles = arch.llc_latency_ns * arch.clock_ghz
        lat_cycles = (
            (llc_misses * miss_lat_cycles + (l1_misses - llc_misses) * llc_lat_cycles)
            * par / threads / wl.memory_ilp
        )
        bw_cycles = (
            dram_bytes * par
            / (arch.bytes_per_cycle() * pert.dram_efficiency)
        )  # bandwidth is shared: no /threads
        par_cycles = max(issue_cycles + branch_cycles, lat_cycles, bw_cycles)

        # --- serial remainder on one core ---
        instr_ser = wl.instructions * (1.0 - par)
        ser_cycles = (
            instr_ser / (arch.ipc_peak * pert.sched_efficiency)
            + (l1_misses * (1.0 - par)) * miss_lat_cycles / wl.memory_ilp
        )

        total_cycles = par_cycles + ser_cycles
        time_s = total_cycles / (arch.clock_ghz * 1e9)
        time_s += arch.parallel_overhead_us * 1e-6
        time_s *= pert.time_jitter

        serial_time = (
            wl.instructions / arch.ipc_peak
            + l1_misses * miss_lat_cycles / wl.memory_ilp
        ) / (arch.clock_ghz * 1e9)
        speedup = serial_time / time_s if time_s > 0 else 1.0

        return {
            "instructions": wl.instructions,
            "cpu_cycles": total_cycles * threads,
            "cache_references": l1_misses,       # LLC accesses = L1 misses
            "cache_misses": llc_misses,
            "l1_dcache_loads": wl.l1_loads,
            "l1_dcache_load_misses": l1_misses,
            "branches": wl.branches,
            "branch_misses": wl.branches * wl.branch_miss_rate,
            "simd_instructions": wl.simd_instructions,
            "_time_s": time_s,
            "_dram_bytes": dram_bytes,
            "_speedup": min(speedup, float(threads)),
        }

    def run(
        self,
        workloads: list[CPUWorkload],
        perturbation: Perturbation | None = None,
    ) -> tuple[CounterSet, float]:
        """Simulate a run (a sequence of parallel regions)."""
        if not workloads:
            raise ValueError("at least one workload region required")
        pert = (
            perturbation
            if perturbation is not None
            else Perturbation.draw(self._rng, scale=self.noise_sigma)
        )
        totals: dict[str, float] = {}
        for wl in workloads:
            for key, value in self._resolve(wl, pert).items():
                totals[key] = totals.get(key, 0.0) + value

        time_s = totals.pop("_time_s")
        dram_bytes = totals.pop("_dram_bytes")
        speedup = totals.pop("_speedup") / len(workloads)
        cycles = totals["cpu_cycles"]

        values = dict(totals)
        values["cpu_ipc"] = (
            totals["instructions"] / cycles * self.arch.n_cores
            if cycles > 0 else 0.0
        )
        values["cpu_llc_miss_rate"] = (
            totals["cache_misses"] / totals["cache_references"]
            if totals["cache_references"] > 0 else 0.0
        )
        values["cpu_mem_bandwidth"] = dram_bytes / time_s / 1e9 if time_s > 0 else 0.0
        values["cpu_vectorization_ratio"] = (
            totals["simd_instructions"] / totals["instructions"]
            if totals["instructions"] > 0 else 0.0
        )
        values["cpu_parallel_efficiency"] = speedup / self.arch.n_cores
        return CounterSet("cpu", values), time_s


def cpu_average_power_w(
    arch: CPUArchitecture, instructions: float, dram_bytes: float, time_s: float
) -> float:
    """Average package power over a run, clipped to TDP."""
    if time_s <= 0:
        return arch.static_power_w
    dynamic = 1e-9 * (
        instructions * arch.energy_per_instruction_nj
        + dram_bytes * arch.energy_per_dram_byte_nj
    )
    return float(min(arch.static_power_w + dynamic / time_s, arch.tdp_w))
