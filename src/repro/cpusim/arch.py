"""CPU architecture descriptions for the Section 7 CPU extension.

"We plan to empirically validate this assumption, by first proving BF's
usability on CPUs" — the statistical method only needs counter vectors
plus times, so a CPU substrate slots in beside the GPU one: a multicore
description (cores, SMT, vector width, cache hierarchy, bandwidth) and
a perf-style counter interface.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["CPUArchitecture", "XEON_E5", "I7_SANDY"]


@dataclass(frozen=True)
class CPUArchitecture:
    """Static description of a multicore CPU for the performance model."""

    name: str
    family: str = "cpu"

    n_cores: int = 8
    smt: int = 2                      # hardware threads per core
    clock_ghz: float = 2.6
    #: SIMD lanes for 4-byte elements (AVX = 8).
    vector_width: int = 8
    #: Sustained instructions per cycle per core (superscalar width).
    ipc_peak: float = 4.0

    l1_kb: int = 32
    l2_kb: int = 256
    llc_mb: int = 20
    mem_bandwidth_gbs: float = 51.2
    mem_latency_ns: float = 80.0
    llc_latency_ns: float = 15.0

    #: Per-thread fork/join overhead for a parallel region (us).
    parallel_overhead_us: float = 8.0

    # energy model (per-instruction / per-byte, nJ) and static draw (W)
    energy_per_instruction_nj: float = 0.8
    energy_per_dram_byte_nj: float = 0.25
    static_power_w: float = 30.0
    tdp_w: float = 115.0

    @property
    def peak_gflops_sp(self) -> float:
        """FMA peak: 2 flops x vector width per core cycle."""
        return 2.0 * self.vector_width * self.n_cores * self.clock_ghz

    def bytes_per_cycle(self) -> float:
        return self.mem_bandwidth_gbs / self.clock_ghz

    def machine_metrics(self) -> dict[str, float]:
        """Machine characteristics injected for hardware scaling,
        mirroring the paper's Table 2 role."""
        return {
            "cores": float(self.n_cores),
            "smt": float(self.smt),
            "freq": self.clock_ghz,
            "simd": float(self.vector_width),
            "mbw": self.mem_bandwidth_gbs,
            "llc": float(self.llc_mb * 1024),  # KB, comparable to l2c
        }

    def with_overrides(self, **kwargs) -> "CPUArchitecture":
        return replace(self, **kwargs)


#: A Sandy Bridge-EP server part (contemporary with the paper's GPUs).
XEON_E5 = CPUArchitecture(
    name="XeonE5-2670",
    n_cores=8,
    smt=2,
    clock_ghz=2.6,
    vector_width=8,
    l1_kb=32,
    l2_kb=256,
    llc_mb=20,
    mem_bandwidth_gbs=51.2,
)

#: A desktop quad-core of the same generation.
I7_SANDY = CPUArchitecture(
    name="i7-2600",
    n_cores=4,
    smt=2,
    clock_ghz=3.4,
    vector_width=8,
    l1_kb=32,
    l2_kb=256,
    llc_mb=8,
    mem_bandwidth_gbs=21.0,
    parallel_overhead_us=5.0,
    tdp_w=95.0,
)
