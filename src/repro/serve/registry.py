"""Versioned model registry: fit once, serve forever.

Fit artifacts are addressed the way campaigns are — by
:class:`~repro.profiling.repository.CampaignKey` — plus a **version**:
by default the SHA-256 digest of the training campaign's
``repro-manifest/1`` sidecar (so a fit is versioned by the provenance
of the data it learned from), falling back to the artifact's own
content digest for fits without a stored campaign. Layout::

    <root>/<campaign_dirname>/index.json          # publish-ordered versions
    <root>/<campaign_dirname>/<version>/fit.json  # repro-fit/1 artifact
    <root>/<campaign_dirname>/<version>/manifest.json  # provenance sidecar

Every write is atomic (temp file + fsync + rename, the discipline
:mod:`repro.profiling.repository` established) and the sidecar manifest
records the SHA-256 of ``fit.json``. :meth:`FitRegistry.load`
recomputes it on the way in; a mismatch means the artifact on disk is
not the artifact that was published, and the load is **refused** with a
:class:`RegistryIntegrityError` — same contract as the profile
repository's corrupt-campaign handling, with a BF6xx-style named
finding in the message.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.core.store import CampaignKey
from repro.faults.plan import should_inject
from repro.obs import build_manifest
from repro.obs.log import emit as emit_event

from .artifact import ServableFit

__all__ = ["FitRegistry", "FitVersion", "RegistryIntegrityError"]

_FIT = "fit.json"
_MANIFEST = "manifest.json"
_INDEX = "index.json"

#: Schema tag of the per-key version index.
INDEX_SCHEMA = "repro-fit-index/1"

#: Characters of the digest used as the version directory name.
_VERSION_CHARS = 16


class RegistryIntegrityError(ValueError):
    """A stored fit artifact failed an integrity check (digest mismatch,
    torn or unparseable file). Subclasses ``ValueError`` and always says
    "corrupt", mirroring :class:`RepositoryIntegrityError
    <repro.profiling.repository.RepositoryIntegrityError>`."""


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


def _atomic_write(path: Path, text: str) -> None:
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", newline="") as fh:
        fh.write(text)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


@dataclass(frozen=True)
class FitVersion:
    """Address of one published artifact: campaign key + version id."""

    key: CampaignKey
    version: str
    digest: str  #: full SHA-256 of the fit.json payload

    def __str__(self) -> str:
        return f"{self.key.dirname}@{self.version}"


class FitRegistry:
    """Filesystem-backed store of versioned :class:`ServableFit`\\ s."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # -- write ---------------------------------------------------------

    def publish(
        self, servable: ServableFit, *, version: str | None = None
    ) -> FitVersion:
        """Store an artifact; returns its address.

        ``version`` defaults to the source campaign's manifest digest
        (``source["campaign_manifest_sha256"]``) when the servable
        carries one, else the artifact's own content digest — truncated
        to a directory-name-sized prefix either way. Re-publishing an
        identical artifact under the same version is idempotent.
        """
        key = CampaignKey(
            kernel=servable.kernel, arch=servable.arch, tag=servable.tag
        )
        payload = servable.to_json()
        digest = _sha256(payload)
        if version is None:
            version = servable.source.get("campaign_manifest_sha256") or digest
        version = version[:_VERSION_CHARS]
        vdir = self.root / key.dirname / version
        vdir.mkdir(parents=True, exist_ok=True)
        _atomic_write(vdir / _FIT, payload)
        manifest = build_manifest(
            kernel=servable.kernel,
            arch=servable.arch,
            tag=servable.tag,
            n_runs=int(servable.source.get("n_runs") or 0),
            config={
                "version": version,
                "response": servable.response,
                "source": dict(servable.source),
            },
            checksums={_FIT: digest},
        )
        _atomic_write(vdir / _MANIFEST, manifest.to_json())
        self._index_add(key, version)
        emit_event(
            "registry.publish", campaign=key.dirname, version=version
        )
        return FitVersion(key=key, version=version, digest=digest)

    def _index_add(self, key: CampaignKey, version: str) -> None:
        path = self.root / key.dirname / _INDEX
        index = self._read_index(path)
        if version in index["versions"]:
            # Latest-wins: a re-publish moves the version to the tail so
            # "latest" tracks publish order, not first-seen order.
            index["versions"].remove(version)
        index["versions"].append(version)
        _atomic_write(path, json.dumps(index, sort_keys=True) + "\n")

    @staticmethod
    def _read_index(path: Path) -> dict:
        if not path.exists():
            return {"schema": INDEX_SCHEMA, "versions": []}
        try:
            index = json.loads(path.read_text())
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise RegistryIntegrityError(
                f"registry corrupt: {path.parent.name}/{_INDEX} is not "
                f"valid JSON ({exc})"
            ) from None
        if index.get("schema") != INDEX_SCHEMA:
            raise RegistryIntegrityError(
                f"registry corrupt: {path.parent.name}/{_INDEX} has "
                f"unknown schema {index.get('schema')!r} "
                f"(expected {INDEX_SCHEMA!r})"
            )
        return index

    # -- read ----------------------------------------------------------

    def versions(self, key: CampaignKey) -> list[str]:
        """Version ids of one campaign's fits, in publish order."""
        return list(
            self._read_index(self.root / key.dirname / _INDEX)["versions"]
        )

    def resolve_version(
        self, key: CampaignKey, version: str | None = None
    ) -> str:
        """An explicit version verbatim; ``None`` means latest published."""
        if version is not None:
            return version[:_VERSION_CHARS]
        versions = self.versions(key)
        if not versions:
            raise FileNotFoundError(
                f"no fit published for {key.kernel!r} on {key.arch!r}"
                + (f" (tag {key.tag!r})" if key.tag else "")
            )
        return versions[-1]

    def has(self, key: CampaignKey, version: str | None = None) -> bool:
        try:
            resolved = self.resolve_version(key, version)
        except FileNotFoundError:
            return False
        return (self.root / key.dirname / resolved / _FIT).exists()

    def load(
        self, key: CampaignKey, version: str | None = None
    ) -> ServableFit:
        """Load one artifact, verifying its digest on the way.

        The sidecar manifest's recorded SHA-256 of ``fit.json`` is
        recomputed from the bytes on disk; any mismatch refuses the
        artifact with a :class:`RegistryIntegrityError` — a fit that
        does not checksum is not served, ever.
        """
        resolved = self.resolve_version(key, version)
        spec = should_inject(
            "registry.load", campaign=key.dirname, version=resolved
        )
        if spec is not None:
            if spec.mode == "missing":
                raise FileNotFoundError(
                    f"no fit stored for {key.dirname}@{resolved} "
                    f"(injected fault at registry.load)"
                )
            raise RegistryIntegrityError(
                f"BF610: registry corrupt: {key.dirname}/{resolved}/{_FIT} "
                f"digest mismatch (injected fault at registry.load) — "
                f"artifact refused"
            )
        vdir = self.root / key.dirname / resolved
        fit_path = vdir / _FIT
        if not fit_path.exists():
            raise FileNotFoundError(
                f"no fit stored for {key.dirname}@{resolved}"
            )
        try:
            payload = fit_path.read_text()
        except UnicodeDecodeError as exc:
            raise RegistryIntegrityError(
                f"registry corrupt: {key.dirname}/{resolved}/{_FIT} is "
                f"not valid UTF-8 ({exc})"
            ) from None
        expected = self._expected_digest(key, resolved)
        actual = _sha256(payload)
        if expected is not None and actual != expected:
            # BF6xx-style named finding: artifact drift is refused, not
            # served with fingers crossed.
            raise RegistryIntegrityError(
                f"BF610: registry corrupt: {key.dirname}/{resolved}/{_FIT} "
                f"digest mismatch (manifest records {expected[:12]}…, disk "
                f"has {actual[:12]}…) — artifact refused; re-publish the fit"
            )
        try:
            servable = ServableFit.from_json(payload)
        except (json.JSONDecodeError, KeyError, ValueError, TypeError) as exc:
            raise RegistryIntegrityError(
                f"registry corrupt: {key.dirname}/{resolved}/{_FIT} does "
                f"not parse as a {ServableFit.__name__} ({exc})"
            ) from None
        return servable

    def _expected_digest(self, key: CampaignKey, version: str) -> str | None:
        path = self.root / key.dirname / version / _MANIFEST
        if not path.exists():
            return None
        try:
            manifest = json.loads(path.read_text())
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise RegistryIntegrityError(
                f"registry corrupt: {key.dirname}/{version}/{_MANIFEST} "
                f"is unreadable ({exc})"
            ) from None
        return (manifest.get("checksums") or {}).get(_FIT)

    def keys(self) -> list[CampaignKey]:
        """The :class:`CampaignKey` of every campaign with published fits."""
        out = []
        for index_path in sorted(self.root.glob(f"*/{_INDEX}")):
            versions = self._read_index(index_path)["versions"]
            if not versions:
                continue
            fit_path = index_path.parent / versions[-1] / _FIT
            try:
                data = json.loads(fit_path.read_text())
            except (OSError, json.JSONDecodeError):
                continue
            out.append(
                CampaignKey(
                    kernel=data["kernel"],
                    arch=data["arch"],
                    tag=data.get("tag") or None,
                )
            )
        return out

    def iter_keys(self) -> Iterator[CampaignKey]:
        """Iterate published campaign keys (the :class:`RunStore` spelling
        of :meth:`keys`)."""
        yield from self.keys()

    # -- integrity -----------------------------------------------------

    def _dirnames(self) -> list[str]:
        return sorted(p.parent.name for p in self.root.glob(f"*/{_INDEX}"))

    def verify(self, key: CampaignKey) -> list[str]:
        """Integrity findings for every published version of one key.

        Checks what :meth:`load` would check — index parses, each
        indexed version has its artifact, the artifact's SHA-256 matches
        the manifest's record — without deserializing the forests.
        Returns human-readable findings; empty means clean.
        """
        return self._verify_dirname(key.dirname)

    def _verify_dirname(self, dirname: str) -> list[str]:
        try:
            index = self._read_index(self.root / dirname / _INDEX)
        except RegistryIntegrityError as exc:
            return [str(exc)]
        findings: list[str] = []
        for version in index["versions"]:
            fit_path = self.root / dirname / version / _FIT
            if not fit_path.exists():
                findings.append(
                    f"registry corrupt: {dirname}/{version}/{_FIT} is "
                    f"indexed but missing on disk"
                )
                continue
            try:
                payload = fit_path.read_text()
            except UnicodeDecodeError as exc:
                findings.append(
                    f"registry corrupt: {dirname}/{version}/{_FIT} is "
                    f"not valid UTF-8 ({exc})"
                )
                continue
            try:
                expected = self._expected_digest(
                    _DirnameKey(dirname), version
                )
            except RegistryIntegrityError as exc:
                findings.append(str(exc))
                continue
            if expected is None:
                findings.append(
                    f"registry corrupt: {dirname}/{version}/{_MANIFEST} "
                    f"records no {_FIT} digest"
                )
            elif _sha256(payload) != expected:
                findings.append(
                    f"BF610: registry corrupt: {dirname}/{version}/{_FIT} "
                    f"digest mismatch (manifest records {expected[:12]}…, "
                    f"disk has {_sha256(payload)[:12]}…)"
                )
        return findings

    def verify_all(self) -> dict[str, list[str]]:
        """Findings for every campaign with damage; clean registry → ``{}``."""
        out: dict[str, list[str]] = {}
        for dirname in self._dirnames():
            findings = self._verify_dirname(dirname)
            if findings:
                out[dirname] = findings
        return out

    # -- change watching ----------------------------------------------

    def watch_digests(self) -> dict[str, str]:
        """Per-campaign content digests for hot-reload watching.

        Each campaign's digest covers its ``repro-fit-index/1`` bytes
        *plus* every indexed version's ``manifest.json`` bytes — the
        index alone is not enough, because re-publishing the same
        version leaves the index byte-identical while the manifest (and
        artifact checksum) move. Any publish, gc, or on-disk edit of a
        served artifact therefore changes its campaign's digest;
        unreadable files hash as markers rather than raising, so a
        corrupt republish still registers as a change.
        """
        out: dict[str, str] = {}
        for index_path in sorted(self.root.glob(f"*/{_INDEX}")):
            hasher = hashlib.sha256()
            try:
                index_bytes = index_path.read_bytes()
            except OSError:
                index_bytes = b"<unreadable>"
            hasher.update(index_bytes)
            try:
                versions = json.loads(index_bytes).get("versions") or []
            except (json.JSONDecodeError, UnicodeDecodeError, AttributeError):
                versions = []
            for version in versions:
                hasher.update(b"\x00" + str(version).encode() + b"\x00")
                manifest_path = index_path.parent / str(version) / _MANIFEST
                try:
                    hasher.update(manifest_path.read_bytes())
                except OSError:
                    hasher.update(b"<missing>")
            out[index_path.parent.name] = hasher.hexdigest()
        return out

    def watch_digest(self) -> str:
        """One combined digest over :meth:`watch_digests` (health reports)."""
        return hashlib.sha256(
            repr(sorted(self.watch_digests().items())).encode()
        ).hexdigest()

    # -- retention -----------------------------------------------------

    def gc(self, keep_latest: int = 1, *, cache=None) -> dict[str, list[str]]:
        """Drop all but the newest ``keep_latest`` versions of every key.

        Removes the version directories, rewrites each index to its
        retained tail (publish order preserved), and — when a
        :class:`~repro.serve.cache.FitCache` is passed — invalidates the
        cache entry of every removed version so a warm server cannot
        keep serving a fit the registry no longer holds. Returns
        ``{dirname: [removed versions...]}``.
        """
        if keep_latest < 1:
            raise ValueError(
                f"keep_latest must be >= 1; got {keep_latest}"
            )
        removed: dict[str, list[str]] = {}
        for dirname in self._dirnames():
            index_path = self.root / dirname / _INDEX
            index = self._read_index(index_path)
            versions = index["versions"]
            drop = versions[:-keep_latest]
            if not drop:
                continue
            for version in drop:
                shutil.rmtree(self.root / dirname / version, ignore_errors=True)
                if cache is not None:
                    cache.invalidate((dirname, version))
            index["versions"] = versions[-keep_latest:]
            _atomic_write(
                index_path, json.dumps(index, sort_keys=True) + "\n"
            )
            removed[dirname] = drop
        emit_event(
            "registry.gc",
            keep_latest=keep_latest,
            removed=sum(len(v) for v in removed.values()),
        )
        return removed


class _DirnameKey:
    """Duck-typed key for digest lookups addressed by directory name alone
    (verification walks directories; kernel/arch need not be parseable)."""

    def __init__(self, dirname: str) -> None:
        self.dirname = dirname
