"""Warm fit cache: keep deserialized forests hot between requests.

Deserializing a ``repro-fit/1`` artifact (JSON parse + node-array
reconstruction) costs orders of magnitude more than the prediction it
enables, so the server keeps recently used :class:`ServableFit`\\ s in a
bounded LRU. Identity is the registry address — ``(campaign dirname,
resolved version)`` — so two queries for the same published fit share
one deserialized object.

Hits, misses and evictions are counted both locally (:attr:`FitCache.stats`,
always on) and into :mod:`repro.obs.metrics` (``serve.cache.hit`` /
``serve.cache.miss`` / ``serve.cache.eviction``) when a collection
window is installed. Eviction order is strict least-recently-*used*:
a cache hit refreshes recency, so the pinned-order test in
``tests/serve/test_cache.py`` is part of the contract, not an accident
of ``OrderedDict`` internals.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable

from repro.obs.metrics import inc

from .artifact import ServableFit

__all__ = ["FitCache"]


class FitCache:
    """Bounded LRU of deserialized fits, keyed by registry address."""

    def __init__(self, max_entries: int = 8) -> None:
        if max_entries < 1:
            raise ValueError(
                f"cache needs at least one slot; got max_entries={max_entries}"
            )
        self.max_entries = int(max_entries)
        self._entries: "OrderedDict[tuple, ServableFit]" = OrderedDict()
        self.stats = {"hit": 0, "miss": 0, "eviction": 0}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        return key in self._entries

    def keys(self) -> list[tuple]:
        """Cached addresses, least recently used first."""
        return list(self._entries)

    def get(
        self, key: tuple, loader: Callable[[], ServableFit]
    ) -> ServableFit:
        """The cached fit for ``key``, calling ``loader`` on a miss.

        A loader that raises caches nothing — a corrupt artifact must
        not poison the cache and mask a later re-publish.
        """
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.stats["hit"] += 1
            inc("serve.cache.hit")
            return entry
        self.stats["miss"] += 1
        inc("serve.cache.miss")
        entry = loader()
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats["eviction"] += 1
            inc("serve.cache.eviction")
        return entry

    def invalidate(self, key: tuple) -> bool:
        """Drop one entry (e.g. after a re-publish); True if it was cached."""
        return self._entries.pop(key, None) is not None

    def invalidate_key(self, dirname: str) -> int:
        """Drop every cached version of one campaign (hot reload after a
        re-publish whose version id is not knowable here). Returns how
        many entries were dropped."""
        victims = [k for k in self._entries if k[0] == dirname]
        for key in victims:
            del self._entries[key]
        return len(victims)

    def clear(self) -> None:
        self._entries.clear()
