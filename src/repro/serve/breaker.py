"""Per-model circuit breakers: fail fast on a model that keeps failing.

A corrupt artifact (or a disk returning garbage) makes every load of
one ``(campaign, version)`` address fail the same way; without a
breaker each query pays the full load-and-refuse cost and the error log
drowns in repeats. :class:`CircuitBreaker` tracks consecutive
*infrastructure* failures — :class:`RegistryIntegrityError
<repro.serve.registry.RegistryIntegrityError>` on load, unexpected
exceptions out of predict — per address and, past a threshold, answers
further requests immediately with a typed ``breaker_open`` error
instead of re-attempting the load.

Recovery is **deterministic**, not wall-clock based: while open, every
``cooldown``-th rejected request is let through as a *half-open probe*
(so a republished artifact is picked up after a bounded number of
rejections, and chaos tests can pin the exact request on which the
breaker recovers). A successful probe closes the breaker; a failed one
re-opens it and restarts the rejection count.

Client errors (bad params, unknown model) never trip the breaker — a
typo must not take a healthy model out of service.
"""

from __future__ import annotations

__all__ = ["CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class _Entry:
    __slots__ = ("state", "failures", "rejected", "last_error")

    def __init__(self) -> None:
        self.state = CLOSED
        self.failures = 0
        self.rejected = 0
        self.last_error = ""


class CircuitBreaker:
    """Consecutive-failure breakers keyed by ``(dirname, version)``.

    Parameters
    ----------
    threshold:
        Consecutive failures that open a key's breaker.
    cooldown:
        Rejected requests between half-open probes while the breaker is
        open (the deterministic probe schedule: requests ``cooldown``,
        ``2*cooldown``, ... after opening are probes).
    on_event:
        Optional ``callback(kind, key)`` for ``kind`` in
        ``{"open", "half_open", "close", "shortcircuit"}`` — the obs
        accounting hook.
    """

    def __init__(
        self,
        threshold: int = 5,
        cooldown: int = 8,
        on_event=None,
    ) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1; got {threshold}")
        if cooldown < 1:
            raise ValueError(f"cooldown must be >= 1; got {cooldown}")
        self.threshold = int(threshold)
        self.cooldown = int(cooldown)
        self._on_event = on_event
        self._entries: dict[tuple, _Entry] = {}

    def _emit(self, kind: str, key: tuple) -> None:
        if self._on_event is not None:
            self._on_event(kind, key)

    # -- decision ------------------------------------------------------

    def allow(self, key: tuple) -> bool:
        """May a request for ``key`` proceed to load/predict?

        ``False`` means short-circuit with a ``breaker_open`` error.
        While open, every ``cooldown``-th rejection converts the *next*
        request into a half-open probe (returns ``True`` and moves the
        breaker to ``half_open`` until the probe reports back).
        """
        entry = self._entries.get(key)
        if entry is None or entry.state == CLOSED:
            return True
        if entry.state == HALF_OPEN:
            # One probe in flight; everyone else keeps getting rejected.
            self._emit("shortcircuit", key)
            return False
        entry.rejected += 1
        if entry.rejected >= self.cooldown:
            entry.state = HALF_OPEN
            entry.rejected = 0
            self._emit("half_open", key)
            return True
        self._emit("shortcircuit", key)
        return False

    # -- outcome reporting ---------------------------------------------

    def record_failure(self, key: tuple, error: str = "") -> None:
        """An allowed request for ``key`` failed an integrity/predict check."""
        entry = self._entries.setdefault(key, _Entry())
        entry.last_error = error
        if entry.state == HALF_OPEN:
            entry.state = OPEN
            entry.rejected = 0
            self._emit("open", key)
            return
        entry.failures += 1
        if entry.state == CLOSED and entry.failures >= self.threshold:
            entry.state = OPEN
            entry.rejected = 0
            self._emit("open", key)

    def record_success(self, key: tuple) -> None:
        """An allowed request for ``key`` succeeded; close its breaker."""
        entry = self._entries.get(key)
        if entry is None:
            return
        was_open = entry.state != CLOSED
        entry.state = CLOSED
        entry.failures = 0
        entry.rejected = 0
        entry.last_error = ""
        if was_open:
            self._emit("close", key)

    # -- introspection / reset -----------------------------------------

    def state(self, key: tuple) -> str:
        entry = self._entries.get(key)
        return CLOSED if entry is None else entry.state

    def summary(self) -> dict[str, str]:
        """Non-closed breakers as ``{"dirname@version": state}`` (the
        shape the ``repro-serve-health/1`` ``breakers`` field carries)."""
        out = {}
        for key, entry in sorted(self._entries.items()):
            if entry.state != CLOSED:
                out["@".join(str(part) for part in key)] = entry.state
        return out

    def reset(self, dirname: str | None = None) -> int:
        """Forget breakers (all, or one campaign's) — e.g. after a hot
        reload republished the artifacts the failures pointed at.
        Returns how many non-closed breakers were cleared."""
        cleared = 0
        for key in list(self._entries):
            if dirname is not None and key[0] != dirname:
                continue
            if self._entries[key].state != CLOSED:
                cleared += 1
            del self._entries[key]
        return cleared
