"""Prediction-as-a-service: fit artifacts, a versioned registry, a warm
cache and a long-lived, production-hardened JSON-RPC prediction server.

The offline pipeline produces fits; this package makes them *servable*:

* :class:`ServableFit` / :func:`servable_from_fit` — the schema-tagged
  (``repro-fit/1``) JSON form of a fitted forest, bit-exact on
  round-trip (:mod:`repro.serve.artifact`);
* :class:`FitRegistry` — versioned on-disk store addressed by campaign
  key + manifest digest, integrity-checked on load
  (:mod:`repro.serve.registry`);
* :class:`FitCache` — bounded LRU keeping deserialized fits warm
  (:mod:`repro.serve.cache`);
* :class:`PredictionServer` — the ``repro serve`` request loop:
  batched ``predict_many`` coalescing, per-request deadlines, hot
  reload on re-publish, per-model circuit breakers, graceful drain,
  and a concurrent TCP frontend with bounded-queue load shedding
  (:mod:`repro.serve.server`, :mod:`repro.serve.breaker`);
* :class:`PredictionClient` — the retrying client (capped backoff,
  seeded jitter) behind ``repro query`` and the chaos driver
  (:mod:`repro.serve.client`).
"""

from .artifact import ServableFit, servable_from_fit
from .breaker import CircuitBreaker
from .cache import FitCache
from .client import (
    PredictionClient,
    RetryableServeError,
    ServeError,
    parse_ready_line,
)
from .registry import FitRegistry, FitVersion, RegistryIntegrityError
from .server import PredictionServer, ready_line, serve_stdio, serve_tcp

__all__ = [
    "CircuitBreaker",
    "FitCache",
    "FitRegistry",
    "FitVersion",
    "PredictionClient",
    "PredictionServer",
    "RegistryIntegrityError",
    "RetryableServeError",
    "ServableFit",
    "ServeError",
    "parse_ready_line",
    "ready_line",
    "servable_from_fit",
    "serve_stdio",
    "serve_tcp",
]
