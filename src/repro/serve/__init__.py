"""Prediction-as-a-service: fit artifacts, a versioned registry, a warm
cache and a long-lived JSON-RPC prediction server.

The offline pipeline produces fits; this package makes them *servable*:

* :class:`ServableFit` / :func:`servable_from_fit` — the schema-tagged
  (``repro-fit/1``) JSON form of a fitted forest, bit-exact on
  round-trip (:mod:`repro.serve.artifact`);
* :class:`FitRegistry` — versioned on-disk store addressed by campaign
  key + manifest digest, integrity-checked on load
  (:mod:`repro.serve.registry`);
* :class:`FitCache` — bounded LRU keeping deserialized fits warm
  (:mod:`repro.serve.cache`);
* :class:`PredictionServer` — the ``repro serve`` request loop, with
  batched ``predict_many`` coalescing and tail-latency metrics
  (:mod:`repro.serve.server`).
"""

from .artifact import ServableFit, servable_from_fit
from .cache import FitCache
from .registry import FitRegistry, FitVersion, RegistryIntegrityError
from .server import PredictionServer, serve_stdio, serve_tcp

__all__ = [
    "FitCache",
    "FitRegistry",
    "FitVersion",
    "PredictionServer",
    "RegistryIntegrityError",
    "ServableFit",
    "servable_from_fit",
    "serve_stdio",
    "serve_tcp",
]
