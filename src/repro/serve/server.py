"""`repro serve`: a fault-tolerant prediction server over line-delimited JSON-RPC.

One request per line, one response per line, ids echoed back::

    {"id": 1, "method": "predict", "params": {"kernel": "gemm",
     "arch": "volta", "rows": [{"n": 4096, "threads": 256}]}}
    {"id": 1, "result": {"predictions": [0.0123], "version": "ab12…"}}

The request loop **coalesces**: every pass it drains whatever requests
are already queued (up to ``--max-batch``), groups the predict calls by
resolved model, and answers each group with a single
:meth:`ServableFit.predict_many` pass — so ten clients asking the same
model cost one stacked forest traversal, not ten. Responses are written
in arrival order regardless of grouping, and batching is semantically
invisible: the predictions are bit-identical to serving each request
alone (the stacking lemma ``tests/serve/test_server.py`` pins).

On top of the batching core sits the production hardening
(docs/serving.md "Operations"):

* **Concurrency** — :func:`serve_tcp` runs a threaded accept loop, one
  reader thread per connection, and a bounded worker pool pulling from a
  bounded request queue. All request handling serializes through one
  lock, so N concurrent clients receive responses byte-identical to the
  serial stdio server; the speedup comes from cross-client coalescing
  and overlapped socket I/O (the ``serve_concurrent`` bench op).
* **Load shedding** — a full queue answers immediately with a typed
  ``overloaded`` error (:data:`OVERLOADED`) instead of stalling the
  reader; shed requests count into ``serve.shed``.
* **Deadlines** — a request may carry ``params.deadline_ms`` (and the
  server a ``--request-timeout`` default); a request still unprocessed
  when its monotonic deadline passes is refused with
  :data:`DEADLINE_EXCEEDED` (``serve.timeouts``).
* **Hot reload** — each batch checks the registry's watch digests
  (``repro-fit-index/1`` plus version manifests); a re-publish
  invalidates the affected :class:`FitCache` entries and resets the
  model's breaker, so a stale fit is never served (``serve.reloads``).
* **Circuit breaker** — repeated :class:`RegistryIntegrityError` /
  unexpected predict failures open a per-``(campaign, version)``
  breaker (:mod:`repro.serve.breaker`); open models fast-fail with
  :data:`BREAKER_OPEN` and recover via deterministic half-open probes.
* **Graceful drain** — ``shutdown`` (or SIGTERM on the TCP frontend)
  stops accepting, finishes in-flight work, answers late arrivals with
  :data:`DRAINING`, and reports drained counts in the ``serve.drain``
  event.
* **Chaos** — the ``serve.request`` fault site (modes ``raise``/
  ``delay``) fires inside request handling so ``repro chaos --serve``
  can exercise all of the above deterministically.

* **Telemetry** — ``--telemetry PATH`` samples the server's metrics
  into a rotating ``repro-telemetry/1`` JSONL journal
  (:class:`repro.obs.telemetry.TelemetryExporter`), and the
  ``telemetry`` RPC serves the same snapshot live (JSON or a
  Prometheus-style text exposition) for scrapers and ``repro top``.
* **Flight recorder** — ``--flight-recorder PATH`` keeps a bounded ring
  of recent request outcomes/errors/breaker transitions
  (:class:`repro.obs.flightrec.FlightRecorder`) and dumps it atomically
  as ``repro-flightrec/1`` on SIGTERM, on an unhandled worker
  exception, and (edge-triggered, exactly once) on the first
  breaker-open transition.

Methods: ``predict``, ``models``, ``stats``, ``telemetry``, ``ping``,
``shutdown``. ``ping`` returns the ``repro-serve-health/1`` readiness
document (status ``ready``/``draining``, registry digest, breaker
states). EOF on the input is a graceful shutdown too.
"""

from __future__ import annotations

import hashlib
import json
import sys
import threading
import time
from typing import Callable, Sequence

import numpy as np

from repro.faults.plan import should_inject
from repro.obs import metrics as obs_metrics
from repro.obs.flightrec import FlightRecorder
from repro.obs.log import emit as emit_event
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import (
    TelemetryExporter,
    render_prometheus,
    snapshot_doc,
)
from repro.core.store import CampaignKey

from .breaker import CircuitBreaker
from .cache import FitCache
from .registry import FitRegistry, RegistryIntegrityError

__all__ = [
    "PredictionServer",
    "drain_lines",
    "serve_stdio",
    "serve_tcp",
    "ready_line",
    "HEALTH_SCHEMA",
    "ERROR_KINDS",
]

# JSON-RPC 2.0 standard codes plus the serve-specific ones.
PARSE_ERROR = -32700
INVALID_REQUEST = -32600
METHOD_NOT_FOUND = -32601
INVALID_PARAMS = -32602
INTERNAL_ERROR = -32603
MODEL_NOT_FOUND = -32004
REGISTRY_CORRUPT = -32005
OVERLOADED = -32006
DEADLINE_EXCEEDED = -32007
BREAKER_OPEN = -32008
DRAINING = -32009

#: Stable kind names carried alongside the numeric codes, so clients
#: and logs never need the table above to read an error.
ERROR_KINDS: dict[int, str] = {
    PARSE_ERROR: "parse_error",
    INVALID_REQUEST: "invalid_request",
    METHOD_NOT_FOUND: "method_not_found",
    INVALID_PARAMS: "invalid_params",
    INTERNAL_ERROR: "internal_error",
    MODEL_NOT_FOUND: "model_not_found",
    REGISTRY_CORRUPT: "registry_corrupt",
    OVERLOADED: "overloaded",
    DEADLINE_EXCEEDED: "deadline_exceeded",
    BREAKER_OPEN: "breaker_open",
    DRAINING: "draining",
}

#: Schema tag of the ``ping`` readiness document (registered in
#: :mod:`repro.analysis.schemas`).
HEALTH_SCHEMA = "repro-serve-health/1"

#: Prefix of the machine-readable line printed once the TCP frontend
#: has bound its socket (see :func:`ready_line`).
READY_PREFIX = "repro-serve-ready"


def ready_line(host: str, port: int) -> str:
    """The single machine-readable ready line the TCP frontend prints
    after ``bind()``: ``repro-serve-ready host=<host> port=<port>``."""
    return f"{READY_PREFIX} host={host} port={port}"


def drain_lines(stream, max_batch: int) -> list[str] | None:
    """Block for one line, then greedily take queued ones up to the cap.

    Returns ``None`` on EOF. Streams without a real file descriptor
    (``StringIO``, test doubles) still coalesce: whatever is already
    buffered is drained without blocking.
    """
    first = stream.readline()
    if first == "":
        return None
    lines = [first]
    while len(lines) < max_batch and _has_queued_input(stream):
        line = stream.readline()
        if line == "":
            break
        lines.append(line)
    return lines


def _has_queued_input(stream) -> bool:
    try:
        fd = stream.fileno()
    except (AttributeError, OSError, ValueError):
        # In-memory stream: "queued" means not yet at its end.
        tell = getattr(stream, "tell", None)
        seek = getattr(stream, "seek", None)
        if tell is None or seek is None:
            return False
        pos = tell()
        end = seek(0, 2)
        seek(pos)
        return pos < end
    import select

    ready, _, _ = select.select([fd], [], [], 0.0)
    return bool(ready)


class _RpcError(Exception):
    def __init__(self, code: int, message: str) -> None:
        super().__init__(message)
        self.code = code


class PredictionServer:
    """Registry-backed prediction service; one instance per process.

    Thread-safe: every handling path serializes through an internal
    lock, which is what makes concurrent frontends bit-identical to the
    serial stdio loop.

    Parameters
    ----------
    request_timeout_s:
        Default per-request deadline (seconds from arrival). ``None``
        (the default) means no server-side deadline; a request's own
        ``params.deadline_ms`` always takes precedence.
    breaker_threshold / breaker_cooldown:
        :class:`~repro.serve.breaker.CircuitBreaker` knobs — consecutive
        integrity failures that open a model's breaker, and rejected
        requests between deterministic half-open probes.
    watch_reload:
        Watch the registry's content digests and hot-reload on
        re-publish (invalidate the affected cache entries, reset the
        model's breaker). On by default; disable for digest-stable
        benchmarking.
    telemetry_path / telemetry_interval_s:
        Opt-in rotating ``repro-telemetry/1`` journal of periodic
        metric snapshots; the TCP frontend starts/stops the sampler
        thread. Telemetry never touches the predict path — responses
        are bit-identical with it on or off.
    flightrec_path:
        Opt-in flight recorder: a bounded ring of recent request
        outcomes dumped as ``repro-flightrec/1`` on SIGTERM, unhandled
        worker exception, or the first breaker-open transition.
    """

    def __init__(
        self,
        registry: FitRegistry,
        *,
        max_batch: int = 32,
        cache_size: int = 8,
        request_timeout_s: float | None = None,
        breaker_threshold: int = 5,
        breaker_cooldown: int = 8,
        watch_reload: bool = True,
        telemetry_path: str | None = None,
        telemetry_interval_s: float = 5.0,
        flightrec_path: str | None = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1; got {max_batch}")
        if request_timeout_s is not None and request_timeout_s <= 0:
            raise ValueError(
                f"request_timeout_s must be positive (or None); "
                f"got {request_timeout_s}"
            )
        self.registry = registry
        self.max_batch = int(max_batch)
        self.cache = FitCache(max_entries=cache_size)
        self.request_timeout_s = request_timeout_s
        self.watch_reload = bool(watch_reload)
        self.breakers = CircuitBreaker(
            threshold=breaker_threshold,
            cooldown=breaker_cooldown,
            on_event=self._breaker_event,
        )
        #: Server-local metrics (always on, independent of whether an
        #: ambient ``collect()`` window is installed).
        self.metrics = MetricsRegistry()
        self.telemetry: TelemetryExporter | None = None
        if telemetry_path is not None:
            self.telemetry = TelemetryExporter(
                telemetry_path,
                self.telemetry_doc,
                source="serve",
                interval_s=telemetry_interval_s,
            )
        self.flightrec: FlightRecorder | None = None
        if flightrec_path is not None:
            self.flightrec = FlightRecorder(flightrec_path)
        self.requests_served = 0
        self.inflight = 0
        self._stop = False
        self._draining = False
        self._served_at_drain: int | None = None
        self._watched: dict[str, str] | None = None
        self._registry_digest: str | None = None
        self._lock = threading.RLock()

    # -- request handling ----------------------------------------------

    def handle_batch(self, lines: Sequence[str]) -> list[str]:
        """Answer one drained window of request lines, in arrival order.

        Notifications (requests without an id) produce no reply and are
        dropped from the output; :meth:`handle_lines` keeps alignment.
        """
        return [out for out in self.handle_lines(lines) if out is not None]

    def handle_lines(
        self,
        lines: Sequence[str],
        arrivals: Sequence[float | None] | None = None,
    ) -> list[str | None]:
        """Answer request lines; output aligned with the input.

        ``arrivals`` are per-line ``time.monotonic()`` stamps from the
        transport (the moment each line was read); deadlines are
        enforced against them. ``None`` entries (or no list at all)
        treat the batch start as the arrival. Entry ``i`` of the result
        is the response line for input ``i``, or ``None`` when no reply
        is owed (notification or unaddressable parse error).
        """
        with self._lock:
            return self._handle_locked(lines, arrivals)

    def _handle_locked(
        self,
        lines: Sequence[str],
        arrivals: Sequence[float | None] | None,
    ) -> list[str | None]:
        t_batch = time.monotonic()
        self.check_reload()
        requests = [self._parse(line) for line in lines]
        responses: list[dict | None] = [None] * len(requests)
        done = [False] * len(requests)

        # Admission pass: parse errors, injected faults, deadlines.
        for i, req in enumerate(requests):
            if isinstance(req, _RpcError):
                responses[i] = self._error(None, req)
                done[i] = True
                continue
            arrival = t_batch
            if arrivals is not None and arrivals[i] is not None:
                arrival = arrivals[i]
            method = req["method"]
            spec = should_inject(
                "serve.request", method=method, rid=str(req.get("id"))
            )
            if spec is not None:
                if spec.mode == "delay":
                    time.sleep(
                        float(spec.payload_dict.get("seconds", 0.005))
                    )
                else:  # raise
                    err = _RpcError(
                        INTERNAL_ERROR,
                        "injected fault at serve.request",
                    )
                    responses[i] = self._error(req.get("id"), err)
                    self._observe(method, time.monotonic() - arrival)
                    done[i] = True
                    continue
            try:
                expiry = self._deadline_expiry(req, arrival)
            except _RpcError as exc:
                responses[i] = self._error(req.get("id"), exc)
                done[i] = True
                continue
            now = time.monotonic()
            if expiry is not None and now > expiry:
                err = _RpcError(
                    DEADLINE_EXCEEDED,
                    f"deadline exceeded before processing "
                    f"({(now - arrival) * 1e3:.1f} ms since arrival)",
                )
                responses[i] = self._error(req.get("id"), err)
                self.metrics.inc("serve.timeouts")
                obs_metrics.inc("serve.timeouts")
                self._observe(method, now - arrival)
                done[i] = True

        # Group surviving predict requests by resolved model so each
        # group is one stacked predict_many pass.
        groups: dict[tuple, list[int]] = {}
        singles: list[int] = []
        for i, req in enumerate(requests):
            if done[i]:
                continue
            if req.get("method") == "predict":
                try:
                    addr = self._resolve_address(req.get("params") or {})
                except _RpcError as exc:
                    responses[i] = self._error(req.get("id"), exc)
                    continue
                groups.setdefault(addr, []).append(i)
            else:
                singles.append(i)

        for addr, members in groups.items():
            self._answer_predict_group(addr, members, requests, responses)
        # Control-plane methods go after the groups so a `stats` queued
        # behind predicts reports them; responses stay in arrival order.
        for i in singles:
            responses[i] = self._dispatch_single(requests[i])

        return [
            None if resp is None else json.dumps(resp, sort_keys=True)
            for resp in responses
        ]

    def _parse(self, line: str):
        line = line.strip()
        if not line:
            return _RpcError(INVALID_REQUEST, "empty request line")
        try:
            req = json.loads(line)
        except json.JSONDecodeError as exc:
            return _RpcError(PARSE_ERROR, f"request is not valid JSON: {exc}")
        if not isinstance(req, dict) or not isinstance(
            req.get("method"), str
        ):
            return _RpcError(
                INVALID_REQUEST, "request must be an object with a 'method'"
            )
        return req

    def _deadline_expiry(self, req: dict, arrival: float) -> float | None:
        params = req.get("params")
        deadline_ms = (
            params.get("deadline_ms") if isinstance(params, dict) else None
        )
        if deadline_ms is not None:
            if isinstance(deadline_ms, bool) or not isinstance(
                deadline_ms, (int, float)
            ):
                raise _RpcError(
                    INVALID_PARAMS,
                    f"'deadline_ms' must be a number; got {deadline_ms!r}",
                )
            if deadline_ms <= 0:
                raise _RpcError(
                    INVALID_PARAMS,
                    f"'deadline_ms' must be positive; got {deadline_ms}",
                )
            return arrival + float(deadline_ms) / 1000.0
        if self.request_timeout_s is not None:
            return arrival + self.request_timeout_s
        return None

    def _dispatch_single(self, req) -> dict | None:
        if isinstance(req, _RpcError):
            return self._error(None, req)
        req_id = req.get("id")
        method = req["method"]
        t0 = time.monotonic()
        try:
            if method == "ping":
                result = self.health()
            elif method == "stats":
                result = self.stats()
            elif method == "telemetry":
                result = self._telemetry_rpc(req.get("params") or {})
            elif method == "models":
                result = self._models()
            elif method == "shutdown":
                self.begin_drain()
                self._stop = True
                result = {"ok": True, "requests_served": self.requests_served}
            elif method == "predict":
                # Reached only via direct dispatch (not handle_batch).
                result = self._predict_one(req.get("params") or {})
            else:
                raise _RpcError(
                    METHOD_NOT_FOUND, f"unknown method {method!r}"
                )
        except _RpcError as exc:
            return self._error(req_id, exc)
        finally:
            self._observe(method, time.monotonic() - t0)
        if req_id is None:
            return None
        return {"id": req_id, "result": result}

    # -- predict path --------------------------------------------------

    def _resolve_address(self, params: dict) -> tuple:
        kernel = params.get("kernel")
        arch = params.get("arch")
        if not kernel or not arch:
            raise _RpcError(
                INVALID_PARAMS,
                "predict params need 'kernel' and 'arch'",
            )
        key = CampaignKey(
            kernel=str(kernel),
            arch=str(arch),
            tag=params.get("tag") or None,
        )
        try:
            version = self.registry.resolve_version(
                key, params.get("version")
            )
        except FileNotFoundError as exc:
            raise _RpcError(MODEL_NOT_FOUND, str(exc)) from None
        except RegistryIntegrityError as exc:
            raise _RpcError(REGISTRY_CORRUPT, str(exc)) from None
        return (key, version)

    def _load(self, addr: tuple):
        key, version = addr
        try:
            return self.cache.get(
                (key.dirname, version),
                lambda: self.registry.load(key, version),
            )
        except FileNotFoundError as exc:
            raise _RpcError(MODEL_NOT_FOUND, str(exc)) from None
        except RegistryIntegrityError as exc:
            raise _RpcError(REGISTRY_CORRUPT, str(exc)) from None

    def _query_matrix(self, servable, params: dict) -> np.ndarray:
        rows = params.get("rows")
        X = params.get("X")
        if (rows is None) == (X is None):
            raise _RpcError(
                INVALID_PARAMS,
                "predict params need exactly one of 'rows' (list of "
                "feature dicts) or 'X' (2-D feature matrix)",
            )
        try:
            if rows is not None:
                return servable.rows_from_dicts(list(rows))
            mat = np.asarray(X, dtype=float)
            if mat.ndim != 2:
                raise ValueError(
                    f"'X' must be 2-D (n_samples, n_features); got "
                    f"shape {mat.shape}"
                )
            # Width-check here, per request, so one malformed query is
            # refused alone instead of failing its whole batch group.
            want = len(servable.feature_names)
            if mat.shape[1] != want:
                raise ValueError(
                    f"'X' has {mat.shape[1]} columns; this fit expects "
                    f"{want} features {servable.feature_names}"
                )
            return mat
        except (TypeError, ValueError) as exc:
            raise _RpcError(INVALID_PARAMS, str(exc)) from None

    def _answer_predict_group(
        self,
        addr: tuple,
        members: list[int],
        requests: list,
        responses: list,
    ) -> None:
        t0 = time.monotonic()
        key, version = addr
        bkey = (key.dirname, version)

        def fail_all(exc: _RpcError) -> None:
            dt = time.monotonic() - t0
            for i in members:
                responses[i] = self._error(requests[i].get("id"), exc)
                self._observe("predict", dt / len(members))

        if not self.breakers.allow(bkey):
            fail_all(_RpcError(
                BREAKER_OPEN,
                f"circuit breaker open for {key.dirname}@{version}; "
                f"fast-failing until a half-open probe succeeds",
            ))
            return

        try:
            servable = self._load(addr)
        except _RpcError as exc:
            # Only infrastructure failures feed the breaker: a corrupt
            # artifact counts, a model that simply is not there (client
            # or retention decision) does not.
            if exc.code == REGISTRY_CORRUPT:
                self.breakers.record_failure(bkey, str(exc))
            else:
                self.breakers.record_success(bkey)
            fail_all(exc)
            return

        mats, ok = [], []
        for i in members:
            try:
                mats.append(
                    self._query_matrix(
                        servable, requests[i].get("params") or {}
                    )
                )
                ok.append(i)
            except _RpcError as exc:
                responses[i] = self._error(requests[i].get("id"), exc)

        infra_failed = False
        if ok:
            preds = None
            try:
                preds = servable.predict_many(mats)
            except ValueError as exc:
                err = _RpcError(INVALID_PARAMS, str(exc))
                for i in ok:
                    responses[i] = self._error(requests[i].get("id"), err)
            except Exception as exc:  # unexpected: infrastructure failure
                infra_failed = True
                err = _RpcError(INTERNAL_ERROR, f"predict failed: {exc}")
                for i in ok:
                    responses[i] = self._error(requests[i].get("id"), err)
            if preds is not None:
                for i, pred in zip(ok, preds):
                    req_id = requests[i].get("id")
                    responses[i] = (
                        None
                        if req_id is None
                        else {
                            "id": req_id,
                            "result": {
                                "predictions": [float(v) for v in pred],
                                "version": version,
                                "response": servable.response,
                            },
                        }
                    )
        if infra_failed:
            self.breakers.record_failure(bkey, "predict failed")
        else:
            self.breakers.record_success(bkey)
        # Per-request latency: the group's wall time amortized evenly —
        # what each client would bill for, keeping p50/p95/p99 honest
        # about the benefit of batching.
        dt = time.monotonic() - t0
        for _ in members:
            self._observe("predict", dt / len(members))

    def _predict_one(self, params: dict) -> dict:
        addr = self._resolve_address(params)
        servable = self._load(addr)
        X = self._query_matrix(servable, params)
        pred = servable.predict(X)
        return {
            "predictions": [float(v) for v in pred],
            "version": addr[1],
            "response": servable.response,
        }

    # -- hot reload ----------------------------------------------------

    def check_reload(self) -> list[str]:
        """Diff the registry's watch digests; hot-reload changed campaigns.

        For every campaign whose digest moved since the last check
        (re-publish, gc, or manual edit), the warm cache entries of that
        campaign are invalidated and its breakers reset — the next
        request re-loads (and re-verifies) from disk. The first check
        primes the watch state without reloading. Returns the changed
        campaign dirnames.
        """
        if not self.watch_reload:
            return []
        try:
            current = self.registry.watch_digests()
        except OSError:
            return []  # transient filesystem hiccup; next batch retries
        changed: list[str] = []
        if self._watched is not None:
            changed = sorted(
                d for d in set(current) | set(self._watched)
                if current.get(d) != self._watched.get(d)
            )
            for dirname in changed:
                invalidated = self.cache.invalidate_key(dirname)
                cleared = self.breakers.reset(dirname)
                self.metrics.inc("serve.reloads")
                obs_metrics.inc("serve.reloads")
                if self.flightrec is not None:
                    self.flightrec.record("reload", campaign=dirname)
                emit_event(
                    "serve.reload",
                    campaign=dirname,
                    invalidated=invalidated,
                    breakers_cleared=cleared,
                )
        self._watched = current
        self._registry_digest = hashlib.sha256(
            repr(sorted(current.items())).encode()
        ).hexdigest()
        return changed

    # -- lifecycle -----------------------------------------------------

    def begin_drain(self) -> None:
        """Stop admitting new work; in-flight requests still finish.

        Idempotent. The TCP frontend checks :attr:`draining` to stop
        accepting connections and to answer late request lines with a
        typed :data:`DRAINING` error.
        """
        if not self._draining:
            self._draining = True
            self._served_at_drain = self.requests_served
            if self.flightrec is not None:
                self.flightrec.record(
                    "drain.begin", requests_served=self.requests_served
                )
            emit_event(
                "serve.drain.begin", requests_served=self.requests_served
            )

    @property
    def draining(self) -> bool:
        return self._draining

    def drained_count(self) -> int:
        """Requests finished after the drain began (0 before any drain)."""
        if self._served_at_drain is None:
            return 0
        return self.requests_served - self._served_at_drain

    # -- introspection -------------------------------------------------

    def health(self) -> dict:
        """The ``repro-serve-health/1`` readiness document (``ping``)."""
        status = "draining" if self._draining else "ready"
        return {
            "schema": HEALTH_SCHEMA,
            "ok": status == "ready",
            "status": status,
            "registry_digest": self._registry_digest,
            "breakers": self.breakers.summary(),
            "inflight": int(self.inflight),
            "requests_served": self.requests_served,
        }

    def _models(self) -> dict:
        models = []
        for key in self.registry.keys():
            models.append(
                {
                    "kernel": key.kernel,
                    "arch": key.arch,
                    "tag": key.tag,
                    "versions": self.registry.versions(key),
                }
            )
        return {"models": models}

    def stats(self) -> dict:
        """Live cache/robustness counters and latency snapshot (p50/p95/p99)."""
        snap = self.metrics.snapshot()
        return {
            "requests_served": self.requests_served,
            "cache": dict(self.cache.stats),
            "cache_entries": len(self.cache),
            "max_batch": self.max_batch,
            "latency": snap["timer"],
            "counters": snap["counter"],
            "breakers": self.breakers.summary(),
        }

    def telemetry_doc(self) -> dict:
        """Telemetry body: metric snapshot plus serving-layer state.

        The one source both the rotating journal and the ``telemetry``
        RPC (and through it ``repro top``) sample, so an operator's
        scrape and the on-disk heartbeat can never disagree about
        shape.
        """
        doc = snapshot_doc(self.metrics)
        cache = dict(self.cache.stats)
        looked_up = cache.get("hit", 0) + cache.get("miss", 0)
        doc["breakers"] = self.breakers.summary()
        doc["server"] = {
            "requests_served": self.requests_served,
            "inflight": int(self.inflight),
            "draining": int(self._draining),
            "drained": self.drained_count(),
            "max_batch": self.max_batch,
            "cache_entries": len(self.cache),
            "cache_hits": cache.get("hit", 0),
            "cache_misses": cache.get("miss", 0),
            "cache_evictions": cache.get("eviction", 0),
            "cache_hit_rate": (
                cache.get("hit", 0) / looked_up if looked_up else 0.0
            ),
        }
        return doc

    def _telemetry_rpc(self, params: dict) -> dict:
        fmt = params.get("format", "json")
        doc = self.telemetry_doc()
        if fmt == "json":
            return {"format": "json", "telemetry": doc}
        if fmt == "prometheus":
            return {"format": "prometheus", "text": render_prometheus(doc)}
        raise _RpcError(
            INVALID_PARAMS,
            f"'format' must be 'json' or 'prometheus'; got {fmt!r}",
        )

    def _observe(self, method: str, seconds: float) -> None:
        self.requests_served += 1
        seconds = max(seconds, 0.0)
        self.metrics.observe("serve.request", seconds, method=method)
        obs_metrics.observe("serve.request", seconds, method=method)
        if self.flightrec is not None:
            self.flightrec.record(
                "request", method=method, ms=round(seconds * 1e3, 3)
            )

    def _breaker_event(self, kind: str, key: tuple) -> None:
        self.metrics.inc(f"serve.breaker.{kind}")
        obs_metrics.inc(f"serve.breaker.{kind}")
        model = "@".join(str(part) for part in key)
        if self.flightrec is not None:
            self.flightrec.record("breaker", state=kind, model=model)
            if kind == "open":
                # Edge-triggered: the first open captures the ring; a
                # flapping breaker must not overwrite that state.
                self.flightrec.dump_once("breaker_open")
        if kind in ("open", "close"):
            emit_event("serve.breaker", state=kind, model=model)

    def set_inflight(self, n: int) -> None:
        """Frontend hook: admitted-but-unanswered request gauge."""
        self.inflight = int(n)
        self.metrics.set_gauge("serve.inflight", n)
        obs_metrics.set_gauge("serve.inflight", n)

    def count_shed(self) -> None:
        """Frontend hook: one request refused because the queue was full."""
        self.metrics.inc("serve.shed")
        obs_metrics.inc("serve.shed")
        if self.flightrec is not None:
            self.flightrec.record("shed")

    def reject_line(self, line: str, code: int, message: str) -> str | None:
        """Typed refusal for a request that never reached a worker
        (shed under overload, or arriving after drain began). ``None``
        when the line carries no id to address a reply to."""
        try:
            req = json.loads(line)
            rid = req.get("id") if isinstance(req, dict) else None
        except json.JSONDecodeError:
            rid = None
        if rid is None:
            return None
        resp = self._error(rid, _RpcError(code, message))
        return json.dumps(resp, sort_keys=True)

    def _error(self, req_id, exc: _RpcError) -> dict | None:
        if self.flightrec is not None:
            self.flightrec.record(
                "error",
                code=exc.code,
                kind=ERROR_KINDS.get(exc.code, "error"),
                message=str(exc)[:200],
            )
        if req_id is None:
            return None
        return {
            "id": req_id,
            "error": {
                "code": exc.code,
                "kind": ERROR_KINDS.get(exc.code, "error"),
                "message": str(exc),
            },
        }

    # -- request loop --------------------------------------------------

    def run(
        self,
        read_batch: Callable[[], list[str] | None],
        write_line: Callable[[str], None],
    ) -> int:
        """Serve until EOF or a ``shutdown`` request; returns requests served."""
        emit_event(
            "serve.start",
            registry=str(self.registry.root),
            max_batch=self.max_batch,
        )
        while not self._stop:
            lines = read_batch()
            if lines is None:
                break
            for out in self.handle_batch(lines):
                write_line(out)
        emit_event("serve.stop", requests_served=self.requests_served)
        return self.requests_served


def serve_stdio(
    server: PredictionServer,
    stdin=None,
    stdout=None,
) -> int:
    """Run the request loop over text streams (stdio by default)."""
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout

    def write_line(text: str) -> None:
        stdout.write(text + "\n")
        stdout.flush()

    if server.telemetry is not None:
        server.telemetry.start()
    try:
        return server.run(
            lambda: drain_lines(stdin, server.max_batch), write_line
        )
    finally:
        if server.telemetry is not None:
            server.telemetry.stop()


# -- concurrent TCP frontend -------------------------------------------------


class _Job:
    __slots__ = ("line", "arrival", "writer")

    def __init__(self, line: str, arrival: float, writer: "_ConnWriter"):
        self.line = line
        self.arrival = arrival
        self.writer = writer


class _ConnWriter:
    """Per-connection response writer; a lock keeps response lines whole
    when two workers answer the same client."""

    def __init__(self, conn) -> None:
        self._conn = conn
        self._wf = conn.makefile("w")
        self._lock = threading.Lock()
        self.closed = False

    def send(self, text: str | None) -> None:
        if text is None:
            return
        with self._lock:
            if self.closed:
                return
            try:
                self._wf.write(text + "\n")
                self._wf.flush()
            except (OSError, ValueError):
                self.closed = True

    def close(self) -> None:
        with self._lock:
            self.closed = True
            for closer in (self._wf.close, self._conn.close):
                try:
                    closer()
                except OSError:
                    pass


def serve_tcp(
    server: PredictionServer,
    host: str,
    port: int,
    *,
    workers: int = 4,
    queue_size: int = 64,
    on_ready: Callable[[str, int], None] | None = None,
    poll_s: float = 0.05,
    announce: bool = True,
    linger_s: float = 0.0,
) -> int:
    """Serve concurrent local-socket clients until shutdown/SIGTERM.

    A threaded accept loop spawns one reader thread per connection;
    readers enqueue raw request lines (with their monotonic arrival
    stamp) into a bounded queue drained by ``workers`` worker threads
    that coalesce up to ``max_batch`` lines per :meth:`handle_lines`
    pass — cross-client batching. A full queue **sheds**: the reader
    answers immediately with a typed ``overloaded`` error instead of
    blocking the connection.

    After ``bind()`` the frontend prints the single machine-readable
    ready line (:func:`ready_line`) and invokes ``on_ready(host, port)``
    — scripts wait for that instead of polling connects. ``shutdown``
    requests and SIGTERM/SIGINT (when run in the main thread) trigger a
    graceful drain: stop accepting, refuse late lines with ``draining``,
    finish every queued request, then close and report drained counts in
    the ``serve.drain`` event.

    ``linger_s > 0`` opens a bounded batching window: a worker that has
    the lock waits up to ``linger_s`` between takes for more lines to
    arrive before running the pass. Closed-loop clients otherwise
    convoy into batches of one or two; a millisecond of linger turns
    their near-simultaneous sends into one stacked forest pass. The
    cost is up to ``linger_s`` of added latency per batch — keep it at
    0 for latency-sensitive single-client use.
    """
    import queue as queue_mod
    import socket

    if workers < 1:
        raise ValueError(f"workers must be >= 1; got {workers}")
    jobs: "queue_mod.Queue[_Job]" = queue_mod.Queue(
        maxsize=max(int(queue_size), 1)
    )
    stop = threading.Event()
    writers: list[_ConnWriter] = []

    def worker_loop() -> None:
        while True:
            try:
                job = jobs.get(timeout=poll_s)
            except queue_mod.Empty:
                if stop.is_set():
                    return
                continue
            # Coalesce AFTER acquiring the server lock, not before:
            # while another worker holds the lock, new arrivals pile up
            # in the queue, and grabbing them here turns the wait into a
            # bigger predict_many batch. Draining before the lock would
            # let idle workers fragment the queue into batches of one.
            with server._lock:
                batch = [job]
                while len(batch) < server.max_batch:
                    try:
                        if linger_s > 0.0:
                            # Batching window: trade up to linger_s of
                            # latency for a fuller predict_many batch.
                            batch.append(jobs.get(timeout=linger_s))
                        else:
                            batch.append(jobs.get_nowait())
                    except queue_mod.Empty:
                        break
                server.set_inflight(jobs.unfinished_tasks)
                try:
                    outs = server.handle_lines(
                        [b.line for b in batch], [b.arrival for b in batch]
                    )
                except Exception as exc:  # keep the pool alive, always
                    if server.flightrec is not None:
                        server.flightrec.record(
                            "worker_exception", error=str(exc)[:200]
                        )
                        server.flightrec.dump("worker_exception")
                    outs = [
                        server.reject_line(
                            b.line, INTERNAL_ERROR, f"request failed: {exc}"
                        )
                        for b in batch
                    ]
            # Socket writes stay outside the lock: response IO overlaps
            # the next worker's predict pass.
            for b, out in zip(batch, outs):
                b.writer.send(out)
                jobs.task_done()
            server.set_inflight(jobs.unfinished_tasks)

    def reader_loop(conn) -> None:
        writer = _ConnWriter(conn)
        writers.append(writer)
        try:
            with conn.makefile("r") as rf:
                for line in rf:
                    if not line.strip():
                        continue
                    if server.draining or stop.is_set():
                        writer.send(server.reject_line(
                            line, DRAINING,
                            "server is draining; no new work admitted",
                        ))
                        continue
                    job = _Job(line, time.monotonic(), writer)
                    try:
                        jobs.put_nowait(job)
                    except queue_mod.Full:
                        server.count_shed()
                        writer.send(server.reject_line(
                            line, OVERLOADED,
                            "request queue full; shed under overload "
                            "— retry with backoff",
                        ))
        except (OSError, ValueError):
            pass  # client went away mid-read

    # SIGTERM/SIGINT → graceful drain (only installable from the main
    # thread; tests running the frontend in a helper thread skip this).
    import signal

    previous_handlers: dict = {}
    if threading.current_thread() is threading.main_thread():
        def _on_signal(signum, frame):
            server.begin_drain()
            server._stop = True
            if server.flightrec is not None:
                server.flightrec.record("signal", signum=int(signum))
                server.flightrec.dump("sigterm")

        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                previous_handlers[sig] = signal.signal(sig, _on_signal)
            except (ValueError, OSError):
                pass

    worker_threads = [
        threading.Thread(target=worker_loop, daemon=True, name=f"serve-w{i}")
        for i in range(int(workers))
    ]
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((host, port))
        sock.listen(16)
        bound = sock.getsockname()
        if announce:
            print(ready_line(bound[0], bound[1]), flush=True)
        emit_event(
            "serve.start",
            registry=str(server.registry.root),
            max_batch=server.max_batch,
            host=bound[0],
            port=bound[1],
            workers=workers,
            queue_size=queue_size,
        )
        if on_ready is not None:
            on_ready(bound[0], bound[1])
        if server.telemetry is not None:
            server.telemetry.start()
        for t in worker_threads:
            t.start()
        sock.settimeout(poll_s)
        while not server._stop and not server.draining:
            try:
                conn, _ = sock.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            threading.Thread(
                target=reader_loop, args=(conn,), daemon=True
            ).start()
    finally:
        server.begin_drain()
        try:
            sock.close()
        except OSError:
            pass
        jobs.join()  # finish in-flight work before reporting the drain
        stop.set()
        for t in worker_threads:
            if t.is_alive():
                t.join(timeout=5.0)
        emit_event(
            "serve.drain",
            drained=server.drained_count(),
            requests_served=server.requests_served,
            shed=server.metrics.counters.get(("serve.shed",), 0),
        )
        for writer in writers:
            writer.close()
        for sig, handler in previous_handlers.items():
            try:
                signal.signal(sig, handler)
            except (ValueError, OSError):
                pass
        if server.telemetry is not None:
            # Final flush after the drain so the journal's tail carries
            # the complete request/shed/drain accounting.
            server.telemetry.stop()
        emit_event("serve.stop", requests_served=server.requests_served)
    return server.requests_served
