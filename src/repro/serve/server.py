"""`repro serve`: a long-lived prediction server over line-delimited JSON-RPC.

One request per line, one response per line, ids echoed back::

    {"id": 1, "method": "predict", "params": {"kernel": "gemm",
     "arch": "volta", "rows": [{"n": 4096, "threads": 256}]}}
    {"id": 1, "result": {"predictions": [0.0123], "version": "ab12…"}}

The request loop **coalesces**: every pass it drains whatever requests
are already queued on the input (up to ``--max-batch``), groups the
predict calls by resolved model, and answers each group with a single
:meth:`ServableFit.predict_many` pass — so ten clients asking the same
model cost one stacked forest traversal, not ten. Responses are written
in arrival order regardless of grouping, and batching is semantically
invisible: the predictions are bit-identical to serving each request
alone (the stacking lemma ``tests/serve/test_server.py`` pins).

Fits come from a :class:`~repro.serve.registry.FitRegistry` through a
warm :class:`~repro.serve.cache.FitCache` (``--cache-size``), and every
request is timed into a ``serve.request`` timer whose snapshot — with
p50/p95/p99 tail latencies — the ``stats`` method returns live.

Methods: ``predict``, ``models``, ``stats``, ``ping``, ``shutdown``.
EOF on the input is a graceful shutdown too.
"""

from __future__ import annotations

import json
import sys
import time
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.obs.log import emit as emit_event
from repro.obs.metrics import MetricsRegistry
from repro.core.store import CampaignKey

from .cache import FitCache
from .registry import FitRegistry, RegistryIntegrityError

__all__ = ["PredictionServer", "drain_lines", "serve_stdio", "serve_tcp"]

# JSON-RPC 2.0 standard codes plus two registry-specific ones.
PARSE_ERROR = -32700
INVALID_REQUEST = -32600
METHOD_NOT_FOUND = -32601
INVALID_PARAMS = -32602
MODEL_NOT_FOUND = -32004
REGISTRY_CORRUPT = -32005


def drain_lines(stream, max_batch: int) -> list[str] | None:
    """Block for one line, then greedily take queued ones up to the cap.

    Returns ``None`` on EOF. Streams without a real file descriptor
    (``StringIO``, test doubles) still coalesce: whatever is already
    buffered is drained without blocking.
    """
    first = stream.readline()
    if first == "":
        return None
    lines = [first]
    while len(lines) < max_batch and _has_queued_input(stream):
        line = stream.readline()
        if line == "":
            break
        lines.append(line)
    return lines


def _has_queued_input(stream) -> bool:
    try:
        fd = stream.fileno()
    except (AttributeError, OSError, ValueError):
        # In-memory stream: "queued" means not yet at its end.
        tell = getattr(stream, "tell", None)
        seek = getattr(stream, "seek", None)
        if tell is None or seek is None:
            return False
        pos = tell()
        end = seek(0, 2)
        seek(pos)
        return pos < end
    import select

    ready, _, _ = select.select([fd], [], [], 0.0)
    return bool(ready)


class _RpcError(Exception):
    def __init__(self, code: int, message: str) -> None:
        super().__init__(message)
        self.code = code


class PredictionServer:
    """Registry-backed prediction service; one instance per process."""

    def __init__(
        self,
        registry: FitRegistry,
        *,
        max_batch: int = 32,
        cache_size: int = 8,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1; got {max_batch}")
        self.registry = registry
        self.max_batch = int(max_batch)
        self.cache = FitCache(max_entries=cache_size)
        #: Server-local metrics (always on, independent of whether an
        #: ambient ``collect()`` window is installed).
        self.metrics = MetricsRegistry()
        self.requests_served = 0
        self._stop = False

    # -- request handling ----------------------------------------------

    def handle_batch(self, lines: Sequence[str]) -> list[str]:
        """Answer one drained window of request lines, in arrival order."""
        requests = [self._parse(line) for line in lines]
        responses: list[dict | None] = [None] * len(requests)

        # Group predict requests by resolved model so each group is one
        # stacked predict_many pass.
        groups: dict[tuple, list[int]] = {}
        singles: list[int] = []
        for i, req in enumerate(requests):
            if isinstance(req, dict) and req.get("method") == "predict":
                try:
                    addr = self._resolve_address(req.get("params") or {})
                except _RpcError as exc:
                    responses[i] = self._error(req.get("id"), exc)
                    continue
                groups.setdefault(addr, []).append(i)
            else:
                singles.append(i)

        for addr, members in groups.items():
            self._answer_predict_group(addr, members, requests, responses)
        # Control-plane methods go after the groups so a `stats` queued
        # behind predicts reports them; responses stay in arrival order.
        for i in singles:
            responses[i] = self._dispatch_single(requests[i])

        out = []
        for resp in responses:
            if resp is not None:  # notifications (no id) get no reply
                out.append(json.dumps(resp, sort_keys=True))
        return out

    def _parse(self, line: str):
        line = line.strip()
        if not line:
            return _RpcError(INVALID_REQUEST, "empty request line")
        try:
            req = json.loads(line)
        except json.JSONDecodeError as exc:
            return _RpcError(PARSE_ERROR, f"request is not valid JSON: {exc}")
        if not isinstance(req, dict) or not isinstance(
            req.get("method"), str
        ):
            return _RpcError(
                INVALID_REQUEST, "request must be an object with a 'method'"
            )
        return req

    def _dispatch_single(self, req) -> dict | None:
        if isinstance(req, _RpcError):
            return self._error(None, req)
        req_id = req.get("id")
        method = req["method"]
        t0 = time.monotonic()
        try:
            if method == "ping":
                result = {"ok": True}
            elif method == "stats":
                result = self.stats()
            elif method == "models":
                result = self._models()
            elif method == "shutdown":
                self._stop = True
                result = {"ok": True, "requests_served": self.requests_served}
            elif method == "predict":
                # Reached only via direct dispatch (not handle_batch).
                result = self._predict_one(req.get("params") or {})
            else:
                raise _RpcError(
                    METHOD_NOT_FOUND, f"unknown method {method!r}"
                )
        except _RpcError as exc:
            return self._error(req_id, exc)
        finally:
            self._observe(method, time.monotonic() - t0)
        if req_id is None:
            return None
        return {"id": req_id, "result": result}

    # -- predict path --------------------------------------------------

    def _resolve_address(self, params: dict) -> tuple:
        kernel = params.get("kernel")
        arch = params.get("arch")
        if not kernel or not arch:
            raise _RpcError(
                INVALID_PARAMS,
                "predict params need 'kernel' and 'arch'",
            )
        key = CampaignKey(
            kernel=str(kernel),
            arch=str(arch),
            tag=params.get("tag") or None,
        )
        try:
            version = self.registry.resolve_version(
                key, params.get("version")
            )
        except FileNotFoundError as exc:
            raise _RpcError(MODEL_NOT_FOUND, str(exc)) from None
        except RegistryIntegrityError as exc:
            raise _RpcError(REGISTRY_CORRUPT, str(exc)) from None
        return (key, version)

    def _load(self, addr: tuple):
        key, version = addr
        try:
            return self.cache.get(
                (key.dirname, version),
                lambda: self.registry.load(key, version),
            )
        except FileNotFoundError as exc:
            raise _RpcError(MODEL_NOT_FOUND, str(exc)) from None
        except RegistryIntegrityError as exc:
            raise _RpcError(REGISTRY_CORRUPT, str(exc)) from None

    def _query_matrix(self, servable, params: dict) -> np.ndarray:
        rows = params.get("rows")
        X = params.get("X")
        if (rows is None) == (X is None):
            raise _RpcError(
                INVALID_PARAMS,
                "predict params need exactly one of 'rows' (list of "
                "feature dicts) or 'X' (2-D feature matrix)",
            )
        try:
            if rows is not None:
                return servable.rows_from_dicts(list(rows))
            mat = np.asarray(X, dtype=float)
            if mat.ndim != 2:
                raise ValueError(
                    f"'X' must be 2-D (n_samples, n_features); got "
                    f"shape {mat.shape}"
                )
            # Width-check here, per request, so one malformed query is
            # refused alone instead of failing its whole batch group.
            want = len(servable.feature_names)
            if mat.shape[1] != want:
                raise ValueError(
                    f"'X' has {mat.shape[1]} columns; this fit expects "
                    f"{want} features {servable.feature_names}"
                )
            return mat
        except (TypeError, ValueError) as exc:
            raise _RpcError(INVALID_PARAMS, str(exc)) from None

    def _answer_predict_group(
        self,
        addr: tuple,
        members: list[int],
        requests: list,
        responses: list,
    ) -> None:
        t0 = time.monotonic()
        try:
            servable = self._load(addr)
        except _RpcError as exc:
            dt = time.monotonic() - t0
            for i in members:
                responses[i] = self._error(requests[i].get("id"), exc)
                self._observe("predict", dt / len(members))
            return

        mats, ok = [], []
        for i in members:
            try:
                mats.append(
                    self._query_matrix(
                        servable, requests[i].get("params") or {}
                    )
                )
                ok.append(i)
            except _RpcError as exc:
                responses[i] = self._error(requests[i].get("id"), exc)

        if ok:
            try:
                preds = servable.predict_many(mats)
            except ValueError as exc:
                err = _RpcError(INVALID_PARAMS, str(exc))
                for i in ok:
                    responses[i] = self._error(requests[i].get("id"), err)
                preds = None
            if preds is not None:
                key, version = addr
                for i, pred in zip(ok, preds):
                    req_id = requests[i].get("id")
                    responses[i] = (
                        None
                        if req_id is None
                        else {
                            "id": req_id,
                            "result": {
                                "predictions": [float(v) for v in pred],
                                "version": version,
                                "response": servable.response,
                            },
                        }
                    )
        # Per-request latency: the group's wall time amortized evenly —
        # what each client would bill for, keeping p50/p95/p99 honest
        # about the benefit of batching.
        dt = time.monotonic() - t0
        for _ in members:
            self._observe("predict", dt / len(members))

    def _predict_one(self, params: dict) -> dict:
        addr = self._resolve_address(params)
        servable = self._load(addr)
        X = self._query_matrix(servable, params)
        pred = servable.predict(X)
        return {
            "predictions": [float(v) for v in pred],
            "version": addr[1],
            "response": servable.response,
        }

    # -- introspection -------------------------------------------------

    def _models(self) -> dict:
        models = []
        for key in self.registry.keys():
            models.append(
                {
                    "kernel": key.kernel,
                    "arch": key.arch,
                    "tag": key.tag,
                    "versions": self.registry.versions(key),
                }
            )
        return {"models": models}

    def stats(self) -> dict:
        """Live cache counters and request-latency snapshot (p50/p95/p99)."""
        return {
            "requests_served": self.requests_served,
            "cache": dict(self.cache.stats),
            "cache_entries": len(self.cache),
            "max_batch": self.max_batch,
            "latency": self.metrics.snapshot()["timer"],
        }

    def _observe(self, method: str, seconds: float) -> None:
        self.requests_served += 1
        self.metrics.observe("serve.request", seconds, method=method)
        obs_metrics.observe("serve.request", seconds, method=method)

    def _error(self, req_id, exc: _RpcError) -> dict | None:
        if req_id is None:
            return None
        return {
            "id": req_id,
            "error": {"code": exc.code, "message": str(exc)},
        }

    # -- request loop --------------------------------------------------

    def run(
        self,
        read_batch: Callable[[], list[str] | None],
        write_line: Callable[[str], None],
    ) -> int:
        """Serve until EOF or a ``shutdown`` request; returns requests served."""
        emit_event(
            "serve.start",
            registry=str(self.registry.root),
            max_batch=self.max_batch,
        )
        while not self._stop:
            lines = read_batch()
            if lines is None:
                break
            for out in self.handle_batch(lines):
                write_line(out)
        emit_event("serve.stop", requests_served=self.requests_served)
        return self.requests_served


def serve_stdio(
    server: PredictionServer,
    stdin=None,
    stdout=None,
) -> int:
    """Run the request loop over text streams (stdio by default)."""
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout

    def write_line(text: str) -> None:
        stdout.write(text + "\n")
        stdout.flush()

    return server.run(
        lambda: drain_lines(stdin, server.max_batch), write_line
    )


def serve_tcp(server: PredictionServer, host: str, port: int) -> int:
    """Accept local-socket clients one at a time until shutdown.

    Binds, prints the bound ``host:port`` line to stdout (so a parent
    that passed port 0 learns the real port), then serves each
    connection with the same loop stdio uses.
    """
    import socket

    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((host, port))
        sock.listen(1)
        bound = sock.getsockname()
        print(f"repro serve listening on {bound[0]}:{bound[1]}", flush=True)
        while not server._stop:
            conn, _ = sock.accept()
            with conn, conn.makefile("r") as rf, conn.makefile("w") as wf:
                serve_stdio(server, stdin=rf, stdout=wf)
    return server.requests_served
