"""Servable fit artifacts: the JSON form a fitted forest travels in.

The serving layer answers prediction queries long after — and far away
from — the process that ran ``fit``. :class:`ServableFit` is the
persistable artifact that makes this possible: the fitted forest's node
arrays, the feature-name order queries must follow, and the provenance
of the campaign it was fitted on, as one schema-tagged
(``repro-fit/1``) JSON document.

Round-trip fidelity is exact: node thresholds and leaf values are
written as JSON numbers (``json`` emits ``repr(float)``, the shortest
string that parses back to the identical double), so a deserialized
fit's predictions are **bit-for-bit** the original's — pinned by
``tests/serve/test_artifact.py``. Leaf thresholds (which the descent
never reads) are stored as ``null`` so the payload stays strict JSON
with no ``NaN`` tokens.

The serialized text is deterministic (sorted keys, no timestamps), so
its SHA-256 :meth:`ServableFit.digest` identifies the artifact content
— what the registry's integrity check (:mod:`repro.serve.registry`)
verifies on every load.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

import numpy as np

from repro.ml.forest import RandomForestRegressor
from repro.ml.tree import tree_from_dict as _tree_from_dict
from repro.ml.tree import tree_to_dict as _tree_to_dict

__all__ = [
    "SCHEMA",
    "ServableFit",
    "forest_from_dict",
    "forest_to_dict",
    "servable_from_fit",
]

#: Schema tag written into every serialized fit artifact.
SCHEMA = "repro-fit/1"


def forest_to_dict(forest: RandomForestRegressor) -> dict:
    """Serialize a fitted forest's predict-path state to plain dicts."""
    return {
        "n_features": int(forest.n_features_),
        "feature_names": list(forest.feature_names_),
        "trees": [_tree_to_dict(t) for t in forest.trees_],
    }


def forest_from_dict(data: dict) -> RandomForestRegressor:
    """Rebuild a predict-capable forest from :func:`forest_to_dict`.

    Only the prediction path is restored (node arrays, feature names);
    fit-time state — training matrices, OOB aggregates, importances —
    does not travel with a servable artifact.
    """
    trees = data["trees"]
    if not trees:
        raise ValueError("fit artifact has no trees")
    n_features = int(data["n_features"])
    forest = RandomForestRegressor(n_trees=len(trees))
    forest.n_features_ = n_features
    forest.feature_names_ = list(data["feature_names"])
    forest.trees_ = [_tree_from_dict(t, n_features) for t in trees]
    return forest


@dataclass
class ServableFit:
    """A fitted predictor in its servable form.

    Carries what the serving path needs — the forest, the query feature
    order, the campaign address it answers for — plus ``source``
    provenance (the training campaign's manifest digest and fit
    configuration) so a served prediction is auditable back to the data
    it learned from.
    """

    kernel: str
    arch: str
    forest: RandomForestRegressor
    feature_names: list[str]
    tag: str | None = None
    response: str = "time"
    #: Provenance of the fit: the source campaign's manifest SHA-256
    #: (``campaign_manifest_sha256``), fit configuration, counts.
    source: dict = field(default_factory=dict)

    # -- prediction ------------------------------------------------------

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict from feature rows ordered like :attr:`feature_names`."""
        return self.forest.predict(X)

    def predict_many(self, queries) -> list[np.ndarray]:
        """Batched :meth:`predict`: one stacked forest pass, bit-identical
        to the per-query loop (see :func:`repro.core.api.predict_many`)."""
        return self.forest.predict_many(queries)

    def rows_from_dicts(self, rows: list[dict]) -> np.ndarray:
        """Feature matrix from name->value mappings, in fit order."""
        out = np.empty((len(rows), len(self.feature_names)))
        for i, row in enumerate(rows):
            missing = [n for n in self.feature_names if n not in row]
            if missing:
                raise ValueError(
                    f"query row {i} lacks feature(s) {missing}; this fit "
                    f"expects {self.feature_names}"
                )
            out[i] = [float(row[n]) for n in self.feature_names]
        return out

    # -- serialization ---------------------------------------------------

    def to_payload(self) -> dict:
        return {
            "schema": SCHEMA,
            "kernel": self.kernel,
            "arch": self.arch,
            "tag": self.tag,
            "response": self.response,
            "feature_names": list(self.feature_names),
            "source": dict(self.source),
            "forest": forest_to_dict(self.forest),
        }

    def to_json(self) -> str:
        # Deterministic text (sorted keys, no timestamps): the SHA-256 of
        # this string is the artifact's identity in the registry.
        return json.dumps(self.to_payload(), sort_keys=True) + "\n"

    @property
    def digest(self) -> str:
        """SHA-256 of the serialized artifact (its content identity)."""
        return hashlib.sha256(self.to_json().encode()).hexdigest()

    @classmethod
    def from_payload(cls, data: dict) -> "ServableFit":
        if data.get("schema") != SCHEMA:
            raise ValueError(
                f"unknown fit-artifact schema {data.get('schema')!r} "
                f"(expected {SCHEMA!r})"
            )
        return cls(
            kernel=data["kernel"],
            arch=data["arch"],
            tag=data.get("tag"),
            response=data.get("response", "time"),
            feature_names=list(data["feature_names"]),
            source=dict(data.get("source") or {}),
            forest=forest_from_dict(data["forest"]),
        )

    @classmethod
    def from_json(cls, text: str) -> "ServableFit":
        return cls.from_payload(json.loads(text))


def servable_from_fit(
    fit,
    *,
    tag: str | None = None,
    source: dict | None = None,
) -> ServableFit:
    """Extract the servable artifact from a pipeline fit.

    Accepts any fit artifact carrying a fitted ``forest`` plus
    ``kernel``/``arch``/``feature_names`` (:class:`BlackForestFit` is
    the canonical producer). The forest's own ``feature_names_`` are the
    query order; ``source`` provenance (e.g. the training campaign's
    manifest digest) is attached verbatim.
    """
    forest = getattr(fit, "forest", None)
    if forest is None or not getattr(forest, "trees_", None):
        raise ValueError(
            "fit has no fitted forest to serve (expected a .forest with "
            "fitted trees, e.g. a BlackForestFit)"
        )
    names = list(
        getattr(fit, "feature_names", None) or forest.feature_names_
    )
    return ServableFit(
        kernel=fit.kernel,
        arch=fit.arch,
        tag=tag,
        response=getattr(fit, "response", "time"),
        feature_names=names,
        source=dict(source or {}),
        forest=forest,
    )
