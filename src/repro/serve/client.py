"""Retrying JSON-RPC client for ``repro serve`` (and ``repro query``).

:class:`PredictionClient` speaks the line-delimited protocol of
:mod:`repro.serve.server` over a TCP socket and absorbs the transient
failures the hardened server is *designed* to answer with: typed
``overloaded`` / ``draining`` / ``breaker_open`` / ``deadline_exceeded``
errors and dropped connections are retried under a
:class:`~repro.faults.retry.RetryPolicy` with capped exponential
backoff and **seeded jitter** (each request id is the jitter key, so
eight clients hammering a shedding server desynchronize
deterministically). Permanent errors — bad params, unknown model,
corrupt artifact — raise :class:`ServeError` immediately.

Retried requests are re-sent whole (at-least-once delivery); every
server method is a read, so replays are safe. ``shutdown`` is the
exception — it is never retried, lest a retry cancel a drain already
in progress.

The module also owns :func:`parse_ready_line`, the parser for the
single machine-readable line the TCP frontend prints after ``bind()``
(``repro-serve-ready host=127.0.0.1 port=43117``) — scripts wait for
that line instead of polling connects.
"""

from __future__ import annotations

import json
import re
import socket

from repro.faults.retry import RetryPolicy, call_with_retry

from .server import (
    BREAKER_OPEN,
    DEADLINE_EXCEEDED,
    DRAINING,
    OVERLOADED,
    READY_PREFIX,
)

__all__ = [
    "PredictionClient",
    "ServeError",
    "RetryableServeError",
    "RETRYABLE_CODES",
    "parse_ready_line",
]

#: Typed server errors worth retrying: transient by construction.
RETRYABLE_CODES = frozenset(
    {OVERLOADED, DRAINING, BREAKER_OPEN, DEADLINE_EXCEEDED}
)

_READY_RE = re.compile(
    rf"^{re.escape(READY_PREFIX)} host=(?P<host>\S+) port=(?P<port>\d+)\s*$"
)


def parse_ready_line(line: str) -> tuple[str, int] | None:
    """``(host, port)`` from a ``repro-serve-ready`` line, else ``None``."""
    m = _READY_RE.match(line.strip())
    if m is None:
        return None
    return m.group("host"), int(m.group("port"))


class ServeError(Exception):
    """A typed JSON-RPC error response from the server."""

    def __init__(self, code: int, kind: str, message: str) -> None:
        super().__init__(f"server error {code} ({kind}): {message}")
        self.code = code
        self.kind = kind
        self.server_message = message


class RetryableServeError(ServeError):
    """A typed error the policy may retry (see :data:`RETRYABLE_CODES`)."""


#: Default client policy: 4 tries, 50 ms base backoff capped at 1 s,
#: 50% seeded jitter.
DEFAULT_RETRY = RetryPolicy(
    max_attempts=4,
    backoff_s=0.05,
    max_backoff_s=1.0,
    jitter=0.5,
    seed=0,
)


class PredictionClient:
    """One connection to a ``repro serve`` TCP frontend.

    Not thread-safe: give each client thread its own instance (requests
    interleave on the server side; responses come back on the owning
    connection). Usable as a context manager.

    Parameters
    ----------
    retry:
        :class:`RetryPolicy` for transient failures. Request ids feed
        its seeded jitter as retry keys.
    timeout_s:
        Socket timeout per read/write (transport stall guard, distinct
        from the server-side ``deadline_ms``).
    id_prefix:
        Prefix of generated request ids — keep distinct per client so
        ids stay unique across concurrent connections.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        retry: RetryPolicy = DEFAULT_RETRY,
        timeout_s: float = 10.0,
        id_prefix: str = "q",
    ) -> None:
        self.host = host
        self.port = int(port)
        self.retry = retry
        self.timeout_s = timeout_s
        self.id_prefix = id_prefix
        self._n = 0
        self._sock = None
        self._rf = None
        self._wf = None
        #: Raw response line of the last successful call (bit-identity
        #: checks in tests and chaos compare these, not re-serialized
        #: parses).
        self.last_line: str | None = None
        #: Attempts the last call needed (observability for chaos runs).
        self.last_attempts = 0

    # -- connection management -----------------------------------------

    def _ensure_connected(self) -> None:
        if self._sock is not None:
            return
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout_s
        )
        self._sock = sock
        self._rf = sock.makefile("r")
        self._wf = sock.makefile("w")

    def close(self) -> None:
        for closer in (self._rf, self._wf, self._sock):
            if closer is not None:
                try:
                    closer.close()
                except OSError:
                    pass
        self._sock = self._rf = self._wf = None

    def __enter__(self) -> "PredictionClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _roundtrip(self, request: dict) -> dict:
        """One send + one receive; drops the connection on any
        transport failure so the next attempt reconnects."""
        try:
            self._ensure_connected()
            self._wf.write(json.dumps(request, sort_keys=True) + "\n")
            self._wf.flush()
            line = self._rf.readline()
        except (OSError, ValueError):
            self.close()
            raise
        if line == "":
            self.close()
            raise ConnectionError("server closed the connection")
        try:
            resp = json.loads(line)
        except json.JSONDecodeError:
            self.close()
            raise ConnectionError(
                f"unparseable response line: {line[:80]!r}"
            ) from None
        self.last_line = line.rstrip("\n")
        return resp

    # -- calls ---------------------------------------------------------

    def call(self, method: str, params: dict | None = None, *, retry=True):
        """Call one method; returns its ``result``.

        Transient failures (see :data:`RETRYABLE_CODES`, plus transport
        errors) are retried under the policy; the request id is the
        deterministic jitter key. Raises :class:`ServeError` on typed
        permanent errors, the last :class:`RetryableServeError` /
        ``OSError`` once the policy gives up.
        """
        self._n += 1
        rid = f"{self.id_prefix}{self._n}"
        request = {"id": rid, "method": method}
        if params:
            request["params"] = params

        def attempt_call(attempt: int):
            resp = self._roundtrip(request)
            err = resp.get("error")
            if err is not None:
                code = err.get("code")
                kind = err.get("kind", "error")
                message = err.get("message", "")
                if retry and code in RETRYABLE_CODES:
                    raise RetryableServeError(code, kind, message)
                raise ServeError(code, kind, message)
            return resp.get("result")

        if not retry:
            self.last_attempts = 1
            return attempt_call(1)
        result, exc, attempts = call_with_retry(
            attempt_call,
            self.retry,
            recoverable=(RetryableServeError, OSError),
            retry_key=rid,
        )
        self.last_attempts = attempts
        if exc is not None:
            raise exc
        return result

    def predict(
        self,
        kernel: str,
        arch: str,
        *,
        rows: list[dict] | None = None,
        X=None,
        tag: str | None = None,
        version: str | None = None,
        deadline_ms: float | None = None,
    ) -> dict:
        params: dict = {"kernel": kernel, "arch": arch}
        if rows is not None:
            params["rows"] = rows
        if X is not None:
            params["X"] = X
        if tag is not None:
            params["tag"] = tag
        if version is not None:
            params["version"] = version
        if deadline_ms is not None:
            params["deadline_ms"] = deadline_ms
        return self.call("predict", params)

    def ping(self) -> dict:
        return self.call("ping")

    def stats(self) -> dict:
        return self.call("stats")

    def telemetry(self, fmt: str = "json") -> dict:
        """One ``telemetry`` scrape; ``fmt`` is ``json`` (structured
        snapshot, what ``repro top`` polls) or ``prometheus`` (text
        exposition under the ``text`` key)."""
        return self.call("telemetry", {"format": fmt})

    def models(self) -> dict:
        return self.call("models")

    def shutdown(self) -> dict:
        """Request a graceful drain. Never retried: a late duplicate
        would race the drain it asked for."""
        return self.call("shutdown", retry=False)
