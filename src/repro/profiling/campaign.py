"""Data-collection campaigns: sweep a kernel over problem instances.

"We perform data collection by running the application multiple times
(typically, tens to hundreds) on the architecture of interest, with
different problem characteristics" (paper Section 4.2). A
:class:`Campaign` is one such experiment; its result is a rectangular
dataset ready for the statistical pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.gpusim.arch import GPUArchitecture
from repro.kernels.base import Kernel
from repro.obs import child_trace, collect, current_metrics, current_tracer, span
from repro.parallel import chunk_bounds, resolve_n_jobs, spawn_streams

from .profiler import Profiler, RunRecord

__all__ = ["CampaignResult", "Campaign"]


def _profile_chunk(args) -> tuple[list[list[RunRecord]], list | None]:
    """Worker: profile a contiguous slice of a campaign's problems.

    Rebuilds the profiler from its picklable configuration; passing the
    (already noise-gated) ``measurement_sigma`` back through the
    constructor is idempotent. Each problem uses its pre-spawned child
    stream, so the records match the serial sweep bit for bit.

    When the parent was tracing (or collecting metrics), the worker
    records its own spans/metrics into fresh collectors (never the
    fork-inherited ones) and ships them back with the results for the
    parent to merge.
    """
    (arch, noise_scale, measurement_sigma, sanitize, kernel, replicates,
     items, traced, metered) = args
    profiler = Profiler(
        arch,
        noise_scale=noise_scale,
        measurement_sigma=measurement_sigma,
        sanitize=sanitize,
    )

    def sweep():
        return [
            profiler.profile(kernel, problem, replicates=replicates, rng=stream)
            for problem, stream in items
        ]

    spans = metrics = None
    if traced and metered:
        with child_trace() as tracer, collect() as registry:
            out = sweep()
        spans, metrics = tracer.records, registry
    elif traced:
        with child_trace() as tracer:
            out = sweep()
        spans = tracer.records
    elif metered:
        with collect() as registry:
            out = sweep()
        metrics = registry
    else:
        out = sweep()
    return out, spans, metrics


@dataclass
class CampaignResult:
    """The collected observations of one campaign."""

    kernel: str
    arch: str
    family: str
    records: list[RunRecord] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    @property
    def counter_names(self) -> list[str]:
        """Counter names common to every record, in first-record order."""
        if not self.records:
            return []
        names = list(self.records[0].counters)
        common = set(names)
        for r in self.records[1:]:
            common &= set(r.counters)
        return [n for n in names if n in common]

    @property
    def predictor_names(self) -> list[str]:
        """Counters admissible as predictors (drops response proxies
        such as ``active_cycles``; intersects availability when the
        campaign mixes architecture families)."""
        from repro.gpusim.counters import CATALOGUE

        return [n for n in self.counter_names if CATALOGUE[n].predictor]

    @property
    def characteristic_names(self) -> list[str]:
        return sorted(self.records[0].characteristics) if self.records else []

    def matrix(
        self,
        counters: Sequence[str] | None = None,
        include_characteristics: bool = True,
        include_machine: bool = False,
        response: str = "time",
    ) -> tuple[np.ndarray, np.ndarray, list[str]]:
        """Predictor matrix X, response y, and column names.

        ``response`` selects the modeled quantity: ``"time"`` (paper
        default) or ``"power"`` (the Section 7 extension — requires a
        platform with a power interface, i.e. Kepler campaigns).
        """
        if not self.records:
            raise ValueError("empty campaign")
        if response not in ("time", "power"):
            raise ValueError("response must be 'time' or 'power'")
        if response == "power" and any(r.power_w is None for r in self.records):
            raise ValueError(
                "campaign has runs without power readings (power draw is "
                "only readable on the Kepler platform, paper Section 7)"
            )
        counter_names = list(counters) if counters is not None else self.predictor_names
        rows = []
        names: list[str] | None = None
        for r in self.records:
            row_names, values = r.predictors(
                counter_names,
                include_characteristics=include_characteristics,
                include_machine=include_machine,
            )
            if names is None:
                names = row_names
            rows.append(values)
        X = np.vstack(rows)
        if response == "power":
            y = np.array([r.power_w for r in self.records])
        else:
            y = np.array([r.time_s for r in self.records])
        return X, y, list(names)

    def times(self) -> np.ndarray:
        return np.array([r.time_s for r in self.records])

    def powers(self) -> np.ndarray:
        """Average power per run (W); raises if any run lacks a reading."""
        if any(r.power_w is None for r in self.records):
            raise ValueError("campaign has runs without power readings")
        return np.array([r.power_w for r in self.records])

    def problems(self) -> list:
        return [r.problem for r in self.records]

    def merged_with(self, other: "CampaignResult") -> "CampaignResult":
        """Concatenate two campaigns (e.g. runs on two architectures).

        Kernel must match; arch metadata becomes 'mixed' when they
        differ, mirroring the paper's hardware-scaling datasets that mix
        GTX580 and K20m observations.
        """
        if self.kernel != other.kernel:
            raise ValueError("cannot merge campaigns of different kernels")
        arch = self.arch if self.arch == other.arch else "mixed"
        family = self.family if self.family == other.family else "mixed"
        return CampaignResult(
            kernel=self.kernel,
            arch=arch,
            family=family,
            records=self.records + other.records,
        )


class Campaign:
    """Sweep driver for one kernel on one architecture."""

    def __init__(
        self,
        kernel: Kernel,
        arch: GPUArchitecture,
        noise_scale: float = 1.0,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        self.kernel = kernel
        self.arch = arch
        self.profiler = Profiler(arch, noise_scale=noise_scale, rng=rng)

    def run(
        self,
        problems: Sequence | None = None,
        replicates: int = 1,
        n_jobs: int = 1,
    ) -> CampaignResult:
        """Profile every problem instance (default: the paper's sweep).

        ``n_jobs`` fans the sweep out over worker processes (-1 = all
        cores). Every problem draws its noise from its own child stream
        spawned from the campaign RNG — in the serial path too — so the
        collected dataset is bit-for-bit identical for any ``n_jobs``
        (pinned by ``tests/profiling/test_campaign_parallel.py``).
        """
        problems = list(problems) if problems is not None else self.kernel.default_sweep()
        if not problems:
            raise ValueError("no problem instances to run")
        result = CampaignResult(
            kernel=self.kernel.name, arch=self.arch.name, family=self.arch.family
        )
        streams = spawn_streams(self.profiler._rng, len(problems))
        jobs = min(resolve_n_jobs(n_jobs), len(problems))
        with span(
            "campaign.run",
            kernel=self.kernel.name,
            arch=self.arch.name,
            problems=len(problems),
            n_jobs=jobs,
        ):
            if jobs > 1:
                from concurrent.futures import ProcessPoolExecutor

                tracer = current_tracer()
                registry = current_metrics()
                bounds = chunk_bounds(len(problems), jobs)
                tasks = [
                    (
                        self.arch,
                        self.profiler.noise_scale,
                        self.profiler.measurement_sigma,
                        self.profiler.sanitize,
                        self.kernel,
                        replicates,
                        list(zip(problems[lo:hi], streams[lo:hi])),
                        tracer is not None,
                        registry is not None,
                    )
                    for lo, hi in zip(bounds[:-1], bounds[1:])
                    if hi > lo
                ]
                with ProcessPoolExecutor(max_workers=jobs) as pool:
                    for chunk, child_spans, child_metrics in pool.map(
                        _profile_chunk, tasks
                    ):
                        for records in chunk:
                            result.records.extend(records)
                        if child_spans and tracer is not None:
                            # Graft the worker's spans under campaign.run.
                            tracer.adopt(child_spans)
                        if child_metrics is not None and registry is not None:
                            registry.merge(child_metrics)
            else:
                for problem, stream in zip(problems, streams):
                    result.records.extend(
                        self.profiler.profile(
                            self.kernel, problem, replicates=replicates, rng=stream
                        )
                    )
        return result
