"""Data-collection campaigns: sweep a kernel over problem instances.

"We perform data collection by running the application multiple times
(typically, tens to hundreds) on the architecture of interest, with
different problem characteristics" (paper Section 4.2). A
:class:`Campaign` is one such experiment; its result is a rectangular
dataset ready for the statistical pipeline.

Campaigns are *resilient*: a launch that keeps failing (injected fault,
invariant violation, timeout) is retried under a
:class:`~repro.faults.RetryPolicy` and then **quarantined** — recorded
in :attr:`CampaignResult.quarantined` — rather than aborting the whole
sweep; a crashed worker process only costs re-running its chunk in the
parent; and ``run(checkpoint=path)`` journals every completed problem
so an interrupted campaign resumes bit-identically. See
docs/robustness.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.analysis import InvariantViolation
from repro.analysis.plan import preflight
from repro.faults.errors import FaultError, WorkerCrash
from repro.faults.plan import active_plan, fault_injection, should_inject
from repro.faults.retry import RetryPolicy, call_with_retry
from repro.gpusim.arch import GPUArchitecture
from repro.kernels.base import Kernel
from repro.obs import child_trace, collect, current_metrics, current_tracer, span
from repro.obs import metrics as obs_metrics
from repro.obs.log import child_event_log, current_event_log, emit as emit_event
from repro.parallel import (
    chunk_bounds,
    process_map,
    resolve_n_jobs,
    spawn_streams,
)

from .checkpoint import CampaignCheckpoint, campaign_fingerprint
from .profiler import Profiler, RunRecord

__all__ = ["CampaignResult", "Campaign", "QuarantinedRun", "RECOVERABLE"]

#: Exception classes a campaign retries and quarantines instead of
#: propagating. Configuration mistakes (``ValueError``/``TypeError``)
#: stay fatal on purpose: retrying a wrong argument can only waste time.
RECOVERABLE: tuple[type[BaseException], ...] = (
    FaultError,
    InvariantViolation,
    ArithmeticError,
)


@dataclass
class QuarantinedRun:
    """A launch that exhausted its retries — kept as data, not a crash.

    Quarantine records travel with the campaign result (and its
    checkpoint), so a partially failed sweep is still a complete
    artifact: the fit uses the surviving rows while the failures stay
    enumerable for reporting and re-runs.
    """

    problem: object
    index: int
    stage: str  # "launch" (profiler gave up) or "worker" (process died)
    error: str  # "<ExcType>: message" of the final attempt
    attempts: int = 1

    def to_dict(self) -> dict:
        return {
            "problem": self.problem,
            "index": self.index,
            "stage": self.stage,
            "error": self.error,
            "attempts": self.attempts,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "QuarantinedRun":
        return cls(
            problem=data["problem"],
            index=int(data["index"]),
            stage=str(data["stage"]),
            error=str(data["error"]),
            attempts=int(data.get("attempts", 1)),
        )


def _profile_resilient(
    profiler: Profiler,
    kernel: Kernel,
    problem: object,
    index: int,
    replicates: int,
    stream: np.random.Generator,
    retry: RetryPolicy,
) -> tuple[list[RunRecord] | None, QuarantinedRun | None]:
    """One problem under the retry policy: records, or a quarantine.

    Attempt 1 uses the problem's pre-spawned stream directly, so a
    fault-free campaign consumes exactly the random numbers it always
    did (bit-identical to the non-resilient path). Attempt ``k > 1``
    draws from the stream's next spawned child: a deterministic function
    of the campaign seed, the problem index and the attempt number —
    never of how many draws a failed attempt consumed before dying.
    """

    def run_attempt(attempt: int) -> list[RunRecord]:
        rng = stream if attempt == 1 else spawn_streams(stream, 1)[0]
        return profiler.profile(
            kernel,
            problem,
            replicates=replicates,
            rng=rng,
            deadline_s=retry.deadline(),
        )

    def on_retry(attempt: int, exc: BaseException) -> None:
        obs_metrics.inc("campaign.retries", kernel=kernel.name)
        emit_event(
            "campaign.retry",
            kernel=kernel.name,
            problem=str(problem),
            attempt=attempt,
            error=f"{type(exc).__name__}: {exc}",
        )

    records, exc, attempts = call_with_retry(
        run_attempt, retry, recoverable=RECOVERABLE, on_retry=on_retry
    )
    if exc is None:
        return records, None
    quarantined = QuarantinedRun(
        problem=problem,
        index=index,
        stage="launch",
        error=f"{type(exc).__name__}: {exc}",
        attempts=attempts,
    )
    obs_metrics.inc("campaign.quarantined", kernel=kernel.name, stage="launch")
    emit_event(
        "campaign.quarantine",
        kernel=kernel.name,
        problem=str(problem),
        attempts=attempts,
        error=quarantined.error,
    )
    with span(
        "campaign.quarantine",
        kernel=kernel.name,
        problem=str(problem),
        error=quarantined.error,
        attempts=attempts,
    ):
        pass
    return None, quarantined


def _profile_chunk(args) -> tuple[list[tuple], list | None, object]:
    """Worker: profile a contiguous slice of a campaign's problems.

    Rebuilds the profiler from its picklable configuration; passing the
    (already noise-gated) ``measurement_sigma`` back through the
    constructor is idempotent. Each problem uses its pre-spawned child
    stream, so the records match the serial sweep bit for bit.

    The parent's fault plan is re-installed explicitly (module globals
    do not survive spawn-start workers), and the ``parallel.worker``
    site is consulted per item — a firing rule raises
    :class:`~repro.faults.WorkerCrash` out of the worker, which the
    parent recovers from by re-running the chunk itself.

    When the parent was tracing (or collecting metrics, or event
    logging), the worker records its own spans/metrics/events into
    fresh collectors (never the fork-inherited ones) and ships them
    back with the results for the parent to merge.
    """
    from contextlib import ExitStack

    (arch, noise_scale, measurement_sigma, sanitize, kernel, replicates,
     items, traced, metered, evented, plan, retry) = args
    profiler = Profiler(
        arch,
        noise_scale=noise_scale,
        measurement_sigma=measurement_sigma,
        sanitize=sanitize,
    )

    def sweep():
        out = []
        for index, problem, stream in items:
            crash = should_inject(
                "parallel.worker", kernel=kernel.name, problem=problem
            )
            if crash is not None:
                raise WorkerCrash(
                    f"injected worker crash while profiling problem "
                    f"{problem!r} of kernel {kernel.name!r}"
                )
            out.append(
                (index, problem)
                + _profile_resilient(
                    profiler, kernel, problem, index, replicates, stream, retry
                )
            )
        return out

    spans = metrics = events = None
    with fault_injection(plan), ExitStack() as stack:
        tracer = stack.enter_context(child_trace()) if traced else None
        registry = stack.enter_context(collect()) if metered else None
        log = stack.enter_context(child_event_log()) if evented else None
        out = sweep()
        if tracer is not None:
            spans = tracer.records
        if registry is not None:
            metrics = registry
        if log is not None:
            events = log.events
    return out, spans, metrics, events


@dataclass
class CampaignResult:
    """The collected observations of one campaign."""

    kernel: str
    arch: str
    family: str
    records: list[RunRecord] = field(default_factory=list)
    #: Runs that exhausted their retries (sweep-index order); the
    #: campaign completed *around* them instead of aborting.
    quarantined: list[QuarantinedRun] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    @property
    def counter_names(self) -> list[str]:
        """Counter names common to every record, in first-record order."""
        if not self.records:
            return []
        names = list(self.records[0].counters)
        common = set(names)
        for r in self.records[1:]:
            common &= set(r.counters)
        return [n for n in names if n in common]

    @property
    def predictor_names(self) -> list[str]:
        """Counters admissible as predictors (drops response proxies
        such as ``active_cycles``; intersects availability when the
        campaign mixes architecture families)."""
        from repro.gpusim.counters import CATALOGUE

        return [n for n in self.counter_names if CATALOGUE[n].predictor]

    @property
    def robust_predictor_names(self) -> list[str]:
        """Predictor counters for fit layers tolerant of degraded runs.

        :attr:`predictor_names` intersects counters across *records*, so
        a single degraded run that lost a counter silently removes that
        column from every fit. Here availability is unioned within each
        architecture first (a record-level loss shows up as NaN cells
        for ``matrix(missing="nan")`` to impute and report) and only
        then intersected across architectures (a counter a whole
        platform never collects is still excluded). Identical to
        :attr:`predictor_names` for undamaged campaigns.
        """
        from repro.gpusim.counters import CATALOGUE

        if not self.records:
            return []
        per_arch: dict[str, set[str]] = {}
        order: list[str] = []
        seen: set[str] = set()
        for r in self.records:
            available = per_arch.setdefault(r.arch, set())
            for name in r.counters:
                available.add(name)
                if name not in seen:
                    seen.add(name)
                    order.append(name)
        common = set.intersection(*per_arch.values())
        return [n for n in order if n in common and CATALOGUE[n].predictor]

    @property
    def characteristic_names(self) -> list[str]:
        return sorted(self.records[0].characteristics) if self.records else []

    def matrix(
        self,
        counters: Sequence[str] | None = None,
        include_characteristics: bool = True,
        include_machine: bool = False,
        response: str = "time",
        missing: str = "raise",
    ) -> tuple[np.ndarray, np.ndarray, list[str]]:
        """Predictor matrix X, response y, and column names.

        ``response`` selects the modeled quantity: ``"time"`` (paper
        default) or ``"power"`` (the Section 7 extension — requires a
        platform with a power interface, i.e. Kepler campaigns).

        ``missing`` controls counters absent from a record (degraded
        runs that lost an nvprof pass): ``"raise"`` (default) propagates
        the ``KeyError``; ``"nan"`` fills those cells with NaN for the
        fit layer to impute or drop explicitly.
        """
        if not self.records:
            if self.quarantined:
                raise ValueError(
                    f"empty campaign: all {len(self.quarantined)} runs were "
                    f"quarantined (first error: {self.quarantined[0].error})"
                )
            raise ValueError("empty campaign")
        if response not in ("time", "power"):
            raise ValueError("response must be 'time' or 'power'")
        if response == "power" and any(r.power_w is None for r in self.records):
            raise ValueError(
                "campaign has runs without power readings (power draw is "
                "only readable on the Kepler platform, paper Section 7)"
            )
        counter_names = list(counters) if counters is not None else self.predictor_names
        rows = []
        names: list[str] | None = None
        for r in self.records:
            row_names, values = r.predictors(
                counter_names,
                include_characteristics=include_characteristics,
                include_machine=include_machine,
                missing=missing,
            )
            if names is None:
                names = row_names
            rows.append(values)
        X = np.vstack(rows)
        if response == "power":
            y = np.array([r.power_w for r in self.records])
        else:
            y = np.array([r.time_s for r in self.records])
        return X, y, list(names)

    def times(self) -> np.ndarray:
        return np.array([r.time_s for r in self.records])

    def powers(self) -> np.ndarray:
        """Average power per run (W); raises if any run lacks a reading."""
        if any(r.power_w is None for r in self.records):
            raise ValueError("campaign has runs without power readings")
        return np.array([r.power_w for r in self.records])

    def problems(self) -> list:
        return [r.problem for r in self.records]

    def merged_with(self, other: "CampaignResult") -> "CampaignResult":
        """Concatenate two campaigns (e.g. runs on two architectures).

        Kernel must match; arch metadata becomes 'mixed' when they
        differ, mirroring the paper's hardware-scaling datasets that mix
        GTX580 and K20m observations.
        """
        if self.kernel != other.kernel:
            raise ValueError("cannot merge campaigns of different kernels")
        arch = self.arch if self.arch == other.arch else "mixed"
        family = self.family if self.family == other.family else "mixed"
        return CampaignResult(
            kernel=self.kernel,
            arch=arch,
            family=family,
            records=self.records + other.records,
            quarantined=self.quarantined + other.quarantined,
        )


class Campaign:
    """Sweep driver for one kernel on one architecture."""

    def __init__(
        self,
        kernel: Kernel,
        arch: GPUArchitecture,
        noise_scale: float = 1.0,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        self.kernel = kernel
        self.arch = arch
        self.profiler = Profiler(arch, noise_scale=noise_scale, rng=rng)

    def run(
        self,
        problems: Sequence | None = None,
        replicates: int = 1,
        n_jobs: int = 1,
        *,
        retry: RetryPolicy | None = None,
        checkpoint=None,
        strict: bool = False,
        telemetry=None,
    ) -> CampaignResult:
        """Profile every problem instance (default: the paper's sweep).

        ``n_jobs`` fans the sweep out over worker processes (-1 = all
        cores). Every problem draws its noise from its own child stream
        spawned from the campaign RNG — in the serial path too — so the
        collected dataset is bit-for-bit identical for any ``n_jobs``
        (pinned by ``tests/profiling/test_campaign_parallel.py``).

        ``retry`` bounds per-launch resilience (attempts, backoff,
        cooperative timeout); the default :class:`RetryPolicy` allows 3
        attempts with no deadline. A launch that exhausts them is
        quarantined into :attr:`CampaignResult.quarantined` — the sweep
        never aborts on a :data:`RECOVERABLE` failure. A worker process
        that dies (or raises :class:`~repro.faults.WorkerCrash`) costs
        only re-running its chunk in the parent, with identical results.

        ``checkpoint`` names a JSONL journal: each completed problem is
        appended (flushed and fsynced) as it finishes, and a rerun with
        the same campaign configuration skips finished problems and
        reassembles a bit-identical result. A checkpoint written by a
        different sweep/seed/kernel is refused
        (:class:`~repro.profiling.checkpoint.CheckpointMismatch`).

        ``telemetry`` names a ``repro-telemetry/1`` JSONL journal
        (:class:`repro.obs.telemetry.TelemetryExporter`): one heartbeat
        record per finished problem — completed/quarantined progress
        plus whatever ambient :func:`~repro.obs.collect` window is
        installed — so a long sweep is observable mid-flight
        (``tail -f``, ``repro lint --artifacts``). Pure output: the
        collected records are bit-identical with it on or off.

        Before anything launches, the plan checker
        (:mod:`repro.analysis.plan`, rules BF5xx) statically validates
        the sweep — design-matrix rank, cost. ERROR findings emit a
        ``UserWarning`` by default; ``strict=True`` upgrades them to an
        :class:`~repro.analysis.InvariantViolation` so a doomed sweep
        never burns its budget.
        """
        problems = list(problems) if problems is not None else self.kernel.default_sweep()
        if not problems:
            raise ValueError(
                "no problem instances to run: the launch list is empty "
                "(pass a non-empty `problems` or a kernel with a default sweep)"
            )
        preflight(
            self.kernel, self.arch, problems, replicates, strict=strict
        )
        if retry is None:
            retry = RetryPolicy()
        result = CampaignResult(
            kernel=self.kernel.name, arch=self.arch.name, family=self.arch.family
        )

        ckpt = None
        if checkpoint is not None:
            # Fingerprint before spawning streams: identical by
            # construction between the interrupted run and the resume.
            # The spawn counter is part of it — spawning advances it, so
            # a second run() on the *same* Campaign object (whose streams
            # would differ) is refused instead of silently mismatched;
            # resume with a fresh Campaign built from the same seed.
            bit_gen = self.profiler._rng.bit_generator
            seed_seq = getattr(bit_gen, "seed_seq", None) or getattr(
                bit_gen, "_seed_seq", None
            )
            ckpt = CampaignCheckpoint.open(
                checkpoint,
                campaign_fingerprint(
                    self.kernel.name,
                    self.arch.name,
                    problems,
                    replicates,
                    (
                        bit_gen.state,
                        getattr(seed_seq, "n_children_spawned", None),
                    ),
                ),
            )

        streams = spawn_streams(self.profiler._rng, len(problems))
        completed: dict[int, list[RunRecord]] = {}
        quarantined: dict[int, QuarantinedRun] = {}
        if ckpt is not None:
            for index, dicts in ckpt.completed.items():
                restored = [
                    RunRecord.from_dict(
                        d, self.kernel.name, self.arch.name, self.arch.family
                    )
                    for d in dicts
                ]
                for rec in restored:
                    # JSON mangles tuples into lists; the in-memory
                    # problem object is authoritative.
                    rec.problem = problems[index]
                completed[index] = restored
            for index, qdict in ckpt.quarantined.items():
                q = QuarantinedRun.from_dict(qdict)
                q.problem = problems[index]
                quarantined[index] = q
        done = set(completed) | set(quarantined)
        pending = [
            (i, problems[i], streams[i])
            for i in range(len(problems))
            if i not in done
        ]

        exporter = None
        if telemetry is not None:
            from repro.obs.telemetry import TelemetryExporter
            from repro.obs.telemetry import snapshot_doc as _telemetry_body

            def _campaign_snapshot() -> dict:
                registry = current_metrics()
                body = (
                    _telemetry_body(registry)
                    if registry is not None
                    else {"counters": {}, "gauges": {}, "timers": {}}
                )
                body["progress"] = {
                    "kernel": self.kernel.name,
                    "arch": self.arch.name,
                    "total": len(problems),
                    "completed": len(completed),
                    "quarantined": len(quarantined),
                }
                return body

            exporter = TelemetryExporter(
                telemetry, _campaign_snapshot, source="campaign"
            )

        def finish(index, problem, records, q) -> None:
            if q is None:
                completed[index] = records
                if ckpt is not None:
                    ckpt.record_result(index, records)
            else:
                quarantined[index] = q
                if ckpt is not None:
                    ckpt.record_quarantine(index, q.to_dict())
            if exporter is not None:
                # One heartbeat per finished problem, always from the
                # parent process (workers report back through finish),
                # so the journal has a single writer.
                exporter.sample()

        jobs = min(resolve_n_jobs(n_jobs), max(len(pending), 1))
        emit_event(
            "campaign.start",
            kernel=self.kernel.name,
            arch=self.arch.name,
            problems=len(problems),
            pending=len(pending),
            n_jobs=jobs,
        )
        with span(
            "campaign.run",
            kernel=self.kernel.name,
            arch=self.arch.name,
            problems=len(problems),
            pending=len(pending),
            n_jobs=jobs,
        ):
            if jobs > 1 and len(pending) > 1:
                self._run_parallel(pending, replicates, jobs, retry, finish)
            else:
                for index, problem, stream in pending:
                    records, q = _profile_resilient(
                        self.profiler,
                        self.kernel,
                        problem,
                        index,
                        replicates,
                        stream,
                        retry,
                    )
                    finish(index, problem, records, q)

        for i in range(len(problems)):
            if i in completed:
                result.records.extend(completed[i])
            elif i in quarantined:
                result.quarantined.append(quarantined[i])
        emit_event(
            "campaign.end",
            kernel=self.kernel.name,
            arch=self.arch.name,
            n_records=len(result.records),
            n_quarantined=len(result.quarantined),
        )
        if exporter is not None:
            # Closing heartbeat: the journal's tail shows the finished
            # sweep even when nothing was pending (checkpoint resume).
            exporter.sample()
        return result

    def _run_parallel(self, pending, replicates, jobs, retry, finish) -> None:
        """Fan pending items out over worker processes, chunk-wise.

        A chunk whose worker fails — an injected
        :class:`~repro.faults.WorkerCrash` or a genuinely dead process
        (``BrokenProcessPool``) — is re-run in the parent with the same
        per-problem streams, so the campaign both survives the crash and
        reproduces the records the worker would have produced.
        """
        tracer = current_tracer()
        registry = current_metrics()
        log = current_event_log()
        plan = active_plan()
        bounds = chunk_bounds(len(pending), jobs)
        chunks = [
            pending[lo:hi]
            for lo, hi in zip(bounds[:-1], bounds[1:])
            if hi > lo
        ]
        tasks = [
            (
                self.arch,
                self.profiler.noise_scale,
                self.profiler.measurement_sigma,
                self.profiler.sanitize,
                self.kernel,
                replicates,
                chunk,
                tracer is not None,
                registry is not None,
                log is not None,
                plan,
                retry,
            )
            for chunk in chunks
        ]
        def recover_chunk(task, exc):
            chunk = task[6]
            obs_metrics.inc(
                "campaign.worker_crashes", kernel=self.kernel.name
            )
            emit_event(
                "campaign.worker_crash",
                kernel=self.kernel.name,
                items=len(chunk),
                error=f"{type(exc).__name__}: {exc}",
            )
            with span(
                "campaign.worker_recovery",
                kernel=self.kernel.name,
                items=len(chunk),
                error=f"{type(exc).__name__}: {exc}",
            ):
                # Re-run the lost chunk here in the parent. The
                # worker-crash site only exists inside workers, so the
                # fallback cannot crash the same way; a still-failing
                # launch quarantines as usual.
                out = [
                    (index, problem)
                    + _profile_resilient(
                        self.profiler,
                        self.kernel,
                        problem,
                        index,
                        replicates,
                        stream,
                        retry,
                    )
                    for index, problem, stream in chunk
                ]
            return out, None, None, None

        chunk_results = process_map(
            _profile_chunk,
            tasks,
            jobs,
            recoverable=(FaultError,),
            recover=recover_chunk,
        )
        for out, child_spans, child_metrics, child_events in chunk_results:
            for index, problem, records, q in out:
                finish(index, problem, records, q)
            if child_spans and tracer is not None:
                # Graft the worker's spans under campaign.run.
                tracer.adopt(child_spans)
            if child_metrics is not None and registry is not None:
                registry.merge(child_metrics)
            if child_events and log is not None:
                log.merge(child_events)
