"""Profiling layer: the nvprof-equivalent data-collection toolchain.

:class:`Profiler` plays nvprof's role over the simulator,
:class:`Campaign` drives problem-characteristic sweeps, and
:class:`Repository` is the paper's "structured repository" for the
collected data.
"""

from .campaign import Campaign, CampaignResult
from .profiler import Profiler, RunRecord
from .repository import Repository

__all__ = ["Campaign", "CampaignResult", "Profiler", "RunRecord", "Repository"]
