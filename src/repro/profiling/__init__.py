"""Profiling layer: the nvprof-equivalent data-collection toolchain.

:class:`Profiler` plays nvprof's role over the simulator,
:class:`Campaign` drives problem-characteristic sweeps, and
:class:`ProfileRepository` is the paper's "structured repository" for
the collected data, addressed by :class:`CampaignKey`.
"""

from repro._compat import warn_once

from .campaign import Campaign, CampaignResult, QuarantinedRun
from .checkpoint import CampaignCheckpoint, CheckpointMismatch
from .profiler import Profiler, RunRecord
from .repository import CampaignKey, ProfileRepository, RepositoryIntegrityError

__all__ = [
    "Campaign",
    "CampaignCheckpoint",
    "CampaignResult",
    "CheckpointMismatch",
    "Profiler",
    "QuarantinedRun",
    "RunRecord",
    "CampaignKey",
    "ProfileRepository",
    "RepositoryIntegrityError",
]


def __getattr__(name: str):
    if name == "Repository":
        warn_once(
            "Repository",
            "repro.profiling.Repository was renamed to ProfileRepository; "
            "the old name will be removed",
        )
        return ProfileRepository
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
