"""Columnar counter-matrix index: ``matrix()`` without re-parsing CSV.

A fit at repository scale spends almost all of its wall clock parsing
``runs.csv`` back into floats. The index sidesteps that: at save time
the repository persists one dense ``float64`` table per campaign —
every counter column, every characteristic, every machine metric, plus
the time and power responses — as a ``.npy`` payload next to a
``repro-matrix/1`` JSON header. ``ProfileRepository.matrix()`` then
answers any column selection straight from the table.

The header carries two content hashes: ``source_sha256`` of the
``runs.csv`` bytes the table was built from, and ``payload_sha256`` of
the ``.npy`` bytes. A table whose source hash no longer matches the
data file is *stale* and is rebuilt from a full (integrity-checked)
load — a mutated campaign is therefore never silently served from its
old index. Values are bit-identical to the parse path because the CSV
stores ``repr()``-encoded floats, which round-trip exactly.
"""

from __future__ import annotations

import hashlib
import io
import json

import numpy as np

__all__ = [
    "MATRIX_SCHEMA",
    "MATRIX_META",
    "MATRIX_DATA",
    "build_matrix_index",
    "extend_matrix_index",
    "select_matrix",
    "predictor_subset",
]

#: Schema tag of the index header (registered in repro.analysis.schemas).
MATRIX_SCHEMA = "repro-matrix/1"
MATRIX_META = "matrix.json"
MATRIX_DATA = "matrix.npy"


def _sha256_bytes(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def predictor_subset(counter_names: list[str]) -> list[str]:
    """Counters admissible as predictors, mirroring
    :attr:`CampaignResult.predictor_names` for a stored counter list."""
    # Function-level import: profiling must not require gpusim at import
    # time (same rule as campaign.predictor_names).
    from repro.gpusim.counters import CATALOGUE

    return [n for n in counter_names if CATALOGUE[n].predictor]


def build_matrix_index(result, data_bytes: bytes) -> tuple[str, bytes]:
    """Header JSON text + ``.npy`` payload bytes for one campaign.

    ``result`` is the in-memory :class:`CampaignResult` being saved;
    ``data_bytes`` the exact ``runs.csv`` content written beside it
    (hashed into the header so staleness is detectable). Column order is
    the on-disk order: counters (first-record order), sorted
    characteristics, sorted machine metrics, then the two response
    columns ``time_s`` and ``power_w`` (NaN where the platform records
    no power).
    """
    counters = result.counter_names
    chars = result.characteristic_names
    machine = sorted(result.records[0].machine) if result.records else []
    rows = [
        [r.counters[c] for c in counters]
        + [r.characteristics[c] for c in chars]
        + [r.machine[m] for m in machine]
        + [r.time_s, np.nan if r.power_w is None else r.power_w]
        for r in result.records
    ]
    table = np.asarray(rows, dtype=np.float64).reshape(
        len(result.records), len(counters) + len(chars) + len(machine) + 2
    )
    bio = io.BytesIO()
    np.save(bio, table, allow_pickle=False)
    payload = bio.getvalue()
    header = {
        "schema": MATRIX_SCHEMA,
        "n_runs": len(result.records),
        "counters": list(counters),
        "characteristics": list(chars),
        "machine_metrics": list(machine),
        "dtype": "float64",
        "power_missing": int(sum(r.power_w is None for r in result.records)),
        "source_sha256": _sha256_bytes(data_bytes),
        "payload_sha256": _sha256_bytes(payload),
    }
    return json.dumps(header, indent=2), payload


def extend_matrix_index(
    header: dict, table: np.ndarray, result, data_bytes: bytes
) -> tuple[str, bytes] | None:
    """Incrementally extend a fresh index with appended runs.

    ``result`` holds only the *new* records (same column schema as the
    existing campaign); ``data_bytes`` is the full post-append
    ``runs.csv``. Returns the new (header text, payload) pair, or
    ``None`` when the new records do not line up with the stored
    columns (caller falls back to a lazy full rebuild).
    """
    counters = header["counters"]
    chars = header["characteristics"]
    machine = header["machine_metrics"]
    try:
        rows = [
            [r.counters[c] for c in counters]
            + [r.characteristics[c] for c in chars]
            + [r.machine[m] for m in machine]
            + [r.time_s, np.nan if r.power_w is None else r.power_w]
            for r in result.records
        ]
    except KeyError:
        return None
    new = np.asarray(rows, dtype=np.float64).reshape(
        len(result.records), table.shape[1]
    )
    merged = np.vstack([table, new])
    bio = io.BytesIO()
    np.save(bio, merged, allow_pickle=False)
    payload = bio.getvalue()
    out = dict(header)
    out["n_runs"] = int(merged.shape[0])
    out["power_missing"] = int(
        header.get("power_missing", 0)
        + sum(r.power_w is None for r in result.records)
    )
    out["source_sha256"] = _sha256_bytes(data_bytes)
    out["payload_sha256"] = _sha256_bytes(payload)
    return json.dumps(out, indent=2), payload


def select_matrix(
    header: dict,
    table: np.ndarray,
    counters=None,
    include_characteristics: bool = True,
    include_machine: bool = False,
    response: str = "time",
    missing: str = "raise",
) -> tuple[np.ndarray, np.ndarray, list[str]]:
    """Answer a :meth:`CampaignResult.matrix` call from the dense table.

    Same signature semantics, same errors, bit-identical values: the
    acceptance contract is ``np.array_equal`` with the parse path.
    """
    if missing not in ("raise", "nan"):
        raise ValueError("missing must be 'raise' or 'nan'")
    if response not in ("time", "power"):
        raise ValueError("response must be 'time' or 'power'")
    if response == "power" and header.get("power_missing", 0):
        raise ValueError(
            "campaign has runs without power readings (power draw is "
            "only readable on the Kepler platform, paper Section 7)"
        )
    all_counters = header["counters"]
    chars = header["characteristics"]
    machine = header["machine_metrics"]
    pos = {
        name: i
        for i, name in enumerate(all_counters + chars + machine)
    }
    n = table.shape[0]
    counter_sel = (
        list(counters) if counters is not None
        else predictor_subset(all_counters)
    )
    names: list[str] = []
    cols: list[np.ndarray] = []
    for name in counter_sel:
        names.append(name)
        if name in pos:
            cols.append(table[:, pos[name]])
        elif missing == "nan":
            cols.append(np.full(n, np.nan))
        else:
            raise KeyError(name)
    if include_characteristics:
        for name in chars:
            names.append(name)
            cols.append(table[:, pos[name]])
    if include_machine:
        for name in machine:
            names.append(name)
            cols.append(table[:, pos[name]])
    X = np.column_stack(cols) if cols else np.empty((n, 0))
    y_col = table.shape[1] - (1 if response == "power" else 2)
    y = table[:, y_col].copy()
    return X, y, names
