"""Structured on-disk repository for profiling campaigns.

The paper stores collected data "in either a database or a structured
repository (we used the latter)" (Section 4.3). This module implements
that structured repository: one directory per campaign holding a CSV
table of runs and a JSON metadata sidecar, addressable by
(kernel, architecture) and safely round-trippable.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from .campaign import CampaignResult
from .profiler import RunRecord

__all__ = ["Repository"]

_META = "meta.json"
_DATA = "runs.csv"


def _campaign_dir(kernel: str, arch: str) -> str:
    safe = lambda s: "".join(c if c.isalnum() or c in "-_." else "_" for c in s)
    return f"{safe(kernel)}__{safe(arch)}"


class Repository:
    """Filesystem-backed store of :class:`CampaignResult` objects."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # -- write ---------------------------------------------------------------

    def save(self, result: CampaignResult, tag: str | None = None) -> Path:
        """Persist a campaign; returns its directory."""
        if not result.records:
            raise ValueError("refusing to save an empty campaign")
        name = _campaign_dir(result.kernel, result.arch)
        if tag:
            name += f"__{tag}"
        cdir = self.root / name
        cdir.mkdir(parents=True, exist_ok=True)

        counter_names = result.counter_names
        char_names = result.characteristic_names
        machine_names = sorted(result.records[0].machine)

        meta = {
            "kernel": result.kernel,
            "arch": result.arch,
            "family": result.family,
            "n_runs": len(result.records),
            "counters": counter_names,
            "characteristics": char_names,
            "machine_metrics": machine_names,
        }
        (cdir / _META).write_text(json.dumps(meta, indent=2))

        header = (
            ["problem", "replicate", "time_s", "power_w"]
            + [f"char:{c}" for c in char_names]
            + [f"counter:{c}" for c in counter_names]
            + [f"machine:{m}" for m in machine_names]
        )
        with open(cdir / _DATA, "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(header)
            for r in result.records:
                writer.writerow(
                    [json.dumps(r.problem), r.replicate, repr(r.time_s),
                     "" if r.power_w is None else repr(r.power_w)]
                    + [repr(r.characteristics[c]) for c in char_names]
                    + [repr(r.counters[c]) for c in counter_names]
                    + [repr(r.machine[m]) for m in machine_names]
                )
        return cdir

    # -- read ----------------------------------------------------------------

    def list_campaigns(self) -> list[dict]:
        """Metadata of every stored campaign."""
        out = []
        for meta_path in sorted(self.root.glob(f"*/{_META}")):
            out.append(json.loads(meta_path.read_text()))
        return out

    def load(self, kernel: str, arch: str, tag: str | None = None) -> CampaignResult:
        name = _campaign_dir(kernel, arch)
        if tag:
            name += f"__{tag}"
        cdir = self.root / name
        meta_path = cdir / _META
        if not meta_path.exists():
            raise FileNotFoundError(f"no campaign stored for {kernel!r} on {arch!r}")
        meta = json.loads(meta_path.read_text())

        result = CampaignResult(
            kernel=meta["kernel"], arch=meta["arch"], family=meta["family"]
        )
        with open(cdir / _DATA, newline="") as fh:
            reader = csv.reader(fh)
            header = next(reader)
            for row in reader:
                rec = dict(zip(header, row))
                result.records.append(
                    RunRecord(
                        kernel=meta["kernel"],
                        arch=meta["arch"],
                        family=meta["family"],
                        problem=json.loads(rec["problem"]),
                        replicate=int(rec["replicate"]),
                        time_s=float(rec["time_s"]),
                        power_w=(
                            float(rec["power_w"])
                            if rec.get("power_w") not in (None, "")
                            else None
                        ),
                        characteristics={
                            c: float(rec[f"char:{c}"]) for c in meta["characteristics"]
                        },
                        counters={
                            c: float(rec[f"counter:{c}"]) for c in meta["counters"]
                        },
                        machine={
                            m: float(rec[f"machine:{m}"])
                            for m in meta["machine_metrics"]
                        },
                    )
                )
        if len(result.records) != meta["n_runs"]:
            raise ValueError(
                f"repository corrupt: expected {meta['n_runs']} runs, "
                f"found {len(result.records)}"
            )
        return result

    def has(self, kernel: str, arch: str, tag: str | None = None) -> bool:
        name = _campaign_dir(kernel, arch)
        if tag:
            name += f"__{tag}"
        return (self.root / name / _META).exists()
