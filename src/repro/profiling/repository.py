"""Structured on-disk repository for profiling campaigns.

The paper stores collected data "in either a database or a structured
repository (we used the latter)" (Section 4.3). This module implements
that structured repository: one directory per campaign holding a CSV
table of runs, a JSON metadata sidecar, a provenance manifest
(:mod:`repro.obs.manifest`) and a columnar counter-matrix index
(:mod:`repro.profiling.index`), addressable by :class:`CampaignKey` and
safely round-trippable.

Two on-disk layouts exist (see docs/repository.md):

* **v1 (flat, deprecated)** — one directory per campaign directly under
  the root. Fine for hundreds of campaigns, wrong at production scale:
  every listing and every ``verify_all`` touches every campaign.
* **v2 (sharded)** — campaigns live under ``shards/<xx>/<dirname>/``
  where ``xx`` is the first two hex chars of SHA-256(dirname) (256
  buckets), and each bucket carries a ``shard.json`` manifest caching
  campaign metadata plus file-stat snapshots. Listings are served from
  the shard manifests and ``verify_all`` re-hashes only campaigns whose
  files changed since their last clean verify — O(changed), not O(all).

Writes are torn-proof: every artifact is written to a temp file, fsynced
and renamed into place, so a crash mid-save leaves either the old
campaign or the new one — never half of each. The manifest carries
SHA-256 checksums of its sibling files; :meth:`ProfileRepository.verify`
recomputes them (plus structural checks), and
:meth:`ProfileRepository.quarantine` moves a damaged campaign aside into
``_quarantine/`` instead of deleting evidence. Integrity failures raise
:class:`RepositoryIntegrityError` (a ``ValueError`` whose message always
says "corrupt"). Fault injection for all of this lives at the
``repository.write`` site (see :mod:`repro.faults`).
"""

from __future__ import annotations

import csv
import hashlib
import io
import json
import os
from pathlib import Path

import numpy as np

from repro._compat import warn_once
from repro.core.store import SHARD_DIR, CampaignKey, shard_of
from repro.faults.plan import should_inject
from repro.obs import Manifest, build_manifest
from repro.obs.log import emit as emit_event

from .campaign import CampaignResult
from .index import (
    MATRIX_DATA,
    MATRIX_META,
    MATRIX_SCHEMA,
    build_matrix_index,
    extend_matrix_index,
    select_matrix,
)
from .profiler import RunRecord

__all__ = ["CampaignKey", "ProfileRepository", "RepositoryIntegrityError"]

_META = "meta.json"
_DATA = "runs.csv"
_MANIFEST = "manifest.json"
#: Layout marker at the root of a v2 repository.
_REPO_MARKER = "repo.json"
#: Per-bucket manifest file inside ``shards/<xx>/``.
_SHARD_MANIFEST = "shard.json"
#: Schema tags (registered in repro.analysis.schemas).
REPO_SCHEMA = "repro-repo/1"
SHARD_SCHEMA = "repro-shard/1"
#: Sub-directory verify-failed campaigns are moved into (always directly
#: under the root, in both layouts). Its campaigns sit outside the
#: campaign enumeration, so listing/loading never sees them.
_QUARANTINE = "_quarantine"
#: Files covered by shard-manifest stat snapshots.
_TRACKED = (_META, _DATA, _MANIFEST)


class RepositoryIntegrityError(ValueError):
    """A stored campaign failed an integrity check (torn or corrupt
    file, checksum mismatch, row-count mismatch). Subclasses
    ``ValueError`` so pre-existing ``except ValueError`` handling — and
    tests matching "corrupt" — keep working."""


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


def _sha256_bytes(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _read_text(path: Path) -> str:
    """Read a repository file; undecodable bytes mean bit rot."""
    try:
        return path.read_text()
    except UnicodeDecodeError as exc:
        raise RepositoryIntegrityError(
            f"repository corrupt: {path.parent.name}/{path.name} is not "
            f"valid UTF-8 ({exc}); see ProfileRepository.quarantine"
        ) from None


def _atomic_write(path: Path, text: str, campaign: str) -> None:
    """Write-then-rename with fsync; the ``repository.write`` fault site.

    An injected ``torn_file``/``corrupt_file`` rule damages the payload
    *after* the caller computed checksums from the intact text — exactly
    the disk-level damage :meth:`ProfileRepository.verify` exists to
    catch.
    """
    fault = should_inject("repository.write", file=path.name, campaign=campaign)
    if fault is not None:
        if fault.mode == "torn_file":
            fraction = float(fault.payload_dict.get("fraction", 0.5))
            text = text[: int(len(text) * fraction)]
        elif fault.mode == "corrupt_file":
            # Flip a byte mid-file: still the right length, wrong content.
            middle = len(text) // 2
            text = text[:middle] + "\x00" + text[middle + 1 :]
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", newline="") as fh:
        fh.write(text)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def _atomic_write_bytes(path: Path, data: bytes, campaign: str) -> None:
    """Binary sibling of :func:`_atomic_write` (same fault site).

    Used for the columnar index payload; injected damage makes the
    payload hash mismatch its header, which demotes the index to stale —
    rebuilt on the next ``matrix()``, never served.
    """
    fault = should_inject("repository.write", file=path.name, campaign=campaign)
    if fault is not None:
        if fault.mode == "torn_file":
            fraction = float(fault.payload_dict.get("fraction", 0.5))
            data = data[: int(len(data) * fraction)]
        elif fault.mode == "corrupt_file":
            middle = len(data) // 2
            data = data[:middle] + b"\x00" + data[middle + 1 :]
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def _stat_of(path: Path) -> list[int]:
    """``[size, mtime_ns]`` — the cheap change detector shard manifests
    cache. A same-size same-mtime rewrite evades it (classic mtime
    caveat); ``verify_all(full=True)`` re-hashes everything."""
    st = path.stat()
    return [st.st_size, st.st_mtime_ns]


def _as_key(
    key: CampaignKey | str, arch: str | None, tag: str | None
) -> CampaignKey:
    """Accept the new key object or the legacy positional strings."""
    if isinstance(key, CampaignKey):
        if arch is not None or tag is not None:
            raise TypeError(
                "pass either a CampaignKey or (kernel, arch, tag) strings, "
                "not both"
            )
        return key
    warn_once(
        "ProfileRepository:str-key",
        "addressing repository campaigns with (kernel, arch, tag) strings "
        "is deprecated; pass a CampaignKey",
    )
    if arch is None:
        raise TypeError("string-addressed campaigns need kernel and arch")
    return CampaignKey(kernel=key, arch=arch, tag=tag)


class ProfileRepository:
    """Filesystem-backed store of :class:`CampaignResult` objects.

    Implements the :class:`repro.core.RunStore` protocol. New
    repositories use the sharded v2 layout; an existing flat v1 tree is
    detected, served read/write compatibly with a one-time
    ``DeprecationWarning``, and upgraded in place by :meth:`migrate`.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        marker = self.root / _REPO_MARKER
        if marker.exists():
            try:
                layout = int(json.loads(_read_text(marker)).get("layout", 2))
            except (json.JSONDecodeError, TypeError, ValueError):
                raise RepositoryIntegrityError(
                    f"repository corrupt: {_REPO_MARKER} is unreadable — "
                    f"cannot determine the on-disk layout"
                ) from None
            self._layout = 2 if layout >= 2 else 1
        elif any(self.root.glob(f"*/{_META}")):
            self._layout = 1
            warn_once(
                "ProfileRepository:flat-layout",
                "this repository uses the flat v1 layout, which is "
                "deprecated (O(all) listings and verification); run "
                "`repro repo migrate <root>` to upgrade to the sharded "
                "v2 layout",
            )
        else:
            self._layout = 2
            _atomic_write(
                marker,
                json.dumps({"schema": REPO_SCHEMA, "layout": 2}, indent=2),
                "",
            )

    @property
    def layout(self) -> int:
        """On-disk layout version: 1 (flat, deprecated) or 2 (sharded)."""
        return self._layout

    # -- path scheme ---------------------------------------------------------

    def _campaign_dir(self, dirname: str) -> Path:
        if self._layout == 1:
            return self.root / dirname
        return self.root / SHARD_DIR / shard_of(dirname) / dirname

    def _campaign_dirnames(self) -> list[str]:
        """Every campaign dirname on disk (ground truth, sorted)."""
        if self._layout == 1:
            return sorted(
                d.name
                for d in self.root.iterdir()
                if d.is_dir() and d.name != _QUARANTINE
            )
        shards = self.root / SHARD_DIR
        if not shards.is_dir():
            return []
        return sorted(
            d.name
            for bucket in shards.iterdir()
            if bucket.is_dir()
            for d in bucket.iterdir()
            if d.is_dir()
        )

    # -- shard manifests -----------------------------------------------------

    def _shard_manifest_path(self, dirname: str) -> Path:
        return self.root / SHARD_DIR / shard_of(dirname) / _SHARD_MANIFEST

    @staticmethod
    def _read_shard(path: Path) -> dict:
        """A bucket's manifest; a damaged one degrades to empty (the
        manifest is a cache — disk directories stay ground truth)."""
        if not path.exists():
            return {"schema": SHARD_SCHEMA, "campaigns": {}}
        try:
            data = json.loads(path.read_text())
        except (json.JSONDecodeError, UnicodeDecodeError):
            return {"schema": SHARD_SCHEMA, "campaigns": {}}
        if data.get("schema") != SHARD_SCHEMA or not isinstance(
            data.get("campaigns"), dict
        ):
            return {"schema": SHARD_SCHEMA, "campaigns": {}}
        return data

    def _shard_cache(self) -> dict[str, dict]:
        """dirname → shard-manifest entry, merged over every bucket."""
        out: dict[str, dict] = {}
        shards = self.root / SHARD_DIR
        if self._layout == 1 or not shards.is_dir():
            return out
        for path in shards.glob(f"*/{_SHARD_MANIFEST}"):
            out.update(self._read_shard(path).get("campaigns", {}))
        return out

    def _stat_snapshot(self, dirname: str) -> dict[str, list[int]]:
        cdir = self._campaign_dir(dirname)
        return {
            name: _stat_of(cdir / name)
            for name in _TRACKED
            if (cdir / name).exists()
        }

    def _stats_match(self, dirname: str, snapshot: dict | None) -> bool:
        if not snapshot:
            return False
        cdir = self._campaign_dir(dirname)
        for name in _TRACKED:
            path = cdir / name
            want = snapshot.get(name)
            if want is None or not path.exists():
                return False
            if _stat_of(path) != list(want):
                return False
        return True

    def _update_shard_entry(
        self, dirname: str, *, meta: dict | None, verified: dict | None
    ) -> None:
        if self._layout != 2:
            return
        path = self._shard_manifest_path(dirname)
        shard = self._read_shard(path)
        shard["campaigns"][dirname] = {
            "meta": meta,
            "stat": self._stat_snapshot(dirname),
            "verified": verified,
        }
        _atomic_write(
            path, json.dumps(shard, indent=2, sort_keys=True), dirname
        )

    def _drop_shard_entry(self, dirname: str) -> None:
        if self._layout != 2:
            return
        path = self._shard_manifest_path(dirname)
        shard = self._read_shard(path)
        if dirname in shard["campaigns"]:
            del shard["campaigns"][dirname]
            _atomic_write(
                path, json.dumps(shard, indent=2, sort_keys=True), dirname
            )

    def _record_verified(self, snapshots: dict[str, dict]) -> None:
        """Batch-record clean-verify snapshots, one write per bucket."""
        if self._layout != 2:
            return
        by_bucket: dict[Path, dict[str, dict]] = {}
        for dirname, snap in snapshots.items():
            by_bucket.setdefault(
                self._shard_manifest_path(dirname), {}
            )[dirname] = snap
        for path, group in by_bucket.items():
            shard = self._read_shard(path)
            for dirname, snap in group.items():
                entry = shard["campaigns"].setdefault(
                    dirname, {"meta": None, "stat": snap}
                )
                entry["verified"] = snap
            _atomic_write(
                path, json.dumps(shard, indent=2, sort_keys=True), ""
            )

    # -- write ---------------------------------------------------------------

    def save(
        self,
        result: CampaignResult,
        tag: str | None = None,
        *,
        key: CampaignKey | None = None,
        seed: int | None = None,
        config: dict | None = None,
    ) -> Path:
        """Persist a campaign; returns its directory.

        The campaign is addressed by ``key`` when given, else by a key
        derived from the result's own (kernel, arch) plus ``tag``. A
        provenance manifest (seed, config, git revision, SHA-256
        checksums of the data files, any active trace/metrics —
        :mod:`repro.obs.manifest`) is written alongside the data,
        together with the columnar matrix index. All files are written
        atomically (temp file + fsync + rename).
        """
        if not result.records:
            raise ValueError("refusing to save an empty campaign")
        if key is None:
            key = CampaignKey(kernel=result.kernel, arch=result.arch, tag=tag)
        elif tag is not None:
            raise TypeError("pass the tag inside the CampaignKey")
        cdir = self._campaign_dir(key.dirname)
        cdir.mkdir(parents=True, exist_ok=True)

        counter_names = result.counter_names
        char_names = result.characteristic_names
        machine_names = sorted(result.records[0].machine)

        meta = {
            "kernel": result.kernel,
            "arch": result.arch,
            "family": result.family,
            "tag": key.tag,
            "n_runs": len(result.records),
            "counters": counter_names,
            "characteristics": char_names,
            "machine_metrics": machine_names,
        }
        meta_text = json.dumps(meta, indent=2)
        data_text = self._encode_rows(
            result.records, counter_names, char_names, machine_names,
            header=True,
        )

        # Checksums are of the *intended* content; a write torn on the
        # way to disk (crash, injected fault) therefore fails verify().
        checksums = {_META: _sha256(meta_text), _DATA: _sha256(data_text)}
        _atomic_write(cdir / _META, meta_text, key.dirname)
        _atomic_write(cdir / _DATA, data_text, key.dirname)

        index_text, index_payload = build_matrix_index(
            result, data_text.encode()
        )
        # Payload before header: a crash in between leaves a header/
        # payload hash mismatch, i.e. a stale (rebuildable) index.
        _atomic_write_bytes(cdir / MATRIX_DATA, index_payload, key.dirname)
        _atomic_write(cdir / MATRIX_META, index_text, key.dirname)

        manifest = build_manifest(
            kernel=result.kernel,
            arch=result.arch,
            tag=key.tag,
            seed=seed,
            n_runs=len(result.records),
            config=config or {},
            checksums=checksums,
        )
        _atomic_write(cdir / _MANIFEST, manifest.to_json(), key.dirname)
        self._update_shard_entry(key.dirname, meta=meta, verified=None)
        emit_event(
            "repository.save",
            campaign=key.dirname,
            n_runs=len(result.records),
        )
        return cdir

    @staticmethod
    def _encode_rows(
        records: list[RunRecord],
        counter_names: list[str],
        char_names: list[str],
        machine_names: list[str],
        *,
        header: bool,
    ) -> str:
        buffer = io.StringIO()
        # "\n" terminators (not the csv default "\r\n") so the text —
        # and therefore its checksum — is identical whether read raw or
        # through universal-newline translation.
        writer = csv.writer(buffer, lineterminator="\n")
        if header:
            writer.writerow(
                ["problem", "replicate", "time_s", "power_w"]
                + [f"char:{c}" for c in char_names]
                + [f"counter:{c}" for c in counter_names]
                + [f"machine:{m}" for m in machine_names]
            )
        for r in records:
            writer.writerow(
                [json.dumps(r.problem), r.replicate, repr(r.time_s),
                 "" if r.power_w is None else repr(r.power_w)]
                + [repr(r.characteristics[c]) for c in char_names]
                + [repr(r.counters[c]) for c in counter_names]
                + [repr(r.machine[m]) for m in machine_names]
            )
        return buffer.getvalue()

    def append(
        self,
        result: CampaignResult,
        tag: str | None = None,
        *,
        key: CampaignKey | None = None,
        seed: int | None = None,
        config: dict | None = None,
    ) -> Path:
        """Append new runs to a stored campaign (streaming collection).

        The existing data file is integrity-checked first, the new rows
        are encoded with the stored column schema (every stored counter/
        characteristic/machine column must be present in the new
        records), and meta, manifest and the columnar index are updated
        in one pass — the index incrementally, without re-parsing the
        old rows. Saving a key that does not exist yet falls back to
        :meth:`save`.
        """
        if not result.records:
            raise ValueError("refusing to append an empty campaign")
        if key is None:
            key = CampaignKey(kernel=result.kernel, arch=result.arch, tag=tag)
        elif tag is not None:
            raise TypeError("pass the tag inside the CampaignKey")
        if not self.has(key):
            return self.save(result, key=key, seed=seed, config=config)

        cdir = self._campaign_dir(key.dirname)
        meta = json.loads(_read_text(cdir / _META))
        if meta.get("kernel") != result.kernel or meta.get("arch") != result.arch:
            raise ValueError(
                f"cannot append {result.kernel!r}/{result.arch!r} runs to "
                f"campaign {key.dirname!r} "
                f"({meta.get('kernel')!r}/{meta.get('arch')!r})"
            )
        old_bytes = (cdir / _DATA).read_bytes()
        old_text = old_bytes.decode()
        manifest = self.load_manifest(key)
        if manifest is not None:
            self._check_checksums(
                key.dirname, manifest.checksums, {_DATA: old_text}
            )
        try:
            new_rows = self._encode_rows(
                result.records,
                meta["counters"],
                meta["characteristics"],
                meta["machine_metrics"],
                header=False,
            )
        except KeyError as exc:
            raise ValueError(
                f"cannot append to {key.dirname!r}: new records lack stored "
                f"column {exc.args[0]!r}"
            ) from None
        data_text = old_text + new_rows
        meta["n_runs"] = int(meta["n_runs"] or 0) + len(result.records)
        meta_text = json.dumps(meta, indent=2)
        checksums = {_META: _sha256(meta_text), _DATA: _sha256(data_text)}
        _atomic_write(cdir / _META, meta_text, key.dirname)
        _atomic_write(cdir / _DATA, data_text, key.dirname)

        loaded = self._load_index(key.dirname, expect_source=old_bytes)
        if loaded is not None:
            extended = extend_matrix_index(
                loaded[0], loaded[1], result, data_text.encode()
            )
        else:
            extended = None
        if extended is not None:
            _atomic_write_bytes(cdir / MATRIX_DATA, extended[1], key.dirname)
            _atomic_write(cdir / MATRIX_META, extended[0], key.dirname)
        else:
            # Stale or absent index: drop it; matrix() rebuilds lazily.
            for name in (MATRIX_META, MATRIX_DATA):
                (cdir / name).unlink(missing_ok=True)

        new_manifest = build_manifest(
            kernel=result.kernel,
            arch=result.arch,
            tag=key.tag,
            seed=seed if seed is not None else (
                manifest.seed if manifest is not None else None
            ),
            n_runs=meta["n_runs"],
            config=config or (
                dict(manifest.config) if manifest is not None else {}
            ),
            checksums=checksums,
        )
        _atomic_write(cdir / _MANIFEST, new_manifest.to_json(), key.dirname)
        self._update_shard_entry(key.dirname, meta=meta, verified=None)
        emit_event(
            "repository.append",
            campaign=key.dirname,
            n_new=len(result.records),
            n_runs=meta["n_runs"],
        )
        return cdir

    # -- read ----------------------------------------------------------------

    def list_campaigns(self) -> list[dict]:
        """Metadata of every stored campaign.

        In the sharded layout the answer is served from the per-bucket
        manifests whenever the cached entry's file stats still match the
        disk — only changed campaigns are re-parsed. Campaigns whose
        ``meta.json`` no longer parses are skipped with a warning (run
        :meth:`verify`/:meth:`quarantine` on them) so one damaged
        directory cannot take down enumeration of the rest.
        """
        cache = self._shard_cache()
        out = []
        for dirname in self._campaign_dirnames():
            meta_path = self._campaign_dir(dirname) / _META
            if not meta_path.exists():
                continue
            entry = cache.get(dirname)
            if (
                entry is not None
                and entry.get("meta") is not None
                and entry.get("stat", {}).get(_META) == _stat_of(meta_path)
            ):
                out.append(entry["meta"])
                continue
            try:
                out.append(json.loads(_read_text(meta_path)))
            except (json.JSONDecodeError, RepositoryIntegrityError):
                warn_once(
                    f"ProfileRepository:unreadable:{dirname}",
                    f"skipping campaign {dirname!r}: corrupt "
                    f"meta.json (see ProfileRepository.verify)",
                )
        return out

    def keys(self) -> list[CampaignKey]:
        """The :class:`CampaignKey` of every stored campaign."""
        return [
            CampaignKey(
                kernel=m["kernel"], arch=m["arch"], tag=m.get("tag") or None
            )
            for m in self.list_campaigns()
        ]

    def iter_keys(self):
        """Iterate stored keys (:class:`repro.core.RunStore`)."""
        yield from self.keys()

    def load(
        self,
        key: CampaignKey | str,
        arch: str | None = None,
        tag: str | None = None,
    ) -> CampaignResult:
        """Load one campaign, verifying integrity on the way.

        Data-file checksums (when the manifest records them) and the
        meta row count are checked; failures raise
        :class:`RepositoryIntegrityError`. Legacy entries — no manifest
        sidecar, or meta files missing keys newer code writes — load
        with a warning and sensible defaults instead of a bare
        ``KeyError``.
        """
        key = _as_key(key, arch, tag)
        cdir = self._campaign_dir(key.dirname)
        meta_path = cdir / _META
        if not meta_path.exists():
            raise FileNotFoundError(
                f"no campaign stored for {key.kernel!r} on {key.arch!r}"
            )
        meta_text = _read_text(meta_path)
        try:
            meta = json.loads(meta_text)
        except json.JSONDecodeError as exc:
            raise RepositoryIntegrityError(
                f"repository corrupt: {key.dirname}/{_META} is not valid "
                f"JSON ({exc})"
            ) from None
        data_path = cdir / _DATA
        if not data_path.exists():
            raise RepositoryIntegrityError(
                f"repository corrupt: {key.dirname} has metadata but no "
                f"{_DATA}"
            )
        data_text = _read_text(data_path)

        manifest = self.load_manifest(key)
        if manifest is None:
            warn_once(
                f"ProfileRepository:legacy:{key.dirname}",
                f"campaign {key.dirname!r} has no provenance manifest "
                f"(saved by an older version); loading without checksum "
                f"verification",
            )
        else:
            self._check_checksums(
                key.dirname,
                manifest.checksums,
                {_META: meta_text, _DATA: data_text},
            )

        meta = self._normalize_meta(key, meta, data_text)
        result = CampaignResult(
            kernel=meta["kernel"], arch=meta["arch"], family=meta["family"]
        )
        reader = csv.reader(data_text.splitlines())
        header = next(reader)
        for row in reader:
            rec = dict(zip(header, row))
            result.records.append(
                RunRecord(
                    kernel=meta["kernel"],
                    arch=meta["arch"],
                    family=meta["family"],
                    problem=json.loads(rec["problem"]),
                    replicate=int(rec["replicate"]),
                    time_s=float(rec["time_s"]),
                    power_w=(
                        float(rec["power_w"])
                        if rec.get("power_w") not in (None, "")
                        else None
                    ),
                    characteristics={
                        c: float(rec[f"char:{c}"]) for c in meta["characteristics"]
                    },
                    counters={
                        c: float(rec[f"counter:{c}"]) for c in meta["counters"]
                    },
                    machine={
                        m: float(rec[f"machine:{m}"])
                        for m in meta["machine_metrics"]
                    },
                )
            )
        if meta["n_runs"] is not None and len(result.records) != meta["n_runs"]:
            raise RepositoryIntegrityError(
                f"repository corrupt: expected {meta['n_runs']} runs, "
                f"found {len(result.records)}"
            )
        return result

    # -- columnar index ------------------------------------------------------

    def _load_index(
        self, dirname: str, expect_source: bytes | None = None
    ) -> tuple[dict, np.ndarray] | None:
        """The campaign's (header, table) when present *and fresh*.

        Freshness means the header's ``payload_sha256`` matches the
        ``.npy`` bytes and its ``source_sha256`` matches the current
        ``runs.csv`` bytes (or ``expect_source`` when given). Anything
        else — missing, unparseable, wrong schema, hash mismatch —
        returns ``None``: a stale index is rebuilt, never served.
        """
        cdir = self._campaign_dir(dirname)
        meta_path = cdir / MATRIX_META
        data_path = cdir / MATRIX_DATA
        src_path = cdir / _DATA
        if not meta_path.exists() or not data_path.exists():
            return None
        try:
            header = json.loads(meta_path.read_text())
        except (json.JSONDecodeError, UnicodeDecodeError):
            return None
        if header.get("schema") != MATRIX_SCHEMA:
            return None
        payload = data_path.read_bytes()
        if _sha256_bytes(payload) != header.get("payload_sha256"):
            return None
        source = expect_source
        if source is None:
            if not src_path.exists():
                return None
            source = src_path.read_bytes()
        if _sha256_bytes(source) != header.get("source_sha256"):
            return None
        try:
            table = np.load(io.BytesIO(payload), allow_pickle=False)
        except (ValueError, OSError):
            return None
        n_cols = (
            len(header.get("counters", []))
            + len(header.get("characteristics", []))
            + len(header.get("machine_metrics", []))
            + 2
        )
        if table.ndim != 2 or table.shape != (header.get("n_runs"), n_cols):
            return None
        return header, table

    def rebuild_index(
        self,
        key: CampaignKey | str,
        arch: str | None = None,
        tag: str | None = None,
    ) -> Path:
        """(Re)build the columnar index from the stored CSV.

        Loads the campaign through the full integrity-checked path — a
        corrupt campaign raises instead of indexing damaged data — and
        persists a fresh ``repro-matrix/1`` sidecar. Returns the
        campaign directory.
        """
        key = _as_key(key, arch, tag)
        result = self.load(key)
        cdir = self._campaign_dir(key.dirname)
        index_text, index_payload = build_matrix_index(
            result, (cdir / _DATA).read_bytes()
        )
        _atomic_write_bytes(cdir / MATRIX_DATA, index_payload, key.dirname)
        _atomic_write(cdir / MATRIX_META, index_text, key.dirname)
        return cdir

    def matrix(
        self,
        key: CampaignKey | str,
        counters=None,
        include_characteristics: bool = True,
        include_machine: bool = False,
        response: str = "time",
        missing: str = "raise",
    ) -> tuple[np.ndarray, np.ndarray, list[str]]:
        """Predictor matrix X, response y and column names — served from
        the columnar index without re-parsing the CSV.

        Same semantics (and bit-identical values) as loading the
        campaign and calling :meth:`CampaignResult.matrix`. A missing or
        stale index is rebuilt first (through the integrity-checked load
        path); the staleness check hashes the current ``runs.csv``
        bytes, so a mutated campaign is never answered from its old
        index.
        """
        if not isinstance(key, CampaignKey):
            raise TypeError("matrix() is addressed by CampaignKey")
        if not self.has(key):
            raise FileNotFoundError(
                f"no campaign stored for {key.kernel!r} on {key.arch!r}"
            )
        loaded = self._load_index(key.dirname)
        if loaded is None:
            self.rebuild_index(key)
            loaded = self._load_index(key.dirname)
            if loaded is None:  # pragma: no cover - rebuild always lands
                raise RepositoryIntegrityError(
                    f"repository corrupt: could not rebuild matrix index "
                    f"for {key.dirname}"
                )
        header, table = loaded
        return select_matrix(
            header,
            table,
            counters=counters,
            include_characteristics=include_characteristics,
            include_machine=include_machine,
            response=response,
            missing=missing,
        )

    @staticmethod
    def _check_checksums(
        dirname: str, expected: dict, actual_texts: dict[str, str]
    ) -> None:
        for name, text in actual_texts.items():
            want = expected.get(name)
            if want is not None and _sha256(text) != want:
                raise RepositoryIntegrityError(
                    f"repository corrupt: checksum mismatch for "
                    f"{dirname}/{name} (file damaged after save — torn "
                    f"write or bit rot; see ProfileRepository.quarantine)"
                )

    @staticmethod
    def _normalize_meta(key: CampaignKey, meta: dict, data_text: str) -> dict:
        """Fill keys newer code writes but legacy entries lack.

        Column lists are recovered from the CSV header prefixes
        (``char:``/``counter:``/``machine:``); a missing ``n_runs``
        becomes ``None`` (count check skipped). Loud but non-fatal: a
        years-old campaign is still data.
        """
        required = ("family", "tag", "n_runs", "counters",
                    "characteristics", "machine_metrics")
        missing = [k for k in required if k not in meta]
        if missing:
            warn_once(
                f"ProfileRepository:legacy-meta:{key.dirname}",
                f"campaign {key.dirname!r} metadata lacks {missing} (saved "
                f"by an older version); reconstructing from the data file",
            )
            header = data_text.splitlines()[0].split(",") if data_text else []
            defaults = {
                "family": "unknown",
                "tag": None,
                "n_runs": None,
                "counters": [h[len("counter:"):] for h in header
                             if h.startswith("counter:")],
                "characteristics": [h[len("char:"):] for h in header
                                    if h.startswith("char:")],
                "machine_metrics": [h[len("machine:"):] for h in header
                                    if h.startswith("machine:")],
            }
            meta = {**defaults, **meta}
        meta.setdefault("kernel", key.kernel)
        meta.setdefault("arch", key.arch)
        return meta

    def has(
        self,
        key: CampaignKey | str,
        arch: str | None = None,
        tag: str | None = None,
    ) -> bool:
        key = _as_key(key, arch, tag)
        return (self._campaign_dir(key.dirname) / _META).exists()

    def load_manifest(
        self,
        key: CampaignKey | str,
        arch: str | None = None,
        tag: str | None = None,
    ) -> Manifest | None:
        """The provenance manifest of a stored campaign, if present.

        Returns ``None`` for campaigns saved before manifests existed;
        raises :class:`RepositoryIntegrityError` when the file exists
        but no longer parses.
        """
        key = _as_key(key, arch, tag)
        path = self._campaign_dir(key.dirname) / _MANIFEST
        if not path.exists():
            return None
        try:
            return Manifest.read(path)
        except (json.JSONDecodeError, ValueError) as exc:
            raise RepositoryIntegrityError(
                f"repository corrupt: {key.dirname}/{_MANIFEST} is "
                f"unreadable ({exc})"
            ) from None

    def manifest_digest(
        self,
        key: CampaignKey | str,
        arch: str | None = None,
        tag: str | None = None,
    ) -> str | None:
        """SHA-256 of a campaign's manifest file — its provenance identity.

        The fit registry (:mod:`repro.serve.registry`) uses this digest
        as the default version id of models trained on the campaign, so
        a served prediction traces back to the exact data it learned
        from. ``None`` for legacy campaigns without a manifest.
        """
        key = _as_key(key, arch, tag)
        path = self._campaign_dir(key.dirname) / _MANIFEST
        if not path.exists():
            return None
        return _sha256(_read_text(path))

    # -- integrity -----------------------------------------------------------

    def verify(
        self,
        key: CampaignKey | str,
        arch: str | None = None,
        tag: str | None = None,
    ) -> list[str]:
        """Integrity findings for one stored campaign (empty = intact).

        Checks, without mutating anything: files present and parseable,
        manifest checksums match the bytes on disk, row count matches
        the metadata, matrix index fresh. Always a full check; the
        stat-based fast path belongs to :meth:`verify_all`.
        """
        key = _as_key(key, arch, tag)
        return self._verify_dirname(key.dirname)

    def _verify_dirname(self, dirname: str) -> list[str]:
        cdir = self._campaign_dir(dirname)
        findings: list[str] = []
        if not cdir.is_dir():
            return [f"{dirname}: campaign directory missing"]
        texts: dict[str, str] = {}
        for name in (_META, _DATA):
            path = cdir / name
            if not path.exists():
                findings.append(f"{dirname}/{name}: missing")
            else:
                try:
                    texts[name] = path.read_text()
                except UnicodeDecodeError:
                    findings.append(
                        f"{dirname}/{name}: corrupt (not valid UTF-8)"
                    )
        meta = None
        if _META in texts:
            try:
                meta = json.loads(texts[_META])
            except json.JSONDecodeError:
                findings.append(f"{dirname}/{_META}: corrupt (not JSON)")
        manifest_path = cdir / _MANIFEST
        if not manifest_path.exists():
            findings.append(
                f"{dirname}/{_MANIFEST}: missing (legacy campaign — "
                f"no checksums to verify)"
            )
        else:
            try:
                manifest = Manifest.read(manifest_path)
            except (json.JSONDecodeError, ValueError):
                findings.append(f"{dirname}/{_MANIFEST}: corrupt")
            else:
                for name, want in sorted(manifest.checksums.items()):
                    have = texts.get(name)
                    if have is not None and _sha256(have) != want:
                        findings.append(
                            f"{dirname}/{name}: corrupt (checksum mismatch)"
                        )
        if meta is not None and _DATA in texts and meta.get("n_runs") is not None:
            n_rows = max(len(texts[_DATA].splitlines()) - 1, 0)
            if n_rows != meta["n_runs"]:
                findings.append(
                    f"{dirname}/{_DATA}: corrupt (row count {n_rows} != "
                    f"meta n_runs {meta['n_runs']})"
                )
        findings.extend(self._index_findings(cdir, dirname))
        findings.extend(self._schema_findings(cdir, dirname))
        return findings

    def _index_findings(self, cdir: Path, dirname: str) -> list[str]:
        """Freshness of the (optional, derived) columnar index.

        A stale or damaged index is *not* corruption of the campaign —
        ``matrix()`` rebuilds it from the CSV — so the finding is
        labelled legacy/drift and ``repro repo verify`` reports it
        without quarantining.
        """
        if not (cdir / MATRIX_META).exists() and not (
            cdir / MATRIX_DATA
        ).exists():
            # No index at all is normal (legacy campaign, or dropped
            # after an append): matrix() builds one lazily.
            return []
        if self._load_index(dirname) is None:
            return [
                f"{dirname}/{MATRIX_META}: legacy/drift (stale matrix "
                f"index; rebuilt on next matrix())"
            ]
        return []

    @staticmethod
    def _schema_findings(cdir: Path, dirname: str) -> list[str]:
        """Validate the JSON sidecars against the registered artifact
        schemas (rules BF6xx) — a renamed or mistyped field becomes a
        named finding here instead of a ``KeyError`` in some reader.

        ERROR findings read as corruption; WARNING-level drift
        (unrecognized fields a reader would silently skip) is labelled
        legacy/drift so ``repro repo verify`` reports without
        quarantining.
        """
        # Function-level import: repro.analysis pulls in gpusim, which
        # the profiling package must not require at import time.
        from repro.analysis import Severity, validate_artifact

        findings: list[str] = []
        for name in (_MANIFEST, _META):
            path = cdir / name
            if not path.exists():
                continue  # presence is the structural checks' concern
            for f in validate_artifact(path):
                if f.severity >= Severity.ERROR:
                    findings.append(
                        f"{dirname}/{name}: corrupt ({f.rule}: {f.message})"
                    )
                else:
                    findings.append(
                        f"{dirname}/{name}: legacy/drift "
                        f"({f.rule}: {f.message})"
                    )
        return findings

    def verify_all(self, full: bool = False) -> dict[str, list[str]]:
        """:meth:`verify` over every campaign directory (by dirname).

        Enumerates raw directories rather than :meth:`keys` so campaigns
        whose metadata is too damaged to list still get checked. The
        quarantine area is skipped — it holds known-bad data.

        In the sharded layout the check is O(changed): campaigns whose
        tracked files' (size, mtime) still match the snapshot recorded
        at their last *clean* verify are skipped, and a clean full check
        records a fresh snapshot. ``full=True`` re-hashes everything
        (catches same-size same-mtime rewrites the stat check cannot).
        """
        cache = {} if full else self._shard_cache()
        out: dict[str, list[str]] = {}
        clean_snapshots: dict[str, dict] = {}
        for dirname in self._campaign_dirnames():
            entry = cache.get(dirname)
            if (
                entry is not None
                and self._stats_match(dirname, entry.get("verified"))
            ):
                out[dirname] = []
                continue
            findings = self._verify_dirname(dirname)
            out[dirname] = findings
            if not findings:
                clean_snapshots[dirname] = self._stat_snapshot(dirname)
        if clean_snapshots:
            self._record_verified(clean_snapshots)
        return out

    def quarantine(
        self,
        key: CampaignKey | str,
        arch: str | None = None,
        tag: str | None = None,
    ) -> Path:
        """Move a damaged campaign into ``<root>/_quarantine/``.

        The data is preserved for post-mortem (nothing is deleted) but
        disappears from :meth:`keys`/:meth:`list_campaigns`/:meth:`load`.
        Returns the new location.
        """
        key = _as_key(key, arch, tag)
        if not self._campaign_dir(key.dirname).is_dir():
            raise FileNotFoundError(
                f"no campaign stored for {key.kernel!r} on {key.arch!r}"
            )
        return self._quarantine_dirname(key.dirname)

    def _quarantine_dirname(self, dirname: str) -> Path:
        qdir = self.root / _QUARANTINE
        qdir.mkdir(exist_ok=True)
        target = qdir / dirname
        suffix = 1
        while target.exists():
            target = qdir / f"{dirname}.{suffix}"
            suffix += 1
        os.replace(self._campaign_dir(dirname), target)
        self._drop_shard_entry(dirname)
        return target

    # -- layout migration ----------------------------------------------------

    def migrate(self, build_index: bool = True) -> dict:
        """Upgrade a flat v1 tree to the sharded v2 layout, in place.

        Campaign directories are renamed (``os.replace``) into their
        hash buckets — file contents are untouched, so the migration
        round-trips bit-identically — then shard manifests and columnar
        indexes are built and a full :meth:`verify_all` runs. Idempotent:
        migrating a v2 repository only refreshes manifests/indexes.
        Returns a summary dict (``migrated``, ``indexed``, ``skipped``,
        ``findings``).
        """
        moved = 0
        if self._layout == 1:
            for cdir in sorted(self.root.iterdir()):
                if not cdir.is_dir() or cdir.name in (_QUARANTINE, SHARD_DIR):
                    continue
                bucket = self.root / SHARD_DIR / shard_of(cdir.name)
                bucket.mkdir(parents=True, exist_ok=True)
                os.replace(cdir, bucket / cdir.name)
                moved += 1
            _atomic_write(
                self.root / _REPO_MARKER,
                json.dumps({"schema": REPO_SCHEMA, "layout": 2}, indent=2),
                "",
            )
            self._layout = 2

        indexed = 0
        skipped: list[str] = []
        for dirname in self._campaign_dirnames():
            cdir = self._campaign_dir(dirname)
            meta: dict | None
            try:
                meta = json.loads(_read_text(cdir / _META))
            except (OSError, json.JSONDecodeError, RepositoryIntegrityError):
                meta = None
            self._update_shard_entry(dirname, meta=meta, verified=None)
            if not build_index or self._load_index(dirname) is not None:
                continue
            try:
                self.rebuild_index(self._dirname_key(dirname, meta))
                indexed += 1
            except (ValueError, FileNotFoundError, KeyError):
                # Corrupt or legacy-unreadable campaign: leave it for
                # verify_all below to report; never index damaged data.
                skipped.append(dirname)
        findings = self.verify_all(full=True)
        summary = {
            "layout": 2,
            "migrated": moved,
            "indexed": indexed,
            "skipped": sorted(skipped),
            "findings": {d: f for d, f in findings.items() if f},
        }
        emit_event(
            "repository.migrate",
            migrated=moved,
            indexed=indexed,
            skipped=len(skipped),
        )
        return summary

    @staticmethod
    def _dirname_key(dirname: str, meta: dict | None) -> CampaignKey:
        """Best-effort key for a raw directory (migration bookkeeping)."""
        if meta and meta.get("kernel") and meta.get("arch"):
            return CampaignKey(
                kernel=meta["kernel"],
                arch=meta["arch"],
                tag=meta.get("tag") or None,
            )
        parts = dirname.split("__")
        if len(parts) >= 2:
            return CampaignKey(
                kernel=parts[0], arch=parts[1],
                tag="__".join(parts[2:]) or None,
            )
        raise ValueError(f"cannot derive a CampaignKey for {dirname!r}")

    def stats(self) -> dict:
        """Repository shape at a glance: layout, campaign/run counts,
        shard fill and index freshness (``repro repo stats``)."""
        dirnames = self._campaign_dirnames()
        runs = sum(
            int(m.get("n_runs") or 0) for m in self.list_campaigns()
        )
        fill: dict[str, int] = {}
        fresh = stale = missing = 0
        for dirname in dirnames:
            fill[shard_of(dirname)] = fill.get(shard_of(dirname), 0) + 1
            cdir = self._campaign_dir(dirname)
            if not (cdir / MATRIX_META).exists():
                missing += 1
            elif self._load_index(dirname) is None:
                stale += 1
            else:
                fresh += 1
        return {
            "layout": self._layout,
            "campaigns": len(dirnames),
            "runs": runs,
            "shards": {
                "used": len(fill),
                "total": 256 if self._layout == 2 else 1,
                "max_fill": max(fill.values(), default=0),
            },
            "index": {"fresh": fresh, "stale": stale, "missing": missing},
        }


def __getattr__(name: str):
    if name == "Repository":
        warn_once(
            "Repository",
            "repro.profiling.repository.Repository was renamed to "
            "ProfileRepository; the old name will be removed",
        )
        return ProfileRepository
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
