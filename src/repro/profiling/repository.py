"""Structured on-disk repository for profiling campaigns.

The paper stores collected data "in either a database or a structured
repository (we used the latter)" (Section 4.3). This module implements
that structured repository: one directory per campaign holding a CSV
table of runs, a JSON metadata sidecar and a provenance manifest
(:mod:`repro.obs.manifest`), addressable by :class:`CampaignKey` and
safely round-trippable.

Writes are torn-proof: every artifact is written to a temp file, fsynced
and renamed into place, so a crash mid-save leaves either the old
campaign or the new one — never half of each. The manifest carries
SHA-256 checksums of its sibling files; :meth:`ProfileRepository.verify`
recomputes them (plus structural checks), and
:meth:`ProfileRepository.quarantine` moves a damaged campaign aside into
``_quarantine/`` instead of deleting evidence. Integrity failures raise
:class:`RepositoryIntegrityError` (a ``ValueError`` whose message always
says "corrupt"). Fault injection for all of this lives at the
``repository.write`` site (see :mod:`repro.faults`).
"""

from __future__ import annotations

import csv
import hashlib
import io
import json
import os
from dataclasses import dataclass
from pathlib import Path

from repro._compat import warn_once
from repro.faults.plan import should_inject
from repro.obs import Manifest, build_manifest
from repro.obs.log import emit as emit_event

from .campaign import CampaignResult
from .profiler import RunRecord

__all__ = ["CampaignKey", "ProfileRepository", "RepositoryIntegrityError"]

_META = "meta.json"
_DATA = "runs.csv"
_MANIFEST = "manifest.json"
#: Sub-directory verify-failed campaigns are moved into. Its campaigns
#: sit one level deeper than ``<root>/<campaign>/``, so ``glob`` based
#: listing/loading never sees them.
_QUARANTINE = "_quarantine"


class RepositoryIntegrityError(ValueError):
    """A stored campaign failed an integrity check (torn or corrupt
    file, checksum mismatch, row-count mismatch). Subclasses
    ``ValueError`` so pre-existing ``except ValueError`` handling — and
    tests matching "corrupt" — keep working."""


def _safe(s: str) -> str:
    return "".join(c if c.isalnum() or c in "-_." else "_" for c in s)


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


def _read_text(path: Path) -> str:
    """Read a repository file; undecodable bytes mean bit rot."""
    try:
        return path.read_text()
    except UnicodeDecodeError as exc:
        raise RepositoryIntegrityError(
            f"repository corrupt: {path.parent.name}/{path.name} is not "
            f"valid UTF-8 ({exc}); see ProfileRepository.quarantine"
        ) from None


def _atomic_write(path: Path, text: str, campaign: str) -> None:
    """Write-then-rename with fsync; the ``repository.write`` fault site.

    An injected ``torn_file``/``corrupt_file`` rule damages the payload
    *after* the caller computed checksums from the intact text — exactly
    the disk-level damage :meth:`ProfileRepository.verify` exists to
    catch.
    """
    fault = should_inject("repository.write", file=path.name, campaign=campaign)
    if fault is not None:
        if fault.mode == "torn_file":
            fraction = float(fault.payload_dict.get("fraction", 0.5))
            text = text[: int(len(text) * fraction)]
        elif fault.mode == "corrupt_file":
            # Flip a byte mid-file: still the right length, wrong content.
            middle = len(text) // 2
            text = text[:middle] + "\x00" + text[middle + 1 :]
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", newline="") as fh:
        fh.write(text)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


@dataclass(frozen=True)
class CampaignKey:
    """Addresses one stored campaign: (kernel, arch, optional tag)."""

    kernel: str
    arch: str
    tag: str | None = None

    def __post_init__(self) -> None:
        if not self.kernel or not self.arch:
            raise ValueError("CampaignKey needs non-empty kernel and arch")

    @property
    def dirname(self) -> str:
        name = f"{_safe(self.kernel)}__{_safe(self.arch)}"
        if self.tag:
            name += f"__{_safe(self.tag)}"
        return name

    def __str__(self) -> str:
        return self.dirname


def _as_key(
    key: CampaignKey | str, arch: str | None, tag: str | None
) -> CampaignKey:
    """Accept the new key object or the legacy positional strings."""
    if isinstance(key, CampaignKey):
        if arch is not None or tag is not None:
            raise TypeError(
                "pass either a CampaignKey or (kernel, arch, tag) strings, "
                "not both"
            )
        return key
    warn_once(
        "ProfileRepository:str-key",
        "addressing repository campaigns with (kernel, arch, tag) strings "
        "is deprecated; pass a CampaignKey",
    )
    if arch is None:
        raise TypeError("string-addressed campaigns need kernel and arch")
    return CampaignKey(kernel=key, arch=arch, tag=tag)


class ProfileRepository:
    """Filesystem-backed store of :class:`CampaignResult` objects."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # -- write ---------------------------------------------------------------

    def save(
        self,
        result: CampaignResult,
        tag: str | None = None,
        *,
        key: CampaignKey | None = None,
        seed: int | None = None,
        config: dict | None = None,
    ) -> Path:
        """Persist a campaign; returns its directory.

        The campaign is addressed by ``key`` when given, else by a key
        derived from the result's own (kernel, arch) plus ``tag``. A
        provenance manifest (seed, config, git revision, SHA-256
        checksums of the data files, any active trace/metrics —
        :mod:`repro.obs.manifest`) is written alongside the data. All
        three files are written atomically (temp file + fsync + rename).
        """
        if not result.records:
            raise ValueError("refusing to save an empty campaign")
        if key is None:
            key = CampaignKey(kernel=result.kernel, arch=result.arch, tag=tag)
        elif tag is not None:
            raise TypeError("pass the tag inside the CampaignKey")
        cdir = self.root / key.dirname
        cdir.mkdir(parents=True, exist_ok=True)

        counter_names = result.counter_names
        char_names = result.characteristic_names
        machine_names = sorted(result.records[0].machine)

        meta = {
            "kernel": result.kernel,
            "arch": result.arch,
            "family": result.family,
            "tag": key.tag,
            "n_runs": len(result.records),
            "counters": counter_names,
            "characteristics": char_names,
            "machine_metrics": machine_names,
        }
        meta_text = json.dumps(meta, indent=2)

        header = (
            ["problem", "replicate", "time_s", "power_w"]
            + [f"char:{c}" for c in char_names]
            + [f"counter:{c}" for c in counter_names]
            + [f"machine:{m}" for m in machine_names]
        )
        buffer = io.StringIO()
        # "\n" terminators (not the csv default "\r\n") so the text —
        # and therefore its checksum — is identical whether read raw or
        # through universal-newline translation.
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(header)
        for r in result.records:
            writer.writerow(
                [json.dumps(r.problem), r.replicate, repr(r.time_s),
                 "" if r.power_w is None else repr(r.power_w)]
                + [repr(r.characteristics[c]) for c in char_names]
                + [repr(r.counters[c]) for c in counter_names]
                + [repr(r.machine[m]) for m in machine_names]
            )
        data_text = buffer.getvalue()

        # Checksums are of the *intended* content; a write torn on the
        # way to disk (crash, injected fault) therefore fails verify().
        checksums = {_META: _sha256(meta_text), _DATA: _sha256(data_text)}
        _atomic_write(cdir / _META, meta_text, key.dirname)
        _atomic_write(cdir / _DATA, data_text, key.dirname)

        manifest = build_manifest(
            kernel=result.kernel,
            arch=result.arch,
            tag=key.tag,
            seed=seed,
            n_runs=len(result.records),
            config=config or {},
            checksums=checksums,
        )
        _atomic_write(cdir / _MANIFEST, manifest.to_json(), key.dirname)
        emit_event(
            "repository.save",
            campaign=key.dirname,
            n_runs=len(result.records),
        )
        return cdir

    # -- read ----------------------------------------------------------------

    def list_campaigns(self) -> list[dict]:
        """Metadata of every stored campaign.

        Campaigns whose ``meta.json`` no longer parses are skipped with
        a warning (run :meth:`verify`/:meth:`quarantine` on them) so one
        damaged directory cannot take down enumeration of the rest.
        """
        out = []
        for meta_path in sorted(self.root.glob(f"*/{_META}")):
            try:
                out.append(json.loads(_read_text(meta_path)))
            except (json.JSONDecodeError, RepositoryIntegrityError):
                warn_once(
                    f"ProfileRepository:unreadable:{meta_path.parent.name}",
                    f"skipping campaign {meta_path.parent.name!r}: corrupt "
                    f"meta.json (see ProfileRepository.verify)",
                )
        return out

    def keys(self) -> list[CampaignKey]:
        """The :class:`CampaignKey` of every stored campaign."""
        return [
            CampaignKey(
                kernel=m["kernel"], arch=m["arch"], tag=m.get("tag") or None
            )
            for m in self.list_campaigns()
        ]

    def load(
        self,
        key: CampaignKey | str,
        arch: str | None = None,
        tag: str | None = None,
    ) -> CampaignResult:
        """Load one campaign, verifying integrity on the way.

        Data-file checksums (when the manifest records them) and the
        meta row count are checked; failures raise
        :class:`RepositoryIntegrityError`. Legacy entries — no manifest
        sidecar, or meta files missing keys newer code writes — load
        with a warning and sensible defaults instead of a bare
        ``KeyError``.
        """
        key = _as_key(key, arch, tag)
        cdir = self.root / key.dirname
        meta_path = cdir / _META
        if not meta_path.exists():
            raise FileNotFoundError(
                f"no campaign stored for {key.kernel!r} on {key.arch!r}"
            )
        meta_text = _read_text(meta_path)
        try:
            meta = json.loads(meta_text)
        except json.JSONDecodeError as exc:
            raise RepositoryIntegrityError(
                f"repository corrupt: {key.dirname}/{_META} is not valid "
                f"JSON ({exc})"
            ) from None
        data_path = cdir / _DATA
        if not data_path.exists():
            raise RepositoryIntegrityError(
                f"repository corrupt: {key.dirname} has metadata but no "
                f"{_DATA}"
            )
        data_text = _read_text(data_path)

        manifest = self.load_manifest(key)
        if manifest is None:
            warn_once(
                f"ProfileRepository:legacy:{key.dirname}",
                f"campaign {key.dirname!r} has no provenance manifest "
                f"(saved by an older version); loading without checksum "
                f"verification",
            )
        else:
            self._check_checksums(
                key.dirname,
                manifest.checksums,
                {_META: meta_text, _DATA: data_text},
            )

        meta = self._normalize_meta(key, meta, data_text)
        result = CampaignResult(
            kernel=meta["kernel"], arch=meta["arch"], family=meta["family"]
        )
        reader = csv.reader(data_text.splitlines())
        header = next(reader)
        for row in reader:
            rec = dict(zip(header, row))
            result.records.append(
                RunRecord(
                    kernel=meta["kernel"],
                    arch=meta["arch"],
                    family=meta["family"],
                    problem=json.loads(rec["problem"]),
                    replicate=int(rec["replicate"]),
                    time_s=float(rec["time_s"]),
                    power_w=(
                        float(rec["power_w"])
                        if rec.get("power_w") not in (None, "")
                        else None
                    ),
                    characteristics={
                        c: float(rec[f"char:{c}"]) for c in meta["characteristics"]
                    },
                    counters={
                        c: float(rec[f"counter:{c}"]) for c in meta["counters"]
                    },
                    machine={
                        m: float(rec[f"machine:{m}"])
                        for m in meta["machine_metrics"]
                    },
                )
            )
        if meta["n_runs"] is not None and len(result.records) != meta["n_runs"]:
            raise RepositoryIntegrityError(
                f"repository corrupt: expected {meta['n_runs']} runs, "
                f"found {len(result.records)}"
            )
        return result

    @staticmethod
    def _check_checksums(
        dirname: str, expected: dict, actual_texts: dict[str, str]
    ) -> None:
        for name, text in actual_texts.items():
            want = expected.get(name)
            if want is not None and _sha256(text) != want:
                raise RepositoryIntegrityError(
                    f"repository corrupt: checksum mismatch for "
                    f"{dirname}/{name} (file damaged after save — torn "
                    f"write or bit rot; see ProfileRepository.quarantine)"
                )

    @staticmethod
    def _normalize_meta(key: CampaignKey, meta: dict, data_text: str) -> dict:
        """Fill keys newer code writes but legacy entries lack.

        Column lists are recovered from the CSV header prefixes
        (``char:``/``counter:``/``machine:``); a missing ``n_runs``
        becomes ``None`` (count check skipped). Loud but non-fatal: a
        years-old campaign is still data.
        """
        required = ("family", "tag", "n_runs", "counters",
                    "characteristics", "machine_metrics")
        missing = [k for k in required if k not in meta]
        if missing:
            warn_once(
                f"ProfileRepository:legacy-meta:{key.dirname}",
                f"campaign {key.dirname!r} metadata lacks {missing} (saved "
                f"by an older version); reconstructing from the data file",
            )
            header = data_text.splitlines()[0].split(",") if data_text else []
            defaults = {
                "family": "unknown",
                "tag": None,
                "n_runs": None,
                "counters": [h[len("counter:"):] for h in header
                             if h.startswith("counter:")],
                "characteristics": [h[len("char:"):] for h in header
                                    if h.startswith("char:")],
                "machine_metrics": [h[len("machine:"):] for h in header
                                    if h.startswith("machine:")],
            }
            meta = {**defaults, **meta}
        meta.setdefault("kernel", key.kernel)
        meta.setdefault("arch", key.arch)
        return meta

    def has(
        self,
        key: CampaignKey | str,
        arch: str | None = None,
        tag: str | None = None,
    ) -> bool:
        key = _as_key(key, arch, tag)
        return (self.root / key.dirname / _META).exists()

    def load_manifest(
        self,
        key: CampaignKey | str,
        arch: str | None = None,
        tag: str | None = None,
    ) -> Manifest | None:
        """The provenance manifest of a stored campaign, if present.

        Returns ``None`` for campaigns saved before manifests existed;
        raises :class:`RepositoryIntegrityError` when the file exists
        but no longer parses.
        """
        key = _as_key(key, arch, tag)
        path = self.root / key.dirname / _MANIFEST
        if not path.exists():
            return None
        try:
            return Manifest.read(path)
        except (json.JSONDecodeError, ValueError) as exc:
            raise RepositoryIntegrityError(
                f"repository corrupt: {key.dirname}/{_MANIFEST} is "
                f"unreadable ({exc})"
            ) from None

    def manifest_digest(
        self,
        key: CampaignKey | str,
        arch: str | None = None,
        tag: str | None = None,
    ) -> str | None:
        """SHA-256 of a campaign's manifest file — its provenance identity.

        The fit registry (:mod:`repro.serve.registry`) uses this digest
        as the default version id of models trained on the campaign, so
        a served prediction traces back to the exact data it learned
        from. ``None`` for legacy campaigns without a manifest.
        """
        key = _as_key(key, arch, tag)
        path = self.root / key.dirname / _MANIFEST
        if not path.exists():
            return None
        return _sha256(_read_text(path))

    # -- integrity -----------------------------------------------------------

    def verify(
        self,
        key: CampaignKey | str,
        arch: str | None = None,
        tag: str | None = None,
    ) -> list[str]:
        """Integrity findings for one stored campaign (empty = intact).

        Checks, without mutating anything: files present and parseable,
        manifest checksums match the bytes on disk, row count matches
        the metadata. Designed to be cheap enough to run over a whole
        repository (``repro repo verify``).
        """
        key = _as_key(key, arch, tag)
        return self._verify_dirname(key.dirname)

    def _verify_dirname(self, dirname: str) -> list[str]:
        cdir = self.root / dirname
        findings: list[str] = []
        if not cdir.is_dir():
            return [f"{dirname}: campaign directory missing"]
        texts: dict[str, str] = {}
        for name in (_META, _DATA):
            path = cdir / name
            if not path.exists():
                findings.append(f"{dirname}/{name}: missing")
            else:
                try:
                    texts[name] = path.read_text()
                except UnicodeDecodeError:
                    findings.append(
                        f"{dirname}/{name}: corrupt (not valid UTF-8)"
                    )
        meta = None
        if _META in texts:
            try:
                meta = json.loads(texts[_META])
            except json.JSONDecodeError:
                findings.append(f"{dirname}/{_META}: corrupt (not JSON)")
        manifest_path = cdir / _MANIFEST
        if not manifest_path.exists():
            findings.append(
                f"{dirname}/{_MANIFEST}: missing (legacy campaign — "
                f"no checksums to verify)"
            )
        else:
            try:
                manifest = Manifest.read(manifest_path)
            except (json.JSONDecodeError, ValueError):
                findings.append(f"{dirname}/{_MANIFEST}: corrupt")
            else:
                for name, want in sorted(manifest.checksums.items()):
                    have = texts.get(name)
                    if have is not None and _sha256(have) != want:
                        findings.append(
                            f"{dirname}/{name}: corrupt (checksum mismatch)"
                        )
        if meta is not None and _DATA in texts and meta.get("n_runs") is not None:
            n_rows = max(len(texts[_DATA].splitlines()) - 1, 0)
            if n_rows != meta["n_runs"]:
                findings.append(
                    f"{dirname}/{_DATA}: corrupt (row count {n_rows} != "
                    f"meta n_runs {meta['n_runs']})"
                )
        findings.extend(self._schema_findings(cdir, dirname))
        return findings

    @staticmethod
    def _schema_findings(cdir: Path, dirname: str) -> list[str]:
        """Validate the JSON sidecars against the registered artifact
        schemas (rules BF6xx) — a renamed or mistyped field becomes a
        named finding here instead of a ``KeyError`` in some reader.

        ERROR findings read as corruption; WARNING-level drift
        (unrecognized fields a reader would silently skip) is labelled
        legacy/drift so ``repro repo verify`` reports without
        quarantining.
        """
        # Function-level import: repro.analysis pulls in gpusim, which
        # the profiling package must not require at import time.
        from repro.analysis import Severity, validate_artifact

        findings: list[str] = []
        for name in (_MANIFEST, _META):
            path = cdir / name
            if not path.exists():
                continue  # presence is the structural checks' concern
            for f in validate_artifact(path):
                if f.severity >= Severity.ERROR:
                    findings.append(
                        f"{dirname}/{name}: corrupt ({f.rule}: {f.message})"
                    )
                else:
                    findings.append(
                        f"{dirname}/{name}: legacy/drift "
                        f"({f.rule}: {f.message})"
                    )
        return findings

    def verify_all(self) -> dict[str, list[str]]:
        """:meth:`verify` over every campaign directory (by dirname).

        Enumerates raw directories rather than :meth:`keys` so campaigns
        whose metadata is too damaged to list still get checked. The
        quarantine area is skipped — it holds known-bad data.
        """
        return {
            cdir.name: self._verify_dirname(cdir.name)
            for cdir in sorted(self.root.iterdir())
            if cdir.is_dir() and cdir.name != _QUARANTINE
        }

    def quarantine(
        self,
        key: CampaignKey | str,
        arch: str | None = None,
        tag: str | None = None,
    ) -> Path:
        """Move a damaged campaign into ``<root>/_quarantine/``.

        The data is preserved for post-mortem (nothing is deleted) but
        disappears from :meth:`keys`/:meth:`list_campaigns`/:meth:`load`.
        Returns the new location.
        """
        key = _as_key(key, arch, tag)
        if not (self.root / key.dirname).is_dir():
            raise FileNotFoundError(
                f"no campaign stored for {key.kernel!r} on {key.arch!r}"
            )
        return self._quarantine_dirname(key.dirname)

    def _quarantine_dirname(self, dirname: str) -> Path:
        qdir = self.root / _QUARANTINE
        qdir.mkdir(exist_ok=True)
        target = qdir / dirname
        suffix = 1
        while target.exists():
            target = qdir / f"{dirname}.{suffix}"
            suffix += 1
        os.replace(self.root / dirname, target)
        return target


def __getattr__(name: str):
    if name == "Repository":
        warn_once(
            "Repository",
            "repro.profiling.repository.Repository was renamed to "
            "ProfileRepository; the old name will be removed",
        )
        return ProfileRepository
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
