"""Structured on-disk repository for profiling campaigns.

The paper stores collected data "in either a database or a structured
repository (we used the latter)" (Section 4.3). This module implements
that structured repository: one directory per campaign holding a CSV
table of runs, a JSON metadata sidecar and a provenance manifest
(:mod:`repro.obs.manifest`), addressable by :class:`CampaignKey` and
safely round-trippable.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass
from pathlib import Path

from repro._compat import warn_once
from repro.obs import Manifest, build_manifest

from .campaign import CampaignResult
from .profiler import RunRecord

__all__ = ["CampaignKey", "ProfileRepository"]

_META = "meta.json"
_DATA = "runs.csv"
_MANIFEST = "manifest.json"


def _safe(s: str) -> str:
    return "".join(c if c.isalnum() or c in "-_." else "_" for c in s)


@dataclass(frozen=True)
class CampaignKey:
    """Addresses one stored campaign: (kernel, arch, optional tag)."""

    kernel: str
    arch: str
    tag: str | None = None

    def __post_init__(self) -> None:
        if not self.kernel or not self.arch:
            raise ValueError("CampaignKey needs non-empty kernel and arch")

    @property
    def dirname(self) -> str:
        name = f"{_safe(self.kernel)}__{_safe(self.arch)}"
        if self.tag:
            name += f"__{_safe(self.tag)}"
        return name

    def __str__(self) -> str:
        return self.dirname


def _as_key(
    key: CampaignKey | str, arch: str | None, tag: str | None
) -> CampaignKey:
    """Accept the new key object or the legacy positional strings."""
    if isinstance(key, CampaignKey):
        if arch is not None or tag is not None:
            raise TypeError(
                "pass either a CampaignKey or (kernel, arch, tag) strings, "
                "not both"
            )
        return key
    warn_once(
        "ProfileRepository:str-key",
        "addressing repository campaigns with (kernel, arch, tag) strings "
        "is deprecated; pass a CampaignKey",
    )
    if arch is None:
        raise TypeError("string-addressed campaigns need kernel and arch")
    return CampaignKey(kernel=key, arch=arch, tag=tag)


class ProfileRepository:
    """Filesystem-backed store of :class:`CampaignResult` objects."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # -- write ---------------------------------------------------------------

    def save(
        self,
        result: CampaignResult,
        tag: str | None = None,
        *,
        key: CampaignKey | None = None,
        seed: int | None = None,
        config: dict | None = None,
    ) -> Path:
        """Persist a campaign; returns its directory.

        The campaign is addressed by ``key`` when given, else by a key
        derived from the result's own (kernel, arch) plus ``tag``. A
        provenance manifest (seed, config, git revision, any active
        trace/metrics — :mod:`repro.obs.manifest`) is written alongside
        the data.
        """
        if not result.records:
            raise ValueError("refusing to save an empty campaign")
        if key is None:
            key = CampaignKey(kernel=result.kernel, arch=result.arch, tag=tag)
        elif tag is not None:
            raise TypeError("pass the tag inside the CampaignKey")
        cdir = self.root / key.dirname
        cdir.mkdir(parents=True, exist_ok=True)

        counter_names = result.counter_names
        char_names = result.characteristic_names
        machine_names = sorted(result.records[0].machine)

        meta = {
            "kernel": result.kernel,
            "arch": result.arch,
            "family": result.family,
            "tag": key.tag,
            "n_runs": len(result.records),
            "counters": counter_names,
            "characteristics": char_names,
            "machine_metrics": machine_names,
        }
        (cdir / _META).write_text(json.dumps(meta, indent=2))

        header = (
            ["problem", "replicate", "time_s", "power_w"]
            + [f"char:{c}" for c in char_names]
            + [f"counter:{c}" for c in counter_names]
            + [f"machine:{m}" for m in machine_names]
        )
        with open(cdir / _DATA, "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(header)
            for r in result.records:
                writer.writerow(
                    [json.dumps(r.problem), r.replicate, repr(r.time_s),
                     "" if r.power_w is None else repr(r.power_w)]
                    + [repr(r.characteristics[c]) for c in char_names]
                    + [repr(r.counters[c]) for c in counter_names]
                    + [repr(r.machine[m]) for m in machine_names]
                )

        manifest = build_manifest(
            kernel=result.kernel,
            arch=result.arch,
            tag=key.tag,
            seed=seed,
            n_runs=len(result.records),
            config=config or {},
        )
        manifest.write(cdir / _MANIFEST)
        return cdir

    # -- read ----------------------------------------------------------------

    def list_campaigns(self) -> list[dict]:
        """Metadata of every stored campaign."""
        out = []
        for meta_path in sorted(self.root.glob(f"*/{_META}")):
            out.append(json.loads(meta_path.read_text()))
        return out

    def keys(self) -> list[CampaignKey]:
        """The :class:`CampaignKey` of every stored campaign."""
        return [
            CampaignKey(
                kernel=m["kernel"], arch=m["arch"], tag=m.get("tag") or None
            )
            for m in self.list_campaigns()
        ]

    def load(
        self,
        key: CampaignKey | str,
        arch: str | None = None,
        tag: str | None = None,
    ) -> CampaignResult:
        key = _as_key(key, arch, tag)
        cdir = self.root / key.dirname
        meta_path = cdir / _META
        if not meta_path.exists():
            raise FileNotFoundError(
                f"no campaign stored for {key.kernel!r} on {key.arch!r}"
            )
        meta = json.loads(meta_path.read_text())

        result = CampaignResult(
            kernel=meta["kernel"], arch=meta["arch"], family=meta["family"]
        )
        with open(cdir / _DATA, newline="") as fh:
            reader = csv.reader(fh)
            header = next(reader)
            for row in reader:
                rec = dict(zip(header, row))
                result.records.append(
                    RunRecord(
                        kernel=meta["kernel"],
                        arch=meta["arch"],
                        family=meta["family"],
                        problem=json.loads(rec["problem"]),
                        replicate=int(rec["replicate"]),
                        time_s=float(rec["time_s"]),
                        power_w=(
                            float(rec["power_w"])
                            if rec.get("power_w") not in (None, "")
                            else None
                        ),
                        characteristics={
                            c: float(rec[f"char:{c}"]) for c in meta["characteristics"]
                        },
                        counters={
                            c: float(rec[f"counter:{c}"]) for c in meta["counters"]
                        },
                        machine={
                            m: float(rec[f"machine:{m}"])
                            for m in meta["machine_metrics"]
                        },
                    )
                )
        if len(result.records) != meta["n_runs"]:
            raise ValueError(
                f"repository corrupt: expected {meta['n_runs']} runs, "
                f"found {len(result.records)}"
            )
        return result

    def has(
        self,
        key: CampaignKey | str,
        arch: str | None = None,
        tag: str | None = None,
    ) -> bool:
        key = _as_key(key, arch, tag)
        return (self.root / key.dirname / _META).exists()

    def load_manifest(
        self,
        key: CampaignKey | str,
        arch: str | None = None,
        tag: str | None = None,
    ) -> Manifest | None:
        """The provenance manifest of a stored campaign, if present.

        Returns ``None`` for campaigns saved before manifests existed.
        """
        key = _as_key(key, arch, tag)
        path = self.root / key.dirname / _MANIFEST
        if not path.exists():
            return None
        return Manifest.read(path)


def __getattr__(name: str):
    if name == "Repository":
        warn_once(
            "Repository",
            "repro.profiling.repository.Repository was renamed to "
            "ProfileRepository; the old name will be removed",
        )
        return ProfileRepository
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
