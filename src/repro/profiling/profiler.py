"""nvprof-style profiler façade over the GPU simulator.

"Performance counter data are collected using nvprof" (paper Section
4.2); here the same role is played by :class:`Profiler`, which launches
a kernel model's workloads on a :class:`~repro.gpusim.GPUSimulator`,
aggregates the per-launch events into one counter vector per
application run, and reports the measured execution time.

Each replicate is a fresh simulated execution under its own
mechanism-perturbation draw plus per-counter measurement error, like
back-to-back nvprof runs of the same binary; only the (deterministic)
workload construction is cached per (kernel, problem).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

import numpy as np

from repro.analysis import (
    InvariantViolation,
    Severity,
    lint_counters,
    lint_workload,
)
from repro.faults.errors import InjectedFault, LaunchTimeout
from repro.faults.plan import should_inject
from repro.gpusim.arch import GPUArchitecture
from repro.gpusim.noise import Perturbation
from repro.gpusim.simulator import (
    GPUSimulator,
    average_power_w,
    finalize_counters,
    sum_raw,
)
from repro.gpusim.workload import KernelWorkload
from repro.kernels.base import Kernel
from repro.obs import span
from repro.obs.log import emit as emit_event

__all__ = ["RunRecord", "Profiler"]


@dataclass
class RunRecord:
    """One profiled application run — a row of the experimental dataset."""

    kernel: str
    arch: str
    family: str
    problem: object
    characteristics: dict[str, float]
    counters: dict[str, float]
    time_s: float
    replicate: int = 0
    machine: dict[str, float] = field(default_factory=dict)
    #: Average board power during the run (W); None when the platform
    #: has no power interface (the paper reads power via nvidia-smi "on
    #: the Kepler architecture", so Fermi runs record None).
    power_w: float | None = None

    def predictors(
        self,
        counter_names: list[str],
        include_characteristics: bool = True,
        include_machine: bool = False,
        missing: str = "raise",
    ) -> tuple[list[str], np.ndarray]:
        """Assemble this run's predictor vector in a stable column order.

        ``missing`` controls counters absent from this record: ``"raise"``
        (default) propagates the ``KeyError``; ``"nan"`` fills the cell
        with NaN so degraded runs (dropped nvprof passes) still produce a
        row — the fit layer imputes or drops it explicitly.
        """
        if missing not in ("raise", "nan"):
            raise ValueError("missing must be 'raise' or 'nan'")
        names: list[str] = list(counter_names)
        if missing == "nan":
            values = [self.counters.get(c, math.nan) for c in counter_names]
        else:
            values = [self.counters[c] for c in counter_names]
        if include_characteristics:
            for key in sorted(self.characteristics):
                names.append(key)
                values.append(self.characteristics[key])
        if include_machine:
            for key in sorted(self.machine):
                names.append(key)
                values.append(self.machine[key])
        return names, np.asarray(values, dtype=float)

    def to_dict(self) -> dict:
        """JSON-serializable form (checkpoint lines; see
        :mod:`repro.profiling.checkpoint`). kernel/arch/family are
        carried by the checkpoint header, not repeated per record."""
        return {
            "problem": self.problem,
            "replicate": self.replicate,
            "time_s": self.time_s,
            "power_w": self.power_w,
            "characteristics": self.characteristics,
            "counters": self.counters,
            "machine": self.machine,
        }

    @classmethod
    def from_dict(
        cls, data: dict, kernel: str, arch: str, family: str
    ) -> "RunRecord":
        """Rebuild a record from :meth:`to_dict` output.

        Floats round-trip bit-exactly through JSON (``repr`` encoding),
        which is what makes checkpoint resume bit-identical.
        """
        return cls(
            kernel=kernel,
            arch=arch,
            family=family,
            problem=data["problem"],
            replicate=int(data["replicate"]),
            time_s=float(data["time_s"]),
            power_w=None if data.get("power_w") is None else float(data["power_w"]),
            characteristics={
                k: float(v) for k, v in data["characteristics"].items()
            },
            counters={k: float(v) for k, v in data["counters"].items()},
            machine={k: float(v) for k, v in data.get("machine", {}).items()},
        )


class Profiler:
    """Collects counter data for kernel models on one architecture.

    Parameters
    ----------
    arch:
        The (simulated) GPU to profile on.
    noise_scale:
        Dispersion scale of the per-run perturbation draws
        (:class:`~repro.gpusim.noise.Perturbation`); 1.0 is calibrated
        to typical few-percent GPU run-to-run variance, 0 disables all
        nondeterminism.
    measurement_sigma:
        Per-counter multiplicative measurement error (multi-pass
        counter multiplexing); disabled when ``noise_scale`` is 0.
    rng:
        Seed/generator for the perturbation draws.
    sanitize:
        Run the static-analysis invariants (``repro.analysis`` workload
        rules on every launch, cross-counter rules on every finalized
        vector *before* measurement error) and raise
        :class:`~repro.analysis.InvariantViolation` on ERROR findings.
        Opt-in: corrupted workload models fail fast and loudly instead
        of silently skewing the downstream statistics.
    """

    def __init__(
        self,
        arch,
        noise_scale: float = 1.0,
        measurement_sigma: float = 0.02,
        rng: np.random.Generator | int | None = None,
        sanitize: bool = False,
    ) -> None:
        if measurement_sigma < 0:
            raise ValueError("measurement_sigma must be >= 0")
        self.arch = arch
        self.sanitize = sanitize
        self.noise_scale = noise_scale
        self.measurement_sigma = measurement_sigma * (1.0 if noise_scale > 0 else 0.0)
        self._rng = np.random.default_rng(rng)
        if arch.family == "cpu":
            from repro.cpusim.simulator import CPUSimulator

            self._sim = CPUSimulator(arch)
        else:
            self._sim = GPUSimulator(arch)
        self._workload_cache: dict[tuple[str, object], list] = {}

    def _workloads(self, kernel: Kernel, problem: object) -> list[KernelWorkload]:
        key = (kernel.name, problem)
        workloads = self._workload_cache.get(key)
        if workloads is None:
            try:
                workloads = kernel.workloads(problem, self.arch)
            except AttributeError as exc:
                raise ValueError(
                    f"kernel {kernel.name!r} cannot run on architecture "
                    f"{self.arch.name!r} ({self.arch.family}): {exc}"
                ) from None
            self._workload_cache[key] = workloads
        return workloads

    def _check(self, findings, subject: str) -> None:
        errors = [f for f in findings if f.severity >= Severity.ERROR]
        if errors:
            raise InvariantViolation(errors, subject=subject)

    def profile(
        self,
        kernel: Kernel,
        problem: object,
        replicates: int = 1,
        rng: np.random.Generator | None = None,
        deadline_s: float | None = None,
    ) -> list[RunRecord]:
        """Profile ``replicates`` runs of one kernel/problem pair.

        Each replicate is a fresh simulated execution under its own
        perturbation draw, like back-to-back nvprof runs.

        ``rng`` overrides the profiler's own stream for this call; a
        campaign passes one spawned child stream per problem so the
        collected dataset does not depend on which process profiles
        which problem (see :meth:`repro.profiling.Campaign.run`).

        ``deadline_s`` is a cooperative per-call deadline on the
        ``time.monotonic()`` clock: checked between kernel launches and
        between replicates, an overrun raises
        :class:`~repro.faults.LaunchTimeout` (the campaign layer retries
        and ultimately quarantines it). ``None`` — the default — costs
        no clock reads.
        """
        if replicates < 1:
            raise ValueError("replicates must be >= 1")
        if rng is None:
            rng = self._rng
        emit_event(
            "profiler.launch",
            kernel=kernel.name,
            arch=self.arch.name,
            problem=str(problem),
            replicates=replicates,
        )
        with span(
            "profile",
            kernel=kernel.name,
            arch=self.arch.name,
            problem=str(problem),
            replicates=replicates,
        ):
            return self._profile(kernel, problem, replicates, rng, deadline_s)

    def _check_deadline(self, deadline_s: float | None, problem: object) -> None:
        if deadline_s is not None and time.monotonic() > deadline_s:
            raise LaunchTimeout(
                f"launch exceeded its deadline while profiling "
                f"problem {problem!r} on {self.arch.name}"
            )

    def _profile(
        self,
        kernel: Kernel,
        problem: object,
        replicates: int,
        rng: np.random.Generator,
        deadline_s: float | None = None,
    ) -> list[RunRecord]:
        fault = should_inject(
            "profiler.launch",
            kernel=kernel.name,
            arch=self.arch.name,
            problem=problem,
        )
        if fault is not None:
            if fault.mode == "raise":
                raise InjectedFault(
                    f"injected launch failure: {kernel.name!r} "
                    f"problem {problem!r} on {self.arch.name}"
                )
            if fault.mode == "hang":
                # A hung launch is indistinguishable from slowness until
                # the deadline fires — model it as its timeout.
                raise LaunchTimeout(
                    f"injected launch hang: {kernel.name!r} "
                    f"problem {problem!r} on {self.arch.name}"
                )
        workloads = self._workloads(kernel, problem)
        if self.sanitize and self.arch.family != "cpu":
            # Re-checked per profile() call, not per cache fill: a
            # workload model corrupted after construction must still
            # fail fast.
            for wl in workloads:
                self._check(
                    lint_workload(wl, self.arch),
                    f"workload {wl.name!r} of kernel {kernel.name!r}",
                )
        records = []
        machine = self.arch.machine_metrics()
        for rep in range(replicates):
            pert = Perturbation.draw(rng, scale=self.noise_scale)
            if self.arch.family == "cpu":
                from repro.cpusim.simulator import cpu_average_power_w

                counters, time_s = self._sim.run(workloads, pert)
                # package power is readable on CPUs (RAPL)
                power_w = cpu_average_power_w(
                    self.arch,
                    counters["instructions"],
                    counters["cpu_mem_bandwidth"] * time_s * 1e9,
                    time_s,
                )
            else:
                if deadline_s is None:
                    profiles = [self._sim.launch(wl, pert) for wl in workloads]
                else:
                    profiles = []
                    for wl in workloads:
                        self._check_deadline(deadline_s, problem)
                        profiles.append(self._sim.launch(wl, pert))
                totals = sum_raw(profiles)
                counters, time_s = finalize_counters(
                    self.arch, totals, time_scale=pert.time_jitter
                )
                power_w = (
                    average_power_w(self.arch, totals, time_s)
                    if self.arch.family == "kepler"
                    else None
                )
            values = counters.as_dict()
            if fault is not None and fault.mode in ("nan_counters", "drop_counters"):
                values = _corrupt_counters(values, fault)
            if self.sanitize:
                # Checked before measurement error on purpose: these
                # rules validate the simulator's physics, not the
                # (deliberately noisy) nvprof measurement model.
                self._check(
                    lint_counters(values, self.arch.family),
                    f"counters of kernel {kernel.name!r} "
                    f"(problem={problem!r}, replicate={rep})",
                )
            if self.measurement_sigma > 0:
                # nvprof collects counter groups in separate replayed
                # passes (counter multiplexing); values observed for one
                # "run" therefore carry independent per-counter
                # measurement error on top of the mechanism perturbation.
                for name in values:
                    values[name] *= float(
                        np.exp(rng.normal(0.0, self.measurement_sigma))
                    )
            records.append(
                RunRecord(
                    kernel=kernel.name,
                    arch=self.arch.name,
                    family=self.arch.family,
                    problem=problem,
                    characteristics=kernel.characteristics(problem),
                    counters=values,
                    time_s=time_s,
                    replicate=rep,
                    machine=machine,
                    power_w=power_w,
                )
            )
            self._check_deadline(deadline_s, problem)
        return records

    def clear_cache(self) -> None:
        self._workload_cache.clear()


def _corrupt_counters(values: dict[str, float], fault) -> dict[str, float]:
    """Enact a ``nan_counters``/``drop_counters`` fault on a counter
    vector — the partial counter sets real multi-pass nvprof collection
    loses when a replay pass fails."""
    payload = fault.payload_dict
    targets = payload.get("counters") or ["ipc"]
    if fault.mode == "drop_counters":
        return {k: v for k, v in values.items() if k not in targets}
    poison = float("inf") if payload.get("value") == "inf" else math.nan
    for name in targets:
        if name in values:
            values[name] = poison
    return values
