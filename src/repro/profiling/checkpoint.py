"""Checkpoint/resume for profiling campaigns.

A checkpoint is an append-only JSONL file: a header line identifying
the campaign (schema tag, kernel/arch, sweep fingerprint, RNG-state
digest) followed by one line per *completed* problem — either its
serialized run records or its quarantine record. Appends are flushed
and fsynced, so an interrupted campaign loses at most the line being
written; a torn trailing line is detected and discarded on resume.

Resume is bit-identical to an uninterrupted run because (a) every
problem draws from its own pre-spawned RNG stream (so skipping finished
problems changes nothing for the rest) and (b) floats survive the JSON
round-trip exactly (``repr`` encoding). The header fingerprint refuses
to resume a checkpoint against a different sweep, kernel, architecture,
replicate count or campaign seed — a silent mixture of two experiments
is worse than an error.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from .profiler import RunRecord

__all__ = ["CampaignCheckpoint", "CheckpointMismatch", "campaign_fingerprint"]

#: Schema tag written into every checkpoint header.
SCHEMA = "repro-checkpoint/1"


class CheckpointMismatch(ValueError):
    """The checkpoint on disk belongs to a different campaign."""


def campaign_fingerprint(
    kernel: str,
    arch: str,
    problems: list,
    replicates: int,
    rng_state: object,
) -> dict:
    """Identity of one campaign run, as stored in the header.

    ``rng_state`` is the campaign generator's bit-generator state at
    ``run()`` entry; its digest pins the seed (and spawn history), so a
    resume with a different seed is refused rather than silently mixing
    two noise draws.
    """
    problems_sha = hashlib.sha256(
        repr([repr(p) for p in problems]).encode()
    ).hexdigest()
    rng_sha = hashlib.sha256(repr(rng_state).encode()).hexdigest()
    return {
        "kernel": kernel,
        "arch": arch,
        "n_problems": len(problems),
        "replicates": replicates,
        "problems_sha256": problems_sha,
        "rng_sha256": rng_sha,
    }


class CampaignCheckpoint:
    """Append-only completion log for one campaign run."""

    def __init__(self, path: str | Path, fingerprint: dict) -> None:
        self.path = Path(path)
        self.fingerprint = fingerprint
        #: index -> list of record dicts (see RunRecord.to_dict)
        self.completed: dict[int, list[dict]] = {}
        #: index -> quarantine dict (see QuarantinedRun.to_dict)
        self.quarantined: dict[int, dict] = {}

    @classmethod
    def open(cls, path: str | Path, fingerprint: dict) -> "CampaignCheckpoint":
        """Load (or create) the checkpoint for a campaign run.

        An existing file must carry a matching header; entry lines are
        replayed into :attr:`completed`/:attr:`quarantined`. Any
        undecodable line ends the valid prefix (a torn final append),
        and everything after it is ignored.
        """
        ckpt = cls(path, fingerprint)
        if ckpt.path.exists() and ckpt.path.stat().st_size > 0:
            ckpt._load()
        else:
            ckpt.path.parent.mkdir(parents=True, exist_ok=True)
            ckpt._append({"schema": SCHEMA, "fingerprint": fingerprint})
        return ckpt

    def _load(self) -> None:
        lines = self.path.read_text().splitlines()
        try:
            header = json.loads(lines[0])
        except (json.JSONDecodeError, IndexError):
            raise CheckpointMismatch(
                f"{self.path} is not a campaign checkpoint (bad header)"
            ) from None
        if header.get("schema") != SCHEMA:
            raise CheckpointMismatch(
                f"{self.path}: unknown checkpoint schema "
                f"{header.get('schema')!r} (expected {SCHEMA!r})"
            )
        theirs = header.get("fingerprint", {})
        if theirs != self.fingerprint:
            differing = sorted(
                k
                for k in set(theirs) | set(self.fingerprint)
                if theirs.get(k) != self.fingerprint.get(k)
            )
            raise CheckpointMismatch(
                f"{self.path} was written by a different campaign "
                f"(fields differing: {differing}); refusing to resume"
            )
        for line in lines[1:]:
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                break  # torn trailing append — discard it and the rest
            index = int(entry["index"])
            if "records" in entry:
                self.completed[index] = entry["records"]
            elif "quarantined" in entry:
                self.quarantined[index] = entry["quarantined"]

    def _append(self, obj: dict) -> None:
        with open(self.path, "a") as fh:
            fh.write(json.dumps(obj) + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    # -- recording -----------------------------------------------------------

    def record_result(self, index: int, records: list[RunRecord]) -> None:
        entry = [r.to_dict() for r in records]
        self.completed[index] = entry
        self._append({"index": index, "records": entry})

    def record_quarantine(self, index: int, quarantined: dict) -> None:
        self.quarantined[index] = quarantined
        self._append({"index": index, "quarantined": quarantined})

    # -- queries -------------------------------------------------------------

    @property
    def done_indices(self) -> set[int]:
        return set(self.completed) | set(self.quarantined)
