"""Hardware scaling: predict performance on a different (similar) GPU.

Section 6.2 of the paper: characterize the application *and* the
training hardware, inject machine characteristics (Table 2) as extra
predictors, and use the model trained on one GPU to predict execution
times measured on another.

The paper's findings, all reproducible here:

* "sufficiently similar hardware" is hardware where the variable
  importance ranking is similar — :func:`importance_similarity` is the
  similarity test Section 7 calls for;
* for MM the approach "works straightforwardly" (GTX580 -> K20m, same
  importance ranking, good accuracy, Fig. 7);
* for NW the important predictors differ across families (caching
  counters matter on Fermi, not on Kepler, Fig. 8a/8b), straightforward
  transfer fails, and the workaround is training on a **mixture of
  important variables from both architectures** (Fig. 8c);
* counters that exist on only one family (``l1_global_load_miss``,
  ``l1_shared_bank_conflict`` vs ``shared_*_replay``) are excluded
  automatically by intersecting the campaigns' counter sets (the
  Section 7 counter-evolution problem).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from repro._compat import warn_once
from repro.ml.forest import RandomForestRegressor
from repro.ml.preprocessing import sanitize_matrix, train_test_split
from repro.obs import span
from repro.obs.log import emit as emit_event
from repro.profiling.campaign import CampaignResult

from .importance import ImportanceRanking, rank_similarity
from .model import BlackForest
from .prediction import PredictionReport

__all__ = [
    "common_predictors",
    "per_arch_importance",
    "importance_similarity",
    "mixed_variable_set",
    "HardwareScalingFit",
    "HardwareScalingPredictor",
]


def common_predictors(a: CampaignResult, b: CampaignResult) -> list[str]:
    """Predictor counters available on both campaigns' architectures."""
    return a.merged_with(b).predictor_names


def per_arch_importance(
    campaign: CampaignResult,
    n_trees: int = 300,
    repeats: int = 1,
    rng: np.random.Generator | int | None = None,
) -> ImportanceRanking:
    """Importance ranking of one architecture's own campaign (Fig. 8a/8b).

    ``repeats`` averages the permutation importances over several
    forest fits (rankings among correlated counters are unstable for a
    single forest).
    """
    fit = BlackForest(
        n_trees=n_trees, use_pca=False, importance_repeats=repeats, rng=rng
    ).fit(campaign, include_characteristics=True)
    return fit.importance


def importance_similarity(
    a: ImportanceRanking,
    b: ImportanceRanking,
    k: int = 10,
    restrict_to_shared: bool = False,
) -> float:
    """The paper's "similarity test": average overlap of the top-k
    importance prefixes.

    By default the *raw* rankings are compared, so a counter that tops
    one architecture but does not exist (or is unimportant) on the
    other counts as disagreement — exactly the Fig. 8 situation where
    Fermi's caching counters have no Kepler counterpart.
    ``restrict_to_shared`` first drops counters unknown to either side
    (useful to ask "do the architectures agree about the counters they
    both have?").
    """
    if restrict_to_shared:
        shared = set(a.names) & set(b.names)
        a = ImportanceRanking(
            names=[n for n in a.names if n in shared],
            scores=np.array([a.score_of(n) for n in a.names if n in shared]),
        )
        b = ImportanceRanking(
            names=[n for n in b.names if n in shared],
            scores=np.array([b.score_of(n) for n in b.names if n in shared]),
        )
    return rank_similarity(a, b, k=k)


def mixed_variable_set(
    a: ImportanceRanking,
    b: ImportanceRanking,
    k: int = 4,
    always: tuple[str, ...] = ("size",),
    common: list[str] | None = None,
) -> list[str]:
    """The Fig. 8c workaround: union of both architectures' top-k
    important variables (restricted to mutually available predictors),
    plus the problem characteristics."""
    allowed = set(common) if common is not None else (set(a.names) & set(b.names))
    merged: list[str] = []
    for name in list(always) + a.top(2 * k) + b.top(2 * k):
        if name in merged:
            continue
        if name in allowed or name in always:
            merged.append(name)
    # Keep `always` + top-k of each: cap at always + 2k variables.
    cap = len(always) + 2 * k
    return merged[:cap]


@dataclass
class HardwareScalingResult:
    """Assessment of a cross-architecture prediction (Fig. 7 / Fig. 8c)."""

    report: PredictionReport
    variables: list[str]
    train_arch: str
    test_arch: str
    similarity: float | None = None


@dataclass
class HardwareScalingFit:
    """Fit artifact of :class:`HardwareScalingPredictor` (protocol type).

    ``assess`` delegates back to the predictor so the evaluation split
    keeps drawing from the predictor's RNG stream — a fit followed by
    assessments consumes exactly the randomness the pre-protocol API
    did, preserving pinned results.
    """

    predictor: "HardwareScalingPredictor"
    forest: RandomForestRegressor
    variables: list[str]
    train_arch: str
    #: ``MatrixSanitation.to_dict()`` of the training-matrix repair, or
    #: ``None`` for a clean campaign (see ``BlackForestFit.degradation``).
    degradation: dict | None = None

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict times from aligned predictor vectors."""
        return self.forest.predict(X)

    def predict_many(self, queries) -> list[np.ndarray]:
        """Batched :meth:`predict`: one stacked forest pass for many
        queued query matrices, bit-identical to the per-query loop
        (see :func:`repro.core.api.predict_many`)."""
        return self.forest.predict_many(queries)

    def assess(
        self, test: CampaignResult, *, eval_fraction: float | None = None
    ) -> HardwareScalingResult:
        """Predict the test campaign's held-out runs and compare."""
        return self.predictor.assess(test, eval_fraction=eval_fraction)

    def report(self, campaign: CampaignResult | None = None, *,
               trace=None, events=None, top_k: int = 10):
        """Build a structured :class:`~repro.obs.report.Report`."""
        from repro.obs.report import build_report

        return build_report(
            self, campaign, trace=trace, events=events, top_k=top_k
        )


class HardwareScalingPredictor:
    """Train on one GPU's campaign, predict times measured on another.

    The predictor learns the counters->time mapping on the training
    architecture (optionally over a restricted variable set) and is
    assessed on the *test* architecture's held-out runs: counter values
    measured there (plus its machine metrics / problem sizes) go in,
    predicted times come out, compared against the measured times —
    exactly the paper's protocol ("the test set is used to assess the
    random forest trained on the GTX580").
    """

    def __init__(
        self,
        n_trees: int = 300,
        min_samples_leaf: int = 5,
        test_fraction: float = 0.2,
        include_machine: bool = True,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        self.n_trees = n_trees
        self.min_samples_leaf = min_samples_leaf
        self.test_fraction = test_fraction
        self.include_machine = include_machine
        self._rng = np.random.default_rng(rng)

    def fit(
        self,
        train: CampaignResult,
        *args,
        variables: list[str] | None = None,
        common: list[str] | None = None,
    ) -> HardwareScalingFit:
        """Fit on the training campaign.

        ``common`` restricts the counter set (pass
        :func:`common_predictors` of train/test so the model never uses
        an architecture-specific counter); ``variables`` further
        restricts to an explicit predictor list (the mixed-variable
        workaround). Both are keyword-only (unified predictor protocol).
        """
        if args:
            # Legacy positional order: (variables, common).
            warn_once(
                "HardwareScalingPredictor.fit:positional",
                "passing HardwareScalingPredictor.fit configuration "
                "positionally is deprecated; use keyword arguments "
                "(variables=..., common=...)",
            )
            legacy = ("variables", "common")
            if len(args) > len(legacy):
                raise TypeError(
                    f"fit() takes at most {len(legacy)} configuration "
                    f"arguments ({len(args)} given)"
                )
            defaults = {"variables": variables, "common": common}
            defaults.update(dict(zip(legacy, args)))
            variables = defaults["variables"]
            common = defaults["common"]
        emit_event(
            "fit.start",
            stage="hardware_scaling",
            kernel=train.kernel,
            arch=train.arch,
            n_records=len(train.records),
        )
        with span(
            "hardware_scaling.fit", kernel=train.kernel, arch=train.arch
        ):
            counters = (
                common if common is not None
                else train.robust_predictor_names
            )
            X, y, names = train.matrix(
                counters=counters,
                include_characteristics=True,
                include_machine=self.include_machine,
                missing="nan",
            )
            X, y, names, sanitation = sanitize_matrix(X, y, names)
            if sanitation.degraded:
                warnings.warn(
                    f"fitting on a degraded campaign: {sanitation.summary()}",
                    RuntimeWarning,
                    stacklevel=3,
                )
            if variables is not None:
                missing = [v for v in variables if v not in names]
                if missing:
                    raise ValueError(f"unknown variables {missing}")
                keep = [names.index(v) for v in variables]
                X, names = X[:, keep], list(variables)
            else:
                # Machine metrics are constant within a single-arch training
                # campaign; keep their *columns* anyway so cross-arch feature
                # vectors align, but constants cannot influence the forest.
                pass

            self.names_ = names
            self.train_arch_ = train.arch
            X_train, _, y_train, _ = train_test_split(
                X, y, test_fraction=self.test_fraction, rng=self._rng
            )
            self.forest_ = RandomForestRegressor(
                n_trees=self.n_trees,
                min_samples_leaf=self.min_samples_leaf,
                importance=False,
                rng=self._rng,
            ).fit(X_train, y_train, feature_names=names)
        self.last_fit_ = HardwareScalingFit(
            predictor=self,
            forest=self.forest_,
            variables=list(names),
            train_arch=self.train_arch_,
            degradation=sanitation.to_dict() if sanitation.degraded else None,
        )
        emit_event(
            "fit.end",
            stage="hardware_scaling",
            kernel=train.kernel,
            arch=train.arch,
            n_variables=len(names),
            degraded=sanitation.degraded,
        )
        return self.last_fit_

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict times with the most recent fit's forest."""
        if getattr(self, "forest_", None) is None:
            raise RuntimeError("call fit() before predict()/assess()")
        return self.forest_.predict(X)

    def assess(
        self, test: CampaignResult, *, eval_fraction: float | None = None
    ) -> HardwareScalingResult:
        """Predict the test campaign's held-out runs and compare.

        ``eval_fraction`` sets the fraction of the test campaign used
        for the comparison (default: the predictor's ``test_fraction``,
        the paper's held-out protocol). The whole campaign comes from an
        architecture the forest never saw, so ``eval_fraction=1.0`` is a
        valid — and lower-variance — assessment: with small sweeps, a
        20% subsample can hold only a handful of problems and the
        explained variance swings wildly with which sizes are drawn.
        """
        if getattr(self, "forest_", None) is None:
            raise RuntimeError("call fit() before predict()/assess()")
        with span(
            "hardware_scaling.assess", kernel=test.kernel, arch=test.arch
        ):
            if eval_fraction is None:
                eval_fraction = self.test_fraction
            counters = [n for n in self.names_ if n in test.counter_names]
            X, y, names = test.matrix(
                counters=counters,
                include_characteristics=True,
                include_machine=self.include_machine,
            )
            keep = []
            for v in self.names_:
                if v not in names:
                    raise ValueError(
                        f"test campaign lacks predictor {v!r} "
                        f"(restrict fit() to common_predictors first)"
                    )
                keep.append(names.index(v))
            X = X[:, keep]
            problems = np.array(
                [r.characteristics.get("size", np.nan) for r in test.records]
            )
            if eval_fraction >= 1.0:
                X_eval, y_eval, problems_eval = X, y, problems
            else:
                _, X_eval, _, y_eval, _, problems_eval = train_test_split(
                    X,
                    y,
                    problems,
                    test_fraction=eval_fraction,
                    rng=self._rng,
                )
            report = PredictionReport(
                problems=problems_eval,
                predicted_s=self.forest_.predict(X_eval),
                measured_s=y_eval,
            )
            return HardwareScalingResult(
                report=report,
                variables=list(self.names_),
                train_arch=self.train_arch_,
                test_arch=test.arch,
            )
