"""BlackForest core: the paper's contribution.

Five-stage pipeline (:class:`BlackForest`), variable-importance
analysis, bottleneck detection, counter models, problem-scaling
prediction, hardware-scaling prediction and reporting.
"""

from .api import FitArtifact, Predictor, predict_many, stacked_predict
from .store import CampaignKey, RunStore, safe_component, shard_of
from .bottleneck import (
    PATTERNS,
    BottleneckFinding,
    BottleneckPattern,
    detect_bottlenecks,
)
from .counter_models import CounterModel, CounterModelSet
from .hardware import (
    HardwareScalingFit,
    HardwareScalingPredictor,
    HardwareScalingResult,
    common_predictors,
    importance_similarity,
    mixed_variable_set,
    per_arch_importance,
)
from .importance import (
    ImportanceRanking,
    rank_importance,
    rank_similarity,
    reduced_model_check,
)
from .model import BlackForest, BlackForestFit, induced_counter_ranking
from .partition import HeterogeneousPartitioner, PartitionPlan
from .prediction import (
    PredictionReport,
    ProblemScalingFit,
    ProblemScalingPredictor,
)
from .report import bottleneck_report, fit_summary, prediction_report_text

__all__ = [
    "Predictor",
    "FitArtifact",
    "predict_many",
    "stacked_predict",
    "CampaignKey",
    "RunStore",
    "safe_component",
    "shard_of",
    "PATTERNS",
    "BottleneckFinding",
    "BottleneckPattern",
    "detect_bottlenecks",
    "CounterModel",
    "CounterModelSet",
    "HardwareScalingFit",
    "HardwareScalingPredictor",
    "HardwareScalingResult",
    "common_predictors",
    "importance_similarity",
    "mixed_variable_set",
    "per_arch_importance",
    "ImportanceRanking",
    "rank_importance",
    "rank_similarity",
    "reduced_model_check",
    "BlackForest",
    "BlackForestFit",
    "induced_counter_ranking",
    "HeterogeneousPartitioner",
    "PartitionPlan",
    "PredictionReport",
    "ProblemScalingFit",
    "ProblemScalingPredictor",
    "bottleneck_report",
    "fit_summary",
    "prediction_report_text",
]
