"""Counter models: regress each retained counter on problem characteristics.

Stage 5 of the pipeline ("Results interpretation", Section 4.2): "we
model those parameters in terms of typical characteristics of either
the problem in hand or both the problem and hardware type, so that
predictions can be made solely based on the latter."

For a single problem characteristic, small (generalized) linear models
are tried first (Fig. 5c's MM models); when their fit is poor — or when
asked — MARS takes over ("we use MARS regressions to take into account
nonlinearities and parameter interactions", the Fig. 6c NW models built
with R's *earth*).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ml.glm import GaussianGLM, fit_best_polynomial
from repro.ml.mars import Mars
from repro.profiling.campaign import CampaignResult

__all__ = ["CounterModel", "CounterModelSet"]


@dataclass
class CounterModel:
    """One counter regressed on the problem characteristic(s)."""

    counter: str
    kind: str                     # "glm" | "mars"
    model: object
    r_squared: float
    residual_deviance: float

    def predict(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if self.kind == "glm":
            return self.model.predict(np.atleast_1d(x.ravel() if x.ndim > 1 else x))
        if x.ndim == 0:
            x = x[None]
        return self.model.predict(x[:, None] if x.ndim == 1 else x)


@dataclass
class CounterModelSet:
    """Models for every retained predictor of a fitted BlackForest.

    Parameters of :meth:`fit`:

    * ``campaign`` — the collected data;
    * ``counters`` — the retained important predictors to model;
    * ``characteristic`` — the problem characteristic(s) to regress on:
      a name (e.g. ``"size"``) or a list of names. With several
      characteristics the models are MARS with interactions (the paper
      uses MARS exactly "to take into account nonlinearities and
      parameter interactions");
    * ``prefer_mars`` — skip the GLM stage (the NW treatment);
    * ``glm_r2_threshold`` — GLM quality below which MARS is used.
    """

    characteristic: str | list[str] = "size"
    prefer_mars: bool = False
    glm_r2_threshold: float = 0.95
    mars_max_degree: int = 1
    models: dict[str, CounterModel] = field(default_factory=dict)

    @property
    def characteristics(self) -> list[str]:
        if isinstance(self.characteristic, str):
            return [self.characteristic]
        return list(self.characteristic)

    def fit(self, campaign: CampaignResult, counters: list[str]) -> "CounterModelSet":
        chars = self.characteristics
        x = np.array(
            [[r.characteristics[c] for c in chars] for r in campaign.records]
        )
        series = {
            c: np.array([r.counters[c] for r in campaign.records])
            for c in counters
            if c not in chars
        }
        return self.fit_arrays(x, series)

    def fit_arrays(
        self, x: np.ndarray, series: dict[str, np.ndarray]
    ) -> "CounterModelSet":
        """Fit from raw arrays (e.g. the training partition's columns,
        avoiding leakage of test observations into the counter models).

        ``x`` is 1-D for a single characteristic, or (n, k) for k
        characteristics.
        """
        x = np.asarray(x, dtype=float)
        if x.ndim == 1:
            x = x[:, None]
        if x.shape[1] != len(self.characteristics):
            raise ValueError(
                f"x has {x.shape[1]} columns for "
                f"{len(self.characteristics)} characteristics"
            )
        for counter, y in series.items():
            if counter in self.characteristics:
                continue  # characteristics predict themselves
            self.models[counter] = self._fit_one(counter, x, np.asarray(y, dtype=float))
        return self

    def _fit_one(self, counter: str, x: np.ndarray, y: np.ndarray) -> CounterModel:
        multi = x.shape[1] > 1
        if np.ptp(y) == 0.0 and not multi:
            # Constant counter: a degree-1 GLM fits it exactly.
            glm = GaussianGLM(degree=1).fit(x[:, 0], y)
            return CounterModel(counter, "glm", glm, 1.0, 0.0)
        glm = None
        if not multi and not self.prefer_mars:
            try:
                glm = fit_best_polynomial(x[:, 0], y, max_degree=3)
            except (ValueError, np.linalg.LinAlgError):
                glm = None
        if glm is not None and glm.r_squared_ >= self.glm_r2_threshold:
            return CounterModel(
                counter, "glm", glm, glm.r_squared_, glm.residual_deviance_
            )
        # Several characteristics require interaction terms.
        degree = max(self.mars_max_degree, 2) if multi else self.mars_max_degree
        mars = Mars(max_degree=degree).fit(x, y, names=self.characteristics)
        if glm is not None and glm.r_squared_ > mars.r_squared_:
            return CounterModel(
                counter, "glm", glm, glm.r_squared_, glm.residual_deviance_
            )
        fitted = mars.predict(x)
        return CounterModel(
            counter, "mars", mars, mars.r_squared_,
            float(np.sum((y - fitted) ** 2)),
        )

    # -- use ------------------------------------------------------------------

    def _as_points(self, x: float | np.ndarray) -> np.ndarray:
        """Normalize input to an (n_points, n_characteristics) array."""
        x = np.asarray(x, dtype=float)
        k = len(self.characteristics)
        if x.ndim == 0:
            x = x[None]
        if x.ndim == 1:
            if k == 1:
                x = x[:, None]
            else:
                x = x[None, :]
        if x.shape[1] != k:
            raise ValueError(
                f"expected {k} characteristic columns, got {x.shape[1]}"
            )
        return x

    def predict_counters(self, x: float | np.ndarray) -> dict[str, np.ndarray]:
        """Predicted counter values for unseen problem characteristic(s)."""
        pts = self._as_points(x)
        arg = pts[:, 0] if len(self.characteristics) == 1 else pts
        return {name: m.predict(arg) for name, m in self.models.items()}

    def predictor_rows(self, x: float | np.ndarray, feature_names: list[str]) -> np.ndarray:
        """Full predictor matrix for the forest, in ``feature_names`` order.

        Problem-characteristic columns (if present among the feature
        names) are filled with the requested values themselves; every
        other column comes from its counter model.
        """
        pts = self._as_points(x)
        cols = []
        predicted = self.predict_counters(pts)
        chars = self.characteristics
        for name in feature_names:
            if name in chars:
                cols.append(pts[:, chars.index(name)])
            elif name in predicted:
                cols.append(predicted[name])
            else:
                raise KeyError(f"no counter model for predictor {name!r}")
        return np.column_stack(cols)

    @property
    def average_r_squared(self) -> float:
        if not self.models:
            raise ValueError("no fitted models")
        return float(np.mean([m.r_squared for m in self.models.values()]))

    def quality_table(self) -> list[tuple[str, str, float, float]]:
        """(counter, kind, R^2, residual deviance) rows, Fig. 5c/6c style."""
        return [
            (name, m.kind, m.r_squared, m.residual_deviance)
            for name, m in sorted(self.models.items())
        ]
