"""Heterogeneous CPU+GPU workload partitioning from BlackForest models.

The paper's closing argument (Section 7): "we believe our approach is
very useful in the context of emerging CPU+GPUs heterogeneous systems,
where performance modeling is key to determine workload partitioning
... As BF is equally applicable for all processing units in the
platform, we can provide a unified modeling approach for heterogeneous
platforms" (citing Glinda and StarPU).

This module implements that use case: two problem-scaling predictors —
one trained on a CPU campaign, one on a GPU campaign of the same
data-parallel kernel — drive the static split of a workload so both
devices finish together (minimizing ``max(t_cpu, t_gpu)``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PartitionPlan", "HeterogeneousPartitioner"]


@dataclass
class PartitionPlan:
    """The chosen split for one total problem size."""

    total: float
    cpu_share: float              # fraction of the work given to the CPU
    cpu_time_s: float
    gpu_time_s: float
    best_single_device_s: float   # the better of all-CPU / all-GPU

    @property
    def makespan_s(self) -> float:
        return max(self.cpu_time_s, self.gpu_time_s)

    @property
    def speedup_vs_best_device(self) -> float:
        if self.makespan_s <= 0:
            return 1.0
        return self.best_single_device_s / self.makespan_s


class HeterogeneousPartitioner:
    """Static splitter over two fitted problem-scaling predictors.

    Parameters
    ----------
    cpu_predictor / gpu_predictor:
        Objects with ``predict(sizes) -> times`` (e.g.
        :class:`~repro.core.prediction.ProblemScalingPredictor` fitted on
        the device's campaign of the same kernel).
    min_chunk:
        Smallest work assignment considered per device (below this the
        device is left idle — launching a GPU for a sliver of work costs
        more than it saves).
    resolution:
        Number of candidate splits evaluated.
    """

    def __init__(self, cpu_predictor, gpu_predictor,
                 min_chunk: float = 1.0, resolution: int = 101) -> None:
        if resolution < 3:
            raise ValueError("resolution must be >= 3")
        if min_chunk < 0:
            raise ValueError("min_chunk must be >= 0")
        self.cpu_predictor = cpu_predictor
        self.gpu_predictor = gpu_predictor
        self.min_chunk = min_chunk
        self.resolution = resolution

    def _time(self, predictor, sizes: np.ndarray) -> np.ndarray:
        """Predicted time per size; zero-size assignments take no time."""
        sizes = np.asarray(sizes, dtype=float)
        out = np.zeros_like(sizes)
        live = sizes >= max(self.min_chunk, 1e-12)
        if np.any(live):
            out[live] = predictor.predict(sizes[live])
        return out

    def plan(self, total: float) -> PartitionPlan:
        """Choose the CPU share minimizing the makespan for ``total``."""
        if total <= 0:
            raise ValueError("total work must be positive")
        shares = np.linspace(0.0, 1.0, self.resolution)
        cpu_work = shares * total
        gpu_work = (1.0 - shares) * total
        # assignments below min_chunk collapse to zero (device idle)
        cpu_work = np.where(cpu_work < self.min_chunk, 0.0, cpu_work)
        gpu_work = np.where(gpu_work < self.min_chunk, 0.0, gpu_work)
        # the idle device's work goes to the other one
        cpu_work = np.where(gpu_work == 0.0, total, cpu_work)
        gpu_work = np.where(cpu_work == 0.0, total, gpu_work)

        t_cpu = self._time(self.cpu_predictor, cpu_work)
        t_gpu = self._time(self.gpu_predictor, gpu_work)
        makespan = np.maximum(t_cpu, t_gpu)
        best = int(np.argmin(makespan))

        all_cpu = float(self._time(self.cpu_predictor, np.array([total]))[0])
        all_gpu = float(self._time(self.gpu_predictor, np.array([total]))[0])
        return PartitionPlan(
            total=float(total),
            cpu_share=float(cpu_work[best] / total),
            cpu_time_s=float(t_cpu[best]),
            gpu_time_s=float(t_gpu[best]),
            best_single_device_s=min(all_cpu, all_gpu),
        )

    def sweep(self, totals: list[float]) -> list[PartitionPlan]:
        """Plans across a range of total sizes (the Glinda-style curve)."""
        return [self.plan(t) for t in totals]
