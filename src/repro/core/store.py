"""The unified store API: :class:`CampaignKey` and the :class:`RunStore`
protocol.

Both on-disk stores in the system — :class:`repro.profiling.ProfileRepository`
(campaign data) and :class:`repro.serve.FitRegistry` (published fit
artifacts) — address their contents by :class:`CampaignKey` and map keys
to directories through the same ``key.dirname`` scheme defined here.
:class:`RunStore` captures the read-side surface they share, so code
that enumerates, loads and verifies stored artifacts (CLI subcommands,
smoke jobs, report generators) can be written once against the protocol.

This module is a dependency leaf: it imports only the standard library,
so both ``repro.core`` and ``repro.profiling`` can use it without
creating an import cycle.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Protocol, runtime_checkable

__all__ = [
    "CampaignKey",
    "RunStore",
    "SHARD_DIR",
    "safe_component",
    "shard_of",
]

#: Sub-directory of a layout-v2 store root holding the hash buckets.
SHARD_DIR = "shards"


def safe_component(s: str) -> str:
    """Sanitize one key component for use in a directory name."""
    return "".join(c if c.isalnum() or c in "-_." else "_" for c in s)


def shard_of(dirname: str) -> str:
    """The hash bucket (two hex chars, 256 buckets) a campaign lives in.

    Buckets are keyed by the *sanitized* dirname so the mapping is a
    pure function of what is on disk — a store can be rebucketed or
    verified without parsing any metadata.
    """
    return hashlib.sha256(dirname.encode()).hexdigest()[:2]


@dataclass(frozen=True)
class CampaignKey:
    """Addresses one stored campaign: (kernel, arch, optional tag)."""

    kernel: str
    arch: str
    tag: str | None = None

    def __post_init__(self) -> None:
        if not self.kernel or not self.arch:
            raise ValueError("CampaignKey needs non-empty kernel and arch")

    @property
    def dirname(self) -> str:
        name = f"{safe_component(self.kernel)}__{safe_component(self.arch)}"
        if self.tag:
            name += f"__{safe_component(self.tag)}"
        return name

    def __str__(self) -> str:
        return self.dirname


@runtime_checkable
class RunStore(Protocol):
    """Read-side surface shared by every CampaignKey-addressed store.

    ``load`` returns whatever the store stores (a
    :class:`~repro.profiling.CampaignResult`, a
    :class:`~repro.serve.ServableFit`, ...); ``verify``/``verify_all``
    return human-readable integrity findings, empty when intact — a
    finding mentioning "corrupt" means damage, anything else is
    legacy/drift. Structural: any object with these members satisfies
    ``isinstance(obj, RunStore)``.
    """

    root: Path

    def iter_keys(self) -> Iterator[CampaignKey]:
        """Yield the key of every stored entry."""
        ...

    def has(self, key: CampaignKey) -> bool:
        """Whether an entry is stored under ``key``."""
        ...

    def load(self, key: CampaignKey):
        """Load the entry stored under ``key``, verifying integrity."""
        ...

    def verify(self, key: CampaignKey) -> list[str]:
        """Integrity findings for one entry (empty = intact)."""
        ...

    def verify_all(self) -> dict[str, list[str]]:
        """Findings per dirname for every entry (empty lists = intact)."""
        ...
