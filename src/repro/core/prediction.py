"""Problem scaling: predict execution time for unseen problem sizes.

Section 6.1 of the paper: after the important variables are identified
and modeled in terms of the problem characteristic, "these models,
combined with the random forest, allow us to predict the execution
times for unseen matrix sizes on the same hardware" (Fig. 5b, Fig. 6b).

The flow implemented by :class:`ProblemScalingPredictor`:

1. fit BlackForest on a training campaign (counters + characteristic);
2. reduce to the top-k predictors, validating retention;
3. fit counter models (GLM/MARS) for the retained predictors;
4. for an unseen problem size, generate predicted counter values and
   feed them to the reduced forest to obtain the predicted time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._compat import warn_once
from repro.ml.forest import RandomForestRegressor
from repro.ml.metrics import explained_variance, mse
from repro.obs import span
from repro.obs.log import emit as emit_event
from repro.profiling.campaign import CampaignResult

from .counter_models import CounterModelSet
from .model import BlackForest, BlackForestFit

__all__ = ["PredictionReport", "ProblemScalingFit", "ProblemScalingPredictor"]


@dataclass
class PredictionReport:
    """Predicted vs. measured times for a set of problems (Fig. 5b/6b)."""

    problems: np.ndarray
    predicted_s: np.ndarray
    measured_s: np.ndarray

    @property
    def mse(self) -> float:
        return mse(self.measured_s, self.predicted_s)

    @property
    def explained_variance(self) -> float:
        return explained_variance(self.measured_s, self.predicted_s)

    @property
    def mean_relative_error(self) -> float:
        return float(
            np.mean(np.abs(self.predicted_s - self.measured_s) / self.measured_s)
        )

    def rows(self) -> list[tuple[float, float, float]]:
        return [
            (float(p), float(pr), float(me))
            for p, pr, me in zip(self.problems, self.predicted_s, self.measured_s)
        ]


@dataclass
class ProblemScalingFit:
    """Fit artifact of :class:`ProblemScalingPredictor` (protocol type).

    Carries the underlying BlackForest fit, the retained predictor set,
    the reduced forest, and the counter models — plus the ``predict`` /
    ``assess`` methods, so a fit travels as one self-sufficient value.
    """

    blackforest_fit: BlackForestFit
    retained: list[str]
    forest: RandomForestRegressor
    counter_models: CounterModelSet
    characteristic: str | list[str]

    @property
    def characteristics(self) -> list[str]:
        if isinstance(self.characteristic, str):
            return [self.characteristic]
        return list(self.characteristic)

    def predict(self, problems: np.ndarray) -> np.ndarray:
        """Predicted execution times for unseen problem characteristics."""
        X = self.counter_models.predictor_rows(problems, self.retained)
        return self.forest.predict(X)

    def predict_many(self, queries) -> list[np.ndarray]:
        """Batched :meth:`predict` over many problem arrays.

        Concatenates the queued problem arrays, generates counter rows
        and runs the forest once over the stack, then splits the
        predictions back per query. The counter models and the forest
        both map rows independently, so this is bit-identical to the
        per-query loop (see :func:`repro.core.api.predict_many`).
        """
        arrays = [np.asarray(q, dtype=float) for q in queries]
        if not arrays:
            return []
        lengths = [a.shape[0] for a in arrays]
        nonempty = [a for a in arrays if a.shape[0]]
        if not nonempty:
            return [np.zeros(0) for _ in arrays]
        stacked = (
            nonempty[0] if len(nonempty) == 1 else np.concatenate(nonempty)
        )
        flat = self.predict(stacked)
        out: list[np.ndarray] = []
        lo = 0
        for n in lengths:
            out.append(flat[lo : lo + n])
            lo += n
        return out

    def assess(self, campaign: CampaignResult) -> PredictionReport:
        """Predict an evaluation campaign's problems and compare."""
        with span("problem_scaling.assess", kernel=campaign.kernel):
            chars = self.characteristics
            if len(chars) == 1:
                problems = np.array(
                    [r.characteristics[chars[0]] for r in campaign.records]
                )
            else:
                problems = np.array(
                    [[r.characteristics[c] for c in chars] for r in campaign.records]
                )
            return PredictionReport(
                problems=problems[:, 0] if problems.ndim > 1 else problems,
                predicted_s=self.predict(problems),
                measured_s=campaign.times(),
            )

    def report(self, *args, campaign: CampaignResult | None = None,
               trace=None, events=None, top_k: int = 10):
        """Build a structured :class:`~repro.obs.report.Report`.

        Calling with a *positional* campaign is the pre-report-layer
        spelling — a deprecated alias of :meth:`assess` kept for one
        release. Pass ``campaign=`` (or nothing) for the Report builder.
        """
        if args:
            warn_once(
                "ProblemScalingFit.report",
                "ProblemScalingFit.report(campaign) is deprecated; use "
                "assess(campaign) for a PredictionReport, or "
                "report(campaign=...) for the structured Report",
            )
            if len(args) > 1:
                raise TypeError(
                    f"report() takes at most 1 positional argument "
                    f"({len(args)} given)"
                )
            return self.assess(args[0])
        from repro.obs.report import build_report

        return build_report(
            self, campaign, trace=trace, events=events, top_k=top_k
        )

    # Aliases for the pre-protocol fitted-state attribute names (the
    # chained ``predictor.fit(...)`` value used to be the predictor).
    @property
    def fit_(self) -> BlackForestFit:
        warn_once(
            "ProblemScalingFit.fit_",
            "the fit_ attribute is deprecated; use blackforest_fit",
        )
        return self.blackforest_fit

    @property
    def retained_(self) -> list[str]:
        warn_once(
            "ProblemScalingFit.retained_",
            "the retained_ attribute is deprecated; use retained",
        )
        return self.retained

    @property
    def forest_(self) -> RandomForestRegressor:
        warn_once(
            "ProblemScalingFit.forest_",
            "the forest_ attribute is deprecated; use forest",
        )
        return self.forest

    @property
    def counter_models_(self) -> CounterModelSet:
        warn_once(
            "ProblemScalingFit.counter_models_",
            "the counter_models_ attribute is deprecated; use counter_models",
        )
        return self.counter_models


class ProblemScalingPredictor:
    """Predicts times for unseen problem characteristics on one GPU."""

    def __init__(
        self,
        blackforest: BlackForest | None = None,
        *args,
        characteristic: str | list[str] = "size",
        prefer_mars: bool = False,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if args:
            # Legacy positional order: (characteristic, prefer_mars, rng).
            warn_once(
                "ProblemScalingPredictor:positional",
                "passing ProblemScalingPredictor configuration positionally "
                "is deprecated; use keyword arguments (characteristic=..., "
                "prefer_mars=..., rng=...)",
            )
            legacy = ("characteristic", "prefer_mars", "rng")
            if len(args) > len(legacy):
                raise TypeError(
                    f"__init__() takes at most {len(legacy)} configuration "
                    f"arguments ({len(args)} given)"
                )
            defaults = {
                "characteristic": characteristic,
                "prefer_mars": prefer_mars,
                "rng": rng,
            }
            defaults.update(dict(zip(legacy, args)))
            characteristic = defaults["characteristic"]
            prefer_mars = defaults["prefer_mars"]
            rng = defaults["rng"]
        self.blackforest = blackforest if blackforest is not None else BlackForest(rng=rng)
        self.characteristic = characteristic
        self.prefer_mars = prefer_mars
        self._rng = np.random.default_rng(rng)

    @property
    def characteristics(self) -> list[str]:
        if isinstance(self.characteristic, str):
            return [self.characteristic]
        return list(self.characteristic)

    def fit(self, campaign: CampaignResult) -> ProblemScalingFit:
        emit_event(
            "fit.start",
            stage="problem_scaling",
            kernel=campaign.kernel,
            arch=campaign.arch,
            n_records=len(campaign.records),
        )
        with span("problem_scaling.fit", kernel=campaign.kernel):
            fit = self.blackforest.fit(campaign, include_characteristics=True)
            retained = list(fit.reduced_feature_names)
            for char in self.characteristics:
                if char in fit.feature_names and char not in retained:
                    retained.append(char)

            # Forest over the retained predictors only (the paper's reduced
            # model), refit on the full training partition.
            cols = [fit.feature_names.index(n) for n in retained]
            forest = RandomForestRegressor(
                n_trees=self.blackforest.n_trees,
                min_samples_leaf=self.blackforest.min_samples_leaf,
                importance=False,
                rng=self._rng,
            ).fit(fit.X_train[:, cols], fit.y_train, feature_names=retained)

            # Counter models are fit on the training partition only, so the
            # held-out problems stay genuinely unseen.
            names = fit.feature_names
            for char in self.characteristics:
                if char not in names:
                    raise ValueError(
                        f"campaign has no problem characteristic {char!r}"
                    )
            xs = np.column_stack(
                [fit.X_train[:, names.index(c)] for c in self.characteristics]
            )
            series = {
                n: fit.X_train[:, names.index(n)]
                for n in retained
                if n not in self.characteristics
            }
            counter_models = CounterModelSet(
                characteristic=self.characteristic, prefer_mars=self.prefer_mars
            ).fit_arrays(xs, series)

        artifact = ProblemScalingFit(
            blackforest_fit=fit,
            retained=retained,
            forest=forest,
            counter_models=counter_models,
            characteristic=self.characteristic,
        )
        # Fitted state mirrored on the predictor: protocol-level
        # predict/assess delegate to the most recent fit.
        self.last_fit_ = artifact
        self.fit_ = fit
        self.retained_ = retained
        self.forest_ = forest
        self.counter_models_ = counter_models
        emit_event(
            "fit.end",
            stage="problem_scaling",
            kernel=campaign.kernel,
            arch=campaign.arch,
            n_retained=len(retained),
            degraded=fit.degradation is not None,
        )
        return artifact

    def _require_fit(self) -> ProblemScalingFit:
        fit = getattr(self, "last_fit_", None)
        if fit is None:
            raise RuntimeError("call fit() before predict()/assess()")
        return fit

    def predict(self, problems: np.ndarray) -> np.ndarray:
        """Predicted execution times for unseen problem characteristics."""
        return self._require_fit().predict(problems)

    def assess(self, campaign: CampaignResult) -> PredictionReport:
        """Predict an evaluation campaign's problems and compare."""
        return self._require_fit().assess(campaign)

    def report(self, *args, campaign: CampaignResult | None = None,
               trace=None, events=None, top_k: int = 10):
        """Structured report for the most recent fit (see
        :meth:`ProblemScalingFit.report`)."""
        if args:
            warn_once(
                "ProblemScalingPredictor.report",
                "ProblemScalingPredictor.report(campaign) is deprecated; "
                "use assess(campaign) for a PredictionReport, or "
                "report(campaign=...) for the structured Report",
            )
            if len(args) > 1:
                raise TypeError(
                    f"report() takes at most 1 positional argument "
                    f"({len(args)} given)"
                )
            return self.assess(args[0])
        return self._require_fit().report(
            campaign=campaign, trace=trace, events=events, top_k=top_k
        )
